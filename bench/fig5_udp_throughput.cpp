// Figure 5: maximum UDP throughput at loss < 0.5% for the six scenarios
// (the iperf -u / -b search of §V-A).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace netco;
  using namespace netco::scenario;
  const auto scale = bench::BenchScale::resolve();
  bench::print_header(
      "Figure 5 (UDP max throughput, loss < 0.5%)",
      "Offered rate bisected until the highest rate within the loss bound.");
  bench::ObsSession obs_session;

  const double paper[] = {278, 266, 149, 245, 156, -1};

  stats::TablePrinter table({"scenario", "paper Mb/s", "measured Mb/s",
                             "loss at max", "jitter ms"});
  int i = 0;
  for (auto kind : all_scenarios()) {
    const auto result = find_udp_max(kind, 0.005, scale.udp_per_run);
    table.add_row({to_string(kind),
                   paper[i] < 0 ? "(low)" : stats::TablePrinter::num(paper[i], 0),
                   stats::TablePrinter::num(result.goodput_mbps, 1),
                   stats::TablePrinter::num(result.loss_rate * 100, 2) + "%",
                   stats::TablePrinter::num(result.jitter_ms, 3)});
    std::fflush(stdout);
    ++i;
  }
  table.print();
  std::printf(
      "\nShape checks: UDP approximates Linespeed far better than TCP does\n"
      "(connectionless, no congestion reaction); Dup3 ~ Central3 >> k=5.\n");
  obs_session.dump_metrics("fig5");
  return 0;
}
