// Figure 4: TCP throughput for the six §V-A scenarios.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace netco;
  using namespace netco::scenario;
  const auto scale = bench::BenchScale::resolve();
  bench::print_header(
      "Figure 4 (TCP throughput)",
      "iperf-style bulk TCP, direction alternating per run; receiver-side "
      "goodput.");
  bench::ObsSession obs_session;

  // Table I row (POX3 is shown in the figure but not the table; the paper
  // text calls it \"comparatively poor\").
  const double paper[] = {474, 122, 72, 145, 78, -1};

  stats::TablePrinter table({"scenario", "paper Mb/s", "measured Mb/s",
                             "stddev", "runs"});
  int i = 0;
  for (auto kind : all_scenarios()) {
    const auto result = measure_tcp(kind, scale.tcp_runs, scale.tcp_per_run);
    table.add_row({to_string(kind),
                   paper[i] < 0 ? "(low)" : stats::TablePrinter::num(paper[i], 0),
                   stats::TablePrinter::num(result.mbps.mean, 1),
                   stats::TablePrinter::num(result.mbps.stddev, 1),
                   std::to_string(scale.tcp_runs)});
    std::fflush(stdout);
    ++i;
  }
  table.print();
  std::printf(
      "\nShape checks: Linespeed dominates; Central3 > Dup3-class collapse;\n"
      "k=5 below k=3; POX3 far below Central3.\n");
  obs_session.dump_metrics("fig4");
  return 0;
}
