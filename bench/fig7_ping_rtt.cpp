// Figure 7: ping round-trip time for the five Table-I scenarios (plus
// POX3 for reference). Paper methodology: average of three sequences of 50
// consecutive ICMP request/response cycles.
#include <cstdio>

#include "bench_common.h"
#include "stats/summary.h"

int main() {
  using namespace netco;
  using namespace netco::scenario;
  const auto scale = bench::BenchScale::resolve();
  bench::print_header(
      "Figure 7 (ping RTT)",
      "Average of sequences of 50 consecutive ICMP echo cycles.");
  bench::ObsSession obs_session;

  const double paper_avg[] = {0.181, 0.189, 0.26, 0.319, 0.415, -1};

  stats::TablePrinter table({"scenario", "paper avg ms", "avg ms", "min ms",
                             "max ms", "mdev ms", "replies"});
  int i = 0;
  for (auto kind : all_scenarios()) {
    std::vector<double> all_rtts;
    int replies = 0, sent = 0;
    for (int seq = 0; seq < scale.ping_sequences; ++seq) {
      const auto report =
          measure_ping(kind, 50, sim::Duration::milliseconds(10),
                       1 + static_cast<std::uint64_t>(seq));
      all_rtts.insert(all_rtts.end(), report.rtts_ms.begin(),
                      report.rtts_ms.end());
      replies += report.received;
      sent += report.transmitted;
    }
    const auto summary = stats::summarize(all_rtts);
    table.add_row(
        {to_string(kind),
         paper_avg[i] < 0 ? "(high)"
                          : stats::TablePrinter::num(paper_avg[i], 3),
         stats::TablePrinter::num(summary.mean, 3),
         stats::TablePrinter::num(summary.min, 3),
         stats::TablePrinter::num(summary.max, 3),
         stats::TablePrinter::num(summary.stddev, 3),
         std::to_string(replies) + "/" + std::to_string(sent)});
    std::fflush(stdout);
    ++i;
  }
  table.print();
  std::printf(
      "\nShape checks: RTT grows Linespeed < Dup3 < Dup5 < Central3 < "
      "Central5 << POX3\n(the compare detour costs more than destination "
      "buffering; the controller\npipe costs most of all).\n");
  obs_session.dump_metrics("fig7");
  return 0;
}
