// Figure 6: correlation of UDP throughput and loss rate in the Central3
// scenario — an offered-load sweep across the compare's capacity cliff.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace netco;
  using namespace netco::scenario;
  const auto scale = bench::BenchScale::resolve();
  bench::print_header(
      "Figure 6 (throughput vs loss, Central3)",
      "Offered UDP load swept across the compare's capacity; goodput "
      "saturates while loss takes off — the paper's correlation plot.");
  bench::ObsSession obs_session;

  stats::TablePrinter table(
      {"offered Mb/s", "goodput Mb/s", "loss %", "jitter ms"});
  for (double offered = 60; offered <= 420.1; offered += 30) {
    const auto run = measure_udp_at(
        ScenarioKind::kCentral3,
        DataRate::kilobits_per_sec(static_cast<std::uint64_t>(offered * 1e3)),
        scale.udp_per_run);
    table.add_row({stats::TablePrinter::num(offered, 0),
                   stats::TablePrinter::num(run.goodput_mbps, 1),
                   stats::TablePrinter::num(run.loss_rate * 100, 2),
                   stats::TablePrinter::num(run.jitter_ms, 3)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nShape check: goodput tracks offered load until the compare "
      "saturates\n(~245 Mb/s), then plateaus while loss climbs steeply.\n");
  obs_session.dump_metrics("fig6");
  return 0;
}
