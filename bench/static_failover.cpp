// Static failover under correlated fabric failures: the DESIGN §16 sweep.
//
// A k=4 fat-tree with the combiner at the §VI attack position (0,0)
// carries an all-pods UDP workload (scenario/failover.h) while link cuts
// and switch kills land at one instant, and the only reaction allowed is
// the compiled guarded-backup layer — no controller is attached to the
// fabric. The headline claims gated by the verdict:
//
//   * an arbitrary single PRIMARY-PATH link cut is absorbed by the
//     static rules alone (goodput recovers; zero packet-ins, zero
//     invariant violations, zero duplicate egresses);
//   * so is a single primary-path switch kill;
//   * the ablation (no compiler) does NOT survive the same link cut —
//     proof the backup layer, not the topology, does the absorbing;
//   * same-seed runs are bit-deterministic, solo and as a fleet for any
//     shard count (1-circuit fleet reproduces the solo hash exactly).
//
// On top of the gates, a 0..F mixed sweep measures where static-only
// protection runs out: max_absorbed is the largest failure count every
// probe absorbed, handoff_failures the first that was not — recorded
// honestly (the measured limit, not a claim), since past that point the
// closed-loop resilience layers have to take over.
//
// Results land in the "static_failover" section of BENCH_soak.json
// (idempotent merge next to the soak base and the other sections).
//
// Env knobs:
//   NETCO_BENCH_QUICK=1  — smaller sweep + shorter horizon (CI smoke)
//   NETCO_SOAK_OUT=path  — summary path (default BENCH_soak.json)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/failover.h"

namespace {

using namespace netco;

struct Cell {
  std::string label;
  int link_cuts = 0;
  int switch_kills = 0;
  scenario::FailoverResult result;
};

std::string cell_json(const Cell& cell) {
  const scenario::FailoverResult& r = cell.result;
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"label\":\"%s\",\"link_cuts\":%d,\"switch_kills\":%d,"
      "\"absorbed\":%s,\"recovered\":%s,\"goodput_overall\":%.4f,"
      "\"goodput_dip\":%.4f,\"reroute_latency_ms\":%.2f,"
      "\"static_backup_hits\":%llu,\"failover_reroutes\":%llu,"
      "\"dropped_no_rule\":%llu,\"controller_packet_ins\":%llu,"
      "\"backup_rules\":%zu,\"fault_events\":%llu,\"duplicates\":%llu,"
      "\"invariant_violations\":%llu,\"stream_hash\":\"%s\"}",
      cell.label.c_str(), cell.link_cuts, cell.switch_kills,
      r.absorbed ? "true" : "false", r.recovered ? "true" : "false",
      r.goodput_overall, r.goodput_dip,
      r.reroute_latency_ns >= 0
          ? static_cast<double>(r.reroute_latency_ns) / 1e6
          : -1.0,
      static_cast<unsigned long long>(r.static_backup_hits),
      static_cast<unsigned long long>(r.failover_reroutes),
      static_cast<unsigned long long>(r.dropped_no_rule),
      static_cast<unsigned long long>(r.controller_packet_ins),
      r.backup_rules_installed,
      static_cast<unsigned long long>(r.fault_events),
      static_cast<unsigned long long>(r.duplicates),
      static_cast<unsigned long long>(r.invariant_violations),
      bench::hash_hex(r.stream_hash).c_str());
  return buf;
}

void print_cell(const Cell& cell) {
  const scenario::FailoverResult& r = cell.result;
  std::printf("%-12s %-5d %-6d %-9s %-8.4f %-8.4f %-9.2f %-9llu %s\n",
              cell.label.c_str(), cell.link_cuts, cell.switch_kills,
              r.absorbed ? "yes" : "NO", r.goodput_overall, r.goodput_dip,
              r.reroute_latency_ns >= 0
                  ? static_cast<double>(r.reroute_latency_ns) / 1e6
                  : -1.0,
              static_cast<unsigned long long>(r.failover_reroutes),
              bench::hash_hex(r.stream_hash).c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "static failover",
      "Correlated link cuts + switch kills against a k=4 fat-tree whose\n"
      "only defence is the compiled guarded-backup layer — no controller\n"
      "in the loop. Sweeps 0..F concurrent failures for the handoff point.");

  const bool quick = std::getenv("NETCO_BENCH_QUICK") != nullptr;

  scenario::FailoverOptions base;
  base.seed = bench::env_u64("NETCO_FAILOVER_SEED", 1);
  base.horizon = quick ? sim::Duration::milliseconds(500)
                       : sim::Duration::milliseconds(800);
  const int sweep_max = quick ? 2 : 4;

  std::vector<Cell> cells;
  std::printf("%-12s %-5s %-6s %-9s %-8s %-8s %-9s %-9s %s\n", "cell",
              "cuts", "kills", "absorbed", "overall", "dip", "rr_ms",
              "reroutes", "stream");

  const auto run_cell = [&](std::string label, int link_cuts,
                            int switch_kills, faultinject::KillTarget target,
                            bool compile) -> const Cell& {
    scenario::FailoverOptions options = base;
    options.link_cuts = link_cuts;
    options.switch_kills = switch_kills;
    options.target = target;
    options.compile_backup_rules = compile;
    Cell cell;
    cell.label = std::move(label);
    cell.link_cuts = link_cuts;
    cell.switch_kills = switch_kills;
    cell.result = scenario::run_failover(options);
    print_cell(cell);
    cells.push_back(std::move(cell));
    return cells.back();
  };

  // The gated cells: primary-path failures, so traffic impact is certain.
  const auto kPrimary = faultinject::KillTarget::kPrimaryPath;
  run_cell("baseline", 0, 0, kPrimary, true);
  run_cell("link1", 1, 0, kPrimary, true);
  run_cell("switch1", 0, 1, kPrimary, true);
  run_cell("nocompiler", 1, 0, kPrimary, false);

  // The mixed sweep: where does static-only protection run out? Drawn
  // from the primary-path pool so every failure provably hits traffic
  // (kAny mostly draws elements the deterministic routing never uses).
  int max_absorbed = 0;
  int handoff = -1;
  for (int f = 1; f <= sweep_max; ++f) {
    const int kills = f / 3;
    const int cuts = f - kills;
    char label[32];
    std::snprintf(label, sizeof label, "mixed%d", f);
    const Cell& cell = run_cell(label, cuts, kills, kPrimary, true);
    if (cell.result.absorbed && handoff < 0) {
      max_absorbed = f;
    } else if (handoff < 0) {
      handoff = f;
    }
  }

  const auto find_cell = [&](const char* label) -> const Cell& {
    for (const Cell& cell : cells) {
      if (cell.label == label) return cell;
    }
    std::abort();
  };

  // Same-seed determinism: the single-link-cut run, twice solo, then as a
  // 2-circuit fleet on 1 and 2 shards (merged hashes must agree), and as
  // a 1-circuit fleet (must reproduce the solo hash bit-for-bit).
  scenario::FailoverOptions repeat = base;
  repeat.link_cuts = 1;
  repeat.target = kPrimary;
  const scenario::FailoverResult again = scenario::run_failover(repeat);
  const std::uint64_t solo_hash = find_cell("link1").result.stream_hash;
  const auto fleet1 = scenario::run_failover_fleet(repeat, 1, 1);
  const auto fleet2a = scenario::run_failover_fleet(repeat, 2, 1);
  const auto fleet2b = scenario::run_failover_fleet(repeat, 2, 2);
  const bool deterministic = again.stream_hash == solo_hash &&
                             fleet1.merged_stream_hash == solo_hash &&
                             fleet2a.merged_stream_hash ==
                                 fleet2b.merged_stream_hash;
  std::printf("\nsame-seed determinism (solo x2, fleet 1c, fleet 2c x "
              "{1,2} shards): %s\n",
              deterministic ? "bit-identical streams" : "HASH MISMATCH");

  const Cell& baseline = find_cell("baseline");
  const bool ok = baseline.result.absorbed &&
                  baseline.result.goodput_overall >= 0.9999 &&
                  find_cell("link1").result.absorbed &&
                  find_cell("switch1").result.absorbed &&
                  !find_cell("nocompiler").result.absorbed &&
                  deterministic;

  std::string configs = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    configs += (i == 0 ? "" : ",") + cell_json(cells[i]);
  }
  configs += "]";
  char head[256];
  std::snprintf(head, sizeof head,
                "{\"quick\":%s,\"seed\":%llu,\"k\":%d,\"sweep_max\":%d,"
                "\"max_absorbed\":%d,\"handoff_failures\":%d,"
                "\"deterministic\":%s,",
                quick ? "true" : "false",
                static_cast<unsigned long long>(base.seed), base.k, sweep_max,
                max_absorbed, handoff,
                deterministic ? "true" : "false");
  const std::string section = std::string(head) + "\"configs\":" + configs +
                              ",\"verdict\":\"" + (ok ? "pass" : "fail") +
                              "\"}";

  const char* out_path = std::getenv("NETCO_SOAK_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_soak.json";
  bench::merge_bench_section(out_path, "static_failover", section);
  std::printf("\nStatic-failover sweep recorded in %s (max absorbed: %d, "
              "handoff at: %d)\n",
              out_path, max_absorbed, handoff);

  std::printf("\nStatic failover verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
