// Soak: ~10^6 packets through k ∈ {2, 3, 5} combiner circuits under a
// deterministic fault plan (link churn, loss/latency ramps, replica
// crashes, byzantine swaps, cache squeezes), with online invariant
// checking and a same-seed determinism double-run.
//
// Verdict (exit status): 0 iff every configuration finished with zero
// invariant violations AND byte-identical trace/metrics across the two
// same-seed runs. Writes a machine-readable summary to BENCH_soak.json.
//
// Env knobs:
//   NETCO_SOAK_PACKETS=n  — datagrams offered per configuration run
//   NETCO_BENCH_QUICK=1   — small CI-sized runs: fewer packets AND only
//                           one configuration per feature family
//   NETCO_SOAK_OUT=path   — summary path (default BENCH_soak.json)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "netco/compare_core.h"
#include "scenario/soak.h"

namespace {

struct SoakConfig {
  const char* name;
  int k;
  netco::core::ReleasePolicy policy;
  /// Offered rate, scaled so k × pps stays below the compare controller's
  /// packet-in capacity (~80k/s for the c_program profile) — overload
  /// would drown the fault dynamics in steady-state queue drops.
  std::uint64_t rate_mbps;
  /// Run with the replica-health loop (quarantine/readmit) enabled.
  bool health = false;
  /// Run with the resilience subsystem + warm standby: the default fault
  /// plan then also kills the trusted compare once mid-run, and the
  /// duplicate-egress invariant arms.
  bool failover = false;
  /// Run with the sampled-verification fast path (§XII): 1-in-N packets
  /// take the full k-way compare, the rest release on a reputation-
  /// weighted first copy at the edge. Arms the duplicate-egress invariant.
  bool sampled = false;
  /// Replace the default random fault plan with one deterministic
  /// byzantine corrupt-swap (plus honest swap-back): the matched-plan
  /// throughput/detection pair for §XII. The random plan's churn keeps
  /// the adaptive sampler collapsed for a fixed-size transient, so short
  /// runs would measure the transient, not steady-state throughput — and
  /// its crashes quarantine replicas before the swap, degenerating the
  /// time-to-quarantine telemetry.
  bool single_swap = false;
  /// Skipped under NETCO_BENCH_QUICK: redundant with a kept config of the
  /// same feature family, so CI smoke runs stay short.
  bool full_only = false;
};

netco::faultinject::FaultPlan single_swap_plan(std::int64_t horizon_ns) {
  using netco::faultinject::FaultEvent;
  using netco::faultinject::FaultKind;
  using netco::faultinject::SwapBehavior;
  netco::faultinject::FaultPlan plan;
  // Corrupt replica 2 a fifth of the way in; hand it back honest at 60%
  // so the run also exercises probation probes and readmission.
  plan.events.push_back(FaultEvent{.at_ns = horizon_ns / 5,
                                   .kind = FaultKind::kBehaviorSwap,
                                   .replica = 2,
                                   .behavior = SwapBehavior::kCorrupt});
  plan.events.push_back(FaultEvent{.at_ns = horizon_ns * 3 / 5,
                                   .kind = FaultKind::kBehaviorSwap,
                                   .replica = 2,
                                   .behavior = SwapBehavior::kHonest});
  return plan;
}

std::uint64_t packets_per_run() {
  if (const char* env = std::getenv("NETCO_SOAK_PACKETS");
      env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  if (std::getenv("NETCO_BENCH_QUICK") != nullptr) return 10'000;
  return 120'000;
}

}  // namespace

int main() {
  using namespace netco;
  using scenario::SoakResult;

  const SoakConfig configs[] = {
      {"k2-firstcopy", 2, core::ReleasePolicy::kFirstCopy, 24, false},
      {"k3-majority", 3, core::ReleasePolicy::kMajority, 16, false},
      {"k5-majority", 5, core::ReleasePolicy::kMajority, 10, false, false,
       false, false, /*full_only=*/true},
      // Same circuit and fault plan as k5-majority, but with the health
      // loop closing on the byzantine swaps and crashes the plan injects.
      {"k5-health", 5, core::ReleasePolicy::kMajority, 10, true},
      // Trusted-component resilience: the plan additionally crashes the
      // compare itself mid-run; a warm standby takes over. Majority policy
      // (first-copy would let a post-restart straggler re-release).
      {"k3-failover", 3, core::ReleasePolicy::kMajority, 16, false, true},
      {"k5-failover", 5, core::ReleasePolicy::kMajority, 10, false, true,
       false, false, /*full_only=*/true},
      // The §XII matched pair: same circuit, seed, health loop, and
      // deterministic single corrupt-swap plan — differing only in the
      // sampled-verification fast path. k5-sampled / k5-swap wall-pps is
      // the headline speedup; their time_to_quarantine delta is its
      // detection-latency cost.
      {"k5-swap", 5, core::ReleasePolicy::kMajority, 10, true, false, false,
       true},
      {"k5-sampled", 5, core::ReleasePolicy::kMajority, 10, true, false,
       true, true},
  };
  const std::uint64_t packets = packets_per_run();
  const bool quick = std::getenv("NETCO_BENCH_QUICK") != nullptr;

  std::printf("\n=== NetCo soak — fault-injected combiner churn ===\n");
  std::printf(
      "%llu datagrams per config, run twice per seed (determinism check).%s\n\n",
      static_cast<unsigned long long>(packets),
      quick ? " [quick: one config per family]" : "");

  bool all_ok = true;
  std::string json = "{\"bench\":\"soak\",\"packets_per_run\":" +
                     std::to_string(packets) + ",\"configs\":[";

  bool first = true;
  double k5_swap_wall_pps = 0.0;
  double k5_sampled_wall_pps = 0.0;
  for (const SoakConfig& config : configs) {
    if (quick && config.full_only) {
      std::printf("%-14s skipped (NETCO_BENCH_QUICK)\n", config.name);
      continue;
    }
    scenario::SoakOptions options;
    options.k = config.k;
    options.policy = config.policy;
    options.seed = 0xDECAFBAD ^ static_cast<std::uint64_t>(config.k);
    options.packets = packets;
    options.rate = DataRate::megabits_per_sec(config.rate_mbps);
    options.health.enabled = config.health;
    options.sampling.enabled = config.sampled;
    // The matched pair measures the compare path: both sides feed the
    // checker protocol records only, so the (identical) hub/replica/link
    // narration's serialize-and-hash cost does not dilute the ratio.
    options.protocol_trace_only = config.single_swap;
    if (config.single_swap) {
      // Mirror scenario::expected_duration: horizon = packets / offered pps.
      const double pps = static_cast<double>(options.rate.bps()) /
                         (static_cast<double>(options.payload_bytes) * 8.0);
      options.plan = single_swap_plan(static_cast<std::int64_t>(
          1e9 * static_cast<double>(packets) / pps));
    }
    if (config.failover) {
      options.resilience.enabled = true;
      options.resilience.standby = true;
      // Tight watchdog so detection + promotion beats even the quick
      // mode's shortest crash window — the failover path, not the warm
      // restart, is what this configuration measures.
      options.resilience.heartbeat_period = sim::Duration::milliseconds(1);
      options.resilience.heartbeat_miss_threshold = 2;
      options.resilience.backoff_factor = 1.5;
    }

    const SoakResult a = scenario::run_soak(options);
    const SoakResult b = scenario::run_soak(options);
    const bool deterministic = a.stream_hash == b.stream_hash &&
                               a.metrics_json == b.metrics_json &&
                               a.trace_records == b.trace_records;
    const bool ok = a.ok() && b.ok() && deterministic;
    all_ok = all_ok && ok;

    std::printf(
        "%-14s sent=%-8llu ingested=%-8llu released=%-8llu "
        "faults=%llu audits=%llu\n",
        config.name, static_cast<unsigned long long>(a.datagrams_sent),
        static_cast<unsigned long long>(a.compare_ingested),
        static_cast<unsigned long long>(a.compare_released),
        static_cast<unsigned long long>(a.fault_events_applied),
        static_cast<unsigned long long>(a.audits));
    std::printf(
        "               %.0f pkt/s sim (%.0f pkt/s wall), verdict latency "
        "p50=%.1fus p95=%.1fus p99=%.1fus\n",
        a.throughput_pps, a.wall_pps, a.verdict_p50_us, a.verdict_p95_us,
        a.verdict_p99_us);
    std::printf(
        "               invariants: %llu checks, %llu violations; "
        "deterministic=%s  -> %s\n",
        static_cast<unsigned long long>(a.invariants.checks),
        static_cast<unsigned long long>(a.invariants.violations),
        deterministic ? "yes" : "NO", ok ? "OK" : "FAIL");
    if (config.health) {
      std::printf(
          "               health: %llu quarantines (%llu readmits, %llu "
          "bans), first at %.1fms, tail goodput %.3f\n",
          static_cast<unsigned long long>(a.health_quarantines),
          static_cast<unsigned long long>(a.health_readmits),
          static_cast<unsigned long long>(a.health_bans),
          a.first_quarantine_ns >= 0
              ? static_cast<double>(a.first_quarantine_ns) / 1e6
              : -1.0,
          a.tail_goodput_ratio);
    }
    if (config.failover) {
      std::printf(
          "               failover: %llu promoted in %.2fms, gap loss %llu, "
          "duplicates %llu, %llu checkpoints, tail goodput %.3f\n",
          static_cast<unsigned long long>(a.resilience_failovers),
          a.time_to_failover_ns >= 0
              ? static_cast<double>(a.time_to_failover_ns) / 1e6
              : -1.0,
          static_cast<unsigned long long>(a.gap_loss),
          static_cast<unsigned long long>(a.duplicate_egress),
          static_cast<unsigned long long>(a.resilience_checkpoints),
          a.tail_goodput_ratio);
    }
    if (config.sampled) {
      std::printf(
          "               sampled: %llu fast-path releases, %llu escalated, "
          "duplicates %llu, time-to-quarantine %.1fms\n",
          static_cast<unsigned long long>(a.fastpath_released),
          static_cast<unsigned long long>(a.sampled_escalated),
          static_cast<unsigned long long>(a.duplicate_egress),
          a.time_to_quarantine_ns >= 0
              ? static_cast<double>(a.time_to_quarantine_ns) / 1e6
              : -1.0);
    }
    for (const std::string& detail : a.invariants.details) {
      std::printf("               violation: %s\n", detail.c_str());
    }
    // Each config runs twice for the determinism check, which also gives
    // two wall samples; the speedup ratio takes the best of each pair
    // (min-of-N timing) so a scheduler hiccup in one run does not skew
    // the headline number on a noisy host.
    if (std::string(config.name) == "k5-swap") {
      k5_swap_wall_pps = std::max(a.wall_pps, b.wall_pps);
    } else if (std::string(config.name) == "k5-sampled") {
      k5_sampled_wall_pps = std::max(a.wall_pps, b.wall_pps);
    }

    // With neither the health loop nor failover in play nothing is
    // steering the tail, so the ratio is just the run's natural tail
    // goodput — label it as the baseline so it cannot read like a
    // health-loop regression.
    const char* tail_goodput_key = config.health || config.failover
                                       ? "tail_goodput_ratio"
                                       : "tail_goodput_baseline";
    char buf[1536];
    std::snprintf(
        buf, sizeof buf,
        "%s\n{\"name\":\"%s\",\"k\":%d,\"policy\":\"%s\","
        "\"packets\":%llu,\"ingested\":%llu,\"released\":%llu,"
        "\"delivered_unique\":%llu,\"throughput_pps\":%.1f,"
        "\"wall_pps\":%.1f,"
        "\"verdict_latency_us\":{\"p50\":%.2f,\"p95\":%.2f,\"p99\":%.2f},"
        "\"invariants\":{\"checks\":%llu,\"violations\":%llu},"
        "\"fault_events_applied\":%llu,\"trace_records\":%llu,"
        "\"health\":{\"enabled\":%s,\"quarantines\":%llu,\"readmits\":%llu,"
        "\"bans\":%llu,\"probe_windows\":%llu,\"first_quarantine_ns\":%lld,"
        "\"first_readmit_ns\":%lld,\"%s\":%.4f},"
        "\"resilience\":{\"enabled\":%s,\"checkpoints\":%llu,"
        "\"failovers\":%llu,\"time_to_failover_ns\":%lld,\"gap_loss\":%llu,"
        "\"duplicate_egress\":%llu,\"downtime_drops\":%llu,"
        "\"suppressed_recovered\":%llu},"
        "\"sampling\":{\"enabled\":%s,\"fastpath_released\":%llu,"
        "\"sampled_escalated\":%llu,\"egress_set_hash\":\"%016llx\","
        "\"first_swap_ns\":%lld,\"time_to_quarantine_ns\":%lld},"
        "\"stream_hash\":\"%016llx\",\"deterministic\":%s}",
        first ? "" : ",", config.name, config.k,
        config.policy == core::ReleasePolicy::kFirstCopy ? "first_copy"
                                                         : "majority",
        static_cast<unsigned long long>(a.datagrams_sent),
        static_cast<unsigned long long>(a.compare_ingested),
        static_cast<unsigned long long>(a.compare_released),
        static_cast<unsigned long long>(a.delivered_unique),
        a.throughput_pps, a.wall_pps, a.verdict_p50_us, a.verdict_p95_us,
        a.verdict_p99_us,
        static_cast<unsigned long long>(a.invariants.checks),
        static_cast<unsigned long long>(a.invariants.violations),
        static_cast<unsigned long long>(a.fault_events_applied),
        static_cast<unsigned long long>(a.trace_records),
        config.health ? "true" : "false",
        static_cast<unsigned long long>(a.health_quarantines),
        static_cast<unsigned long long>(a.health_readmits),
        static_cast<unsigned long long>(a.health_bans),
        static_cast<unsigned long long>(a.health_probe_windows),
        static_cast<long long>(a.first_quarantine_ns),
        static_cast<long long>(a.first_readmit_ns), tail_goodput_key,
        a.tail_goodput_ratio,
        config.failover ? "true" : "false",
        static_cast<unsigned long long>(a.resilience_checkpoints),
        static_cast<unsigned long long>(a.resilience_failovers),
        static_cast<long long>(a.time_to_failover_ns),
        static_cast<unsigned long long>(a.gap_loss),
        static_cast<unsigned long long>(a.duplicate_egress),
        static_cast<unsigned long long>(a.downtime_drops),
        static_cast<unsigned long long>(a.suppressed_recovered),
        config.sampled ? "true" : "false",
        static_cast<unsigned long long>(a.fastpath_released),
        static_cast<unsigned long long>(a.sampled_escalated),
        static_cast<unsigned long long>(a.egress_set_hash),
        static_cast<long long>(a.first_swap_ns),
        static_cast<long long>(a.time_to_quarantine_ns),
        static_cast<unsigned long long>(a.stream_hash),
        deterministic ? "true" : "false");
    json += buf;
    first = false;
  }

  const double sampled_speedup =
      k5_swap_wall_pps > 0.0 ? k5_sampled_wall_pps / k5_swap_wall_pps : 0.0;
  std::printf(
      "\nk5 sampled fast path: %.2fx wall-pps over the unsampled matched "
      "baseline (k5-swap)\n",
      sampled_speedup);

  json += "\n],\"sampled_speedup_vs_unsampled\":" +
          std::to_string(sampled_speedup);
  json += ",\"verdict\":\"";
  json += all_ok ? "pass" : "fail";
  json += "\"}";

  const char* out_path = std::getenv("NETCO_SOAK_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_soak.json";
  // Regenerating the base summary must not clobber the sections the
  // datacenter and workload benches appended to the same file.
  netco::bench::write_bench_base(out_path, json);
  std::printf("\nSummary written to %s\n", out_path);

  std::printf("\nSoak verdict: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
