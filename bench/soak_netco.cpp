// Soak: ~10^6 packets through k ∈ {2, 3, 5} combiner circuits under a
// deterministic fault plan (link churn, loss/latency ramps, replica
// crashes, byzantine swaps, cache squeezes), with online invariant
// checking and a same-seed determinism double-run.
//
// Verdict (exit status): 0 iff every configuration finished with zero
// invariant violations AND byte-identical trace/metrics across the two
// same-seed runs. Writes a machine-readable summary to BENCH_soak.json.
//
// Env knobs:
//   NETCO_SOAK_PACKETS=n  — datagrams offered per configuration run
//   NETCO_BENCH_QUICK=1   — small CI-sized runs
//   NETCO_SOAK_OUT=path   — summary path (default BENCH_soak.json)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "netco/compare_core.h"
#include "scenario/soak.h"

namespace {

struct SoakConfig {
  const char* name;
  int k;
  netco::core::ReleasePolicy policy;
  /// Offered rate, scaled so k × pps stays below the compare controller's
  /// packet-in capacity (~80k/s for the c_program profile) — overload
  /// would drown the fault dynamics in steady-state queue drops.
  std::uint64_t rate_mbps;
  /// Run with the replica-health loop (quarantine/readmit) enabled.
  bool health = false;
  /// Run with the resilience subsystem + warm standby: the default fault
  /// plan then also kills the trusted compare once mid-run, and the
  /// duplicate-egress invariant arms.
  bool failover = false;
};

std::uint64_t packets_per_run() {
  if (const char* env = std::getenv("NETCO_SOAK_PACKETS");
      env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  if (std::getenv("NETCO_BENCH_QUICK") != nullptr) return 10'000;
  return 120'000;
}

}  // namespace

int main() {
  using namespace netco;
  using scenario::SoakResult;

  const SoakConfig configs[] = {
      {"k2-firstcopy", 2, core::ReleasePolicy::kFirstCopy, 24, false},
      {"k3-majority", 3, core::ReleasePolicy::kMajority, 16, false},
      {"k5-majority", 5, core::ReleasePolicy::kMajority, 10, false},
      // Same circuit and fault plan as k5-majority, but with the health
      // loop closing on the byzantine swaps and crashes the plan injects.
      {"k5-health", 5, core::ReleasePolicy::kMajority, 10, true},
      // Trusted-component resilience: the plan additionally crashes the
      // compare itself mid-run; a warm standby takes over. Majority policy
      // (first-copy would let a post-restart straggler re-release).
      {"k3-failover", 3, core::ReleasePolicy::kMajority, 16, false, true},
      {"k5-failover", 5, core::ReleasePolicy::kMajority, 10, false, true},
  };
  const std::uint64_t packets = packets_per_run();

  std::printf("\n=== NetCo soak — fault-injected combiner churn ===\n");
  std::printf(
      "%llu datagrams per config, run twice per seed (determinism check).\n\n",
      static_cast<unsigned long long>(packets));

  bool all_ok = true;
  std::string json = "{\"bench\":\"soak\",\"packets_per_run\":" +
                     std::to_string(packets) + ",\"configs\":[";

  bool first = true;
  for (const SoakConfig& config : configs) {
    scenario::SoakOptions options;
    options.k = config.k;
    options.policy = config.policy;
    options.seed = 0xDECAFBAD ^ static_cast<std::uint64_t>(config.k);
    options.packets = packets;
    options.rate = DataRate::megabits_per_sec(config.rate_mbps);
    options.health.enabled = config.health;
    if (config.failover) {
      options.resilience.enabled = true;
      options.resilience.standby = true;
      // Tight watchdog so detection + promotion beats even the quick
      // mode's shortest crash window — the failover path, not the warm
      // restart, is what this configuration measures.
      options.resilience.heartbeat_period = sim::Duration::milliseconds(1);
      options.resilience.heartbeat_miss_threshold = 2;
      options.resilience.backoff_factor = 1.5;
    }

    const SoakResult a = scenario::run_soak(options);
    const SoakResult b = scenario::run_soak(options);
    const bool deterministic = a.stream_hash == b.stream_hash &&
                               a.metrics_json == b.metrics_json &&
                               a.trace_records == b.trace_records;
    const bool ok = a.ok() && b.ok() && deterministic;
    all_ok = all_ok && ok;

    std::printf(
        "%-14s sent=%-8llu ingested=%-8llu released=%-8llu "
        "faults=%llu audits=%llu\n",
        config.name, static_cast<unsigned long long>(a.datagrams_sent),
        static_cast<unsigned long long>(a.compare_ingested),
        static_cast<unsigned long long>(a.compare_released),
        static_cast<unsigned long long>(a.fault_events_applied),
        static_cast<unsigned long long>(a.audits));
    std::printf(
        "               %.0f pkt/s sim (%.0f pkt/s wall), verdict latency "
        "p50=%.1fus p95=%.1fus p99=%.1fus\n",
        a.throughput_pps, a.wall_pps, a.verdict_p50_us, a.verdict_p95_us,
        a.verdict_p99_us);
    std::printf(
        "               invariants: %llu checks, %llu violations; "
        "deterministic=%s  -> %s\n",
        static_cast<unsigned long long>(a.invariants.checks),
        static_cast<unsigned long long>(a.invariants.violations),
        deterministic ? "yes" : "NO", ok ? "OK" : "FAIL");
    if (config.health) {
      std::printf(
          "               health: %llu quarantines (%llu readmits, %llu "
          "bans), first at %.1fms, tail goodput %.3f\n",
          static_cast<unsigned long long>(a.health_quarantines),
          static_cast<unsigned long long>(a.health_readmits),
          static_cast<unsigned long long>(a.health_bans),
          a.first_quarantine_ns >= 0
              ? static_cast<double>(a.first_quarantine_ns) / 1e6
              : -1.0,
          a.tail_goodput_ratio);
    }
    if (config.failover) {
      std::printf(
          "               failover: %llu promoted in %.2fms, gap loss %llu, "
          "duplicates %llu, %llu checkpoints, tail goodput %.3f\n",
          static_cast<unsigned long long>(a.resilience_failovers),
          a.time_to_failover_ns >= 0
              ? static_cast<double>(a.time_to_failover_ns) / 1e6
              : -1.0,
          static_cast<unsigned long long>(a.gap_loss),
          static_cast<unsigned long long>(a.duplicate_egress),
          static_cast<unsigned long long>(a.resilience_checkpoints),
          a.tail_goodput_ratio);
    }
    for (const std::string& detail : a.invariants.details) {
      std::printf("               violation: %s\n", detail.c_str());
    }

    char buf[1152];
    std::snprintf(
        buf, sizeof buf,
        "%s\n{\"name\":\"%s\",\"k\":%d,\"policy\":\"%s\","
        "\"packets\":%llu,\"ingested\":%llu,\"released\":%llu,"
        "\"delivered_unique\":%llu,\"throughput_pps\":%.1f,"
        "\"wall_pps\":%.1f,"
        "\"verdict_latency_us\":{\"p50\":%.2f,\"p95\":%.2f,\"p99\":%.2f},"
        "\"invariants\":{\"checks\":%llu,\"violations\":%llu},"
        "\"fault_events_applied\":%llu,\"trace_records\":%llu,"
        "\"health\":{\"enabled\":%s,\"quarantines\":%llu,\"readmits\":%llu,"
        "\"bans\":%llu,\"probe_windows\":%llu,\"first_quarantine_ns\":%lld,"
        "\"first_readmit_ns\":%lld,\"tail_goodput_ratio\":%.4f},"
        "\"resilience\":{\"enabled\":%s,\"checkpoints\":%llu,"
        "\"failovers\":%llu,\"time_to_failover_ns\":%lld,\"gap_loss\":%llu,"
        "\"duplicate_egress\":%llu,\"downtime_drops\":%llu,"
        "\"suppressed_recovered\":%llu},"
        "\"stream_hash\":\"%016llx\",\"deterministic\":%s}",
        first ? "" : ",", config.name, config.k,
        config.policy == core::ReleasePolicy::kFirstCopy ? "first_copy"
                                                         : "majority",
        static_cast<unsigned long long>(a.datagrams_sent),
        static_cast<unsigned long long>(a.compare_ingested),
        static_cast<unsigned long long>(a.compare_released),
        static_cast<unsigned long long>(a.delivered_unique),
        a.throughput_pps, a.wall_pps, a.verdict_p50_us, a.verdict_p95_us,
        a.verdict_p99_us,
        static_cast<unsigned long long>(a.invariants.checks),
        static_cast<unsigned long long>(a.invariants.violations),
        static_cast<unsigned long long>(a.fault_events_applied),
        static_cast<unsigned long long>(a.trace_records),
        config.health ? "true" : "false",
        static_cast<unsigned long long>(a.health_quarantines),
        static_cast<unsigned long long>(a.health_readmits),
        static_cast<unsigned long long>(a.health_bans),
        static_cast<unsigned long long>(a.health_probe_windows),
        static_cast<long long>(a.first_quarantine_ns),
        static_cast<long long>(a.first_readmit_ns), a.tail_goodput_ratio,
        config.failover ? "true" : "false",
        static_cast<unsigned long long>(a.resilience_checkpoints),
        static_cast<unsigned long long>(a.resilience_failovers),
        static_cast<long long>(a.time_to_failover_ns),
        static_cast<unsigned long long>(a.gap_loss),
        static_cast<unsigned long long>(a.duplicate_egress),
        static_cast<unsigned long long>(a.downtime_drops),
        static_cast<unsigned long long>(a.suppressed_recovered),
        static_cast<unsigned long long>(a.stream_hash),
        deterministic ? "true" : "false");
    json += buf;
    first = false;
  }

  json += "\n],\"verdict\":\"";
  json += all_ok ? "pass" : "fail";
  json += "\"}";

  const char* out_path = std::getenv("NETCO_SOAK_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_soak.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("\nSummary written to %s\n", out_path);
  } else {
    std::printf("\n%s\n", json.c_str());
  }

  std::printf("\nSoak verdict: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
