// §VII: virtualized NetCo vs the physical combiner — hardware cost and
// performance overhead, plus attack filtering on the overlay.
#include <cstdio>

#include "adversary/behaviors.h"
#include "bench_common.h"
#include "host/ping.h"
#include "host/udp_app.h"
#include "topo/virtual_overlay.h"

namespace {

using namespace netco;

struct OverlayResult {
  double rtt_ms = 0.0;
  double goodput_mbps = 0.0;
  double loss = 0.0;
  int replies = 0;
};

OverlayResult run_overlay(int paths, bool attack) {
  topo::VirtualOverlayOptions options;
  options.paths = paths;
  topo::VirtualOverlayTopology topo(options);
  adversary::ModifyBehavior modify(adversary::match_all(),
                                   adversary::ModifyBehavior::corrupt_payload());
  if (attack) topo.path_switch(0, 0).set_interceptor(&modify);

  OverlayResult out;
  {
    host::PingConfig config;
    config.dst_mac = topo.host_b().mac();
    config.dst_ip = topo.host_b().ip();
    config.count = 50;
    config.interval = sim::Duration::milliseconds(5);
    host::IcmpPinger pinger(topo.host_a(), config);
    pinger.start();
    while (!pinger.finished() &&
           topo.simulator().now().sec() < 3.0) {
      topo.simulator().run_for(sim::Duration::milliseconds(10));
    }
    const auto report = pinger.report();
    out.rtt_ms = report.avg_ms;
    out.replies = report.received;
  }
  {
    host::UdpSenderConfig config;
    config.dst_mac = topo.host_b().mac();
    config.dst_ip = topo.host_b().ip();
    config.rate = DataRate::megabits_per_sec(100);
    host::UdpSender sender(topo.host_a(), config);
    host::UdpSink sink(topo.host_b(), config.dst_port);
    sender.start();
    topo.simulator().run_for(sim::Duration::milliseconds(100));
    sink.reset();
    const auto t0 = topo.simulator().now();
    topo.simulator().run_for(sim::Duration::milliseconds(400));
    sender.stop();
    const double secs = (topo.simulator().now() - t0).sec();
    topo.simulator().run_for(sim::Duration::milliseconds(50));
    const auto report = sink.report();
    out.goodput_mbps =
        static_cast<double>(report.payload_bytes_unique) * 8 / secs / 1e6;
    out.loss = report.loss_rate;
  }
  return out;
}

}  // namespace

int main() {
  using namespace netco;
  bench::print_header(
      "§VII (virtualized NetCo)",
      "Flow split over k vendor-disjoint tunnels; inband tag-keyed compare "
      "at the trusted egress. Hardware cost vs the physical combiner:");
  bench::ObsSession obs_session;

  stats::TablePrinter cost({"architecture", "extra untrusted routers",
                            "extra trusted boxes", "uses existing paths"});
  cost.add_row({"physical combiner (k=3, 2-port)", "3", "2 edges + compare",
                "no"});
  cost.add_row({"virtualized combiner (k=3)", "0", "2 edges + compare",
                "yes"});
  cost.print();

  stats::TablePrinter perf({"configuration", "RTT ms", "UDP goodput Mb/s",
                            "loss %", "ping replies/50"});
  struct Row {
    const char* name;
    int paths;
    bool attack;
  };
  const Row rows[] = {
      {"virtual k=3, benign", 3, false},
      {"virtual k=3, one corrupting path", 3, true},
      {"virtual k=5, benign", 5, false},
      {"virtual k=5, one corrupting path", 5, true},
  };
  for (const auto& row : rows) {
    const auto r = run_overlay(row.paths, row.attack);
    perf.add_row({row.name, stats::TablePrinter::num(r.rtt_ms, 3),
                  stats::TablePrinter::num(r.goodput_mbps, 1),
                  stats::TablePrinter::num(r.loss * 100, 2),
                  std::to_string(r.replies)});
    std::fflush(stdout);
  }
  perf.print();
  std::printf(
      "\nThe overlay preserves the combiner guarantees (a corrupting path "
      "changes\nnothing for the receiver) at zero additional router "
      "hardware — the paper's\ncost argument for virtualization.\n");
  obs_session.dump_metrics("virtual_netco");
  return 0;
}
