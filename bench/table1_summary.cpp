// Table I: average TCP bandwidth, UDP bandwidth and RTT for the five
// scenarios Linespeed, Dup3, Dup5, Central3, Central5 — the paper's
// headline summary of the security/performance trade-off.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace netco;
  using namespace netco::scenario;
  const auto scale = bench::BenchScale::resolve();
  bench::print_header(
      "Table I (average measurement results)",
      "All three metrics per scenario; paper values in parentheses.");
  bench::ObsSession obs_session;

  struct PaperRow {
    double tcp, udp, rtt;
  };
  const PaperRow paper[] = {{474, 278, 0.181},
                            {122, 266, 0.189},
                            {72, 149, 0.26},
                            {145, 245, 0.319},
                            {78, 156, 0.415}};

  stats::TablePrinter table({"metric", "Linespeed", "Dup3", "Dup5",
                             "Central3", "Central5"});
  std::vector<std::string> tcp_row = {"avg tcp bandwidth Mb/s"};
  std::vector<std::string> udp_row = {"avg udp bandwidth Mb/s"};
  std::vector<std::string> rtt_row = {"avg RTT ms"};

  int i = 0;
  for (auto kind : table1_scenarios()) {
    const auto tcp = measure_tcp(kind, scale.tcp_runs, scale.tcp_per_run);
    const auto udp = find_udp_max(kind, 0.005, scale.udp_per_run);
    const auto ping = measure_ping(kind, 50, sim::Duration::milliseconds(10));
    tcp_row.push_back(stats::TablePrinter::num(tcp.mbps.mean, 0) + " (" +
                      stats::TablePrinter::num(paper[i].tcp, 0) + ")");
    udp_row.push_back(stats::TablePrinter::num(udp.goodput_mbps, 0) + " (" +
                      stats::TablePrinter::num(paper[i].udp, 0) + ")");
    rtt_row.push_back(stats::TablePrinter::num(ping.avg_ms, 3) + " (" +
                      stats::TablePrinter::num(paper[i].rtt, 3) + ")");
    std::fflush(stdout);
    ++i;
  }
  table.add_row(std::move(tcp_row));
  table.add_row(std::move(udp_row));
  table.add_row(std::move(rtt_row));
  table.print();
  std::printf(
      "\nSecurity comes at a price (paper §V-B): every combiner scenario "
      "trades\nthroughput/latency for integrity, k=5 costs more than k=3, "
      "and combining\nrecovers much of what naive duplication loses.\n");
  obs_session.dump_metrics("table1");
  return 0;
}
