// Shared helpers for the figure/table benchmark binaries.
//
// Every bench prints the paper's reference numbers next to the measured
// ones so the reproduction can be judged at a glance. Absolute values are
// not expected to match (the paper measured a Mininet testbed; we measure
// a calibrated simulator) — the scenario *ordering* and rough ratios are
// the reproduction target.
//
// Env knobs:
//   NETCO_BENCH_QUICK=1   — minimal runs (CI smoke)
//   NETCO_BENCH_FULL=1    — the paper's full methodology (10+10 × 10 s)
//   NETCO_TRACE_OUT=path  — enable the packet-lifecycle trace, JSONL to path
//   NETCO_METRICS_OUT=path — write the metrics snapshot there (default:
//                            one JSON line on stdout after the table)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <string>

#include "common/assert.h"
#include "obs/observability.h"
#include "scenario/scenarios.h"
#include "stats/table.h"

namespace netco::bench {

/// Methodology scale factors resolved from the environment.
struct BenchScale {
  int tcp_runs;                ///< per scenario
  sim::Duration tcp_per_run;
  sim::Duration udp_per_run;
  int ping_sequences;          ///< sequences of 50 cycles
  int udp_jitter_ms_runs;      ///< repetitions per packet size

  static BenchScale resolve() {
    if (std::getenv("NETCO_BENCH_QUICK") != nullptr) {
      return {2, sim::Duration::milliseconds(600),
              sim::Duration::milliseconds(300), 1, 1};
    }
    if (std::getenv("NETCO_BENCH_FULL") != nullptr) {
      // The paper: 10 runs each direction × 10 s; 3 × 50 ping cycles;
      // 5 jitter measurements per size.
      return {20, sim::Duration::seconds(10), sim::Duration::seconds(2), 3, 5};
    }
    return {6, sim::Duration::milliseconds(1100),
            sim::Duration::milliseconds(400), 3, 2};
  }
};

/// Prints the standard bench header.
inline void print_header(const char* figure, const char* caption) {
  std::printf("\n=== NetCo reproduction — %s ===\n%s\n\n", figure, caption);
}

/// Unsigned env knob with a fallback (empty counts as unset).
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

/// 16-digit hex rendering of a stream/egress hash.
inline std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

// --- BENCH_soak.json section merging ---------------------------------------
//
// BENCH_soak.json is a single JSON object owned by soak_netco (the base
// members) into which other benches append named sections ("datacenter",
// "workload"). Re-running any bench must replace only its own piece and
// leave the rest intact, in any run order — the helpers below are that
// idempotent merge, shared so the scanners don't fork per bench.

/// Reads a whole file into a string ("" when absent).
inline std::string read_text_file(const char* path) {
  std::string text;
  if (std::FILE* f = std::fopen(path, "r")) {
    char chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
      text.append(chunk, n);
    }
    std::fclose(f);
  }
  return text;
}

/// Skips one JSON value (object/array/string/scalar) starting at or after
/// `pos`; returns the index one past its end. String-aware, so braces and
/// commas inside quoted values never confuse the depth count.
inline std::size_t skip_json_value(const std::string& doc, std::size_t pos) {
  auto skip_ws = [&](std::size_t p) {
    while (p < doc.size() &&
           (doc[p] == ' ' || doc[p] == '\n' || doc[p] == '\t' ||
            doc[p] == '\r')) {
      ++p;
    }
    return p;
  };
  auto skip_string = [&](std::size_t p) {  // p points at the opening quote
    ++p;
    while (p < doc.size()) {
      if (doc[p] == '\\') {
        p += 2;
      } else if (doc[p] == '"') {
        return p + 1;
      } else {
        ++p;
      }
    }
    return p;
  };
  pos = skip_ws(pos);
  if (pos >= doc.size()) return pos;
  const char c = doc[pos];
  if (c == '"') return skip_string(pos);
  if (c == '{' || c == '[') {
    int depth = 0;
    while (pos < doc.size()) {
      const char d = doc[pos];
      if (d == '"') {
        pos = skip_string(pos);
        continue;
      }
      if (d == '{' || d == '[') {
        ++depth;
      } else if (d == '}' || d == ']') {
        if (--depth == 0) return pos + 1;
      }
      ++pos;
    }
    return pos;
  }
  // Scalar: number / true / false / null.
  while (pos < doc.size() && doc[pos] != ',' && doc[pos] != '}' &&
         doc[pos] != ']' && doc[pos] != ' ' && doc[pos] != '\n') {
    ++pos;
  }
  return pos;
}

/// Locates the top-level member `"name":<value>` of the document's root
/// object. On success sets [*begin, *end) to cover the member *and* its
/// preceding comma (sections are never the first member), so erasing the
/// range removes the member cleanly.
inline bool find_bench_section(const std::string& doc, const std::string& name,
                               std::size_t* begin, std::size_t* end) {
  std::size_t pos = doc.find('{');
  if (pos == std::string::npos) return false;
  ++pos;
  std::size_t prev_comma = std::string::npos;
  while (true) {
    while (pos < doc.size() &&
           (doc[pos] == ' ' || doc[pos] == '\n' || doc[pos] == '\t' ||
            doc[pos] == '\r')) {
      ++pos;
    }
    if (pos >= doc.size() || doc[pos] != '"') return false;
    const std::size_t key_start = pos + 1;
    const std::size_t key_end = skip_json_value(doc, pos);  // past closing "
    if (key_end == std::string::npos || key_end <= key_start) return false;
    const std::string key = doc.substr(key_start, key_end - 1 - key_start);
    pos = key_end;
    while (pos < doc.size() && doc[pos] != ':') ++pos;
    if (pos >= doc.size()) return false;
    const std::size_t value_end = skip_json_value(doc, pos + 1);
    if (key == name) {
      *begin = prev_comma != std::string::npos ? prev_comma
                                               : key_start - 1;
      *end = value_end;
      return true;
    }
    pos = value_end;
    while (pos < doc.size() &&
           (doc[pos] == ' ' || doc[pos] == '\n' || doc[pos] == '\t' ||
            doc[pos] == '\r')) {
      ++pos;
    }
    if (pos >= doc.size() || doc[pos] != ',') return false;
    prev_comma = pos;
    ++pos;
  }
}

/// Writes `doc` to `path` with a trailing newline (stdout fallback when
/// the file cannot be opened, so the data is never silently lost).
inline void write_bench_file(const char* path, const std::string& doc) {
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "%s\n", doc.c_str());
    std::fclose(f);
  } else {
    std::printf("\n%s\n", doc.c_str());
  }
}

/// Replaces-or-appends the named top-level section of the JSON object at
/// `path`. Idempotent: re-running a bench updates its own section in place
/// and leaves every other member (base or sibling section) untouched.
/// Starts a minimal base object when the file is missing or unparseable.
inline void merge_bench_section(const char* path, const std::string& name,
                                const std::string& section_json) {
  std::string doc = read_text_file(path);
  const std::string member = "\"" + name + "\":" + section_json;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string out;
  if (find_bench_section(doc, name, &begin, &end)) {
    const bool keeps_comma = doc[begin] == ',';
    out = doc.substr(0, begin) + (keeps_comma ? "," : "") + member +
          doc.substr(end);
  } else if (const std::size_t brace = doc.rfind('}');
             brace != std::string::npos) {
    out = doc.substr(0, brace);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += "," + member + "}";
  } else {
    out = "{\"bench\":\"soak\"," + member + "}";
  }
  while (!out.empty() && out.back() == '\n') out.pop_back();
  write_bench_file(path, out);
}

/// Overwrites the base object at `path` (the members soak_netco owns)
/// while carrying over the listed appended sections from the existing
/// file, so regenerating the base never clobbers sibling benches' output.
inline void write_bench_base(
    const char* path, const std::string& base_object_json,
    std::initializer_list<const char*> preserved = {
        "datacenter", "workload", "routing", "static_failover"}) {
  const std::string doc = read_text_file(path);
  std::string carried;
  for (const char* name : preserved) {
    std::size_t begin = 0;
    std::size_t end = 0;
    if (find_bench_section(doc, name, &begin, &end)) {
      std::string piece = doc.substr(begin, end - begin);
      if (!piece.empty() && piece[0] != ',') piece.insert(piece.begin(), ',');
      carried += piece;
    }
  }
  const std::size_t brace = base_object_json.rfind('}');
  NETCO_ASSERT_MSG(brace != std::string::npos,
                   "bench base summary is not a JSON object");
  write_bench_file(path,
                   base_object_json.substr(0, brace) + carried + "}");
}

/// Per-bench observability session: installs the JSONL trace sink when
/// NETCO_TRACE_OUT names a file (tracing stays disabled otherwise) and
/// dumps the metrics registry as machine-readable JSON at the end.
///
/// Construct one right after print_header() and call dump_metrics() after
/// the table — every figure bench then produces a metrics dump next to its
/// human-readable output.
class ObsSession {
 public:
  ObsSession() : trace_sink_(obs::trace_sink_from_env()) {
    obs::global().metrics.reset();
    if (trace_sink_ != nullptr) {
      obs::global().tracer.set_sink(trace_sink_.get());
    }
  }

  ~ObsSession() {
    if (trace_sink_ != nullptr) obs::global().tracer.set_sink(nullptr);
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Writes {"bench":<name>,"metrics":{...}} to NETCO_METRICS_OUT (one
  /// line, parseable JSON) or, when unset, to stdout. Short writes abort:
  /// a truncated metrics file would fail downstream JSON parsers with no
  /// hint that the disk filled up here.
  void dump_metrics(const char* bench_name) const {
    const std::string line = std::string("{\"bench\":\"") + bench_name +
                             "\",\"metrics\":" +
                             obs::global().metrics.to_json() + "}";
    if (const char* path = std::getenv("NETCO_METRICS_OUT");
        path != nullptr && *path != '\0') {
      if (std::FILE* f = std::fopen(path, "w")) {
        const bool wrote = std::fprintf(f, "%s\n", line.c_str()) ==
                           static_cast<int>(line.size()) + 1;
        const bool flushed = std::fflush(f) == 0;
        std::fclose(f);
        NETCO_ASSERT_MSG(wrote && flushed,
                         "metrics dump: short write (disk full?)");
        return;
      }
    }
    std::printf("\n%s\n", line.c_str());
  }

 private:
  std::unique_ptr<obs::JsonlFileSink> trace_sink_;
};

}  // namespace netco::bench
