// Shared helpers for the figure/table benchmark binaries.
//
// Every bench prints the paper's reference numbers next to the measured
// ones so the reproduction can be judged at a glance. Absolute values are
// not expected to match (the paper measured a Mininet testbed; we measure
// a calibrated simulator) — the scenario *ordering* and rough ratios are
// the reproduction target.
//
// Env knobs:
//   NETCO_BENCH_QUICK=1   — minimal runs (CI smoke)
//   NETCO_BENCH_FULL=1    — the paper's full methodology (10+10 × 10 s)
//   NETCO_TRACE_OUT=path  — enable the packet-lifecycle trace, JSONL to path
//   NETCO_METRICS_OUT=path — write the metrics snapshot there (default:
//                            one JSON line on stdout after the table)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/assert.h"
#include "obs/observability.h"
#include "scenario/scenarios.h"
#include "stats/table.h"

namespace netco::bench {

/// Methodology scale factors resolved from the environment.
struct BenchScale {
  int tcp_runs;                ///< per scenario
  sim::Duration tcp_per_run;
  sim::Duration udp_per_run;
  int ping_sequences;          ///< sequences of 50 cycles
  int udp_jitter_ms_runs;      ///< repetitions per packet size

  static BenchScale resolve() {
    if (std::getenv("NETCO_BENCH_QUICK") != nullptr) {
      return {2, sim::Duration::milliseconds(600),
              sim::Duration::milliseconds(300), 1, 1};
    }
    if (std::getenv("NETCO_BENCH_FULL") != nullptr) {
      // The paper: 10 runs each direction × 10 s; 3 × 50 ping cycles;
      // 5 jitter measurements per size.
      return {20, sim::Duration::seconds(10), sim::Duration::seconds(2), 3, 5};
    }
    return {6, sim::Duration::milliseconds(1100),
            sim::Duration::milliseconds(400), 3, 2};
  }
};

/// Prints the standard bench header.
inline void print_header(const char* figure, const char* caption) {
  std::printf("\n=== NetCo reproduction — %s ===\n%s\n\n", figure, caption);
}

/// Per-bench observability session: installs the JSONL trace sink when
/// NETCO_TRACE_OUT names a file (tracing stays disabled otherwise) and
/// dumps the metrics registry as machine-readable JSON at the end.
///
/// Construct one right after print_header() and call dump_metrics() after
/// the table — every figure bench then produces a metrics dump next to its
/// human-readable output.
class ObsSession {
 public:
  ObsSession() : trace_sink_(obs::trace_sink_from_env()) {
    obs::global().metrics.reset();
    if (trace_sink_ != nullptr) {
      obs::global().tracer.set_sink(trace_sink_.get());
    }
  }

  ~ObsSession() {
    if (trace_sink_ != nullptr) obs::global().tracer.set_sink(nullptr);
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Writes {"bench":<name>,"metrics":{...}} to NETCO_METRICS_OUT (one
  /// line, parseable JSON) or, when unset, to stdout. Short writes abort:
  /// a truncated metrics file would fail downstream JSON parsers with no
  /// hint that the disk filled up here.
  void dump_metrics(const char* bench_name) const {
    const std::string line = std::string("{\"bench\":\"") + bench_name +
                             "\",\"metrics\":" +
                             obs::global().metrics.to_json() + "}";
    if (const char* path = std::getenv("NETCO_METRICS_OUT");
        path != nullptr && *path != '\0') {
      if (std::FILE* f = std::fopen(path, "w")) {
        const bool wrote = std::fprintf(f, "%s\n", line.c_str()) ==
                           static_cast<int>(line.size()) + 1;
        const bool flushed = std::fflush(f) == 0;
        std::fclose(f);
        NETCO_ASSERT_MSG(wrote && flushed,
                         "metrics dump: short write (disk full?)");
        return;
      }
    }
    std::printf("\n%s\n", line.c_str());
  }

 private:
  std::unique_ptr<obs::JsonlFileSink> trace_sink_;
};

}  // namespace netco::bench
