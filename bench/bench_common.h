// Shared helpers for the figure/table benchmark binaries.
//
// Every bench prints the paper's reference numbers next to the measured
// ones so the reproduction can be judged at a glance. Absolute values are
// not expected to match (the paper measured a Mininet testbed; we measure
// a calibrated simulator) — the scenario *ordering* and rough ratios are
// the reproduction target.
//
// Env knobs:
//   NETCO_BENCH_QUICK=1  — minimal runs (CI smoke)
//   NETCO_BENCH_FULL=1   — the paper's full methodology (10+10 × 10 s)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/scenarios.h"
#include "stats/table.h"

namespace netco::bench {

/// Methodology scale factors resolved from the environment.
struct BenchScale {
  int tcp_runs;                ///< per scenario
  sim::Duration tcp_per_run;
  sim::Duration udp_per_run;
  int ping_sequences;          ///< sequences of 50 cycles
  int udp_jitter_ms_runs;      ///< repetitions per packet size

  static BenchScale resolve() {
    if (std::getenv("NETCO_BENCH_QUICK") != nullptr) {
      return {2, sim::Duration::milliseconds(600),
              sim::Duration::milliseconds(300), 1, 1};
    }
    if (std::getenv("NETCO_BENCH_FULL") != nullptr) {
      // The paper: 10 runs each direction × 10 s; 3 × 50 ping cycles;
      // 5 jitter measurements per size.
      return {20, sim::Duration::seconds(10), sim::Duration::seconds(2), 3, 5};
    }
    return {6, sim::Duration::milliseconds(1100),
            sim::Duration::milliseconds(400), 3, 2};
  }
};

/// Prints the standard bench header.
inline void print_header(const char* figure, const char* caption) {
  std::printf("\n=== NetCo reproduction — %s ===\n%s\n\n", figure, caption);
}

}  // namespace netco::bench
