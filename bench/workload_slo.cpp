// Workload SLO curves: goodput and flow-completion-time percentiles vs
// offered load, per scenario shape {steady, diurnal, flash-crowd,
// ddos-burst}, driven through a full k=3 combiner circuit by the
// million-flow workload engine (flat SoA pool + hierarchical timer wheel).
//
// Two phases:
//  1. Capacity: the flat pool + wheel sustain >= 1M concurrent flow
//     records with zero per-flow heap objects; the acquire+schedule setup
//     rate is measured and enforced (the bar catches any per-flow
//     allocation creeping back in).
//  2. SLO sweep: each scenario runs at increasing offered session rates;
//     goodput and FCT p50/p95/p99 land in BENCH_soak.json under the
//     "workload" section (merged idempotently next to soak_netco's base
//     summary and casestudy's "datacenter" section). One mid-load config
//     is run twice same-seed (bit determinism), and a small sharded fleet
//     checks merged-hash shard-count invariance.
//
// Verdict (exit status): 0 iff every run held its invariants, the
// double run was bit-identical, the fleet hashes were shard-invariant,
// and the capacity phase cleared the setup-rate bar.
//
// Env knobs:
//   NETCO_BENCH_QUICK=1  — short CI-sized sweeps (fewer loads, shorter runs)
//   NETCO_SOAK_OUT=path  — summary path (default BENCH_soak.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/workload.h"
#include "sim/timer_wheel.h"
#include "workload/flow_pool.h"

namespace {

using namespace netco;
using Clock = std::chrono::steady_clock;

/// Prevents the optimizer from deleting wheel callbacks.
std::uint64_t g_sink = 0;

/// The flat pool + wheel must hold >= 1M concurrent flow records (each
/// with a live timer) without any per-flow heap object, and must set them
/// up fast enough that a regression back to per-flow allocation or
/// O(log n) scheduling trips the bar.
struct CapacityResult {
  std::size_t concurrent = 0;
  std::size_t pool_records = 0;
  std::size_t wheel_slab = 0;
  double setup_rate_per_sec = 0.0;
  bool pass = false;
};

CapacityResult run_capacity_phase(std::size_t concurrent, double bar_per_sec) {
  CapacityResult result;
  result.concurrent = concurrent;

  sim::Simulator simulator(1);
  sim::TimerWheel wheel(simulator, {sim::Duration::microseconds(100)});
  workload::FlowPool pool(concurrent + concurrent / 5);
  result.pool_records = pool.capacity();

  const auto start = Clock::now();
  for (std::size_t i = 0; i < concurrent; ++i) {
    const std::uint32_t record = pool.acquire();
    NETCO_ASSERT(record != workload::FlowPool::kNil);
    // An RTO-class deadline per record, like a real in-flight flow.
    pool.timer[record] = wheel.schedule_after(
        sim::Duration::microseconds(
            static_cast<std::int64_t>(40'000 + (i % 4096))),
        +[](void*, std::uint64_t arg) { g_sink ^= arg; }, nullptr, record);
  }
  const double setup_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  const bool held = pool.live() == concurrent && wheel.active() == concurrent;
  result.wheel_slab = wheel.slab_capacity();
  result.setup_rate_per_sec =
      setup_seconds > 0.0 ? static_cast<double>(concurrent) / setup_seconds
                          : 0.0;

  // Tear down the way the engine does: cancel half (rescheduled-before-
  // fire flows), let the rest fire, recycle every record.
  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < concurrent; i += 2) {
    if (wheel.cancel(pool.timer[static_cast<std::uint32_t>(i)])) ++cancelled;
  }
  simulator.run();
  const bool drained = wheel.active() == 0 &&
                       wheel.fired() + cancelled == concurrent;
  for (std::size_t i = 0; i < concurrent; ++i) {
    pool.release(static_cast<std::uint32_t>(i));
  }

  result.pass = held && drained && pool.live() == 0 &&
                pool.peak_live() == concurrent &&
                result.setup_rate_per_sec >= bar_per_sec;
  return result;
}

scenario::SoakOptions slo_options(workload::Scenario scenario,
                                  double arrivals_per_sec,
                                  sim::Duration duration) {
  scenario::SoakOptions options;
  options.k = 3;
  options.seed = 0xF10F10 ^ static_cast<std::uint64_t>(scenario) << 8 ^
                 static_cast<std::uint64_t>(arrivals_per_sec);
  options.workload.enabled = true;
  options.workload.scenario = scenario;
  options.workload.duration = duration;
  options.workload.session_arrivals_per_sec = arrivals_per_sec;
  return options;
}

struct SloPoint {
  double offered_per_sec = 0.0;
  scenario::SoakResult result;
};

std::string point_json(const SloPoint& point, double duration_seconds,
                       std::size_t payload_bytes) {
  const scenario::SoakResult& r = point.result;
  const double goodput_pps =
      static_cast<double>(r.delivered_unique) / duration_seconds;
  const double goodput_mbps = goodput_pps *
                              static_cast<double>(payload_bytes) * 8.0 / 1e6;
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"offered_sessions_per_sec\":%.0f,\"sessions\":%llu,"
      "\"flows_completed\":%llu,\"flows_aborted\":%llu,"
      "\"datagrams_offered\":%llu,\"delivered_unique\":%llu,"
      "\"goodput_pps\":%.1f,\"goodput_mbps\":%.3f,"
      "\"fct_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f},"
      "\"pool_peak_live\":%llu,\"stream_hash\":\"%s\",\"ok\":%s}",
      point.offered_per_sec,
      static_cast<unsigned long long>(r.wl_sessions_started),
      static_cast<unsigned long long>(r.wl_flows_completed),
      static_cast<unsigned long long>(r.wl_flows_aborted),
      static_cast<unsigned long long>(r.datagrams_sent),
      static_cast<unsigned long long>(r.delivered_unique), goodput_pps,
      goodput_mbps, r.wl_fct_p50_ms, r.wl_fct_p95_ms, r.wl_fct_p99_ms,
      static_cast<unsigned long long>(r.wl_pool_peak_live),
      bench::hash_hex(r.stream_hash).c_str(), r.ok() ? "true" : "false");
  return buf;
}

}  // namespace

int main() {
  const bool quick = std::getenv("NETCO_BENCH_QUICK") != nullptr;
  const sim::Duration duration =
      quick ? sim::Duration::milliseconds(500) : sim::Duration::seconds(2);
  const double duration_seconds =
      static_cast<double>(duration.ns()) / 1e9;
  const std::vector<double> loads =
      quick ? std::vector<double>{150.0, 450.0}
            : std::vector<double>{200.0, 600.0, 1200.0};
  const workload::Scenario scenarios[] = {
      workload::Scenario::kSteady, workload::Scenario::kDiurnal,
      workload::Scenario::kFlashCrowd, workload::Scenario::kDdosBurst};

  std::printf(
      "\n=== NetCo workload SLO — goodput + FCT tails vs offered load ===\n"
      "k=3 majority circuit, %.1fs per run, %zu offered-load points per "
      "scenario.%s\n",
      duration_seconds, loads.size(), quick ? " [quick]" : "");

  // --- phase 1: million-record capacity + setup-rate bar ------------------
  constexpr std::size_t kConcurrent = 1'000'000;
  constexpr double kSetupBarPerSec = 250'000.0;
  const CapacityResult capacity =
      run_capacity_phase(kConcurrent, kSetupBarPerSec);
  std::printf(
      "\ncapacity: %zu concurrent flow records (pool slab %zu, wheel slab "
      "%zu), setup %.2fM rec/s (bar %.2fM) -> %s\n",
      capacity.concurrent, capacity.pool_records, capacity.wheel_slab,
      capacity.setup_rate_per_sec / 1e6, kSetupBarPerSec / 1e6,
      capacity.pass ? "OK" : "FAIL");

  bool all_ok = capacity.pass;

  // --- phase 2: SLO sweep per scenario ------------------------------------
  const std::size_t payload_bytes =
      scenario::SoakOptions{}.workload.payload_bytes;
  std::string scenarios_json = "[";
  bool first_scenario = true;
  for (const workload::Scenario scenario : scenarios) {
    std::printf("\n%-12s %10s %12s %10s %10s %10s %10s\n",
                workload::to_string(scenario), "offered/s", "goodput-pps",
                "fct-p50ms", "fct-p95ms", "fct-p99ms", "flows");
    std::string points_json = "[";
    bool first_point = true;
    for (const double load : loads) {
      SloPoint point;
      point.offered_per_sec = load;
      point.result = scenario::run_workload(
          slo_options(scenario, load, duration));
      const scenario::SoakResult& r = point.result;
      all_ok = all_ok && r.ok();
      std::printf(
          "%-12s %10.0f %12.1f %10.3f %10.3f %10.3f %10llu %s\n", "",
          load, static_cast<double>(r.delivered_unique) / duration_seconds,
          r.wl_fct_p50_ms, r.wl_fct_p95_ms, r.wl_fct_p99_ms,
          static_cast<unsigned long long>(r.wl_flows_completed),
          r.ok() ? "" : "FAIL");
      points_json += (first_point ? "" : ",") +
                     point_json(point, duration_seconds, payload_bytes);
      first_point = false;
    }
    points_json += "]";
    scenarios_json += std::string(first_scenario ? "" : ",") +
                      "{\"name\":\"" + workload::to_string(scenario) +
                      "\",\"points\":" + points_json + "}";
    first_scenario = false;
  }
  scenarios_json += "]";

  // --- determinism: same-seed double run, bit-identical -------------------
  const scenario::SoakOptions repeat_options =
      slo_options(workload::Scenario::kFlashCrowd, loads[loads.size() / 2],
                  duration);
  const scenario::SoakResult run_a = scenario::run_workload(repeat_options);
  const scenario::SoakResult run_b = scenario::run_workload(repeat_options);
  const bool deterministic = run_a.stream_hash == run_b.stream_hash &&
                             run_a.metrics_json == run_b.metrics_json &&
                             run_a.trace_records == run_b.trace_records;
  all_ok = all_ok && deterministic;
  std::printf("\nsame-seed double run (flash-crowd): %s\n",
              deterministic ? "bit-identical" : "MISMATCH");

  // --- fleet: merged hashes must be shard-count invariant -----------------
  scenario::ShardedSoakOptions fleet;
  fleet.base = slo_options(workload::Scenario::kSteady, 150.0,
                           sim::Duration::milliseconds(quick ? 200 : 400));
  fleet.circuits = 2;
  fleet.shards = 1;
  const scenario::ShardedSoakResult fleet_one =
      scenario::run_workload_fleet(fleet);
  fleet.shards = 2;
  const scenario::ShardedSoakResult fleet_two =
      scenario::run_workload_fleet(fleet);
  const bool fleet_invariant =
      fleet_one.ok() && fleet_two.ok() &&
      fleet_one.merged_stream_hash == fleet_two.merged_stream_hash &&
      fleet_one.merged_egress_hash == fleet_two.merged_egress_hash;
  all_ok = all_ok && fleet_invariant;
  std::printf("2-circuit fleet, shards 1 vs 2: %s\n",
              fleet_invariant ? "merged hashes invariant" : "MISMATCH");

  // --- BENCH_soak.json "workload" section ---------------------------------
  char head[512];
  std::snprintf(
      head, sizeof head,
      "{\"quick\":%s,\"run_seconds\":%.2f,"
      "\"capacity\":{\"concurrent_records\":%zu,\"pool_records\":%zu,"
      "\"wheel_slab\":%zu,\"setup_rate_per_sec\":%.0f,"
      "\"setup_bar_per_sec\":%.0f,\"pass\":%s},"
      "\"deterministic\":%s,\"fleet_hash_invariant\":%s,",
      quick ? "true" : "false", duration_seconds, capacity.concurrent,
      capacity.pool_records, capacity.wheel_slab,
      capacity.setup_rate_per_sec, kSetupBarPerSec,
      capacity.pass ? "true" : "false", deterministic ? "true" : "false",
      fleet_invariant ? "true" : "false");
  const std::string section = std::string(head) +
                              "\"scenarios\":" + scenarios_json +
                              ",\"verdict\":\"" +
                              (all_ok ? "pass" : "fail") + "\"}";

  const char* out_path = std::getenv("NETCO_SOAK_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_soak.json";
  bench::merge_bench_section(out_path, "workload", section);
  std::printf("\nWorkload SLO curves recorded in %s\n", out_path);

  std::printf("\nWorkload SLO verdict: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
