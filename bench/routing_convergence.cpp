// Routing convergence under control-plane attack: the DESIGN §15 matrix.
//
// A diamond of four RIP-speaking legacy routers (scenario/convergence.h)
// is run across {unprotected, combiner-protected} × {0, 1, 2 liars}, the
// liars telling metric-inflation lies from inside the RA—RB router
// position. Measured per cell: whether the control plane converges to
// the benign ground-truth tables, how long that takes, and the goodput
// of an hA→hB probe flow during the convergence transient. The headline
// claims gated by the verdict:
//
//   * benign runs converge correctly in both modes;
//   * ONE liar defeats the unprotected position but not the k=3
//     combiner (2/3 honest quorum filters the lie);
//   * a combiner-protected run is bit-deterministic (same-seed double
//     run, identical trace stream hashes).
//
// Two identical liars out-vote the k=3 quorum — recorded (the quorum
// boundary made measurable) but not gated, since it is the expected
// failure mode, not a regression signal.
//
// Results land in the "routing" section of BENCH_soak.json (idempotent
// merge next to the soak base and the "datacenter"/"workload" sections).
//
// Env knobs:
//   NETCO_BENCH_QUICK=1  — short horizon (CI smoke)
//   NETCO_SOAK_OUT=path  — summary path (default BENCH_soak.json)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/convergence.h"

namespace {

using namespace netco;

struct Cell {
  bool use_combiner = false;
  int liars = 0;
  scenario::ConvergenceResult result;
};

std::string cell_json(const Cell& cell) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"mode\":\"%s\",\"liars\":%d,\"converged_correct\":%s,"
      "\"convergence_ms\":%.1f,\"goodput_during_convergence\":%.4f,"
      "\"goodput_overall\":%.4f,\"data_dropped_by_liars\":%llu,"
      "\"updates_sent\":%llu,\"route_changes\":%llu,"
      "\"invariant_violations\":%llu,\"stream_hash\":\"%s\"}",
      cell.use_combiner ? "combiner" : "unprotected", cell.liars,
      cell.result.converged_correct ? "true" : "false",
      cell.result.convergence_ns >= 0
          ? static_cast<double>(cell.result.convergence_ns) / 1e6
          : -1.0,
      cell.result.goodput_during_convergence, cell.result.goodput_overall,
      static_cast<unsigned long long>(cell.result.data_dropped_by_liars),
      static_cast<unsigned long long>(cell.result.updates_sent),
      static_cast<unsigned long long>(cell.result.route_changes),
      static_cast<unsigned long long>(cell.result.invariant_violations),
      bench::hash_hex(cell.result.stream_hash).c_str());
  return buf;
}

}  // namespace

int main() {
  bench::print_header(
      "routing convergence",
      "RIP-v2 convergence through the router position, with and without\n"
      "the combiner, while 0-2 replicas inside it lie about metrics.");

  const bool quick = std::getenv("NETCO_BENCH_QUICK") != nullptr;

  scenario::ConvergenceOptions base;
  base.seed = bench::env_u64("NETCO_ROUTING_SEED", 1);
  base.attack = scenario::RoutingAttack::kInflate;
  base.horizon =
      quick ? sim::Duration::milliseconds(1500) : sim::Duration::seconds(3);

  std::vector<Cell> cells;
  std::printf("%-12s %-6s %-10s %-12s %-12s %-9s %s\n", "mode", "liars",
              "converged", "conv_ms", "goodput@cv", "overall", "stream");
  for (const bool use_combiner : {false, true}) {
    for (const int liars : {0, 1, 2}) {
      scenario::ConvergenceOptions options = base;
      options.use_combiner = use_combiner;
      options.liars = liars;
      Cell cell{.use_combiner = use_combiner, .liars = liars};
      cell.result = scenario::run_convergence(options);
      std::printf("%-12s %-6d %-10s %-12.1f %-12.4f %-9.4f %s\n",
                  use_combiner ? "combiner" : "unprotected", liars,
                  cell.result.converged_correct ? "yes" : "NO",
                  cell.result.convergence_ns >= 0
                      ? static_cast<double>(cell.result.convergence_ns) / 1e6
                      : -1.0,
                  cell.result.goodput_during_convergence,
                  cell.result.goodput_overall,
                  bench::hash_hex(cell.result.stream_hash).c_str());
      cells.push_back(std::move(cell));
    }
  }

  const auto find_cell = [&](bool combiner, int liars) -> const Cell& {
    for (const Cell& cell : cells) {
      if (cell.use_combiner == combiner && cell.liars == liars) return cell;
    }
    std::abort();
  };

  // Same-seed determinism: the protected 1-liar run, twice.
  scenario::ConvergenceOptions repeat = base;
  repeat.use_combiner = true;
  repeat.liars = 1;
  const scenario::ConvergenceResult again = scenario::run_convergence(repeat);
  const bool deterministic =
      again.stream_hash == find_cell(true, 1).result.stream_hash;
  std::printf("\nsame-seed double run (combiner, 1 liar): %s\n",
              deterministic ? "bit-identical stream" : "HASH MISMATCH");

  std::uint64_t violations = 0;
  for (const Cell& cell : cells) {
    violations += cell.result.invariant_violations;
  }
  const bool ok = find_cell(false, 0).result.converged_correct &&
                  find_cell(true, 0).result.converged_correct &&
                  find_cell(true, 1).result.converged_correct &&
                  !find_cell(false, 1).result.converged_correct &&
                  deterministic && violations == 0;

  std::string configs = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    configs += (i == 0 ? "" : ",") + cell_json(cells[i]);
  }
  configs += "]";
  char head[256];
  std::snprintf(head, sizeof head,
                "{\"quick\":%s,\"attack\":\"%s\",\"seed\":%llu,"
                "\"deterministic\":%s,",
                quick ? "true" : "false", to_string(base.attack),
                static_cast<unsigned long long>(base.seed),
                deterministic ? "true" : "false");
  const std::string section = std::string(head) + "\"configs\":" + configs +
                              ",\"verdict\":\"" + (ok ? "pass" : "fail") +
                              "\"}";

  const char* out_path = std::getenv("NETCO_SOAK_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_soak.json";
  bench::merge_bench_section(out_path, "routing", section);
  std::printf("\nRouting convergence matrix recorded in %s\n", out_path);

  std::printf("\nRouting convergence verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
