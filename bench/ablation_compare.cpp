// Ablation benches for the design choices DESIGN.md calls out:
//  A1  compare mode (bit-by-bit / header-only / hashed) vs end-to-end RTT
//      and attack filtering;
//  A2  hold-timeout sweep: minority residue vs memory pressure;
//  A3  cache capacity vs small-packet jitter (the §V-B mechanism);
//  A4  DoS block advice on/off: availability under a flooding replica;
//  A5  detection-only mode (k=2, first-copy release) vs prevention.
#include <cstdio>

#include "adversary/behaviors.h"
#include "bench_common.h"
#include "host/ping.h"
#include "host/udp_app.h"
#include "netco/compare_core.h"
#include "netco/sampling.h"
#include "topo/figure3.h"
#include "topo/inband.h"

namespace {

using namespace netco;
using namespace netco::scenario;

topo::Figure3Options central3(std::uint64_t seed) {
  return make_options(ScenarioKind::kCentral3, seed);
}

host::PingReport run_ping(topo::Figure3Topology& topo, int count = 30,
                          sim::Duration interval = sim::Duration::milliseconds(3)) {
  host::PingConfig config;
  config.dst_mac = topo.h2().mac();
  config.dst_ip = topo.h2().ip();
  config.count = count;
  config.interval = interval;
  config.timeout = sim::Duration::milliseconds(300);
  host::IcmpPinger pinger(topo.h1(), config);
  pinger.start();
  while (!pinger.finished() && topo.simulator().now().sec() < 5.0) {
    topo.simulator().run_for(sim::Duration::milliseconds(10));
  }
  return pinger.report();
}

void ablation_modes() {
  std::printf("\n--- A1: compare mode vs RTT + filtering ---\n");
  stats::TablePrinter table({"mode", "RTT ms", "replies/30",
                             "corruption filtered"});
  struct Row {
    const char* name;
    core::CompareMode mode;
  };
  const Row rows[] = {
      {"bit-by-bit (memcmp)", core::CompareMode::kFullPacket},
      {"header-only", core::CompareMode::kHeaderOnly},
      {"hashed", core::CompareMode::kHashed},
  };
  for (const auto& row : rows) {
    auto options = central3(1);
    options.combiner.compare.mode = row.mode;
    topo::Figure3Topology topo(options);
    adversary::ModifyBehavior modify(
        adversary::match_all(), adversary::ModifyBehavior::corrupt_payload());
    topo.combiner().replicas[0]->set_interceptor(&modify);
    const auto report = run_ping(topo);
    // Filtering check: no corrupted packet must reach a host.
    const bool filtered = topo.h1().stats().rx_bad_checksum == 0 &&
                          topo.h2().stats().rx_bad_checksum == 0;
    table.add_row({row.name, stats::TablePrinter::num(report.avg_ms, 3),
                   std::to_string(report.received),
                   filtered ? "yes" : "NO (see DESIGN.md caveat)"});
  }
  table.print();
  std::printf(
      "Note: header-only/hashed trade integrity for compare CPU; a payload\n"
      "corruption that keeps headers intact slips past header-only compare\n"
      "only if it also wins the exemplar race (first copy).\n");
}

void ablation_hold_timeout() {
  std::printf("\n--- A2: hold-timeout sweep (minority residue lifetime) ---\n");
  stats::TablePrinter table({"hold_timeout ms", "replies/30", "evicted",
                             "max cache entries"});
  for (int ms : {2, 5, 20, 100, 500}) {
    auto options = central3(1);
    options.combiner.compare.hold_timeout = sim::Duration::milliseconds(ms);
    topo::Figure3Topology topo(options);
    // One dropper replica: every packet waits for its (absent) third copy.
    adversary::DropBehavior drop(adversary::match_all());
    topo.combiner().replicas[0]->set_interceptor(&drop);
    const auto report = run_ping(topo);
    topo.simulator().run_for(sim::Duration::seconds(1));
    std::uint64_t evicted = 0, max_entries = 0;
    for (const auto* edge : topo.combiner().edges) {
      if (const auto* s = topo.combiner().compare->stats_for(edge->name())) {
        evicted += s->evicted_timeout;
        max_entries = std::max<std::uint64_t>(max_entries,
                                              s->max_cache_entries);
      }
    }
    table.add_row({std::to_string(ms), std::to_string(report.received),
                   std::to_string(evicted), std::to_string(max_entries)});
  }
  table.print();
  std::printf(
      "Longer holds keep released-but-incomplete entries resident (memory)\n"
      "without helping correctness; too-short holds would evict honest\n"
      "packets on slow replicas. Availability is flat across the sweep.\n");
}

void ablation_cache_capacity() {
  std::printf("\n--- A3: cache capacity vs small-packet jitter (§V-B) ---\n");
  stats::TablePrinter table(
      {"cache capacity", "jitter ms (64B)", "cleanup passes"});
  for (std::size_t capacity : {128u, 512u, 2048u, 8192u}) {
    auto options = central3(1);
    options.combiner.compare.cache_capacity = capacity;
    // Keep entries resident long enough that capacity, not the timeout,
    // is the binding constraint — the cleanup-pass regime of §V-B.
    options.combiner.compare.hold_timeout = sim::Duration::milliseconds(200);
    topo::Figure3Topology topo(options);
    host::UdpSenderConfig config;
    config.dst_mac = topo.h2().mac();
    config.dst_ip = topo.h2().ip();
    config.rate = DataRate::megabits_per_sec(30);
    config.payload_bytes = 64;
    host::UdpSender sender(topo.h1(), config);
    host::UdpSink sink(topo.h2(), config.dst_port);
    sender.start();
    topo.simulator().run_for(sim::Duration::milliseconds(100));
    sink.reset();
    topo.simulator().run_for(sim::Duration::milliseconds(400));
    sender.stop();
    std::uint64_t passes = 0;
    for (const auto* edge : topo.combiner().edges) {
      if (const auto* s = topo.combiner().compare->stats_for(edge->name()))
        passes += s->cleanup_passes;
    }
    table.add_row({std::to_string(capacity),
                   stats::TablePrinter::num(sink.report().jitter_ms, 4),
                   std::to_string(passes)});
  }
  table.print();
  std::printf(
      "Small caches clean up constantly; each pass stalls the compare CPU\n"
      "and the stall shows up as jitter — the paper's Fig. 8 explanation.\n");
}

void ablation_dos_blocking() {
  std::printf("\n--- A4: DoS block advice on/off ---\n");
  stats::TablePrinter table({"block advice", "replies/10", "flood emitted",
                             "alarms"});
  for (bool enable : {false, true}) {
    auto options = central3(1);
    if (!enable) {
      // Disable both monitors: the flood is never blocked.
      options.combiner.compare.rate_limit_packets = 1ULL << 40;
      options.combiner.compare.garbage_limit_packets = 1ULL << 40;
    }
    topo::Figure3Topology topo(options);
    adversary::DosFlooder::Config flood_config;
    flood_config.out_port = topo.combiner().replica_edge_port[0][1];
    flood_config.packets_per_sec = 200'000;
    flood_config.packet_bytes = 200;
    flood_config.dst_mac = topo.h2().mac();
    flood_config.src_mac = topo.h1().mac();
    adversary::DosFlooder flooder(*topo.combiner().replicas[0], flood_config);
    flooder.start();
    const auto report =
        run_ping(topo, 10, sim::Duration::milliseconds(50));
    flooder.stop();
    table.add_row({enable ? "on" : "off", std::to_string(report.received),
                   std::to_string(flooder.emitted()),
                   std::to_string(topo.combiner().compare->alarms().size())});
  }
  table.print();
  std::printf(
      "Without the §IV case-2 advice the flood keeps the compare CPU\n"
      "saturated and victim traffic starves; with it, the port is cut and\n"
      "service recovers.\n");
}

void ablation_detection_mode() {
  std::printf("\n--- A5: detection (k=2, first-copy) vs prevention (k=3) ---\n");
  stats::TablePrinter table({"design", "replies/30", "RTT ms",
                             "corrupted reached host", "mismatch alarms"});
  for (bool detect : {true, false}) {
    auto options = central3(1);
    if (detect) {
      options.combiner.k = 2;
      options.combiner.compare.policy = core::ReleasePolicy::kFirstCopy;
    }
    topo::Figure3Topology topo(options);
    adversary::ModifyBehavior modify(
        adversary::match_all(), adversary::ModifyBehavior::corrupt_payload());
    topo.combiner().replicas[0]->set_interceptor(&modify);
    const auto report = run_ping(topo);
    topo.simulator().run_for(sim::Duration::milliseconds(200));
    std::uint64_t mismatches = 0;
    for (const auto* edge : topo.combiner().edges) {
      if (const auto* s = topo.combiner().compare->stats_for(edge->name()))
        mismatches += s->mismatch_detected;
    }
    const auto corrupted = topo.h1().stats().rx_bad_checksum +
                           topo.h2().stats().rx_bad_checksum;
    table.add_row({detect ? "detect (k=2)" : "prevent (k=3)",
                   std::to_string(report.received),
                   stats::TablePrinter::num(report.avg_ms, 3),
                   std::to_string(corrupted), std::to_string(mismatches)});
  }
  table.print();
  std::printf(
      "Exactly the paper's §III claim: two replicas suffice to *detect*\n"
      "misbehaviour (mismatch alarms fire, but tampered packets reach the\n"
      "host); three are needed to *prevent* it.\n");
}

void ablation_sampling() {
  std::printf("\n--- A6: sampling rate vs compare load & detection (§IX) ---\n");
  stats::TablePrinter table({"sample rate", "replies/30", "compare msgs",
                             "mismatch alarms"});
  for (double rate : {0.0, 0.01, 0.1, 0.5, 1.0}) {
    sim::Simulator sim;
    device::Network net(sim);
    auto& h1 = net.add_node<host::Host>("h1", net::MacAddress::from_id(1),
                                        net::Ipv4Address::from_id(1));
    auto& h2 = net.add_node<host::Host>("h2", net::MacAddress::from_id(2),
                                        net::Ipv4Address::from_id(2));
    core::SamplingCombinerOptions options;
    options.sample_rate = rate;
    auto inst = core::build_sampling_combiner(
        net, options,
        {core::PortAttachment{.neighbor = &h1, .link = {}, .local_macs = {h1.mac()}},
         core::PortAttachment{.neighbor = &h2, .link = {}, .local_macs = {h2.mac()}}},
        "sampling");
    inst.install_replica_route(h1.mac(), 0);
    inst.install_replica_route(h2.mac(), 1);
    adversary::ModifyBehavior modify(
        adversary::match_all(), adversary::ModifyBehavior::corrupt_payload());
    inst.replicas[1]->set_interceptor(&modify);  // corrupting secondary

    host::PingConfig config;
    config.dst_mac = h2.mac();
    config.dst_ip = h2.ip();
    config.count = 30;
    config.interval = sim::Duration::milliseconds(3);
    host::IcmpPinger pinger(h1, config);
    pinger.start();
    while (!pinger.finished() && sim.now().sec() < 3.0)
      sim.run_for(sim::Duration::milliseconds(10));
    sim.run_for(sim::Duration::milliseconds(200));
    const auto report = pinger.report();

    std::uint64_t mismatches = 0;
    for (const auto* edge : inst.edges) {
      if (const auto* s = inst.compare->stats_for(edge->name()))
        mismatches += s->mismatch_detected;
    }
    table.add_row({stats::TablePrinter::num(rate, 2),
                   std::to_string(report.received),
                   std::to_string(inst.compare_controller->stats()
                                      .packet_ins_received),
                   std::to_string(mismatches)});
  }
  table.print();
  std::printf(
      "Sampling trades compare CPU for detection coverage: availability is\n"
      "unaffected (the primary path never waits), and even low rates catch\n"
      "a persistent corrupter quickly.\n");
}

void ablation_inband() {
  std::printf("\n--- A7: compare placement — out-of-band vs inband (§IX) ---\n");
  stats::TablePrinter table({"architecture", "RTT ms", "replies/30"});
  {
    topo::Figure3Topology topo(central3(1));
    const auto report = run_ping(topo);
    table.add_row({"out-of-band (controller, Central3)",
                   stats::TablePrinter::num(report.avg_ms, 3),
                   std::to_string(report.received)});
  }
  {
    topo::InbandCombinerTopology topo(topo::InbandOptions{});
    host::PingConfig config;
    config.dst_mac = topo.h2().mac();
    config.dst_ip = topo.h2().ip();
    config.count = 30;
    config.interval = sim::Duration::milliseconds(3);
    host::IcmpPinger pinger(topo.h1(), config);
    pinger.start();
    while (!pinger.finished() && topo.simulator().now().sec() < 3.0)
      topo.simulator().run_for(sim::Duration::milliseconds(10));
    const auto report = pinger.report();
    table.add_row({"inband (middlebox per direction)",
                   stats::TablePrinter::num(report.avg_ms, 3),
                   std::to_string(report.received)});
  }
  table.print();
  std::printf(
      "The middlebox saves the controller round trip per direction; both\n"
      "placements provide the same prevention guarantee.\n");
}

}  // namespace

int main() {
  bench::print_header("Ablations",
                      "Design-choice sweeps for the compare element.");
  bench::ObsSession obs_session;
  ablation_modes();
  ablation_hold_timeout();
  ablation_cache_capacity();
  ablation_dos_blocking();
  ablation_detection_mode();
  ablation_sampling();
  ablation_inband();
  obs_session.dump_metrics("ablations");
  return 0;
}
