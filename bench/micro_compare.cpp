// Microbenchmarks (google-benchmark): the compare datapath cost across
// modes, k and packet sizes; flow-table lookup; packet parse/checksum.
// These quantify the per-packet budget the trusted components need —
// the feasibility argument of §III ("trusted but simple components").
#include <benchmark/benchmark.h>

#include <vector>

#include "net/checksum.h"
#include "net/headers.h"
#include "netco/compare_core.h"
#include "openflow/flow_table.h"
#include "openflow/match.h"

namespace {

using namespace netco;

net::Packet test_packet(std::uint32_t n, std::size_t payload_bytes) {
  std::vector<std::byte> payload(payload_bytes, std::byte{0x42});
  return net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(2),
                          .src = net::MacAddress::from_id(1)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2),
                      .identification = static_cast<std::uint16_t>(n)},
      net::UdpHeader{.src_port = static_cast<std::uint16_t>(n >> 16),
                     .dst_port = 5001},
      payload);
}

/// Full compare cycle: k copies in, one release, entry retired.
void BM_CompareIngestCycle(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto mode = static_cast<core::CompareMode>(state.range(1));
  const auto payload = static_cast<std::size_t>(state.range(2));

  core::CompareConfig config{.k = k};
  config.mode = mode;
  config.cache_capacity = 1 << 20;
  config.per_replica_quota = 1 << 20;
  config.rate_limit_packets = 1ULL << 40;
  config.garbage_limit_packets = 1ULL << 40;
  core::CompareCore core(config);

  std::uint32_t n = 0;
  const auto now = sim::TimePoint::origin();
  for (auto _ : state) {
    state.PauseTiming();
    const auto packet = test_packet(n++, payload);
    state.ResumeTiming();
    for (int r = 0; r < k; ++r) {
      benchmark::DoNotOptimize(core.ingest(r, packet, now));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_CompareIngestCycle)
    ->ArgsProduct({{3, 5, 7},
                   {static_cast<long>(core::CompareMode::kFullPacket),
                    static_cast<long>(core::CompareMode::kHashed)},
                   {64, 1470}})
    ->ArgNames({"k", "mode", "payload"});

void BM_CompareSweepEmpty(benchmark::State& state) {
  core::CompareCore core(core::CompareConfig{.k = 3});
  const auto now = sim::TimePoint::origin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.sweep(now));
  }
}
BENCHMARK(BM_CompareSweepEmpty);

void BM_FlowTableLookup(benchmark::State& state) {
  const auto rules = static_cast<std::uint32_t>(state.range(0));
  openflow::FlowTable table;
  for (std::uint32_t i = 0; i < rules; ++i) {
    openflow::FlowSpec spec;
    spec.match.with_dl_dst(net::MacAddress::from_id(i));
    spec.actions = {openflow::OutputAction::to(1)};
    table.add(spec, {});
  }
  // Worst case: the key matches no rule, so every entry is scanned.
  std::vector<std::byte> payload(64, std::byte{0});
  const auto packet = net::build_udp(
      net::EthernetHeader{.dst = net::MacAddress::from_id(0xFFFFFF),
                          .src = net::MacAddress::from_id(1)},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(1),
                      .dst = net::Ipv4Address::from_id(2)},
      net::UdpHeader{.src_port = 1, .dst_port = 2}, payload);
  const auto parsed = net::parse_packet(packet);
  const auto key = openflow::Match::exact_from(*parsed, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.peek(key, {}));
  }
}
BENCHMARK(BM_FlowTableLookup)->Arg(8)->Arg(64)->Arg(512)->ArgNames({"rules"});

void BM_PacketParse(benchmark::State& state) {
  const auto packet = test_packet(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_packet(packet));
  }
}
BENCHMARK(BM_PacketParse)->Arg(64)->Arg(1470)->ArgNames({"payload"});

void BM_InternetChecksum(benchmark::State& state) {
  const auto packet = test_packet(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(packet.bytes()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packet.size()));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1470)->ArgNames({"payload"});

void BM_ContentHash(benchmark::State& state) {
  const auto packet = test_packet(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(packet.content_hash());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packet.size()));
}
BENCHMARK(BM_ContentHash)->Arg(64)->Arg(1470)->ArgNames({"payload"});

}  // namespace

BENCHMARK_MAIN();
