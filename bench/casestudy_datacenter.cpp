// §VI case study: the datacenter routing attack in a k=4 fat-tree —
// baseline, attacked, and NetCo-protected, with the paper's exact counts.
#include <cstdio>

#include "bench_common.h"
#include "scenario/case_study.h"

int main() {
  using namespace netco;
  using namespace netco::scenario;
  bench::print_header(
      "Case study §VI (datacenter routing attack)",
      "Malicious aggregation switch mirrors fw1-bound traffic to a core "
      "switch and drops vm1-bound replies; 10 ICMP echo cycles vm1 → fw1.");
  bench::ObsSession obs_session;

  stats::TablePrinter table({"scenario", "sent", "req@fw1 (paper)",
                             "replies@vm1 (paper)", "mirrored@core", "stray",
                             "compare: in/rel/evict"});
  struct Expect {
    CaseStudyMode mode;
    int paper_fw1;
    int paper_vm1;
  };
  const Expect rows[] = {
      {CaseStudyMode::kBaseline, 10, 10},
      {CaseStudyMode::kAttacked, 20, 0},
      {CaseStudyMode::kProtected, 10, 10},
  };
  for (const auto& row : rows) {
    const auto r = run_case_study(row.mode, 10);
    char fw1[32], vm1[32], compare[48];
    std::snprintf(fw1, sizeof fw1, "%llu (%d)",
                  static_cast<unsigned long long>(r.requests_at_fw1),
                  row.paper_fw1);
    std::snprintf(vm1, sizeof vm1, "%d (%d)", r.replies_received_at_vm1,
                  row.paper_vm1);
    std::snprintf(compare, sizeof compare, "%llu/%llu/%llu",
                  static_cast<unsigned long long>(r.compare_ingested),
                  static_cast<unsigned long long>(r.compare_released),
                  static_cast<unsigned long long>(r.compare_evicted_minority));
    table.add_row({to_string(row.mode), std::to_string(r.requests_sent), fw1,
                   vm1, std::to_string(r.mirrored_at_core),
                   std::to_string(r.stray_at_hosts), compare});
  }
  table.print();
  std::printf(
      "\nPaper narrative reproduced: the attack doubles requests at fw1 and\n"
      "silences vm1; inside NetCo the mirrored copies arrive at the compare\n"
      "but never leave it, and 2-of-3 reply copies still win the vote.\n");
  obs_session.dump_metrics("casestudy");
  return 0;
}
