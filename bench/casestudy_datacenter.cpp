// §VI case study: the datacenter routing attack in a k=4 fat-tree —
// baseline, attacked, and NetCo-protected, with the paper's exact counts.
//
// Part two scales the construction to what the paper actually pitches —
// a *fleet* of protected circuits — by running ≥64 independent combiner
// circuits on a sim::ShardedSimulator with cross-shard beacon links, and
// sweeping the shard count. Checks, all load-bearing:
//   * merged stream/egress hashes identical for shards ∈ {1, 2, 4};
//   * a same-seed double run at shards=4 is bit-deterministic;
//   * a 1-circuit sharded run reproduces run_soak() for each BENCH_soak
//     configuration (so shards=1 preserves today's recorded hashes);
//   * every circuit's invariant checkers (duplicate egress armed via the
//     sampled fast path, quorum checks) stay green across shard
//     boundaries.
// The shard sweep's aggregate wall-pps lands in BENCH_soak.json under
// "datacenter" (appended after soak_netco's summary; re-runs replace the
// section). Speedup is reported against hardware_threads — on a 1-core
// host the sweep measures barrier overhead, not parallelism.
//
// Env knobs:
//   NETCO_DC_CIRCUITS=n  — fleet size (default 64)
//   NETCO_DC_PACKETS=n   — datagrams per circuit (default 4000)
//   NETCO_BENCH_QUICK=1  — small CI-sized fleet runs (500 packets)
//   NETCO_SOAK_OUT=path  — summary path (default BENCH_soak.json)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_common.h"
#include "scenario/case_study.h"
#include "scenario/sharded_soak.h"

namespace {

using namespace netco;

using bench::env_u64;
using bench::hash_hex;

/// The BENCH_soak baseline circuits (soak_netco.cpp keeps the canonical
/// copies of these configs and their recorded stream hashes).
scenario::SoakOptions baseline_config(int k, core::ReleasePolicy policy,
                                      std::uint64_t rate_mbps,
                                      std::uint64_t packets) {
  scenario::SoakOptions options;
  options.k = k;
  options.policy = policy;
  options.seed = 0xDECAFBAD ^ static_cast<std::uint64_t>(k);
  options.packets = packets;
  options.rate = DataRate::megabits_per_sec(rate_mbps);
  return options;
}

bool run_case_study_table() {
  using namespace netco::scenario;
  bench::print_header(
      "Case study §VI (datacenter routing attack)",
      "Malicious aggregation switch mirrors fw1-bound traffic to a core "
      "switch and drops vm1-bound replies; 10 ICMP echo cycles vm1 → fw1.");

  stats::TablePrinter table({"scenario", "sent", "req@fw1 (paper)",
                             "replies@vm1 (paper)", "mirrored@core", "stray",
                             "compare: in/rel/evict"});
  struct Expect {
    CaseStudyMode mode;
    int paper_fw1;
    int paper_vm1;
  };
  const Expect rows[] = {
      {CaseStudyMode::kBaseline, 10, 10},
      {CaseStudyMode::kAttacked, 20, 0},
      {CaseStudyMode::kProtected, 10, 10},
  };
  bool ok = true;
  for (const auto& row : rows) {
    const auto r = run_case_study(row.mode, 10);
    ok = ok && r.requests_at_fw1 == static_cast<std::uint64_t>(row.paper_fw1) &&
         r.replies_received_at_vm1 == row.paper_vm1;
    char fw1[32], vm1[32], compare[48];
    std::snprintf(fw1, sizeof fw1, "%llu (%d)",
                  static_cast<unsigned long long>(r.requests_at_fw1),
                  row.paper_fw1);
    std::snprintf(vm1, sizeof vm1, "%d (%d)", r.replies_received_at_vm1,
                  row.paper_vm1);
    std::snprintf(compare, sizeof compare, "%llu/%llu/%llu",
                  static_cast<unsigned long long>(r.compare_ingested),
                  static_cast<unsigned long long>(r.compare_released),
                  static_cast<unsigned long long>(r.compare_evicted_minority));
    table.add_row({to_string(row.mode), std::to_string(r.requests_sent), fw1,
                   vm1, std::to_string(r.mirrored_at_core),
                   std::to_string(r.stray_at_hosts), compare});
  }
  table.print();
  std::printf(
      "\nPaper narrative reproduced: the attack doubles requests at fw1 and\n"
      "silences vm1; inside NetCo the mirrored copies arrive at the compare\n"
      "but never leave it, and 2-of-3 reply copies still win the vote.\n");
  return ok;
}

}  // namespace

int main() {
  bench::ObsSession obs_session;
  bool all_ok = run_case_study_table();
  obs_session.dump_metrics("casestudy");

  // --- datacenter-scale fleet: ≥64 circuits, shard-count sweep ----------
  const bool quick = std::getenv("NETCO_BENCH_QUICK") != nullptr;
  const std::uint64_t circuits = env_u64("NETCO_DC_CIRCUITS", 64);
  const std::uint64_t packets =
      env_u64("NETCO_DC_PACKETS", quick ? 500 : 4000);
  const unsigned hardware_threads = std::thread::hardware_concurrency();

  std::printf(
      "\n=== Datacenter fleet — %llu combiner circuits, sharded DES ===\n"
      "%llu datagrams per circuit, cross-shard beacons on, %u hardware "
      "threads.\n\n",
      static_cast<unsigned long long>(circuits),
      static_cast<unsigned long long>(packets), hardware_threads);

  // Per-circuit config: k=3 majority with the sampled fast path, so the
  // duplicate-egress invariant is armed in every circuit of the fleet
  // (quorum checks are armed regardless).
  scenario::ShardedSoakOptions fleet;
  fleet.base = baseline_config(3, core::ReleasePolicy::kMajority, 16, packets);
  fleet.base.sampling.enabled = true;
  fleet.circuits = circuits;
  fleet.cross_shard_beacons = true;

  struct SweepPoint {
    int shards;
    scenario::ShardedSoakResult result;
  };
  SweepPoint sweep[] = {{1, {}}, {2, {}}, {4, {}}};
  for (SweepPoint& point : sweep) {
    fleet.shards = point.shards;
    point.result = scenario::run_sharded_soak(fleet);
    const scenario::ShardedSoakResult& r = point.result;
    std::printf(
        "shards=%d  wall=%.2fs  wall-pps=%.0f  rounds=%llu  "
        "cross-shard msgs=%llu  beacons=%llu  merged hash=%s  %s\n",
        point.shards, r.wall_seconds, r.wall_pps,
        static_cast<unsigned long long>(r.rounds),
        static_cast<unsigned long long>(r.cross_shard_messages),
        static_cast<unsigned long long>(r.beacons_received),
        hash_hex(r.merged_stream_hash).c_str(), r.ok() ? "OK" : "FAIL");
    all_ok = all_ok && r.ok();
  }

  // Hash invariance across the sweep, and a same-seed double run at the
  // widest point.
  const bool hash_invariant =
      sweep[0].result.merged_stream_hash == sweep[1].result.merged_stream_hash &&
      sweep[0].result.merged_stream_hash == sweep[2].result.merged_stream_hash &&
      sweep[0].result.merged_egress_hash == sweep[1].result.merged_egress_hash &&
      sweep[0].result.merged_egress_hash == sweep[2].result.merged_egress_hash;
  fleet.shards = 4;
  const scenario::ShardedSoakResult rerun = scenario::run_sharded_soak(fleet);
  const bool deterministic =
      rerun.merged_stream_hash == sweep[2].result.merged_stream_hash &&
      rerun.merged_egress_hash == sweep[2].result.merged_egress_hash &&
      rerun.metrics_json == sweep[2].result.metrics_json;
  const double speedup = sweep[0].result.wall_pps > 0.0
                             ? sweep[2].result.wall_pps / sweep[0].result.wall_pps
                             : 0.0;
  std::printf(
      "\nmerged hashes shard-count invariant: %s; shards=4 double run "
      "deterministic: %s\n4-shard speedup over 1 shard: %.2fx wall-pps "
      "(%u hardware threads available)\n",
      hash_invariant ? "yes" : "NO", deterministic ? "yes" : "NO", speedup,
      hardware_threads);
  all_ok = all_ok && hash_invariant && deterministic;

  // Baseline equivalence: a 1-circuit sharded run must reproduce
  // run_soak() bit-for-bit for each BENCH_soak configuration — the
  // property that keeps soak_netco's recorded stream hashes valid at
  // shards=1.
  struct Baseline {
    const char* name;
    int k;
    core::ReleasePolicy policy;
    std::uint64_t rate_mbps;
  };
  const Baseline baselines[] = {
      {"k2-firstcopy", 2, core::ReleasePolicy::kFirstCopy, 24},
      {"k3-majority", 3, core::ReleasePolicy::kMajority, 16},
      {"k5-majority", 5, core::ReleasePolicy::kMajority, 10},
  };
  std::printf("\nbaseline equivalence (1-circuit fleet vs run_soak):\n");
  std::string baseline_json = "[";
  for (std::size_t i = 0; i < 3; ++i) {
    const Baseline& b = baselines[i];
    const scenario::SoakOptions options =
        baseline_config(b.k, b.policy, b.rate_mbps, packets);
    const scenario::SoakResult solo = scenario::run_soak(options);
    scenario::ShardedSoakOptions one;
    one.base = options;
    one.circuits = 1;
    one.shards = 1;
    const scenario::ShardedSoakResult fleet_one =
        scenario::run_sharded_soak(one);
    const bool match = fleet_one.merged_stream_hash == solo.stream_hash &&
                       fleet_one.merged_egress_hash == solo.egress_set_hash &&
                       fleet_one.metrics_json == solo.metrics_json;
    all_ok = all_ok && match;
    std::printf("  %-14s solo=%s sharded=%s  %s\n", b.name,
                hash_hex(solo.stream_hash).c_str(),
                hash_hex(fleet_one.merged_stream_hash).c_str(),
                match ? "match" : "MISMATCH");
    baseline_json += std::string(i == 0 ? "" : ",") + "{\"name\":\"" + b.name +
                     "\",\"stream_hash\":\"" + hash_hex(solo.stream_hash) +
                     "\",\"shards1_match\":" + (match ? "true" : "false") +
                     "}";
  }
  baseline_json += "]";

  std::string sweep_json = "[";
  for (std::size_t i = 0; i < 3; ++i) {
    const scenario::ShardedSoakResult& r = sweep[i].result;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"shards\":%d,\"wall_seconds\":%.3f,\"wall_pps\":%.1f,"
        "\"rounds\":%llu,\"cross_shard_messages\":%llu,"
        "\"beacons_received\":%llu,\"datagrams_sent\":%llu,"
        "\"duplicate_egress\":%llu,\"merged_stream_hash\":\"%s\"}",
        i == 0 ? "" : ",", sweep[i].shards, r.wall_seconds, r.wall_pps,
        static_cast<unsigned long long>(r.rounds),
        static_cast<unsigned long long>(r.cross_shard_messages),
        static_cast<unsigned long long>(r.beacons_received),
        static_cast<unsigned long long>(r.datagrams_sent),
        static_cast<unsigned long long>(r.duplicate_egress),
        hash_hex(r.merged_stream_hash).c_str());
    sweep_json += buf;
  }
  sweep_json += "]";

  char head[256];
  std::snprintf(head, sizeof head,
                "{\"circuits\":%llu,\"packets_per_circuit\":%llu,"
                "\"hardware_threads\":%u,\"speedup_4shard_vs_1\":%.3f,"
                "\"hash_invariant\":%s,\"deterministic_at_4\":%s,",
                static_cast<unsigned long long>(circuits),
                static_cast<unsigned long long>(packets), hardware_threads,
                speedup, hash_invariant ? "true" : "false",
                deterministic ? "true" : "false");
  const std::string section = std::string(head) + "\"sweep\":" + sweep_json +
                              ",\"baseline\":" + baseline_json +
                              ",\"verdict\":\"" + (all_ok ? "pass" : "fail") +
                              "\"}";

  const char* out_path = std::getenv("NETCO_SOAK_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_soak.json";
  netco::bench::merge_bench_section(out_path, "datacenter", section);
  std::printf("\nDatacenter sweep recorded in %s\n", out_path);

  std::printf("\nDatacenter fleet verdict: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
