// Figure 8: UDP interarrival jitter for varying datagram sizes, all six
// scenarios, at a fixed offered bit rate. The paper's finding: bigger
// packets → lower jitter. At a fixed bit rate, small datagrams mean many
// more packets per second against per-packet service costs — deeper
// queues at every hop, a faster-filling compare cache, and more frequent
// cleanup stalls.
#include <cstdio>

#include "bench_common.h"
#include "stats/summary.h"

int main() {
  using namespace netco;
  using namespace netco::scenario;
  const auto scale = bench::BenchScale::resolve();
  bench::print_header(
      "Figure 8 (jitter vs datagram size)",
      "UDP at a fixed 10 Mb/s offered rate; RFC 3550 smoothed jitter at "
      "the sink. Cells: jitter in ms.");
  bench::ObsSession obs_session;

  const std::size_t sizes[] = {64, 128, 256, 512, 1024, 1470};
  std::vector<std::string> headers = {"scenario"};
  for (auto s : sizes) headers.push_back(std::to_string(s) + "B");
  stats::TablePrinter table(std::move(headers));

  for (auto kind : all_scenarios()) {
    std::vector<std::string> row = {to_string(kind)};
    for (std::size_t size : sizes) {
      std::vector<double> samples;
      for (int run = 0; run < scale.udp_jitter_ms_runs; ++run) {
        const auto result = measure_udp_at(
            kind, DataRate::megabits_per_sec(10), scale.udp_per_run,
            1 + static_cast<std::uint64_t>(run) * 101, size);
        samples.push_back(result.jitter_ms);
      }
      row.push_back(
          stats::TablePrinter::num(stats::summarize(samples).mean, 4));
      std::fflush(stdout);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nShape checks: jitter falls as datagrams grow; the combiner "
      "scenarios pay\nthe largest small-packet penalty (queueing at the "
      "compare plus cache churn).\n");
  obs_session.dump_metrics("fig8");
  return 0;
}
