// Hot-path microbench: packet fan-out copy cost, hash memoization, and
// scheduler churn in isolation, with the pre-change baseline *recorded in
// the same run* so BENCH_hotpath.json carries before/after numbers from
// one machine at one moment.
//
// Baselines reconstruct what the code paid before the zero-copy rework:
//   * fan-out: k deep payload copies + k full FNV-1a hashes per datagram
//     (what the hub + compare pipeline cost when Packet owned its vector);
//   * hash: a full FNV-1a pass per call (no memoization);
//   * scheduler: a std::function + shared_ptr<bool> cancellation flag per
//     event — the two heap allocations the old Simulator::schedule_at made;
//   * timer churn: the binary heap itself — schedule+cancel of short-
//     horizon flow timers against a standing population, which the
//     hierarchical timer wheel replaces with O(1) slot splices.
//
// Verdict (exit status): 0 iff the k=3 duplicate+hash fan-out AND the
// wheel's schedule+cancel churn both show at least a 2x reduction versus
// the baselines measured in the same run.
//
// Env knobs:
//   NETCO_BENCH_QUICK=1   — short CI-sized timing windows
//   NETCO_HOTPATH_OUT=path — summary path (default BENCH_hotpath.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "sim/timer_wheel.h"

namespace {

using namespace netco;
using Clock = std::chrono::steady_clock;

/// Prevents the optimizer from deleting a computed value.
std::uint64_t g_sink = 0;
inline void consume(std::uint64_t v) noexcept { g_sink ^= v; }

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body(batch)` in batches until `min_seconds` of wall time elapsed;
/// returns ns per item.
template <typename Body>
double time_per_item(double min_seconds, std::uint64_t batch, Body&& body) {
  // Warmup pass so first-touch allocation and cache effects settle.
  body(batch);
  std::uint64_t items = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    body(batch);
    items += batch;
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return elapsed * 1e9 / static_cast<double>(items);
}

net::Packet random_packet(Rng& rng, std::size_t bytes) {
  std::vector<std::byte> payload(bytes);
  for (auto& b : payload) {
    b = static_cast<std::byte>(rng.next_u64() & 0xFF);
  }
  return net::Packet(std::move(payload));
}

struct Comparison {
  double baseline_ns = 0.0;
  double optimized_ns = 0.0;
  [[nodiscard]] double speedup() const noexcept {
    return optimized_ns > 0.0 ? baseline_ns / optimized_ns : 0.0;
  }
};

/// k-fold duplicate+hash per datagram: the hub fan-out plus the compare's
/// per-copy key computation.
Comparison bench_fanout(double min_seconds, int k, std::size_t payload) {
  Rng rng(42);
  const net::Packet packet = random_packet(rng, payload);

  Comparison result;
  // Pre-change model: every copy is a deep payload copy, every copy is
  // hashed from scratch.
  result.baseline_ns = time_per_item(min_seconds, 2048, [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) {
        const auto view = packet.bytes();
        net::Packet copy(std::vector<std::byte>(view.begin(), view.end()));
        consume(fnv1a(copy.bytes()));
      }
    }
  });
  // Post-change path: copying is a refcount bump; content_hash() memoizes
  // in the shared buffer, so the k copies share one computation (already
  // done by the warm packet).
  result.optimized_ns = time_per_item(min_seconds, 2048, [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) {
        net::Packet copy = packet;  // COW
        consume(copy.content_hash());
      }
    }
  });
  return result;
}

/// Repeated content hashing of one (large) packet: trace emit + compare
/// key + sampling decision all ask for the same id.
Comparison bench_hash_memo(double min_seconds, std::size_t payload) {
  Rng rng(43);
  const net::Packet packet = random_packet(rng, payload);

  Comparison result;
  result.baseline_ns = time_per_item(min_seconds, 4096, [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      consume(fnv1a(packet.bytes()));  // pre-change: full pass every call
    }
  });
  result.optimized_ns = time_per_item(min_seconds, 4096, [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      consume(packet.content_hash());  // memoized
    }
  });
  return result;
}

/// Schedule + dispatch cost per event, with a packet-sized capture (the
/// link/switch/hub closures all carry one COW packet handle).
Comparison bench_scheduler(double min_seconds, std::size_t payload) {
  Rng rng(44);
  const net::Packet packet = random_packet(rng, payload);
  constexpr std::uint64_t kEventsPerBatch = 8192;

  Comparison result;
  // Pre-change model: the event record carried a std::function plus a
  // shared_ptr<bool> cancellation flag — two heap allocations per event.
  result.baseline_ns =
      time_per_item(min_seconds, kEventsPerBatch, [&](std::uint64_t n) {
        sim::Simulator simulator(1);
        for (std::uint64_t i = 0; i < n; ++i) {
          auto cancelled = std::make_shared<bool>(false);
          std::function<void()> fn = [p = packet, cancelled] {
            if (!*cancelled) consume(p.size());
          };
          simulator.schedule_after(sim::Duration::nanoseconds(1),
                                   std::move(fn));
        }
        simulator.run();
      });
  result.optimized_ns =
      time_per_item(min_seconds, kEventsPerBatch, [&](std::uint64_t n) {
        sim::Simulator simulator(1);
        for (std::uint64_t i = 0; i < n; ++i) {
          simulator.schedule_after(sim::Duration::nanoseconds(1),
                                   [p = packet] { consume(p.size()); });
        }
        simulator.run();
      });
  return result;
}

/// Schedule + cancel churn: timers that almost never fire (TCP retransmit,
/// compare unblock) exercise the tombstone path.
double bench_cancel(double min_seconds) {
  constexpr std::uint64_t kEventsPerBatch = 8192;
  return time_per_item(min_seconds, kEventsPerBatch, [&](std::uint64_t n) {
    sim::Simulator simulator(1);
    for (std::uint64_t i = 0; i < n; ++i) {
      sim::EventHandle handle = simulator.schedule_after(
          sim::Duration::microseconds(1), [] { consume(1); });
      handle.cancel();
    }
    simulator.run();
    consume(simulator.events_pending());
  });
}

/// The workload engine's dominant timer class: short-horizon schedule +
/// cancel (a pacing tick or RTO that is rescheduled before it fires)
/// against a standing population of outstanding timers. The heap pays an
/// O(log n) push plus a tombstone per churn event; the wheel pays two O(1)
/// slot splices and frees the record immediately. Both sides build the
/// same population, churn the same count, and drain to empty, so the
/// per-item figure includes every deferred cost (tombstone purges and
/// wheel anchor cascades alike).
Comparison bench_timer_wheel(double min_seconds) {
  constexpr std::uint64_t kChurnPerBatch = 32768;
  constexpr std::uint64_t kBackground = 32768;
  // Background deadlines spread over ~1 s; churn deadlines within ~1 ms.
  const auto background_us = [](std::uint64_t i) {
    return 50 + (i * 997) % 1'000'000;
  };

  Comparison result;
  result.baseline_ns =
      time_per_item(min_seconds, kChurnPerBatch, [&](std::uint64_t n) {
        sim::Simulator simulator(1);
        for (std::uint64_t i = 0; i < kBackground; ++i) {
          simulator.schedule_after(
              sim::Duration::microseconds(
                  static_cast<std::int64_t>(background_us(i))),
              [] { consume(2); });
        }
        for (std::uint64_t i = 0; i < n; ++i) {
          sim::EventHandle handle = simulator.schedule_after(
              sim::Duration::microseconds(
                  static_cast<std::int64_t>(1 + (i & 1023))),
              [] { consume(1); });
          handle.cancel();
        }
        simulator.run();
        consume(simulator.events_pending());
      });
  result.optimized_ns =
      time_per_item(min_seconds, kChurnPerBatch, [&](std::uint64_t n) {
        sim::Simulator simulator(1);
        sim::TimerWheel wheel(simulator,
                              {sim::Duration::microseconds(10)});
        for (std::uint64_t i = 0; i < kBackground; ++i) {
          wheel.schedule_after(
              sim::Duration::microseconds(
                  static_cast<std::int64_t>(background_us(i))),
              +[](void*, std::uint64_t arg) { consume(arg); }, nullptr, 2);
        }
        for (std::uint64_t i = 0; i < n; ++i) {
          const sim::TimerWheel::TimerId id = wheel.schedule_after(
              sim::Duration::microseconds(
                  static_cast<std::int64_t>(1 + (i & 1023))),
              +[](void*, std::uint64_t arg) { consume(arg); }, nullptr, 1);
          wheel.cancel(id);
        }
        simulator.run();
        consume(wheel.fired());
      });
  return result;
}

}  // namespace

int main() {
  const bool quick = std::getenv("NETCO_BENCH_QUICK") != nullptr;
  const double min_seconds = quick ? 0.02 : 0.25;
  constexpr int kFanout = 3;
  constexpr std::size_t kPayload = 1470;

  std::printf("\n=== NetCo hot-path microbench (payload=%zuB, k=%d) ===\n",
              kPayload, kFanout);

  const Comparison fanout = bench_fanout(min_seconds, kFanout, kPayload);
  const Comparison hash = bench_hash_memo(min_seconds, kPayload);
  const Comparison sched = bench_scheduler(min_seconds, kPayload);
  const double cancel_ns = bench_cancel(min_seconds);
  const Comparison wheel = bench_timer_wheel(min_seconds);

  std::printf("fan-out (k=%d dup+hash): deep-copy %.1f ns/pkt -> COW %.1f "
              "ns/pkt  (%.1fx)\n",
              kFanout, fanout.baseline_ns, fanout.optimized_ns,
              fanout.speedup());
  std::printf("content hash:           fnv1a    %.1f ns/call -> memoized "
              "%.1f ns/call (%.1fx)\n",
              hash.baseline_ns, hash.optimized_ns, hash.speedup());
  std::printf("scheduler event:        legacy   %.1f ns/ev  -> fast path "
              "%.1f ns/ev  (%.1fx)\n",
              sched.baseline_ns, sched.optimized_ns, sched.speedup());
  std::printf("schedule+cancel:        %.1f ns/ev (tombstone purge)\n",
              cancel_ns);
  std::printf("timer churn (32k bg):   heap     %.1f ns/ev  -> wheel     "
              "%.1f ns/ev  (%.1fx)\n",
              wheel.baseline_ns, wheel.optimized_ns, wheel.speedup());

  char json[1280];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"hotpath\",\"quick\":%s,\"payload_bytes\":%zu,"
      "\"fanout_k%d\":{\"baseline_deep_ns_per_packet\":%.2f,"
      "\"cow_ns_per_packet\":%.2f,\"speedup\":%.2f},"
      "\"content_hash\":{\"baseline_fnv_ns_per_call\":%.2f,"
      "\"memoized_ns_per_call\":%.2f,\"speedup\":%.2f},"
      "\"scheduler\":{\"legacy_model_ns_per_event\":%.2f,"
      "\"fastpath_ns_per_event\":%.2f,\"speedup\":%.2f,"
      "\"schedule_cancel_ns_per_event\":%.2f},"
      "\"timer_wheel\":{\"heap_ns_per_event\":%.2f,"
      "\"wheel_ns_per_event\":%.2f,\"speedup\":%.2f}}",
      quick ? "true" : "false", kPayload, kFanout, fanout.baseline_ns,
      fanout.optimized_ns, fanout.speedup(), hash.baseline_ns,
      hash.optimized_ns, hash.speedup(), sched.baseline_ns,
      sched.optimized_ns, sched.speedup(), cancel_ns, wheel.baseline_ns,
      wheel.optimized_ns, wheel.speedup());

  const char* out_path = std::getenv("NETCO_HOTPATH_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_hotpath.json";
  }
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
    std::printf("\nSummary written to %s\n", out_path);
  } else {
    std::printf("\n%s\n", json);
  }

  // The acceptance bars: the k=3 duplicate+hash fan-out must be ≥ 2x
  // cheaper than the deep-copy baseline, and the timer wheel must clear a
  // ≥ 2x schedule+cancel throughput bar over the binary heap — both
  // measured in this run.
  const bool pass = fanout.speedup() >= 2.0 && wheel.speedup() >= 2.0;
  std::printf(
      "\nHot-path verdict: %s (fan-out %.1fx, timer wheel %.1fx, bar 2.0x "
      "each)\n",
      pass ? "PASS" : "FAIL", fanout.speedup(), wheel.speedup());
  return pass ? 0 : 1;
}
