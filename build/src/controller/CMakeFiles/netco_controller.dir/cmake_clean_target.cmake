file(REMOVE_RECURSE
  "libnetco_controller.a"
)
