file(REMOVE_RECURSE
  "CMakeFiles/netco_controller.dir/controller.cpp.o"
  "CMakeFiles/netco_controller.dir/controller.cpp.o.d"
  "CMakeFiles/netco_controller.dir/learning_switch.cpp.o"
  "CMakeFiles/netco_controller.dir/learning_switch.cpp.o.d"
  "CMakeFiles/netco_controller.dir/static_routing.cpp.o"
  "CMakeFiles/netco_controller.dir/static_routing.cpp.o.d"
  "libnetco_controller.a"
  "libnetco_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
