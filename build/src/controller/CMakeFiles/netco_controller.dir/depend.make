# Empty dependencies file for netco_controller.
# This may be replaced when dependencies are built.
