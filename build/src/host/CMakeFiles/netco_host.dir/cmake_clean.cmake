file(REMOVE_RECURSE
  "CMakeFiles/netco_host.dir/host.cpp.o"
  "CMakeFiles/netco_host.dir/host.cpp.o.d"
  "CMakeFiles/netco_host.dir/ping.cpp.o"
  "CMakeFiles/netco_host.dir/ping.cpp.o.d"
  "CMakeFiles/netco_host.dir/tcp.cpp.o"
  "CMakeFiles/netco_host.dir/tcp.cpp.o.d"
  "CMakeFiles/netco_host.dir/udp_app.cpp.o"
  "CMakeFiles/netco_host.dir/udp_app.cpp.o.d"
  "libnetco_host.a"
  "libnetco_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
