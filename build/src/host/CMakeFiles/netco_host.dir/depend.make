# Empty dependencies file for netco_host.
# This may be replaced when dependencies are built.
