file(REMOVE_RECURSE
  "libnetco_host.a"
)
