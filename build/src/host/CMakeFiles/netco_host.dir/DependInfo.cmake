
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/host.cpp" "src/host/CMakeFiles/netco_host.dir/host.cpp.o" "gcc" "src/host/CMakeFiles/netco_host.dir/host.cpp.o.d"
  "/root/repo/src/host/ping.cpp" "src/host/CMakeFiles/netco_host.dir/ping.cpp.o" "gcc" "src/host/CMakeFiles/netco_host.dir/ping.cpp.o.d"
  "/root/repo/src/host/tcp.cpp" "src/host/CMakeFiles/netco_host.dir/tcp.cpp.o" "gcc" "src/host/CMakeFiles/netco_host.dir/tcp.cpp.o.d"
  "/root/repo/src/host/udp_app.cpp" "src/host/CMakeFiles/netco_host.dir/udp_app.cpp.o" "gcc" "src/host/CMakeFiles/netco_host.dir/udp_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/netco_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/netco_link.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
