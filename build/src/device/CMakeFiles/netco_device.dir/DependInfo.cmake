
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/network.cpp" "src/device/CMakeFiles/netco_device.dir/network.cpp.o" "gcc" "src/device/CMakeFiles/netco_device.dir/network.cpp.o.d"
  "/root/repo/src/device/node.cpp" "src/device/CMakeFiles/netco_device.dir/node.cpp.o" "gcc" "src/device/CMakeFiles/netco_device.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/netco_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
