# Empty compiler generated dependencies file for netco_device.
# This may be replaced when dependencies are built.
