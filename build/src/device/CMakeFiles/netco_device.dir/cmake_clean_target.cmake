file(REMOVE_RECURSE
  "libnetco_device.a"
)
