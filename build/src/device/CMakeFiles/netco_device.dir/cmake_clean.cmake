file(REMOVE_RECURSE
  "CMakeFiles/netco_device.dir/network.cpp.o"
  "CMakeFiles/netco_device.dir/network.cpp.o.d"
  "CMakeFiles/netco_device.dir/node.cpp.o"
  "CMakeFiles/netco_device.dir/node.cpp.o.d"
  "libnetco_device.a"
  "libnetco_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
