file(REMOVE_RECURSE
  "CMakeFiles/netco_scenario.dir/case_study.cpp.o"
  "CMakeFiles/netco_scenario.dir/case_study.cpp.o.d"
  "CMakeFiles/netco_scenario.dir/scenarios.cpp.o"
  "CMakeFiles/netco_scenario.dir/scenarios.cpp.o.d"
  "libnetco_scenario.a"
  "libnetco_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
