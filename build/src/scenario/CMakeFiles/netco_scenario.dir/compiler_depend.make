# Empty compiler generated dependencies file for netco_scenario.
# This may be replaced when dependencies are built.
