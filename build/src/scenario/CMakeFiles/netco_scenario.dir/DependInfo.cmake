
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenario/case_study.cpp" "src/scenario/CMakeFiles/netco_scenario.dir/case_study.cpp.o" "gcc" "src/scenario/CMakeFiles/netco_scenario.dir/case_study.cpp.o.d"
  "/root/repo/src/scenario/scenarios.cpp" "src/scenario/CMakeFiles/netco_scenario.dir/scenarios.cpp.o" "gcc" "src/scenario/CMakeFiles/netco_scenario.dir/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/netco_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netco_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/netco_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/netco/CMakeFiles/netco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/iproute/CMakeFiles/netco_iproute.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/netco_host.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/netco_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/netco_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/netco_device.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/netco_link.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
