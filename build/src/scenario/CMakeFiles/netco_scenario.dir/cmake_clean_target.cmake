file(REMOVE_RECURSE
  "libnetco_scenario.a"
)
