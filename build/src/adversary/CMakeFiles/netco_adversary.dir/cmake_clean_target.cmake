file(REMOVE_RECURSE
  "libnetco_adversary.a"
)
