# Empty dependencies file for netco_adversary.
# This may be replaced when dependencies are built.
