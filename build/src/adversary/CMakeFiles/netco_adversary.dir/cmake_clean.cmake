file(REMOVE_RECURSE
  "CMakeFiles/netco_adversary.dir/behaviors.cpp.o"
  "CMakeFiles/netco_adversary.dir/behaviors.cpp.o.d"
  "libnetco_adversary.a"
  "libnetco_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
