file(REMOVE_RECURSE
  "CMakeFiles/netco_stats.dir/table.cpp.o"
  "CMakeFiles/netco_stats.dir/table.cpp.o.d"
  "libnetco_stats.a"
  "libnetco_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
