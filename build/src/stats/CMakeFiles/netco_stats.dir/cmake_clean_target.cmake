file(REMOVE_RECURSE
  "libnetco_stats.a"
)
