# Empty compiler generated dependencies file for netco_stats.
# This may be replaced when dependencies are built.
