file(REMOVE_RECURSE
  "libnetco_link.a"
)
