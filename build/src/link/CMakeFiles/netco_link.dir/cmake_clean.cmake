file(REMOVE_RECURSE
  "CMakeFiles/netco_link.dir/link.cpp.o"
  "CMakeFiles/netco_link.dir/link.cpp.o.d"
  "libnetco_link.a"
  "libnetco_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
