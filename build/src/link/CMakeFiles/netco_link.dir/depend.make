# Empty dependencies file for netco_link.
# This may be replaced when dependencies are built.
