file(REMOVE_RECURSE
  "CMakeFiles/netco_net.dir/address.cpp.o"
  "CMakeFiles/netco_net.dir/address.cpp.o.d"
  "CMakeFiles/netco_net.dir/checksum.cpp.o"
  "CMakeFiles/netco_net.dir/checksum.cpp.o.d"
  "CMakeFiles/netco_net.dir/headers.cpp.o"
  "CMakeFiles/netco_net.dir/headers.cpp.o.d"
  "CMakeFiles/netco_net.dir/packet.cpp.o"
  "CMakeFiles/netco_net.dir/packet.cpp.o.d"
  "libnetco_net.a"
  "libnetco_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
