# Empty dependencies file for netco_net.
# This may be replaced when dependencies are built.
