file(REMOVE_RECURSE
  "libnetco_net.a"
)
