file(REMOVE_RECURSE
  "libnetco_sim.a"
)
