# Empty dependencies file for netco_sim.
# This may be replaced when dependencies are built.
