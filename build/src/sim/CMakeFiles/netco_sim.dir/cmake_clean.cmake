file(REMOVE_RECURSE
  "CMakeFiles/netco_sim.dir/simulator.cpp.o"
  "CMakeFiles/netco_sim.dir/simulator.cpp.o.d"
  "libnetco_sim.a"
  "libnetco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
