file(REMOVE_RECURSE
  "libnetco_topo.a"
)
