
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/fattree.cpp" "src/topo/CMakeFiles/netco_topo.dir/fattree.cpp.o" "gcc" "src/topo/CMakeFiles/netco_topo.dir/fattree.cpp.o.d"
  "/root/repo/src/topo/figure3.cpp" "src/topo/CMakeFiles/netco_topo.dir/figure3.cpp.o" "gcc" "src/topo/CMakeFiles/netco_topo.dir/figure3.cpp.o.d"
  "/root/repo/src/topo/inband.cpp" "src/topo/CMakeFiles/netco_topo.dir/inband.cpp.o" "gcc" "src/topo/CMakeFiles/netco_topo.dir/inband.cpp.o.d"
  "/root/repo/src/topo/virtual_overlay.cpp" "src/topo/CMakeFiles/netco_topo.dir/virtual_overlay.cpp.o" "gcc" "src/topo/CMakeFiles/netco_topo.dir/virtual_overlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netco/CMakeFiles/netco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/netco_host.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/netco_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/iproute/CMakeFiles/netco_iproute.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/netco_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/netco_device.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/netco_link.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
