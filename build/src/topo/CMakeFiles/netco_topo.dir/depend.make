# Empty dependencies file for netco_topo.
# This may be replaced when dependencies are built.
