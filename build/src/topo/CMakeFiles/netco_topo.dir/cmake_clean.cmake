file(REMOVE_RECURSE
  "CMakeFiles/netco_topo.dir/fattree.cpp.o"
  "CMakeFiles/netco_topo.dir/fattree.cpp.o.d"
  "CMakeFiles/netco_topo.dir/figure3.cpp.o"
  "CMakeFiles/netco_topo.dir/figure3.cpp.o.d"
  "CMakeFiles/netco_topo.dir/inband.cpp.o"
  "CMakeFiles/netco_topo.dir/inband.cpp.o.d"
  "CMakeFiles/netco_topo.dir/virtual_overlay.cpp.o"
  "CMakeFiles/netco_topo.dir/virtual_overlay.cpp.o.d"
  "libnetco_topo.a"
  "libnetco_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
