# Empty compiler generated dependencies file for netco_iproute.
# This may be replaced when dependencies are built.
