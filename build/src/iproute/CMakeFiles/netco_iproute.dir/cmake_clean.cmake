file(REMOVE_RECURSE
  "CMakeFiles/netco_iproute.dir/legacy_router.cpp.o"
  "CMakeFiles/netco_iproute.dir/legacy_router.cpp.o.d"
  "libnetco_iproute.a"
  "libnetco_iproute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_iproute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
