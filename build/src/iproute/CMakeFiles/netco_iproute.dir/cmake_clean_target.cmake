file(REMOVE_RECURSE
  "libnetco_iproute.a"
)
