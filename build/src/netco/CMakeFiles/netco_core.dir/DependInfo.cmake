
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netco/combiner.cpp" "src/netco/CMakeFiles/netco_core.dir/combiner.cpp.o" "gcc" "src/netco/CMakeFiles/netco_core.dir/combiner.cpp.o.d"
  "/root/repo/src/netco/compare_core.cpp" "src/netco/CMakeFiles/netco_core.dir/compare_core.cpp.o" "gcc" "src/netco/CMakeFiles/netco_core.dir/compare_core.cpp.o.d"
  "/root/repo/src/netco/compare_service.cpp" "src/netco/CMakeFiles/netco_core.dir/compare_service.cpp.o" "gcc" "src/netco/CMakeFiles/netco_core.dir/compare_service.cpp.o.d"
  "/root/repo/src/netco/hub.cpp" "src/netco/CMakeFiles/netco_core.dir/hub.cpp.o" "gcc" "src/netco/CMakeFiles/netco_core.dir/hub.cpp.o.d"
  "/root/repo/src/netco/legacy_combiner.cpp" "src/netco/CMakeFiles/netco_core.dir/legacy_combiner.cpp.o" "gcc" "src/netco/CMakeFiles/netco_core.dir/legacy_combiner.cpp.o.d"
  "/root/repo/src/netco/middlebox.cpp" "src/netco/CMakeFiles/netco_core.dir/middlebox.cpp.o" "gcc" "src/netco/CMakeFiles/netco_core.dir/middlebox.cpp.o.d"
  "/root/repo/src/netco/sampling.cpp" "src/netco/CMakeFiles/netco_core.dir/sampling.cpp.o" "gcc" "src/netco/CMakeFiles/netco_core.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/openflow/CMakeFiles/netco_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/netco_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/netco_device.dir/DependInfo.cmake"
  "/root/repo/build/src/iproute/CMakeFiles/netco_iproute.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/netco_link.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
