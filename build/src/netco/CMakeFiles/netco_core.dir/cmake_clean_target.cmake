file(REMOVE_RECURSE
  "libnetco_core.a"
)
