file(REMOVE_RECURSE
  "CMakeFiles/netco_core.dir/combiner.cpp.o"
  "CMakeFiles/netco_core.dir/combiner.cpp.o.d"
  "CMakeFiles/netco_core.dir/compare_core.cpp.o"
  "CMakeFiles/netco_core.dir/compare_core.cpp.o.d"
  "CMakeFiles/netco_core.dir/compare_service.cpp.o"
  "CMakeFiles/netco_core.dir/compare_service.cpp.o.d"
  "CMakeFiles/netco_core.dir/hub.cpp.o"
  "CMakeFiles/netco_core.dir/hub.cpp.o.d"
  "CMakeFiles/netco_core.dir/legacy_combiner.cpp.o"
  "CMakeFiles/netco_core.dir/legacy_combiner.cpp.o.d"
  "CMakeFiles/netco_core.dir/middlebox.cpp.o"
  "CMakeFiles/netco_core.dir/middlebox.cpp.o.d"
  "CMakeFiles/netco_core.dir/sampling.cpp.o"
  "CMakeFiles/netco_core.dir/sampling.cpp.o.d"
  "libnetco_core.a"
  "libnetco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
