# Empty dependencies file for netco_core.
# This may be replaced when dependencies are built.
