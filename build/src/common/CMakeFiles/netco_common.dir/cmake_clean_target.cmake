file(REMOVE_RECURSE
  "libnetco_common.a"
)
