file(REMOVE_RECURSE
  "CMakeFiles/netco_common.dir/log.cpp.o"
  "CMakeFiles/netco_common.dir/log.cpp.o.d"
  "CMakeFiles/netco_common.dir/rng.cpp.o"
  "CMakeFiles/netco_common.dir/rng.cpp.o.d"
  "libnetco_common.a"
  "libnetco_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
