# Empty dependencies file for netco_common.
# This may be replaced when dependencies are built.
