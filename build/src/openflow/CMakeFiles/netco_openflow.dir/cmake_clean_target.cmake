file(REMOVE_RECURSE
  "libnetco_openflow.a"
)
