# Empty compiler generated dependencies file for netco_openflow.
# This may be replaced when dependencies are built.
