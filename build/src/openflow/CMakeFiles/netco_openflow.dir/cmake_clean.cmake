file(REMOVE_RECURSE
  "CMakeFiles/netco_openflow.dir/action.cpp.o"
  "CMakeFiles/netco_openflow.dir/action.cpp.o.d"
  "CMakeFiles/netco_openflow.dir/channel.cpp.o"
  "CMakeFiles/netco_openflow.dir/channel.cpp.o.d"
  "CMakeFiles/netco_openflow.dir/flow_table.cpp.o"
  "CMakeFiles/netco_openflow.dir/flow_table.cpp.o.d"
  "CMakeFiles/netco_openflow.dir/match.cpp.o"
  "CMakeFiles/netco_openflow.dir/match.cpp.o.d"
  "CMakeFiles/netco_openflow.dir/switch.cpp.o"
  "CMakeFiles/netco_openflow.dir/switch.cpp.o.d"
  "libnetco_openflow.a"
  "libnetco_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netco_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
