
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/openflow/action.cpp" "src/openflow/CMakeFiles/netco_openflow.dir/action.cpp.o" "gcc" "src/openflow/CMakeFiles/netco_openflow.dir/action.cpp.o.d"
  "/root/repo/src/openflow/channel.cpp" "src/openflow/CMakeFiles/netco_openflow.dir/channel.cpp.o" "gcc" "src/openflow/CMakeFiles/netco_openflow.dir/channel.cpp.o.d"
  "/root/repo/src/openflow/flow_table.cpp" "src/openflow/CMakeFiles/netco_openflow.dir/flow_table.cpp.o" "gcc" "src/openflow/CMakeFiles/netco_openflow.dir/flow_table.cpp.o.d"
  "/root/repo/src/openflow/match.cpp" "src/openflow/CMakeFiles/netco_openflow.dir/match.cpp.o" "gcc" "src/openflow/CMakeFiles/netco_openflow.dir/match.cpp.o.d"
  "/root/repo/src/openflow/switch.cpp" "src/openflow/CMakeFiles/netco_openflow.dir/switch.cpp.o" "gcc" "src/openflow/CMakeFiles/netco_openflow.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/netco_link.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/netco_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
