# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("link")
subdirs("device")
subdirs("openflow")
subdirs("iproute")
subdirs("controller")
subdirs("host")
subdirs("adversary")
subdirs("netco")
subdirs("topo")
subdirs("stats")
subdirs("scenario")
