# Empty dependencies file for casestudy_datacenter.
# This may be replaced when dependencies are built.
