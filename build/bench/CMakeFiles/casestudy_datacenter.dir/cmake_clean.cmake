file(REMOVE_RECURSE
  "CMakeFiles/casestudy_datacenter.dir/casestudy_datacenter.cpp.o"
  "CMakeFiles/casestudy_datacenter.dir/casestudy_datacenter.cpp.o.d"
  "casestudy_datacenter"
  "casestudy_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casestudy_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
