# Empty dependencies file for virtual_netco.
# This may be replaced when dependencies are built.
