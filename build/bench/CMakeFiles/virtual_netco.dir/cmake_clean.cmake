file(REMOVE_RECURSE
  "CMakeFiles/virtual_netco.dir/virtual_netco.cpp.o"
  "CMakeFiles/virtual_netco.dir/virtual_netco.cpp.o.d"
  "virtual_netco"
  "virtual_netco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_netco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
