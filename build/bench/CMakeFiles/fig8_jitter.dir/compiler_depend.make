# Empty compiler generated dependencies file for fig8_jitter.
# This may be replaced when dependencies are built.
