file(REMOVE_RECURSE
  "CMakeFiles/fig8_jitter.dir/fig8_jitter.cpp.o"
  "CMakeFiles/fig8_jitter.dir/fig8_jitter.cpp.o.d"
  "fig8_jitter"
  "fig8_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
