# Empty dependencies file for micro_compare.
# This may be replaced when dependencies are built.
