file(REMOVE_RECURSE
  "CMakeFiles/micro_compare.dir/micro_compare.cpp.o"
  "CMakeFiles/micro_compare.dir/micro_compare.cpp.o.d"
  "micro_compare"
  "micro_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
