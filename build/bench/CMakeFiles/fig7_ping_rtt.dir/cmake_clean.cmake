file(REMOVE_RECURSE
  "CMakeFiles/fig7_ping_rtt.dir/fig7_ping_rtt.cpp.o"
  "CMakeFiles/fig7_ping_rtt.dir/fig7_ping_rtt.cpp.o.d"
  "fig7_ping_rtt"
  "fig7_ping_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ping_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
