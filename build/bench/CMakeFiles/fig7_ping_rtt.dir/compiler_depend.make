# Empty compiler generated dependencies file for fig7_ping_rtt.
# This may be replaced when dependencies are built.
