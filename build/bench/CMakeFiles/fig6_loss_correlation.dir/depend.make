# Empty dependencies file for fig6_loss_correlation.
# This may be replaced when dependencies are built.
