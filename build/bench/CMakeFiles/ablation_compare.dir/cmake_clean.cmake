file(REMOVE_RECURSE
  "CMakeFiles/ablation_compare.dir/ablation_compare.cpp.o"
  "CMakeFiles/ablation_compare.dir/ablation_compare.cpp.o.d"
  "ablation_compare"
  "ablation_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
