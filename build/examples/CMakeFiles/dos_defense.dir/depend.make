# Empty dependencies file for dos_defense.
# This may be replaced when dependencies are built.
