file(REMOVE_RECURSE
  "CMakeFiles/dos_defense.dir/dos_defense.cpp.o"
  "CMakeFiles/dos_defense.dir/dos_defense.cpp.o.d"
  "dos_defense"
  "dos_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dos_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
