# Empty dependencies file for datacenter_attack.
# This may be replaced when dependencies are built.
