file(REMOVE_RECURSE
  "CMakeFiles/datacenter_attack.dir/datacenter_attack.cpp.o"
  "CMakeFiles/datacenter_attack.dir/datacenter_attack.cpp.o.d"
  "datacenter_attack"
  "datacenter_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
