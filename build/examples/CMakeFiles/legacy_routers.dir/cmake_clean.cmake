file(REMOVE_RECURSE
  "CMakeFiles/legacy_routers.dir/legacy_routers.cpp.o"
  "CMakeFiles/legacy_routers.dir/legacy_routers.cpp.o.d"
  "legacy_routers"
  "legacy_routers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_routers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
