# Empty compiler generated dependencies file for legacy_routers.
# This may be replaced when dependencies are built.
