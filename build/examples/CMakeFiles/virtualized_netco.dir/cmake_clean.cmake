file(REMOVE_RECURSE
  "CMakeFiles/virtualized_netco.dir/virtualized_netco.cpp.o"
  "CMakeFiles/virtualized_netco.dir/virtualized_netco.cpp.o.d"
  "virtualized_netco"
  "virtualized_netco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtualized_netco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
