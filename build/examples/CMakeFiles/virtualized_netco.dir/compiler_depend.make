# Empty compiler generated dependencies file for virtualized_netco.
# This may be replaced when dependencies are built.
