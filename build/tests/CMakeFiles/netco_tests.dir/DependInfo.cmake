
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adversary_test.cpp" "tests/CMakeFiles/netco_tests.dir/adversary_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/adversary_test.cpp.o.d"
  "/root/repo/tests/alternatives_test.cpp" "tests/CMakeFiles/netco_tests.dir/alternatives_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/alternatives_test.cpp.o.d"
  "/root/repo/tests/arp_test.cpp" "tests/CMakeFiles/netco_tests.dir/arp_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/arp_test.cpp.o.d"
  "/root/repo/tests/combiner_test.cpp" "tests/CMakeFiles/netco_tests.dir/combiner_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/combiner_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/netco_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/compare_core_test.cpp" "tests/CMakeFiles/netco_tests.dir/compare_core_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/compare_core_test.cpp.o.d"
  "/root/repo/tests/compare_service_test.cpp" "tests/CMakeFiles/netco_tests.dir/compare_service_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/compare_service_test.cpp.o.d"
  "/root/repo/tests/controller_test.cpp" "tests/CMakeFiles/netco_tests.dir/controller_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/controller_test.cpp.o.d"
  "/root/repo/tests/fattree_test.cpp" "tests/CMakeFiles/netco_tests.dir/fattree_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/fattree_test.cpp.o.d"
  "/root/repo/tests/host_test.cpp" "tests/CMakeFiles/netco_tests.dir/host_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/host_test.cpp.o.d"
  "/root/repo/tests/iproute_test.cpp" "tests/CMakeFiles/netco_tests.dir/iproute_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/iproute_test.cpp.o.d"
  "/root/repo/tests/link_test.cpp" "tests/CMakeFiles/netco_tests.dir/link_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/link_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/netco_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/openflow_test.cpp" "tests/CMakeFiles/netco_tests.dir/openflow_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/openflow_test.cpp.o.d"
  "/root/repo/tests/property_e2e_test.cpp" "tests/CMakeFiles/netco_tests.dir/property_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/property_e2e_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/netco_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/netco_tests.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/smoke_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/netco_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/tcp_test.cpp" "tests/CMakeFiles/netco_tests.dir/tcp_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/tcp_test.cpp.o.d"
  "/root/repo/tests/virtual_overlay_test.cpp" "tests/CMakeFiles/netco_tests.dir/virtual_overlay_test.cpp.o" "gcc" "tests/CMakeFiles/netco_tests.dir/virtual_overlay_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/netco_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/netco_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/netco_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/netco_host.dir/DependInfo.cmake"
  "/root/repo/build/src/netco/CMakeFiles/netco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/netco_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/iproute/CMakeFiles/netco_iproute.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/netco_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/netco_device.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/netco_link.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/netco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/netco_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
