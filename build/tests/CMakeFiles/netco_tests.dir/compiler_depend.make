# Empty compiler generated dependencies file for netco_tests.
# This may be replaced when dependencies are built.
