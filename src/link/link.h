// Point-to-point full-duplex link with serialization delay, propagation
// delay and a drop-tail byte-bounded transmit queue per direction.
//
// This is the ns-style link model: a packet handed to a port occupies the
// transmitter for size*8/rate, then arrives at the peer after the
// propagation delay. If the transmitter is busy, the packet waits in the
// queue; if the queue is full, it is dropped (and counted).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/units.h"
#include "net/packet.h"
#include "obs/observability.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace netco::sim {
class ShardChannel;
}  // namespace netco::sim

namespace netco::link {

/// Per-direction link parameters.
///
/// The default mirrors a Mininet veth pair: effectively unconstrained
/// capacity (10 Gb/s) so that, as in the paper's testbed, the *CPU* models
/// (host, compare, controller) are the binding resources, not the wires.
struct LinkConfig {
  DataRate rate = DataRate::gigabits_per_sec(10);
  sim::Duration propagation = sim::Duration::microseconds(1);
  /// Transmit queue capacity in bytes (drop-tail). ~100 full frames default.
  std::size_t queue_bytes = 150'000;
};

/// Counters for one link direction.
struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t dropped_down = 0;     ///< dropped while the link was down
  std::uint64_t dropped_loss = 0;     ///< fault-injected random loss
  std::uint64_t max_queue_bytes = 0;  ///< high-water mark
};

/// One direction of a link: a serializing transmitter + delivery callback.
///
/// Owned by Link; exposed so devices can inspect stats. The delivery sink is
/// bound at wiring time by the device layer.
class Channel {
 public:
  using DeliverFn = std::function<void(net::Packet)>;

  Channel(sim::Simulator& simulator, LinkConfig config)
      : simulator_(simulator),
        config_(config),
        obs_(&obs::global()),
        queue_depth_(&obs_->metrics.histogram(
            "link.queue_depth_bytes", obs::default_queue_depth_buckets())),
        drop_counter_(&obs_->metrics.counter("link.dropped_packets")) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Binds the receive side. Must be called exactly once before traffic.
  void bind_sink(DeliverFn sink) { sink_ = std::move(sink); }

  /// Cross-shard mode: the receive side lives on another simulation shard
  /// (sim/shard.h), so deliveries travel over `channel` instead of the
  /// local event queue. `remote_sink` executes on the *receiving* shard's
  /// worker thread and must only touch that shard's components. The
  /// link's propagation delay must cover the channel's conservative
  /// lookahead (asserted) — propagation is exactly what makes the link a
  /// safe shard-crossing point. Mutually exclusive with bind_sink().
  void bind_remote(sim::ShardChannel& channel, DeliverFn remote_sink);

  /// Hands a packet to the transmitter (queues or drops as needed).
  void send(net::Packet packet);

  /// Failure injection: a downed channel silently discards everything
  /// handed to it (packets already in flight still arrive — photons do
  /// not return). Bring it back up with set_down(false).
  void set_down(bool down) noexcept { down_ = down; }
  [[nodiscard]] bool is_down() const noexcept { return down_; }

  /// Fault injection: each packet handed to the channel is independently
  /// discarded with probability `rate` (draws come from the simulator's
  /// seeded RNG, so runs stay bit-reproducible). 0 disables.
  void set_loss(double rate) noexcept { loss_rate_ = rate; }
  [[nodiscard]] double loss_rate() const noexcept { return loss_rate_; }

  /// Fault injection: additional one-way delay on top of the configured
  /// propagation (a latency ramp mid-run). Zero disables.
  void set_extra_latency(sim::Duration extra) noexcept { extra_latency_ = extra; }
  [[nodiscard]] sim::Duration extra_latency() const noexcept {
    return extra_latency_;
  }

  /// Name stamped on this channel's trace records ("s1->r2"). Defaults to
  /// "link"; Network::connect() labels both directions from the node names.
  void set_label(std::string label) { label_ = std::move(label); }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

  /// Counters for this direction.
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }

  /// Current queue occupancy in bytes (excludes the in-flight packet).
  [[nodiscard]] std::size_t queued_bytes() const noexcept {
    return queued_bytes_;
  }

  /// The configuration this channel runs with.
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

 private:
  void start_transmission(net::Packet packet);
  void on_transmit_done();

  sim::Simulator& simulator_;
  LinkConfig config_;
  obs::Observability* obs_;
  obs::Histogram* queue_depth_;   ///< "link.queue_depth_bytes"
  obs::Counter* drop_counter_;    ///< "link.dropped_packets"
  DeliverFn sink_;
  sim::ShardChannel* remote_ = nullptr;
  DeliverFn remote_sink_;
  std::deque<net::Packet> queue_;
  std::size_t queued_bytes_ = 0;
  bool busy_ = false;
  bool down_ = false;
  double loss_rate_ = 0.0;
  sim::Duration extra_latency_ = sim::Duration::zero();
  std::string label_ = "link";
  LinkStats stats_;
};

/// A full-duplex link: two independent Channels.
class Link {
 public:
  Link(sim::Simulator& simulator, LinkConfig config)
      : forward_(simulator, config), reverse_(simulator, config) {}

  /// Takes both directions down/up (fiber cut semantics).
  void set_down(bool down) noexcept {
    forward_.set_down(down);
    reverse_.set_down(down);
  }

  /// Symmetric fault injection on both directions.
  void set_loss(double rate) noexcept {
    forward_.set_loss(rate);
    reverse_.set_loss(rate);
  }
  void set_extra_latency(sim::Duration extra) noexcept {
    forward_.set_extra_latency(extra);
    reverse_.set_extra_latency(extra);
  }

  /// Labels both directions from the endpoint names ("a->b" / "b->a") so
  /// drop/loss trace records are attributable to the owning link.
  void set_labels(const std::string& a, const std::string& b) {
    forward_.set_label(a + "->" + b);
    reverse_.set_label(b + "->" + a);
  }

  /// Direction A→B.
  [[nodiscard]] Channel& forward() noexcept { return forward_; }
  /// Direction B→A.
  [[nodiscard]] Channel& reverse() noexcept { return reverse_; }

  [[nodiscard]] const Channel& forward() const noexcept { return forward_; }
  [[nodiscard]] const Channel& reverse() const noexcept { return reverse_; }

 private:
  Channel forward_;
  Channel reverse_;
};

}  // namespace netco::link
