#include "link/link.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "sim/shard.h"

namespace netco::link {

void Channel::bind_remote(sim::ShardChannel& channel, DeliverFn remote_sink) {
  NETCO_ASSERT_MSG(sink_ == nullptr,
                   "bind_remote on a channel that already has a local sink");
  NETCO_ASSERT(static_cast<bool>(remote_sink));
  NETCO_ASSERT_MSG(
      channel.lookahead() <= config_.propagation,
      "link propagation must cover the shard channel's lookahead — "
      "otherwise a delivery could undercut the conservative horizon");
  remote_ = &channel;
  remote_sink_ = std::move(remote_sink);
}

void Channel::send(net::Packet packet) {
  NETCO_ASSERT_MSG(sink_ != nullptr || remote_ != nullptr,
                   "channel used before bind_sink()/bind_remote()");
  if (down_) {
    ++stats_.dropped_down;
    return;
  }
  if (loss_rate_ > 0.0 && simulator_.rng().chance(loss_rate_)) {
    ++stats_.dropped_loss;
    obs::Tracer& tracer = obs_->tracer;
    if (tracer.enabled()) {
      // packet_id is the memoized content hash (shared across COW copies);
      // a loss/drop record therefore never re-hashes the payload.
      tracer.emit(simulator_.now().ns(), obs::TraceEvent::kLinkLoss,
                  packet.content_hash(), label_, -1,
                  static_cast<std::uint32_t>(packet.size()));
    }
    return;
  }
  if (!busy_) {
    busy_ = true;
    start_transmission(std::move(packet));
    return;
  }
  if (queued_bytes_ + packet.size() > config_.queue_bytes) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += packet.size();
    drop_counter_->inc();
    obs::Tracer& tracer = obs_->tracer;
    if (tracer.enabled()) {
      tracer.emit(simulator_.now().ns(), obs::TraceEvent::kLinkDrop,
                  packet.content_hash(), label_, -1,
                  static_cast<std::uint32_t>(packet.size()));
    }
    return;
  }
  queued_bytes_ += packet.size();
  stats_.max_queue_bytes =
      std::max<std::uint64_t>(stats_.max_queue_bytes, queued_bytes_);
  queue_depth_->observe(static_cast<double>(queued_bytes_));
  queue_.push_back(std::move(packet));
}

void Channel::start_transmission(net::Packet packet) {
  const sim::Duration tx = sim::transmission_time(config_.rate, packet.size());
  ++stats_.tx_packets;
  stats_.tx_bytes += packet.size();
  const sim::Duration arrival = tx + config_.propagation + extra_latency_;
  // Deliver after serialization + propagation...
  if (remote_ != nullptr) {
    // ...on the peer shard: the delivery callback is drained at the next
    // barrier and runs in the receiving cell's simulator. remote_sink_ is
    // written once at wiring time, so the cross-thread read is benign.
    remote_->post(simulator_.now(), simulator_.now() + arrival,
                  sim::Callback([this, p = std::move(packet)]() mutable {
                    remote_sink_(std::move(p));
                  }));
  } else {
    simulator_.schedule_after(arrival, [this, p = std::move(packet)]() mutable {
      sink_(std::move(p));
    });
  }
  // ...and free the transmitter after serialization only.
  simulator_.schedule_after(tx, [this] { on_transmit_done(); });
}

void Channel::on_transmit_done() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  net::Packet next = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= next.size();
  start_transmission(std::move(next));
}

}  // namespace netco::link
