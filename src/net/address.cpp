#include "net/address.h"

#include <cstdio>

namespace netco::net {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

}  // namespace netco::net
