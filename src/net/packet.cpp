#include "net/packet.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace netco::net {

Packet::Buffer& Packet::detach() {
  if (buffer_ == nullptr) {
    buffer_ = std::make_shared<Buffer>(std::vector<std::byte>{});
  } else if (buffer_.use_count() > 1) {
    // Shared: clone the bytes into a private buffer. The clone starts with
    // no memoized hashes — the caller is about to change the payload.
    buffer_ = std::make_shared<Buffer>(buffer_->bytes);
  } else {
    // Already unique: mutate in place, but the memos describe the
    // pre-mutation payload and must die with it.
    buffer_->invalidate_hashes();
  }
  return *buffer_;
}

std::span<std::byte> Packet::bytes_mut() { return detach().bytes; }

std::span<const std::byte> Packet::slice(std::size_t offset,
                                         std::size_t len) const {
  NETCO_ASSERT(offset + len <= size());
  return bytes().subspan(offset, len);
}

std::uint8_t Packet::u8(std::size_t offset) const {
  NETCO_ASSERT(offset < size());
  return static_cast<std::uint8_t>(buffer_->bytes[offset]);
}

std::uint16_t Packet::u16be(std::size_t offset) const {
  NETCO_ASSERT(offset + 2 <= size());
  return static_cast<std::uint16_t>((u8(offset) << 8) | u8(offset + 1));
}

std::uint32_t Packet::u32be(std::size_t offset) const {
  NETCO_ASSERT(offset + 4 <= size());
  return (std::uint32_t{u8(offset)} << 24) | (std::uint32_t{u8(offset + 1)} << 16) |
         (std::uint32_t{u8(offset + 2)} << 8) | std::uint32_t{u8(offset + 3)};
}

void Packet::set_u8(std::size_t offset, std::uint8_t value) {
  Buffer& buffer = detach();
  NETCO_ASSERT(offset < buffer.bytes.size());
  buffer.bytes[offset] = static_cast<std::byte>(value);
}

void Packet::set_u16be(std::size_t offset, std::uint16_t value) {
  set_u8(offset, static_cast<std::uint8_t>(value >> 8));
  set_u8(offset + 1, static_cast<std::uint8_t>(value & 0xFF));
}

void Packet::set_u32be(std::size_t offset, std::uint32_t value) {
  set_u8(offset, static_cast<std::uint8_t>(value >> 24));
  set_u8(offset + 1, static_cast<std::uint8_t>((value >> 16) & 0xFF));
  set_u8(offset + 2, static_cast<std::uint8_t>((value >> 8) & 0xFF));
  set_u8(offset + 3, static_cast<std::uint8_t>(value & 0xFF));
}

MacAddress Packet::mac_at(std::size_t offset) const {
  NETCO_ASSERT(offset + 6 <= size());
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) octets[i] = u8(offset + i);
  return MacAddress(octets);
}

void Packet::set_mac_at(std::size_t offset, const MacAddress& mac) {
  NETCO_ASSERT(offset + 6 <= size());
  for (std::size_t i = 0; i < 6; ++i) set_u8(offset + i, mac.octets()[i]);
}

void Packet::append(std::span<const std::byte> data) {
  Buffer& buffer = detach();
  buffer.bytes.insert(buffer.bytes.end(), data.begin(), data.end());
}

void Packet::resize(std::size_t new_size) {
  if (new_size == size()) return;
  detach().bytes.resize(new_size);
}

void Packet::insert_zeros(std::size_t offset, std::size_t count) {
  NETCO_ASSERT(offset <= size());
  Buffer& buffer = detach();
  buffer.bytes.insert(buffer.bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                      count, std::byte{0});
}

void Packet::erase(std::size_t offset, std::size_t count) {
  NETCO_ASSERT(offset + count <= size());
  Buffer& buffer = detach();
  const auto first =
      buffer.bytes.begin() + static_cast<std::ptrdiff_t>(offset);
  buffer.bytes.erase(first, first + static_cast<std::ptrdiff_t>(count));
}

std::uint64_t Packet::content_hash() const noexcept {
  if (buffer_ == nullptr) return kFnvOffset;  // fnv1a over zero bytes
  if (!buffer_->content_hash_valid) {
    buffer_->content_hash = fnv1a(buffer_->bytes);
    buffer_->content_hash_valid = true;
  }
  return buffer_->content_hash;
}

std::uint64_t Packet::prefix_hash(std::size_t prefix_len) const noexcept {
  if (buffer_ == nullptr) return kFnvOffset;
  const std::size_t n = std::min(prefix_len, buffer_->bytes.size());
  if (n == buffer_->bytes.size()) return content_hash();  // whole-buffer prefix
  if (!buffer_->prefix_hash_valid || buffer_->prefix_len != n) {
    buffer_->prefix_hash =
        fnv1a(std::span<const std::byte>(buffer_->bytes).first(n));
    buffer_->prefix_len = n;
    buffer_->prefix_hash_valid = true;
  }
  return buffer_->prefix_hash;
}

bool operator==(const Packet& a, const Packet& b) noexcept {
  if (a.buffer_ == b.buffer_) return true;  // shared payload (or both empty)
  const auto pa = a.bytes();
  const auto pb = b.bytes();
  if (pa.size() != pb.size()) return false;
  if (a.buffer_ != nullptr && b.buffer_ != nullptr &&
      a.buffer_->content_hash_valid && b.buffer_->content_hash_valid &&
      a.buffer_->content_hash != b.buffer_->content_hash) {
    return false;  // memoized hashes disagree — contents must differ
  }
  return std::equal(pa.begin(), pa.end(), pb.begin());
}

std::string Packet::summary() const {
  char buf[96];
  if (size() < 14) {
    std::snprintf(buf, sizeof buf, "%zuB (runt)", size());
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%zuB %s->%s type=%04x", size(),
                mac_at(6).to_string().c_str(), mac_at(0).to_string().c_str(),
                u16be(12));
  return buf;
}

}  // namespace netco::net
