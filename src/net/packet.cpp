#include "net/packet.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace netco::net {

std::span<const std::byte> Packet::slice(std::size_t offset,
                                         std::size_t len) const {
  NETCO_ASSERT(offset + len <= bytes_.size());
  return std::span<const std::byte>(bytes_).subspan(offset, len);
}

std::uint8_t Packet::u8(std::size_t offset) const {
  NETCO_ASSERT(offset < bytes_.size());
  return static_cast<std::uint8_t>(bytes_[offset]);
}

std::uint16_t Packet::u16be(std::size_t offset) const {
  NETCO_ASSERT(offset + 2 <= bytes_.size());
  return static_cast<std::uint16_t>((u8(offset) << 8) | u8(offset + 1));
}

std::uint32_t Packet::u32be(std::size_t offset) const {
  NETCO_ASSERT(offset + 4 <= bytes_.size());
  return (std::uint32_t{u8(offset)} << 24) | (std::uint32_t{u8(offset + 1)} << 16) |
         (std::uint32_t{u8(offset + 2)} << 8) | std::uint32_t{u8(offset + 3)};
}

void Packet::set_u8(std::size_t offset, std::uint8_t value) {
  NETCO_ASSERT(offset < bytes_.size());
  bytes_[offset] = static_cast<std::byte>(value);
}

void Packet::set_u16be(std::size_t offset, std::uint16_t value) {
  set_u8(offset, static_cast<std::uint8_t>(value >> 8));
  set_u8(offset + 1, static_cast<std::uint8_t>(value & 0xFF));
}

void Packet::set_u32be(std::size_t offset, std::uint32_t value) {
  set_u8(offset, static_cast<std::uint8_t>(value >> 24));
  set_u8(offset + 1, static_cast<std::uint8_t>((value >> 16) & 0xFF));
  set_u8(offset + 2, static_cast<std::uint8_t>((value >> 8) & 0xFF));
  set_u8(offset + 3, static_cast<std::uint8_t>(value & 0xFF));
}

MacAddress Packet::mac_at(std::size_t offset) const {
  NETCO_ASSERT(offset + 6 <= bytes_.size());
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) octets[i] = u8(offset + i);
  return MacAddress(octets);
}

void Packet::set_mac_at(std::size_t offset, const MacAddress& mac) {
  NETCO_ASSERT(offset + 6 <= bytes_.size());
  for (std::size_t i = 0; i < 6; ++i) set_u8(offset + i, mac.octets()[i]);
}

void Packet::append(std::span<const std::byte> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Packet::insert_zeros(std::size_t offset, std::size_t count) {
  NETCO_ASSERT(offset <= bytes_.size());
  bytes_.insert(bytes_.begin() + static_cast<std::ptrdiff_t>(offset), count,
                std::byte{0});
}

void Packet::erase(std::size_t offset, std::size_t count) {
  NETCO_ASSERT(offset + count <= bytes_.size());
  const auto first = bytes_.begin() + static_cast<std::ptrdiff_t>(offset);
  bytes_.erase(first, first + static_cast<std::ptrdiff_t>(count));
}

std::uint64_t Packet::prefix_hash(std::size_t prefix_len) const noexcept {
  const std::size_t n = std::min(prefix_len, bytes_.size());
  return fnv1a(std::span<const std::byte>(bytes_).first(n));
}

std::string Packet::summary() const {
  char buf[96];
  if (bytes_.size() < 14) {
    std::snprintf(buf, sizeof buf, "%zuB (runt)", bytes_.size());
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%zuB %s->%s type=%04x", bytes_.size(),
                mac_at(6).to_string().c_str(), mac_at(0).to_string().c_str(),
                u16be(12));
  return buf;
}

}  // namespace netco::net
