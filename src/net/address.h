// Link-layer and network-layer addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace netco::net {

/// 48-bit IEEE 802 MAC address. Value type, comparable, hashable.
class MacAddress {
 public:
  constexpr MacAddress() noexcept = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets) noexcept
      : octets_(octets) {}

  /// Builds a locally-administered unicast address from a small integer id
  /// (02:00:00:xx:xx:xx). Handy for deterministic topologies.
  static constexpr MacAddress from_id(std::uint32_t id) noexcept {
    return MacAddress({0x02, 0x00, 0x00,
                       static_cast<std::uint8_t>((id >> 16) & 0xFF),
                       static_cast<std::uint8_t>((id >> 8) & 0xFF),
                       static_cast<std::uint8_t>(id & 0xFF)});
  }

  /// The broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress broadcast() noexcept {
    return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets()
      const noexcept {
    return octets_;
  }

  /// True for the all-ones broadcast address.
  [[nodiscard]] constexpr bool is_broadcast() const noexcept {
    for (auto o : octets_)
      if (o != 0xFF) return false;
    return true;
  }

  /// True when the group (multicast) bit is set.
  [[nodiscard]] constexpr bool is_multicast() const noexcept {
    return (octets_[0] & 0x01) != 0;
  }

  /// Packs the address into the low 48 bits of a u64 (for hashing/printing).
  [[nodiscard]] constexpr std::uint64_t as_u64() const noexcept {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  /// Canonical "aa:bb:cc:dd:ee:ff" rendering.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) noexcept = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// 32-bit IPv4 address. Value type, comparable, hashable.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) noexcept
      : value_(host_order) {}

  /// Builds a.b.c.d.
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c,
                                           std::uint8_t d) noexcept {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Deterministic host address 10.0.x.y from a small id.
  static constexpr Ipv4Address from_id(std::uint32_t id) noexcept {
    return from_octets(10, 0, static_cast<std::uint8_t>((id >> 8) & 0xFF),
                       static_cast<std::uint8_t>(id & 0xFF));
  }

  /// Host-byte-order value.
  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Dotted-quad rendering.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept =
      default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace netco::net

template <>
struct std::hash<netco::net::MacAddress> {
  std::size_t operator()(const netco::net::MacAddress& mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.as_u64());
  }
};

template <>
struct std::hash<netco::net::Ipv4Address> {
  std::size_t operator()(netco::net::Ipv4Address ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
