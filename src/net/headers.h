// Wire formats: Ethernet (+ 802.1Q), IPv4, UDP, TCP, ICMP.
//
// Builders produce fully checksummed wire packets; `parse_packet` produces a
// ParsedPacket with typed header copies plus the byte offsets of each layer,
// so both the OpenFlow match extraction and the adversarial mutators can
// work on exact wire positions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/address.h"
#include "net/packet.h"

namespace netco::net {

/// EtherType values used in this code base.
enum class EtherType : std::uint16_t {
  Ipv4 = 0x0800,
  Arp = 0x0806,
  Vlan = 0x8100,         // 802.1Q TPID
  NetcoTunnel = 0x88B5,  // IEEE local-experimental; used by virtual NetCo
};

/// IPv4 protocol numbers used in this code base.
enum class IpProto : std::uint8_t { Icmp = 1, Tcp = 6, Udp = 17 };

/// TCP flag bits.
enum TcpFlags : std::uint8_t {
  kTcpFin = 0x01,
  kTcpSyn = 0x02,
  kTcpRst = 0x04,
  kTcpPsh = 0x08,
  kTcpAck = 0x10,
};

/// ICMP types used in this code base.
inline constexpr std::uint8_t kIcmpEchoReply = 0;
inline constexpr std::uint8_t kIcmpEchoRequest = 8;

/// ARP operations.
inline constexpr std::uint16_t kArpRequest = 1;
inline constexpr std::uint16_t kArpReply = 2;

/// Ethernet II header (no VLAN tag; the tag is modelled separately).
struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = 0;  ///< EtherType of the *inner* payload
};

/// 802.1Q tag contents.
struct VlanTag {
  std::uint16_t vid = 0;  ///< 12-bit VLAN identifier
  std::uint8_t pcp = 0;   ///< 3-bit priority code point
};

/// ARP payload (Ethernet/IPv4 flavour, RFC 826).
struct ArpHeader {
  std::uint16_t oper = kArpRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;  ///< zero in requests
  Ipv4Address target_ip;
};

/// IPv4 header fields a sender sets; lengths/checksum are computed.
struct Ipv4Header {
  Ipv4Address src;
  Ipv4Address dst;
  IpProto proto = IpProto::Udp;
  std::uint8_t tos = 0;
  std::uint8_t ttl = 64;
  std::uint16_t identification = 0;
  std::uint16_t total_length = 0;  ///< filled in by builder / parser
};

/// UDP header fields a sender sets.
struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< filled in by builder / parser
};

/// TCP header fields. One optional SACK block (RFC 2018, single-block
/// form) is supported; when present the header grows by 12 option bytes
/// (kind 5, len 10, left edge, right edge, 2 NOP pads).
struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::optional<std::pair<std::uint32_t, std::uint32_t>> sack;
};

/// ICMP echo request/reply header fields.
struct IcmpEchoHeader {
  std::uint8_t type = kIcmpEchoRequest;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;
};

/// Result of parsing a wire packet: typed copies + layer byte offsets.
struct ParsedPacket {
  EthernetHeader eth;
  std::optional<VlanTag> vlan;
  std::size_t l3_offset = 0;  ///< first byte after Ethernet (+VLAN) header

  std::optional<Ipv4Header> ipv4;
  std::size_t l4_offset = 0;  ///< first byte after the IPv4 header

  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<IcmpEchoHeader> icmp;
  std::optional<ArpHeader> arp;
  std::size_t payload_offset = 0;  ///< first byte after the innermost header
};

/// Parses a wire packet. Returns nullopt for truncated/garbage frames.
/// Checksums are *not* verified here (hosts verify; switches do not).
std::optional<ParsedPacket> parse_packet(const Packet& packet);

// --- builders ----------------------------------------------------------

/// Raw Ethernet frame around an opaque payload.
Packet build_ethernet(const EthernetHeader& eth,
                      const std::optional<VlanTag>& vlan,
                      std::span<const std::byte> payload);

/// Ethernet + IPv4 + UDP datagram with correct lengths and checksums.
Packet build_udp(const EthernetHeader& eth, const std::optional<VlanTag>& vlan,
                 Ipv4Header ip, UdpHeader udp,
                 std::span<const std::byte> payload);

/// Ethernet + IPv4 + TCP segment with correct lengths and checksums.
Packet build_tcp(const EthernetHeader& eth, const std::optional<VlanTag>& vlan,
                 Ipv4Header ip, const TcpHeader& tcp,
                 std::span<const std::byte> payload);

/// Ethernet + ARP request/reply. Requests are L2-broadcast.
Packet build_arp(const ArpHeader& arp);

/// Ethernet + IPv4 + ICMP echo request/reply.
Packet build_icmp_echo(const EthernetHeader& eth,
                       const std::optional<VlanTag>& vlan, Ipv4Header ip,
                       const IcmpEchoHeader& icmp,
                       std::span<const std::byte> payload);

// --- in-place mutators (used by actions and the adversary) --------------

/// Rewrites the Ethernet destination MAC.
void set_dl_dst(Packet& packet, const MacAddress& mac);

/// Rewrites the Ethernet source MAC.
void set_dl_src(Packet& packet, const MacAddress& mac);

/// Sets the 802.1Q VLAN id, inserting a tag if the frame is untagged.
void set_vlan(Packet& packet, std::uint16_t vid, std::uint8_t pcp = 0);

/// Removes the 802.1Q tag if present.
void strip_vlan(Packet& packet);

/// Rewrites the IPv4 destination and fixes the header/L4 checksums.
/// No-op if the packet is not IPv4.
void set_nw_dst(Packet& packet, Ipv4Address dst);

/// Flips one payload byte (adversarial corruption); no checksum fix, which
/// is exactly what a buggy/malicious datapath would produce.
void corrupt_byte(Packet& packet, std::size_t offset);

/// Recomputes the IPv4 header checksum and the L4 checksum (if UDP/TCP/ICMP).
void fix_checksums(Packet& packet);

/// Verifies IPv4 header + L4 checksum. True also for non-IP packets.
[[nodiscard]] bool checksums_valid(const Packet& packet);

}  // namespace netco::net
