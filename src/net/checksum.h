// RFC 1071 Internet checksum and the IPv4/TCP/UDP/ICMP applications of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "net/address.h"

namespace netco::net {

/// One's-complement sum folded to 16 bits, then complemented (RFC 1071).
/// `initial` lets callers chain pseudo-header words in first.
std::uint16_t internet_checksum(std::span<const std::byte> data,
                                std::uint32_t initial = 0) noexcept;

/// Raw one's-complement accumulation without the final complement; use to
/// build pseudo-header sums incrementally.
std::uint32_t checksum_accumulate(std::span<const std::byte> data,
                                  std::uint32_t state) noexcept;

/// Sum of the TCP/UDP pseudo header (src, dst, proto, l4 length).
std::uint32_t pseudo_header_sum(Ipv4Address src, Ipv4Address dst,
                                std::uint8_t proto,
                                std::uint16_t l4_length) noexcept;

}  // namespace netco::net
