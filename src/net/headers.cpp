#include "net/headers.h"

#include <array>

#include "common/assert.h"
#include "net/checksum.h"

namespace netco::net {
namespace {

constexpr std::size_t kEthBytes = 14;
constexpr std::size_t kVlanBytes = 4;
constexpr std::size_t kIpv4Bytes = 20;
constexpr std::size_t kUdpBytes = 8;
constexpr std::size_t kTcpBytes = 20;
constexpr std::size_t kIcmpEchoBytes = 8;

/// Writes the Ethernet (+ optional VLAN) header into a fresh packet and
/// returns the L3 offset.
std::size_t emit_l2(Packet& packet, const EthernetHeader& eth,
                    const std::optional<VlanTag>& vlan) {
  const std::size_t l2 = kEthBytes + (vlan ? kVlanBytes : 0);
  packet.resize(l2);
  packet.set_mac_at(0, eth.dst);
  packet.set_mac_at(6, eth.src);
  if (vlan) {
    packet.set_u16be(12, static_cast<std::uint16_t>(EtherType::Vlan));
    const std::uint16_t tci = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(vlan->pcp & 0x7) << 13) |
        (vlan->vid & 0x0FFF));
    packet.set_u16be(14, tci);
    packet.set_u16be(16, eth.ethertype);
  } else {
    packet.set_u16be(12, eth.ethertype);
  }
  return l2;
}

/// Emits a 20-byte IPv4 header (checksum zeroed; fixed later).
void emit_ipv4(Packet& packet, std::size_t off, const Ipv4Header& ip,
               std::uint16_t total_length) {
  packet.resize(off + kIpv4Bytes);
  packet.set_u8(off + 0, 0x45);  // version 4, IHL 5
  packet.set_u8(off + 1, ip.tos);
  packet.set_u16be(off + 2, total_length);
  packet.set_u16be(off + 4, ip.identification);
  packet.set_u16be(off + 6, 0);  // flags/fragment offset: DF not modelled
  packet.set_u8(off + 8, ip.ttl);
  packet.set_u8(off + 9, static_cast<std::uint8_t>(ip.proto));
  packet.set_u16be(off + 10, 0);  // checksum placeholder
  packet.set_u32be(off + 12, ip.src.value());
  packet.set_u32be(off + 16, ip.dst.value());
}

void write_ipv4_checksum(Packet& packet, std::size_t l3) {
  packet.set_u16be(l3 + 10, 0);
  const std::uint16_t sum = internet_checksum(packet.slice(l3, kIpv4Bytes));
  packet.set_u16be(l3 + 10, sum);
}

/// Computes and writes the L4 checksum at `csum_off` given the pseudo header.
void write_l4_checksum(Packet& packet, std::size_t l3, std::size_t l4,
                       std::size_t csum_off, IpProto proto) {
  const auto l4_len = static_cast<std::uint16_t>(packet.size() - l4);
  packet.set_u16be(csum_off, 0);
  const std::uint32_t pseudo = pseudo_header_sum(
      Ipv4Address(packet.u32be(l3 + 12)), Ipv4Address(packet.u32be(l3 + 16)),
      static_cast<std::uint8_t>(proto), l4_len);
  std::uint16_t sum =
      internet_checksum(packet.slice(l4, packet.size() - l4), pseudo);
  if (proto == IpProto::Udp && sum == 0) sum = 0xFFFF;  // RFC 768
  packet.set_u16be(csum_off, sum);
}

void write_icmp_checksum(Packet& packet, std::size_t l4) {
  packet.set_u16be(l4 + 2, 0);
  const std::uint16_t sum =
      internet_checksum(packet.slice(l4, packet.size() - l4));
  packet.set_u16be(l4 + 2, sum);
}

}  // namespace

std::optional<ParsedPacket> parse_packet(const Packet& packet) {
  if (packet.size() < kEthBytes) return std::nullopt;
  ParsedPacket out;
  out.eth.dst = packet.mac_at(0);
  out.eth.src = packet.mac_at(6);
  std::uint16_t ethertype = packet.u16be(12);
  std::size_t off = kEthBytes;

  if (ethertype == static_cast<std::uint16_t>(EtherType::Vlan)) {
    if (packet.size() < kEthBytes + kVlanBytes) return std::nullopt;
    const std::uint16_t tci = packet.u16be(14);
    out.vlan = VlanTag{.vid = static_cast<std::uint16_t>(tci & 0x0FFF),
                       .pcp = static_cast<std::uint8_t>(tci >> 13)};
    ethertype = packet.u16be(16);
    off = kEthBytes + kVlanBytes;
  }
  out.eth.ethertype = ethertype;
  out.l3_offset = off;
  out.payload_offset = off;

  if (ethertype == static_cast<std::uint16_t>(EtherType::Arp)) {
    // htype(2) ptype(2) hlen(1) plen(1) oper(2) sha(6) spa(4) tha(6) tpa(4)
    if (packet.size() < off + 28) return std::nullopt;
    if (packet.u16be(off) != 1 || packet.u16be(off + 2) != 0x0800)
      return std::nullopt;
    ArpHeader arp;
    arp.oper = packet.u16be(off + 6);
    arp.sender_mac = packet.mac_at(off + 8);
    arp.sender_ip = Ipv4Address(packet.u32be(off + 14));
    arp.target_mac = packet.mac_at(off + 18);
    arp.target_ip = Ipv4Address(packet.u32be(off + 24));
    out.arp = arp;
    out.payload_offset = off + 28;
    return out;
  }

  if (ethertype != static_cast<std::uint16_t>(EtherType::Ipv4)) return out;
  if (packet.size() < off + kIpv4Bytes) return std::nullopt;
  if ((packet.u8(off) >> 4) != 4) return std::nullopt;
  const std::size_t ihl = (packet.u8(off) & 0x0F) * std::size_t{4};
  if (ihl < kIpv4Bytes || packet.size() < off + ihl) return std::nullopt;

  Ipv4Header ip;
  ip.tos = packet.u8(off + 1);
  ip.total_length = packet.u16be(off + 2);
  ip.identification = packet.u16be(off + 4);
  ip.ttl = packet.u8(off + 8);
  ip.proto = static_cast<IpProto>(packet.u8(off + 9));
  ip.src = Ipv4Address(packet.u32be(off + 12));
  ip.dst = Ipv4Address(packet.u32be(off + 16));
  out.ipv4 = ip;
  out.l4_offset = off + ihl;
  out.payload_offset = out.l4_offset;

  const std::size_t l4 = out.l4_offset;
  switch (ip.proto) {
    case IpProto::Udp: {
      if (packet.size() < l4 + kUdpBytes) return std::nullopt;
      out.udp = UdpHeader{.src_port = packet.u16be(l4),
                          .dst_port = packet.u16be(l4 + 2),
                          .length = packet.u16be(l4 + 4)};
      out.payload_offset = l4 + kUdpBytes;
      break;
    }
    case IpProto::Tcp: {
      if (packet.size() < l4 + kTcpBytes) return std::nullopt;
      TcpHeader tcp;
      tcp.src_port = packet.u16be(l4);
      tcp.dst_port = packet.u16be(l4 + 2);
      tcp.seq = packet.u32be(l4 + 4);
      tcp.ack = packet.u32be(l4 + 8);
      tcp.flags = packet.u8(l4 + 13);
      tcp.window = packet.u16be(l4 + 14);
      const std::size_t data_off = (packet.u8(l4 + 12) >> 4) * std::size_t{4};
      if (data_off < kTcpBytes || packet.size() < l4 + data_off)
        return std::nullopt;
      // Walk the options for a SACK block (kind 5).
      for (std::size_t o = l4 + kTcpBytes; o + 1 < l4 + data_off;) {
        const std::uint8_t kind = packet.u8(o);
        if (kind == 0) break;       // end of options
        if (kind == 1) { ++o; continue; }  // NOP
        const std::uint8_t len = packet.u8(o + 1);
        if (len < 2 || o + len > l4 + data_off) break;  // malformed
        if (kind == 5 && len >= 10) {
          tcp.sack = {{packet.u32be(o + 2), packet.u32be(o + 6)}};
        }
        o += len;
      }
      out.tcp = tcp;
      out.payload_offset = l4 + data_off;
      break;
    }
    case IpProto::Icmp: {
      if (packet.size() < l4 + kIcmpEchoBytes) return std::nullopt;
      out.icmp = IcmpEchoHeader{.type = packet.u8(l4),
                                .id = packet.u16be(l4 + 4),
                                .seq = packet.u16be(l4 + 6)};
      out.payload_offset = l4 + kIcmpEchoBytes;
      break;
    }
    default:
      break;  // unknown L4: payload starts right after IPv4
  }
  return out;
}

Packet build_ethernet(const EthernetHeader& eth,
                      const std::optional<VlanTag>& vlan,
                      std::span<const std::byte> payload) {
  Packet packet;
  emit_l2(packet, eth, vlan);
  packet.append(payload);
  return packet;
}

Packet build_udp(const EthernetHeader& eth, const std::optional<VlanTag>& vlan,
                 Ipv4Header ip, UdpHeader udp,
                 std::span<const std::byte> payload) {
  ip.proto = IpProto::Udp;
  Packet packet;
  EthernetHeader eth2 = eth;
  eth2.ethertype = static_cast<std::uint16_t>(EtherType::Ipv4);
  const std::size_t l3 = emit_l2(packet, eth2, vlan);
  const auto total =
      static_cast<std::uint16_t>(kIpv4Bytes + kUdpBytes + payload.size());
  emit_ipv4(packet, l3, ip, total);
  const std::size_t l4 = l3 + kIpv4Bytes;
  packet.resize(l4 + kUdpBytes);
  packet.set_u16be(l4, udp.src_port);
  packet.set_u16be(l4 + 2, udp.dst_port);
  packet.set_u16be(l4 + 4,
                   static_cast<std::uint16_t>(kUdpBytes + payload.size()));
  packet.set_u16be(l4 + 6, 0);
  packet.append(payload);
  write_ipv4_checksum(packet, l3);
  write_l4_checksum(packet, l3, l4, l4 + 6, IpProto::Udp);
  return packet;
}

Packet build_tcp(const EthernetHeader& eth, const std::optional<VlanTag>& vlan,
                 Ipv4Header ip, const TcpHeader& tcp,
                 std::span<const std::byte> payload) {
  ip.proto = IpProto::Tcp;
  Packet packet;
  EthernetHeader eth2 = eth;
  eth2.ethertype = static_cast<std::uint16_t>(EtherType::Ipv4);
  const std::size_t l3 = emit_l2(packet, eth2, vlan);
  const std::size_t opt_bytes = tcp.sack ? 12 : 0;
  const auto total = static_cast<std::uint16_t>(kIpv4Bytes + kTcpBytes +
                                                opt_bytes + payload.size());
  emit_ipv4(packet, l3, ip, total);
  const std::size_t l4 = l3 + kIpv4Bytes;
  packet.resize(l4 + kTcpBytes + opt_bytes);
  packet.set_u16be(l4, tcp.src_port);
  packet.set_u16be(l4 + 2, tcp.dst_port);
  packet.set_u32be(l4 + 4, tcp.seq);
  packet.set_u32be(l4 + 8, tcp.ack);
  packet.set_u8(l4 + 12,
                static_cast<std::uint8_t>(((kTcpBytes + opt_bytes) / 4) << 4));
  packet.set_u8(l4 + 13, tcp.flags);
  packet.set_u16be(l4 + 14, tcp.window);
  packet.set_u16be(l4 + 16, 0);  // checksum placeholder
  packet.set_u16be(l4 + 18, 0);  // urgent pointer
  if (tcp.sack) {
    packet.set_u8(l4 + 20, 1);   // NOP
    packet.set_u8(l4 + 21, 1);   // NOP
    packet.set_u8(l4 + 22, 5);   // kind: SACK
    packet.set_u8(l4 + 23, 10);  // length
    packet.set_u32be(l4 + 24, tcp.sack->first);
    packet.set_u32be(l4 + 28, tcp.sack->second);
  }
  packet.append(payload);
  write_ipv4_checksum(packet, l3);
  write_l4_checksum(packet, l3, l4, l4 + 16, IpProto::Tcp);
  return packet;
}

Packet build_arp(const ArpHeader& arp) {
  Packet packet;
  const EthernetHeader eth{
      .dst = arp.oper == kArpRequest ? MacAddress::broadcast()
                                     : arp.target_mac,
      .src = arp.sender_mac,
      .ethertype = static_cast<std::uint16_t>(EtherType::Arp)};
  const std::size_t off = emit_l2(packet, eth, std::nullopt);
  packet.resize(off + 28);
  packet.set_u16be(off, 1);           // htype: Ethernet
  packet.set_u16be(off + 2, 0x0800);  // ptype: IPv4
  packet.set_u8(off + 4, 6);
  packet.set_u8(off + 5, 4);
  packet.set_u16be(off + 6, arp.oper);
  packet.set_mac_at(off + 8, arp.sender_mac);
  packet.set_u32be(off + 14, arp.sender_ip.value());
  packet.set_mac_at(off + 18, arp.target_mac);
  packet.set_u32be(off + 24, arp.target_ip.value());
  return packet;
}

Packet build_icmp_echo(const EthernetHeader& eth,
                       const std::optional<VlanTag>& vlan, Ipv4Header ip,
                       const IcmpEchoHeader& icmp,
                       std::span<const std::byte> payload) {
  ip.proto = IpProto::Icmp;
  Packet packet;
  EthernetHeader eth2 = eth;
  eth2.ethertype = static_cast<std::uint16_t>(EtherType::Ipv4);
  const std::size_t l3 = emit_l2(packet, eth2, vlan);
  const auto total =
      static_cast<std::uint16_t>(kIpv4Bytes + kIcmpEchoBytes + payload.size());
  emit_ipv4(packet, l3, ip, total);
  const std::size_t l4 = l3 + kIpv4Bytes;
  packet.resize(l4 + kIcmpEchoBytes);
  packet.set_u8(l4, icmp.type);
  packet.set_u8(l4 + 1, 0);      // code
  packet.set_u16be(l4 + 2, 0);   // checksum placeholder
  packet.set_u16be(l4 + 4, icmp.id);
  packet.set_u16be(l4 + 6, icmp.seq);
  packet.append(payload);
  write_ipv4_checksum(packet, l3);
  write_icmp_checksum(packet, l4);
  return packet;
}

void set_dl_dst(Packet& packet, const MacAddress& mac) {
  NETCO_ASSERT(packet.size() >= kEthBytes);
  packet.set_mac_at(0, mac);
}

void set_dl_src(Packet& packet, const MacAddress& mac) {
  NETCO_ASSERT(packet.size() >= kEthBytes);
  packet.set_mac_at(6, mac);
}

void set_vlan(Packet& packet, std::uint16_t vid, std::uint8_t pcp) {
  NETCO_ASSERT(packet.size() >= kEthBytes);
  const std::uint16_t tci = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(pcp & 0x7) << 13) | (vid & 0x0FFF));
  if (packet.u16be(12) == static_cast<std::uint16_t>(EtherType::Vlan)) {
    packet.set_u16be(14, tci);
    return;
  }
  // Insert a fresh tag: TPID at 12, TCI at 14, original ethertype moves to 16.
  const std::uint16_t inner = packet.u16be(12);
  packet.insert_zeros(12, kVlanBytes);
  packet.set_u16be(12, static_cast<std::uint16_t>(EtherType::Vlan));
  packet.set_u16be(14, tci);
  packet.set_u16be(16, inner);
}

void strip_vlan(Packet& packet) {
  if (packet.size() < kEthBytes + kVlanBytes) return;
  if (packet.u16be(12) != static_cast<std::uint16_t>(EtherType::Vlan)) return;
  const std::uint16_t inner = packet.u16be(16);
  packet.erase(12, kVlanBytes);
  packet.set_u16be(12, inner);
}

void set_nw_dst(Packet& packet, Ipv4Address dst) {
  const auto parsed = parse_packet(packet);
  if (!parsed || !parsed->ipv4) return;
  packet.set_u32be(parsed->l3_offset + 16, dst.value());
  fix_checksums(packet);
}

void corrupt_byte(Packet& packet, std::size_t offset) {
  if (packet.empty()) return;
  const std::size_t at = offset % packet.size();
  packet.set_u8(at, static_cast<std::uint8_t>(packet.u8(at) ^ 0xFF));
}

void fix_checksums(Packet& packet) {
  const auto parsed = parse_packet(packet);
  if (!parsed || !parsed->ipv4) return;
  write_ipv4_checksum(packet, parsed->l3_offset);
  if (parsed->udp) {
    write_l4_checksum(packet, parsed->l3_offset, parsed->l4_offset,
                      parsed->l4_offset + 6, IpProto::Udp);
  } else if (parsed->tcp) {
    write_l4_checksum(packet, parsed->l3_offset, parsed->l4_offset,
                      parsed->l4_offset + 16, IpProto::Tcp);
  } else if (parsed->icmp) {
    write_icmp_checksum(packet, parsed->l4_offset);
  }
}

bool checksums_valid(const Packet& packet) {
  const auto parsed = parse_packet(packet);
  if (!parsed) return false;
  if (!parsed->ipv4) return true;  // non-IP: nothing to verify
  const std::size_t l3 = parsed->l3_offset;
  if (internet_checksum(packet.slice(l3, kIpv4Bytes)) != 0) return false;

  const std::size_t l4 = parsed->l4_offset;
  const std::size_t l4_len = packet.size() - l4;
  if (parsed->udp || parsed->tcp) {
    const std::uint32_t pseudo = pseudo_header_sum(
        parsed->ipv4->src, parsed->ipv4->dst,
        static_cast<std::uint8_t>(parsed->ipv4->proto),
        static_cast<std::uint16_t>(l4_len));
    return internet_checksum(packet.slice(l4, l4_len), pseudo) == 0;
  }
  if (parsed->icmp) {
    return internet_checksum(packet.slice(l4, l4_len)) == 0;
  }
  return true;
}

}  // namespace netco::net
