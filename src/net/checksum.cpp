#include "net/checksum.h"

namespace netco::net {

std::uint32_t checksum_accumulate(std::span<const std::byte> data,
                                  std::uint32_t state) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    state += (static_cast<std::uint32_t>(data[i]) << 8) |
             static_cast<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) {  // odd trailing byte is padded with zero
    state += static_cast<std::uint32_t>(data[i]) << 8;
  }
  return state;
}

std::uint16_t internet_checksum(std::span<const std::byte> data,
                                std::uint32_t initial) noexcept {
  std::uint32_t sum = checksum_accumulate(data, initial);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint32_t pseudo_header_sum(Ipv4Address src, Ipv4Address dst,
                                std::uint8_t proto,
                                std::uint16_t l4_length) noexcept {
  std::uint32_t sum = 0;
  sum += src.value() >> 16;
  sum += src.value() & 0xFFFF;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xFFFF;
  sum += proto;
  sum += l4_length;
  return sum;
}

}  // namespace netco::net
