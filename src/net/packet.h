// Packet: the unit of data exchanged by every simulated component.
//
// A Packet is a value type with copy-on-write payload sharing: the wire
// bytes (network byte order, starting at the Ethernet header, no
// preamble/FCS) live in a refcounted immutable buffer, so copying a
// Packet — the hub's k-fold fan-out, link transmission, compare cache
// entries — is a refcount bump, not a deep copy. Any mutator detaches a
// private buffer first, which preserves exact value semantics: mutating
// one copy never affects its siblings.
//
// The buffer also memoizes the FNV-1a content hash (and the last prefix
// hash), computed at most once per payload *generation* — every copy that
// shares the buffer shares the hash, and any mutation invalidates it. The
// compare element's "bit-by-bit" comparison from the paper is literally
// `a == b` over the byte buffers, i.e. memcmp semantics; two packets
// sharing one buffer short-circuit to pointer equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/hash.h"
#include "net/address.h"

namespace netco::net {

/// Comparable, hashable byte buffer with big-endian accessors and
/// copy-on-write payload sharing.
class Packet {
 public:
  /// Empty packet (size 0). Rarely useful except as a placeholder.
  Packet() = default;

  /// Takes ownership of raw wire bytes.
  explicit Packet(std::vector<std::byte> bytes)
      : buffer_(std::make_shared<Buffer>(std::move(bytes))) {}

  /// A packet of `size` zero bytes.
  static Packet zeroed(std::size_t size) {
    return Packet(std::vector<std::byte>(size));
  }

  /// Number of wire bytes (Ethernet header through end of payload).
  [[nodiscard]] std::size_t size() const noexcept {
    return buffer_ == nullptr ? 0 : buffer_->bytes.size();
  }

  /// True for a zero-length buffer.
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Read-only view of all wire bytes. The view stays valid while any
  /// Packet (or copy) keeps the underlying buffer alive and unmutated.
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return buffer_ == nullptr ? std::span<const std::byte>{}
                              : std::span<const std::byte>(buffer_->bytes);
  }

  /// Mutable view of all wire bytes. Detaches from any shared buffer and
  /// invalidates the memoized hashes — treat every call as a mutation.
  [[nodiscard]] std::span<std::byte> bytes_mut();

  /// Read-only view of a sub-range; bounds-checked by assertion.
  [[nodiscard]] std::span<const std::byte> slice(std::size_t offset,
                                                 std::size_t len) const;

  // --- big-endian scalar accessors -------------------------------------
  [[nodiscard]] std::uint8_t u8(std::size_t offset) const;
  [[nodiscard]] std::uint16_t u16be(std::size_t offset) const;
  [[nodiscard]] std::uint32_t u32be(std::size_t offset) const;
  void set_u8(std::size_t offset, std::uint8_t value);
  void set_u16be(std::size_t offset, std::uint16_t value);
  void set_u32be(std::size_t offset, std::uint32_t value);

  /// Reads/writes a 6-byte MAC address at `offset`.
  [[nodiscard]] MacAddress mac_at(std::size_t offset) const;
  void set_mac_at(std::size_t offset, const MacAddress& mac);

  /// Appends raw bytes at the tail (used by builders).
  void append(std::span<const std::byte> data);

  /// Grows/shrinks to `size`, zero-filling new bytes.
  void resize(std::size_t size);

  /// Inserts `count` zero bytes at `offset` (used to push a VLAN tag in).
  void insert_zeros(std::size_t offset, std::size_t count);

  /// Removes `count` bytes at `offset` (used to strip a VLAN tag).
  void erase(std::size_t offset, std::size_t count);

  /// FNV-1a hash over all wire bytes (the compare's "hashed" mode key and
  /// the tracer's stable packet id). Memoized: computed once per payload
  /// generation and shared by every copy aliasing the buffer.
  [[nodiscard]] std::uint64_t content_hash() const noexcept;

  /// FNV-1a hash over the first `prefix_len` bytes (header-only mode).
  /// The most recent prefix length is memoized alongside the content hash
  /// (the compare always asks for its one configured prefix).
  [[nodiscard]] std::uint64_t prefix_hash(std::size_t prefix_len) const noexcept;

  /// Bitwise equality — the paper's memcmp() compare. Copies sharing one
  /// buffer compare equal in O(1); distinct buffers with both hashes
  /// memoized and different short-circuit to unequal.
  friend bool operator==(const Packet& a, const Packet& b) noexcept;

  /// True when both packets alias the same payload buffer (COW fast-path
  /// introspection for tests and benches; equality is implied).
  [[nodiscard]] bool shares_payload_with(const Packet& other) const noexcept {
    return buffer_ != nullptr && buffer_ == other.buffer_;
  }

  /// Short human-readable summary ("60B 02:..->02:.. type=0800").
  [[nodiscard]] std::string summary() const;

 private:
  /// The refcounted payload. Immutable while shared; the hash memos are
  /// logically part of the payload value (mutable because memoization must
  /// work through const packets).
  struct Buffer {
    explicit Buffer(std::vector<std::byte> b) : bytes(std::move(b)) {}
    std::vector<std::byte> bytes;
    mutable std::uint64_t content_hash = 0;
    mutable std::uint64_t prefix_hash = 0;
    mutable std::size_t prefix_len = 0;
    mutable bool content_hash_valid = false;
    mutable bool prefix_hash_valid = false;

    void invalidate_hashes() const noexcept {
      content_hash_valid = false;
      prefix_hash_valid = false;
    }
  };

  /// Ensures a uniquely owned buffer (cloning if shared, allocating if
  /// null) and invalidates the memoized hashes. Every mutator funnels
  /// through here — that is the whole COW invariant.
  Buffer& detach();

  std::shared_ptr<Buffer> buffer_;
};

}  // namespace netco::net
