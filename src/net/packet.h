// Packet: the unit of data exchanged by every simulated component.
//
// A Packet is a value type owning its wire bytes (network byte order,
// starting at the Ethernet header, no preamble/FCS). The compare element's
// "bit-by-bit" comparison from the paper is therefore literally
// `a == b` over the byte buffers, i.e. memcmp semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hash.h"
#include "net/address.h"

namespace netco::net {

/// Owning, comparable, hashable byte buffer with big-endian accessors.
class Packet {
 public:
  /// Empty packet (size 0). Rarely useful except as a placeholder.
  Packet() = default;

  /// Takes ownership of raw wire bytes.
  explicit Packet(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  /// A packet of `size` zero bytes.
  static Packet zeroed(std::size_t size) {
    return Packet(std::vector<std::byte>(size));
  }

  /// Number of wire bytes (Ethernet header through end of payload).
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

  /// True for a zero-length buffer.
  [[nodiscard]] bool empty() const noexcept { return bytes_.empty(); }

  /// Read-only view of all wire bytes.
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return bytes_;
  }

  /// Mutable view of all wire bytes.
  [[nodiscard]] std::span<std::byte> bytes_mut() noexcept { return bytes_; }

  /// Read-only view of a sub-range; bounds-checked by assertion.
  [[nodiscard]] std::span<const std::byte> slice(std::size_t offset,
                                                 std::size_t len) const;

  // --- big-endian scalar accessors -------------------------------------
  [[nodiscard]] std::uint8_t u8(std::size_t offset) const;
  [[nodiscard]] std::uint16_t u16be(std::size_t offset) const;
  [[nodiscard]] std::uint32_t u32be(std::size_t offset) const;
  void set_u8(std::size_t offset, std::uint8_t value);
  void set_u16be(std::size_t offset, std::uint16_t value);
  void set_u32be(std::size_t offset, std::uint32_t value);

  /// Reads/writes a 6-byte MAC address at `offset`.
  [[nodiscard]] MacAddress mac_at(std::size_t offset) const;
  void set_mac_at(std::size_t offset, const MacAddress& mac);

  /// Appends raw bytes at the tail (used by builders).
  void append(std::span<const std::byte> data);

  /// Grows/shrinks to `size`, zero-filling new bytes.
  void resize(std::size_t size) { bytes_.resize(size); }

  /// Inserts `count` zero bytes at `offset` (used to push a VLAN tag in).
  void insert_zeros(std::size_t offset, std::size_t count);

  /// Removes `count` bytes at `offset` (used to strip a VLAN tag).
  void erase(std::size_t offset, std::size_t count);

  /// FNV-1a hash over all wire bytes (the compare's "hashed" mode key).
  [[nodiscard]] std::uint64_t content_hash() const noexcept {
    return fnv1a(bytes_);
  }

  /// FNV-1a hash over the first `prefix_len` bytes (header-only mode).
  [[nodiscard]] std::uint64_t prefix_hash(std::size_t prefix_len) const noexcept;

  /// Bitwise equality — the paper's memcmp() compare.
  friend bool operator==(const Packet&, const Packet&) = default;

  /// Short human-readable summary ("60B 02:..->02:.. type=0800").
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace netco::net
