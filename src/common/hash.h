// Small non-cryptographic hashing utilities (FNV-1a 64-bit).
//
// Used for the compare's "hashed" mode and for hash-map keys over packet
// bytes. Not collision-resistant against adversaries — the threat-model
// implications of that are discussed in netco/compare.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace netco {

/// FNV-1a offset basis / prime (64-bit variant).
inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// Incrementally folds `data` into an FNV-1a state (start with kFnvOffset).
constexpr std::uint64_t fnv1a(std::span<const std::byte> data,
                              std::uint64_t state = kFnvOffset) noexcept {
  for (std::byte b : data) {
    state ^= static_cast<std::uint64_t>(b);
    state *= kFnvPrime;
  }
  return state;
}

/// Mixes a 64-bit value into a hash state (for composite keys).
constexpr std::uint64_t hash_mix(std::uint64_t state,
                                 std::uint64_t value) noexcept {
  state ^= value + 0x9E3779B97F4A7C15ULL + (state << 6) + (state >> 2);
  return state;
}

}  // namespace netco
