// Deterministic random number generation.
//
// Every source of randomness in a simulation flows from one seeded `Rng`
// (xoshiro256** seeded through SplitMix64). Identical seeds produce
// identical simulations on every platform, which is what makes the
// property-based tests and the benchmark tables reproducible.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.h"

namespace netco {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Deliberately not `std::mt19937`: the standard distributions are not
/// portable across library implementations, and we need bit-identical runs.
class Rng {
 public:
  /// Seeds the generator; any 64-bit value (including 0) is acceptable.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless method, debiased.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Bernoulli trial that succeeds with probability `p` in [0, 1].
  bool chance(double p) noexcept;

  /// Derives an independent child generator (for per-component streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace netco
