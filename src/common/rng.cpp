#include "common/rng.h"

#include <cmath>

namespace netco {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step; used only for seeding so weak seeds still spread out.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) noexcept {
  NETCO_DASSERT(bound > 0);
  // Debiased modulo rejection; bound is tiny relative to 2^64 in practice.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
  NETCO_DASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform_u64(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) noexcept {
  NETCO_DASSERT(mean > 0.0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace netco
