// Strongly-typed integer identifiers.
//
// The simulator hands out many kinds of small integer ids (nodes, ports,
// flows, tunnels...). Wrapping them in distinct types makes it impossible to
// pass a PortId where a NodeId is expected, at zero runtime cost.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace netco {

/// CRTP-free strong id: `using NodeId = StrongId<struct NodeIdTag>;`
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep = Rep;

  /// Default-constructed ids are invalid().
  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  /// Sentinel used for "no id assigned yet".
  static constexpr StrongId invalid() noexcept {
    return StrongId(static_cast<Rep>(-1));
  }

  /// Underlying integer value.
  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  /// True unless this is the invalid() sentinel.
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != static_cast<Rep>(-1);
  }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

 private:
  Rep value_ = static_cast<Rep>(-1);
};

}  // namespace netco

/// Hash support so strong ids can key unordered containers.
template <typename Tag, typename Rep>
struct std::hash<netco::StrongId<Tag, Rep>> {
  std::size_t operator()(netco::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
