// Minimal leveled logger.
//
// The simulator is single-threaded by design, so the logger needs no
// synchronization. Log lines carry the simulation component name; benches
// and tests normally run with level Warn to keep output clean.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/fmt.h"

namespace netco::log {

/// Severity of a log record, ordered from most to least verbose.
enum class Level : std::uint8_t { Trace = 0, Debug, Info, Warn, Error, Off };

/// Returns the current global threshold; records below it are dropped.
Level threshold() noexcept;

/// Sets the global threshold. Thread-compatible (call before running a
/// simulation, not concurrently with it).
void set_threshold(Level level) noexcept;

/// Emits one formatted record to stderr. Prefer the NETCO_LOG_* macros.
void write(Level level, std::string_view component, std::string_view message);

/// Formats and emits a record if `level` passes the threshold.
template <typename... Args>
void logf(Level level, std::string_view component, std::string_view spec,
          const Args&... args) {
  if (level < threshold()) return;
  write(level, component, ::netco::fmt(spec, args...));
}

}  // namespace netco::log

#define NETCO_LOG_TRACE(component, ...) \
  ::netco::log::logf(::netco::log::Level::Trace, component, __VA_ARGS__)
#define NETCO_LOG_DEBUG(component, ...) \
  ::netco::log::logf(::netco::log::Level::Debug, component, __VA_ARGS__)
#define NETCO_LOG_INFO(component, ...) \
  ::netco::log::logf(::netco::log::Level::Info, component, __VA_ARGS__)
#define NETCO_LOG_WARN(component, ...) \
  ::netco::log::logf(::netco::log::Level::Warn, component, __VA_ARGS__)
#define NETCO_LOG_ERROR(component, ...) \
  ::netco::log::logf(::netco::log::Level::Error, component, __VA_ARGS__)
