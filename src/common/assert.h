// Assertion helpers used across the NetCo code base.
//
// NETCO_ASSERT is active in all build types (simulation correctness depends
// on the invariants it checks, and the cost is negligible compared to the
// event loop); NETCO_DASSERT compiles away in NDEBUG builds and is meant for
// hot-path checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace netco::detail {

/// Prints an assertion-failure diagnostic and aborts. Out-of-line so the
/// macro expansion stays tiny.
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "NETCO_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace netco::detail

#define NETCO_ASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr)) [[unlikely]]                                               \
      ::netco::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);     \
  } while (false)

#define NETCO_ASSERT_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) [[unlikely]]                                               \
      ::netco::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));       \
  } while (false)

#ifdef NDEBUG
#define NETCO_DASSERT(expr) ((void)0)
#else
#define NETCO_DASSERT(expr) NETCO_ASSERT(expr)
#endif
