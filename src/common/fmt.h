// Tiny "{}"-placeholder formatter (std::format is unavailable on GCC 12).
//
// Supports only the plain `{}` placeholder; anything needing width/precision
// or hex uses snprintf at the call site. Arguments are rendered with
// operator<< so any streamable type works.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace netco {
namespace detail {

inline void fmt_impl(std::ostringstream& out, std::string_view spec) {
  out << spec;
}

template <typename First, typename... Rest>
void fmt_impl(std::ostringstream& out, std::string_view spec,
              const First& first, const Rest&... rest) {
  const auto pos = spec.find("{}");
  if (pos == std::string_view::npos) {
    out << spec;
    return;  // surplus arguments are ignored rather than UB
  }
  out << spec.substr(0, pos) << first;
  fmt_impl(out, spec.substr(pos + 2), rest...);
}

}  // namespace detail

/// Formats `spec`, substituting each `{}` with the next argument.
template <typename... Args>
std::string fmt(std::string_view spec, const Args&... args) {
  std::ostringstream out;
  detail::fmt_impl(out, spec, args...);
  return out.str();
}

}  // namespace netco
