// Units used throughout the simulator: data rates and sizes.
#pragma once

#include <compare>
#include <cstdint>

namespace netco {

/// A link or application data rate in bits per second.
///
/// Stored as a plain 64-bit count wrapped in a strong type; arithmetic that
/// mixes rates with sizes and times lives next to the time type in sim/.
class DataRate {
 public:
  constexpr DataRate() noexcept = default;

  /// Named constructors; prefer these over the raw-value constructor.
  static constexpr DataRate bits_per_sec(std::uint64_t bps) noexcept {
    return DataRate(bps);
  }
  static constexpr DataRate kilobits_per_sec(std::uint64_t kbps) noexcept {
    return DataRate(kbps * 1000);
  }
  static constexpr DataRate megabits_per_sec(std::uint64_t mbps) noexcept {
    return DataRate(mbps * 1000 * 1000);
  }
  static constexpr DataRate gigabits_per_sec(std::uint64_t gbps) noexcept {
    return DataRate(gbps * 1000ULL * 1000 * 1000);
  }

  /// Raw bits per second.
  [[nodiscard]] constexpr std::uint64_t bps() const noexcept { return bps_; }
  /// Rate expressed in megabits per second (floating point, for reporting).
  [[nodiscard]] constexpr double mbps() const noexcept {
    return static_cast<double>(bps_) / 1e6;
  }
  /// True for a non-zero rate.
  [[nodiscard]] constexpr bool positive() const noexcept { return bps_ > 0; }

  friend constexpr auto operator<=>(DataRate, DataRate) noexcept = default;

 private:
  constexpr explicit DataRate(std::uint64_t bps) noexcept : bps_(bps) {}
  std::uint64_t bps_ = 0;
};

/// Common Ethernet size constants (bytes).
inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::size_t kEthernetFcsBytes = 4;
inline constexpr std::size_t kEthernetMtu = 1500;
inline constexpr std::size_t kMaxFrameBytes =
    kEthernetHeaderBytes + 4 /*VLAN*/ + kEthernetMtu + kEthernetFcsBytes;

}  // namespace netco
