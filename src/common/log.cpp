#include "common/log.h"

#include <cstdio>

namespace netco::log {
namespace {

Level g_threshold = Level::Warn;

constexpr const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info:  return "INFO ";
    case Level::Warn:  return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level threshold() noexcept { return g_threshold; }

void set_threshold(Level level) noexcept { g_threshold = level; }

void write(Level level, std::string_view component, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace netco::log
