// QuarantineManager + HealthService: actuation for the health loop.
//
// QuarantineManager turns HealthActions into circuit reconfiguration on a
// built CombinerInstance:
//
//  * quarantine — the edge fan-out rule (the priority-30 "hub" rule that
//    multiplies upstream packets toward every replica) is re-installed
//    with the replica's ports removed (FlowTable::add replaces an entry
//    with an equal match at the same priority, so this is an atomic rule
//    rewrite, not an add/remove race), and every edge compare core drops
//    the replica from its live set — the adaptive quorum shrinks to a
//    majority over the remaining live replicas, falling back to
//    first-copy detection mode at 2;
//
//  * probation probes — while anything is quarantined, every probe_period
//    the fan-out opens to quarantined (not banned) replicas for
//    probe_window: a sampled trickle whose copies the compare still
//    scores (live=false verdicts) but never counts toward quorums;
//
//  * readmit / ban — the inverse rewrite, or the permanent one.
//
// HealthService is the glue: it implements core::VerdictSink, installs
// itself on every edge core of the combiner, feeds the HealthMonitor, and
// actuates whatever the monitor decides — emitting health.quarantine /
// health.readmit / health.ban trace records and health.* metrics as it
// goes. Everything runs inside the simulator's event order, so the loop
// is exactly as seed-deterministic as the traffic it watches.
#pragma once

#include <cstdint>
#include <memory>

#include "health/monitor.h"
#include "netco/combiner.h"
#include "obs/observability.h"
#include "sim/simulator.h"

namespace netco::health {

/// Reconfigures a CombinerInstance's fan-out and live sets (see file
/// comment). Dumb by design: it applies whatever it is told and keeps no
/// scoring state of its own.
class QuarantineManager {
 public:
  QuarantineManager(sim::Simulator& simulator,
                    core::CombinerInstance& combiner, HealthConfig config);

  void quarantine(int replica);
  void readmit(int replica);
  void ban(int replica);

  [[nodiscard]] bool quarantined(int replica) const noexcept {
    return (quarantined_mask_ & bit(replica)) != 0;
  }
  [[nodiscard]] bool banned(int replica) const noexcept {
    return (banned_mask_ & bit(replica)) != 0;
  }
  /// Probation windows opened so far.
  [[nodiscard]] std::uint64_t probe_windows() const noexcept {
    return probe_windows_;
  }

 private:
  [[nodiscard]] static std::uint64_t bit(int replica) noexcept {
    return 1ULL << static_cast<unsigned>(replica);
  }
  /// Re-installs every edge's fan-out rule for the current masks;
  /// probe_open additionally includes quarantined (not banned) replicas.
  void install_fanout(bool probe_open);
  void set_live(int replica, bool live);
  void arm_probe_cycle();
  void open_probe_window();

  sim::Simulator& simulator_;
  core::CombinerInstance& combiner_;
  HealthConfig config_;
  std::uint64_t quarantined_mask_ = 0;  ///< includes banned replicas
  std::uint64_t banned_mask_ = 0;
  bool cycle_armed_ = false;
  std::uint64_t probe_windows_ = 0;
};

/// End-of-run health outcome (bench/soak reporting).
struct HealthSummary {
  std::uint64_t verdicts = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmits = 0;
  std::uint64_t bans = 0;
  std::uint64_t probe_windows = 0;
  /// Sim-time of the first quarantine/readmit, -1 when none happened.
  std::int64_t first_quarantine_ns = -1;
  std::int64_t first_readmit_ns = -1;
  int live_replicas = 0;
};

/// The wired-up loop: verdict stream → monitor → manager (+ obs).
class HealthService final : public core::VerdictSink {
 public:
  /// Installs itself as the verdict sink of every edge core in `combiner`
  /// (which must have a compare, i.e. combine=true). The service must
  /// outlive neither the combiner nor the simulator; the destructor
  /// un-installs the sinks.
  HealthService(sim::Simulator& simulator, core::CombinerInstance& combiner,
                const HealthConfig& config);
  ~HealthService() override;

  HealthService(const HealthService&) = delete;
  HealthService& operator=(const HealthService&) = delete;

  void on_verdict(const core::ReplicaVerdict& verdict) override;

  [[nodiscard]] const HealthMonitor& monitor() const noexcept {
    return monitor_;
  }
  [[nodiscard]] const QuarantineManager& manager() const noexcept {
    return manager_;
  }
  [[nodiscard]] HealthSummary summary() const noexcept;

 private:
  void apply(const HealthAction& action);
  /// Exports the replica's current reputation weight to every edge compare
  /// core (and any registered shadow core) — the fast path's vote weights
  /// track the monitor's EWMA in lockstep (§XII).
  void push_weight(int replica);

  sim::Simulator& simulator_;
  core::CombinerInstance& combiner_;
  /// Edge compare cores, resolved once — push_weight runs per verdict and
  /// must not re-hash edge names on the hot path. (Shadow cores register
  /// after construction and are iterated live from the combiner.)
  std::vector<core::CompareCore*> edge_cores_;
  HealthMonitor monitor_;
  QuarantineManager manager_;
  obs::Observability* obs_;
  obs::Counter* verdict_counter_;     ///< "health.verdicts"
  obs::Counter* quarantine_counter_;  ///< "health.quarantines"
  obs::Counter* readmit_counter_;     ///< "health.readmits"
  obs::Counter* ban_counter_;         ///< "health.bans"
  std::int64_t first_quarantine_ns_ = -1;
  std::int64_t first_readmit_ns_ = -1;
};

}  // namespace netco::health
