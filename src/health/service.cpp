#include "health/service.h"

#include <cstdio>
#include <cstdlib>

#include "common/assert.h"
#include "netco/hub.h"

namespace netco::health {

QuarantineManager::QuarantineManager(sim::Simulator& simulator,
                                     core::CombinerInstance& combiner,
                                     HealthConfig config)
    : simulator_(simulator), combiner_(combiner), config_(config) {}

void QuarantineManager::install_fanout(bool probe_open) {
  const int k = static_cast<int>(combiner_.replicas.size());
  for (std::size_t i = 0; i < combiner_.edges.size(); ++i) {
    std::vector<device::PortIndex> ports;
    ports.reserve(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
      const std::uint64_t b = bit(j);
      const bool include =
          (quarantined_mask_ & b) == 0
              ? true
              : probe_open && (banned_mask_ & b) == 0;
      if (include) {
        ports.push_back(
            combiner_.edge_replica_port[i][static_cast<std::size_t>(j)]);
      }
    }
    core::install_hub_rules(*combiner_.edges[i],
                            combiner_.edge_neighbor_port[i], ports);
  }
}

void QuarantineManager::set_live(int replica, bool live) {
  if (combiner_.compare == nullptr) return;
  for (const auto* edge : combiner_.edges) {
    core::CompareCore* core = combiner_.compare->core_for(edge->name());
    if (core != nullptr) {
      core->set_replica_live(replica, live, simulator_.now());
    }
  }
  // A warm standby shadows the primary's quorum rules: keep its live set
  // in lockstep so a failover inherits the current quarantine picture.
  for (core::CompareCore* core : combiner_.shadow_cores) {
    if (core != nullptr) {
      core->set_replica_live(replica, live, simulator_.now());
    }
  }
}

void QuarantineManager::quarantine(int replica) {
  quarantined_mask_ |= bit(replica);
  install_fanout(false);
  set_live(replica, false);
  arm_probe_cycle();
}

void QuarantineManager::readmit(int replica) {
  quarantined_mask_ &= ~bit(replica);
  install_fanout(false);
  set_live(replica, true);
}

void QuarantineManager::ban(int replica) {
  banned_mask_ |= bit(replica);
  quarantined_mask_ |= bit(replica);
  install_fanout(false);
  set_live(replica, false);
}

void QuarantineManager::arm_probe_cycle() {
  if (cycle_armed_) return;
  cycle_armed_ = true;
  simulator_.schedule_after(config_.probe_period,
                            [this] { open_probe_window(); });
}

void QuarantineManager::open_probe_window() {
  // Only quarantined-but-not-banned replicas are probed; with none left
  // the cycle disarms (re-armed by the next quarantine).
  if ((quarantined_mask_ & ~banned_mask_) == 0) {
    cycle_armed_ = false;
    return;
  }
  ++probe_windows_;
  install_fanout(true);
  simulator_.schedule_after(config_.probe_window,
                            [this] { install_fanout(false); });
  simulator_.schedule_after(config_.probe_period,
                            [this] { open_probe_window(); });
}

HealthService::HealthService(sim::Simulator& simulator,
                             core::CombinerInstance& combiner,
                             const HealthConfig& config)
    : simulator_(simulator),
      combiner_(combiner),
      monitor_(config, static_cast<int>(combiner.replicas.size())),
      manager_(simulator, combiner, config),
      obs_(&obs::global()),
      verdict_counter_(&obs_->metrics.counter("health.verdicts")),
      quarantine_counter_(&obs_->metrics.counter("health.quarantines")),
      readmit_counter_(&obs_->metrics.counter("health.readmits")),
      ban_counter_(&obs_->metrics.counter("health.bans")) {
  NETCO_ASSERT(combiner_.compare != nullptr);
  for (const auto* edge : combiner_.edges) {
    core::CompareCore* core = combiner_.compare->core_for(edge->name());
    if (core != nullptr) {
      core->set_verdict_sink(this);
      edge_cores_.push_back(core);
    }
  }
}

HealthService::~HealthService() {
  if (combiner_.compare == nullptr) return;
  for (const auto* edge : combiner_.edges) {
    core::CompareCore* core = combiner_.compare->core_for(edge->name());
    if (core != nullptr) core->set_verdict_sink(nullptr);
  }
}

void HealthService::on_verdict(const core::ReplicaVerdict& verdict) {
  verdict_counter_->inc();
  monitor_.on_verdict(verdict);
  for (const HealthAction& action : monitor_.take_actions()) {
    apply(action);
  }
  // Actions only ever concern the verdict's own replica, so one export
  // after the action loop reflects both the score move and any state
  // transition it caused.
  push_weight(verdict.replica);
}

void HealthService::push_weight(int replica) {
  const double w = monitor_.weight(replica);
  for (core::CompareCore* core : edge_cores_) {
    core->set_replica_weight(replica, w);
  }
  for (core::CompareCore* core : combiner_.shadow_cores) {
    if (core != nullptr) core->set_replica_weight(replica, w);
  }
}

void HealthService::apply(const HealthAction& action) {
  if (std::getenv("NETCO_HEALTH_DEBUG") != nullptr) {
    std::printf("[health] t=%.1fms %s replica=%d score=%.3f\n",
                static_cast<double>(action.at.ns()) / 1e6,
                to_string(action.kind), action.replica, action.score);
  }

  obs::TraceEvent event = obs::TraceEvent::kHealthQuarantine;
  switch (action.kind) {
    case HealthAction::Kind::kQuarantine:
      manager_.quarantine(action.replica);
      quarantine_counter_->inc();
      if (first_quarantine_ns_ < 0) first_quarantine_ns_ = action.at.ns();
      event = obs::TraceEvent::kHealthQuarantine;
      break;
    case HealthAction::Kind::kReadmit:
      manager_.readmit(action.replica);
      readmit_counter_->inc();
      if (first_readmit_ns_ < 0) first_readmit_ns_ = action.at.ns();
      event = obs::TraceEvent::kHealthReadmit;
      break;
    case HealthAction::Kind::kBan:
      manager_.ban(action.replica);
      ban_counter_->inc();
      event = obs::TraceEvent::kHealthBan;
      break;
  }
  obs::Tracer& tracer = obs_->tracer;
  if (tracer.enabled()) {
    // bytes carries the EWMA score in milli-units — enough resolution to
    // reconstruct the decision from the trace alone.
    tracer.emit(action.at.ns(), event, 0, "health", action.replica,
                static_cast<std::uint32_t>(action.score * 1000.0));
  }
}

HealthSummary HealthService::summary() const noexcept {
  HealthSummary s;
  s.verdicts = verdict_counter_->value();
  s.quarantines = quarantine_counter_->value();
  s.readmits = readmit_counter_->value();
  s.bans = ban_counter_->value();
  s.probe_windows = manager_.probe_windows();
  s.first_quarantine_ns = first_quarantine_ns_;
  s.first_readmit_ns = first_readmit_ns_;
  s.live_replicas = monitor_.live_replicas();
  return s;
}

}  // namespace netco::health
