#include "health/monitor.h"

#include <algorithm>

namespace netco::health {

const char* to_string(ReplicaState state) noexcept {
  switch (state) {
    case ReplicaState::kLive: return "live";
    case ReplicaState::kQuarantined: return "quarantined";
    case ReplicaState::kBanned: return "banned";
  }
  return "unknown";
}

const char* to_string(HealthAction::Kind kind) noexcept {
  switch (kind) {
    case HealthAction::Kind::kQuarantine: return "quarantine";
    case HealthAction::Kind::kReadmit: return "readmit";
    case HealthAction::Kind::kBan: return "ban";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(const HealthConfig& config, int k)
    : config_(config), replicas_(static_cast<std::size_t>(k)) {}

int HealthMonitor::live_replicas() const noexcept {
  int live = 0;
  for (const ReplicaHealth& r : replicas_) {
    if (r.state == ReplicaState::kLive) ++live;
  }
  return live;
}

double HealthMonitor::weight(int index) const noexcept {
  if (index < 0 || index >= static_cast<int>(replicas_.size())) return 0.0;
  const ReplicaHealth& r = replicas_[static_cast<std::size_t>(index)];
  if (r.state != ReplicaState::kLive) return 0.0;
  return std::clamp(1.0 - r.score, 0.0, 1.0);
}

void HealthMonitor::on_verdict(const core::ReplicaVerdict& verdict) {
  if (verdict.replica < 0 ||
      verdict.replica >= static_cast<int>(replicas_.size())) {
    return;
  }
  ReplicaHealth& r = replicas_[static_cast<std::size_t>(verdict.replica)];
  if (r.state == ReplicaState::kBanned) return;

  double weight = 0.0;
  bool saturating = false;
  switch (verdict.kind) {
    case core::VerdictKind::kMatched: weight = 0.0; break;
    case core::VerdictKind::kMissed: weight = config_.weight_missed; break;
    case core::VerdictKind::kDivergent:
      weight = config_.weight_divergent;
      break;
    case core::VerdictKind::kFloodFlagged:
    case core::VerdictKind::kInactive:
      saturating = true;
      break;
  }

  if (saturating) {
    // The compare's own windowed monitor already averaged this signal;
    // re-smoothing it would just delay the reaction.
    r.score = 1.0;
    if (r.verdicts < config_.min_verdicts) r.verdicts = config_.min_verdicts;
  } else {
    r.score = (1.0 - config_.alpha) * r.score + config_.alpha * weight;
    ++r.verdicts;
  }

  if (r.state == ReplicaState::kQuarantined) {
    // Probation: matched probes build the readmission case, any deviation
    // restarts it. A silent (crashed) replica produces no verdicts at all
    // and simply stays quarantined.
    if (verdict.kind == core::VerdictKind::kMatched) {
      ++r.probe_matches;
    } else {
      r.probe_matches = 0;
    }
    if (r.probe_matches >= config_.readmit_probe_matches &&
        r.score <= config_.readmit_threshold) {
      r.state = ReplicaState::kLive;
      r.probe_matches = 0;
      r.last_transition = verdict.at;
      pending_.push_back(HealthAction{.kind = HealthAction::Kind::kReadmit,
                                      .replica = verdict.replica,
                                      .score = r.score,
                                      .at = verdict.at});
    }
    return;
  }

  if (r.verdicts < config_.min_verdicts ||
      r.score < config_.quarantine_threshold) {
    return;
  }
  // Floor: quarantining the last min_live replicas trades a partial fault
  // for a total outage. The score stays saturated, so the moment another
  // replica is readmitted this one is reconsidered on its next verdict.
  if (live_replicas() <= config_.min_live) return;

  if (r.quarantines >= config_.max_quarantines) {
    r.state = ReplicaState::kBanned;
    r.last_transition = verdict.at;
    pending_.push_back(HealthAction{.kind = HealthAction::Kind::kBan,
                                    .replica = verdict.replica,
                                    .score = r.score,
                                    .at = verdict.at});
    return;
  }
  r.state = ReplicaState::kQuarantined;
  ++r.quarantines;
  r.probe_matches = 0;
  r.last_transition = verdict.at;
  pending_.push_back(HealthAction{.kind = HealthAction::Kind::kQuarantine,
                                  .replica = verdict.replica,
                                  .score = r.score,
                                  .at = verdict.at});
}

std::vector<HealthAction> HealthMonitor::take_actions() {
  std::vector<HealthAction> out;
  out.swap(pending_);
  return out;
}

}  // namespace netco::health
