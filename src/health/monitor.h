// HealthMonitor: windowed EWMA deviation scoring over the compare's
// per-replica verdict stream, with hysteresis (tentpole of the health
// subsystem — closing the loop the paper leaves to "the network
// administrator").
//
// The monitor is pure logic, like CompareCore: it consumes ReplicaVerdict
// records (whatever edge they formed on — evidence about one replica from
// every edge folds into one score) and produces HealthActions. It never
// touches the network; QuarantineManager (service.h) actuates.
//
// State machine per replica:
//
//             score ≥ quarantine_threshold            probe matches +
//            (after ≥ min_verdicts, while              score decays
//             more than min_live stay live)          ≤ readmit_threshold
//   kLive ──────────────────────────────▶ kQuarantined ─────────▶ kLive
//     │                                        │
//     │   max_quarantines prior round-trips    │ (stays quarantined while
//     └──────────────▶ kBanned ◀───────────────┘  probes keep failing)
//
// Scoring: matched verdicts pull the EWMA toward 0, missed/divergent
// verdicts push it toward their weights; the two already-thresholded
// signals (flood-flagged, inactive) saturate the score to 1.0 outright —
// the compare's own windowed monitors did the averaging. Hysteresis comes
// from the gap between the quarantine and readmit thresholds plus the
// consecutive-probe-match requirement, so a replica oscillating near one
// threshold cannot flap the circuit.
//
// Determinism: scores are plain double arithmetic over an order-fixed
// verdict stream, and every decision is stamped with the verdict's
// sim-time — same seed, same actions, bit-identical traces.
#pragma once

#include <cstdint>
#include <vector>

#include "netco/verdict.h"
#include "sim/time.h"

namespace netco::health {

/// Where a replica stands with the health loop.
enum class ReplicaState : std::uint8_t {
  kLive,         ///< fanned out to, votes toward quorums
  kQuarantined,  ///< masked out; receives the probation probe trickle
  kBanned,       ///< permanently out (exhausted max_quarantines)
};

[[nodiscard]] const char* to_string(ReplicaState state) noexcept;

/// Tuning for the whole health subsystem (monitor + quarantine manager).
struct HealthConfig {
  /// Master switch: disabled (the default) wires nothing — existing
  /// deployments stay bit-identical.
  bool enabled = false;

  /// EWMA smoothing factor: score = (1-alpha)·score + alpha·weight.
  double alpha = 0.15;
  /// Score at/above which a live replica is quarantined.
  double quarantine_threshold = 0.6;
  /// Score at/below which a quarantined replica may be readmitted.
  double readmit_threshold = 0.2;
  /// Verdicts a replica must accumulate before the quarantine threshold is
  /// consulted — a cold-start guard so one early wild verdict cannot
  /// quarantine a healthy replica. The saturating signals (flood-flagged,
  /// inactive) bypass the guard: the compare already windowed them.
  std::uint64_t min_verdicts = 16;
  /// Per-verdict deviation weights (matched weighs 0).
  double weight_missed = 0.7;
  double weight_divergent = 1.0;

  /// Consecutive matched probe copies required (on top of the score
  /// condition) before a quarantined replica is readmitted.
  std::uint64_t readmit_probe_matches = 12;
  /// Quarantine round-trips before the next quarantine becomes a ban.
  int max_quarantines = 3;
  /// Never quarantine below this many live replicas — an entirely masked
  /// circuit would be a self-inflicted outage worse than the fault.
  int min_live = 2;

  /// Probation probe cadence (QuarantineManager): every probe_period the
  /// fan-out opens to quarantined replicas for probe_window.
  sim::Duration probe_period = sim::Duration::milliseconds(20);
  sim::Duration probe_window = sim::Duration::milliseconds(4);
};

/// One decision the monitor wants actuated.
struct HealthAction {
  enum class Kind : std::uint8_t { kQuarantine, kReadmit, kBan };
  Kind kind = Kind::kQuarantine;
  int replica = 0;
  double score = 0.0;   ///< score at decision time (for traces/logs)
  sim::TimePoint at;    ///< sim-time of the verdict that tipped it
};

[[nodiscard]] const char* to_string(HealthAction::Kind kind) noexcept;

/// Per-replica monitor state (inspectable for tests/reports).
struct ReplicaHealth {
  ReplicaState state = ReplicaState::kLive;
  double score = 0.0;
  std::uint64_t verdicts = 0;       ///< verdicts scored while live
  std::uint64_t probe_matches = 0;  ///< consecutive matches while quarantined
  int quarantines = 0;              ///< round-trips so far
  sim::TimePoint last_transition;
};

/// The scoring state machine (see file comment).
class HealthMonitor {
 public:
  HealthMonitor(const HealthConfig& config, int k);

  /// Folds one verdict into the replica's score and, when a threshold is
  /// crossed, queues a HealthAction. Verdicts about banned replicas are
  /// ignored; verdicts with an out-of-range replica index are dropped.
  void on_verdict(const core::ReplicaVerdict& verdict);

  /// Drains the queued actions (ordered as decided).
  [[nodiscard]] std::vector<HealthAction> take_actions();

  [[nodiscard]] const ReplicaHealth& replica(int index) const {
    return replicas_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] int k() const noexcept {
    return static_cast<int>(replicas_.size());
  }
  /// Replicas currently in kLive.
  [[nodiscard]] int live_replicas() const noexcept;

  /// Reputation weight exported to the compare fast path (§XII): a live
  /// replica weighs 1 - score (clamped to [0,1], so 1 = pristine); a
  /// quarantined or banned replica weighs 0 — it must never release a
  /// packet on first-copy trust.
  [[nodiscard]] double weight(int index) const noexcept;

  [[nodiscard]] const HealthConfig& config() const noexcept { return config_; }

 private:
  HealthConfig config_;
  std::vector<ReplicaHealth> replicas_;
  std::vector<HealthAction> pending_;
};

}  // namespace netco::health
