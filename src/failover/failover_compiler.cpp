#include "failover/failover_compiler.h"

#include <utility>
#include <vector>

#include "common/assert.h"
#include "openflow/action.h"
#include "openflow/flow_table.h"
#include "openflow/match.h"

namespace netco::failover {
namespace {

using openflow::ActionList;
using openflow::FlowSpec;
using openflow::Match;
using openflow::OutputAction;
using openflow::SetVlanVidAction;
using openflow::StripVlanAction;

/// Per-run installation context: one destination MAC compiled at a time.
struct Compile {
  topo::FatTreeTopology& topo;
  const CompilerOptions& opts;
  CompileSummary summary;
  sim::TimePoint now;

  [[nodiscard]] std::uint16_t vid(int i) const {
    return static_cast<std::uint16_t>(opts.detour_vid_base + i);
  }

  void install(openflow::OpenFlowSwitch& sw, FlowSpec spec, bool backup) {
    spec.cookie = backup ? openflow::kFailoverCookie : 0;
    sw.table().add(std::move(spec), now);
    if (backup) {
      ++summary.rules_installed;
    } else {
      ++summary.primaries_guarded;
    }
  }

  /// Guarded primary: same match/priority install_mac_route used, so the
  /// FlowTable replaces the unguarded original in place.
  void guard_primary(openflow::OpenFlowSwitch& sw, const net::MacAddress& mac,
                     device::PortIndex out) {
    FlowSpec spec;
    spec.match.with_dl_dst(mac);
    spec.actions = {OutputAction::to(out)};
    spec.priority = opts.primary_priority;
    spec.guard_port = out;
    install(sw, std::move(spec), /*backup=*/false);
  }

  /// Untagged backup (matches only untagged frames — a mid-detour tagged
  /// packet must never reset its hop budget here).
  void backup_untagged(openflow::OpenFlowSwitch& sw,
                       const net::MacAddress& mac, std::uint16_t priority,
                       ActionList actions, device::PortIndex out) {
    FlowSpec spec;
    spec.match.with_dl_dst(mac).with_dl_vlan(openflow::kVlanNone);
    spec.actions = std::move(actions);
    spec.priority = priority;
    spec.guard_port = out;
    install(sw, std::move(spec), /*backup=*/true);
  }

  /// Tagged detour rule at budget step `i` (optionally in_port-scoped).
  void detour(openflow::OpenFlowSwitch& sw, const net::MacAddress& mac, int i,
              std::uint16_t priority, ActionList actions, device::PortIndex out,
              device::PortIndex in_port = device::kNoPort) {
    FlowSpec spec;
    spec.match.with_dl_dst(mac).with_dl_vlan(vid(i));
    if (in_port != device::kNoPort) spec.match.with_in_port(in_port);
    spec.actions = std::move(actions);
    spec.priority = priority;
    spec.guard_port = out;
    install(sw, std::move(spec), /*backup=*/true);
  }
};

}  // namespace

CompileSummary compile_failover(topo::FatTreeTopology& topo,
                                const CompilerOptions& options) {
  const int k = topo.options().k;
  const int h = k / 2;
  const int H = options.max_detour_hops;
  NETCO_ASSERT_MSG(H >= 2, "detour budget too small to take a single hop");
  // Longest chains: k-1 sibling pods at a core (untagged), and the same
  // plus one for the tagged fallbacks — neither may wrap past priority 0
  // or cross the primary priority.
  NETCO_ASSERT_MSG(options.backup_priority < options.primary_priority &&
                       options.backup_priority >= static_cast<std::uint16_t>(k),
                   "untagged backup chain would cross priority 0 or primary");
  NETCO_ASSERT_MSG(options.detour_priority >
                       options.primary_priority + static_cast<std::uint16_t>(k),
                   "tagged detour chain would cross the primary priority");

  Compile c{topo, options, {}, topo.simulator().now()};
  const auto& combine = topo.options().combine_agg;

  for (int pm = 0; pm < k; ++pm) {
    for (int em = 0; em < h; ++em) {
      for (int im = 0; im < h; ++im) {
        const net::MacAddress mac = topo.host(pm, em, im).mac();
        ++c.summary.macs;

        // --- edge switches -------------------------------------------
        for (int q = 0; q < k; ++q) {
          for (int e2 = 0; e2 < h; ++e2) {
            auto& sw = topo.edge(q, e2);
            if (q == pm && e2 == em) {
              // Home edge: guarded host delivery, plus strip-and-deliver
              // for every budget step (the detour's terminal rule).
              const auto out = static_cast<device::PortIndex>(im);
              c.guard_primary(sw, mac, out);
              for (int i = 0; i < H; ++i) {
                c.detour(sw, mac, i, options.detour_priority,
                         {StripVlanAction{}, OutputAction::to(out)}, out);
              }
              continue;
            }
            // Non-home edge. Primary up-path via aggregation 0; untagged
            // backups rotate through the sibling aggregations (every
            // aggregation reaches every destination untagged).
            c.guard_primary(sw, mac, static_cast<device::PortIndex>(h + 0));
            for (int alt = 1; alt < h; ++alt) {
              const auto out = static_cast<device::PortIndex>(h + alt);
              c.backup_untagged(
                  sw, mac,
                  static_cast<std::uint16_t>(options.backup_priority -
                                             (alt - 1)),
                  {OutputAction::to(out)}, out);
            }
            // Tagged rotation: a detour bounced down from aggregation j
            // re-ascends via a *different* aggregation index — the only
            // way to flip core groups — consuming one budget unit.
            for (int j = 0; j < h; ++j) {
              const auto in = static_cast<device::PortIndex>(h + j);
              for (int i = 0; i + 1 < H; ++i) {
                for (int alt = 1; alt < h; ++alt) {
                  const auto out =
                      static_cast<device::PortIndex>(h + (j + alt) % h);
                  c.detour(sw, mac, i,
                           static_cast<std::uint16_t>(options.detour_priority -
                                                      (alt - 1)),
                           {SetVlanVidAction{c.vid(i + 1)},
                            OutputAction::to(out)},
                           out, in);
                }
              }
            }
          }
        }

        // --- aggregation switches ------------------------------------
        for (int q = 0; q < k; ++q) {
          for (int a = 0; a < h; ++a) {
            openflow::OpenFlowSwitch* agg = topo.agg(q, a);
            if (agg == nullptr) continue;  // wrapped: replicas route by MAC
            if (q == pm) {
              // In-pod: primary down to the home edge; on a dead down-link
              // the backup tags the packet V(0) and bounces it via a
              // sibling edge, which rotates it up a different aggregation.
              const device::PortIndex down = topo.agg_port_to_edge(em);
              c.guard_primary(*agg, mac, down);
              for (int alt = 1; alt < h; ++alt) {
                const auto out = topo.agg_port_to_edge((em + alt) % h);
                c.backup_untagged(
                    *agg, mac,
                    static_cast<std::uint16_t>(options.backup_priority -
                                               (alt - 1)),
                    {SetVlanVidAction{c.vid(0)}, OutputAction::to(out)}, out);
              }
              // Tagged delivery (all budget steps — delivery is free) and
              // tagged bounce alternates when the down-link is dead.
              for (int i = 0; i < H; ++i) {
                c.detour(*agg, mac, i, options.detour_priority,
                         {StripVlanAction{}, OutputAction::to(down)}, down);
                if (i + 1 >= H) continue;
                for (int alt = 1; alt < h; ++alt) {
                  const auto out = topo.agg_port_to_edge((em + alt) % h);
                  c.detour(*agg, mac, i,
                           static_cast<std::uint16_t>(options.detour_priority -
                                                      alt),
                           {SetVlanVidAction{c.vid(i + 1)},
                            OutputAction::to(out)},
                           out);
                }
              }
            } else {
              // Foreign pod: primary up via core slot 0; untagged backups
              // via the sibling cores of the same group.
              c.guard_primary(*agg, mac, topo.agg_port_to_core(0));
              for (int alt = 1; alt < h; ++alt) {
                const auto out = topo.agg_port_to_core(alt);
                c.backup_untagged(
                    *agg, mac,
                    static_cast<std::uint16_t>(options.backup_priority -
                                               (alt - 1)),
                    {OutputAction::to(out)}, out);
              }
              for (int i = 0; i + 1 < H; ++i) {
                // Tagged from a core: the core could not descend toward
                // the home pod — send the packet down to one of this
                // pod's edges so it can re-ascend via another index.
                for (int s = 0; s < h; ++s) {
                  const auto in = topo.agg_port_to_core(s);
                  for (int e2 = 0; e2 < h; ++e2) {
                    const auto out = topo.agg_port_to_edge(e2);
                    c.detour(*agg, mac, i,
                             static_cast<std::uint16_t>(
                                 options.detour_priority - e2),
                             {SetVlanVidAction{c.vid(i + 1)},
                              OutputAction::to(out)},
                             out, in);
                  }
                }
                // Tagged from an edge (rotation landed here): ascend to
                // any live core of this group.
                for (int j = 0; j < h; ++j) {
                  const auto in = static_cast<device::PortIndex>(j);
                  for (int s = 0; s < h; ++s) {
                    const auto out = topo.agg_port_to_core(s);
                    c.detour(*agg, mac, i,
                             static_cast<std::uint16_t>(
                                 options.detour_priority - s),
                             {SetVlanVidAction{c.vid(i + 1)},
                              OutputAction::to(out)},
                             out, in);
                  }
                }
              }
            }
          }
        }

        // --- core switches -------------------------------------------
        for (int cix = 0; cix < h * h; ++cix) {
          auto& sw = topo.core(cix);
          const device::PortIndex down = topo.core_port_to_pod(cix, pm);
          c.guard_primary(sw, mac, down);
          // Sibling-pod detour order: plain pods first, the wrapped pod
          // (whose aggregation of this group is the combiner) last — its
          // replicas carry tagged packets fine, but a detour that avoids
          // the protected position entirely is cheaper and more
          // predictable.
          std::vector<int> sibs;
          const auto wrapped_here = [&](int r) {
            return combine && combine->pod == r &&
                   combine->index == cix / h;
          };
          for (int t = 1; t < k; ++t) {
            const int r = (pm + t) % k;
            if (!wrapped_here(r)) sibs.push_back(r);
          }
          for (int t = 1; t < k; ++t) {
            const int r = (pm + t) % k;
            if (wrapped_here(r)) sibs.push_back(r);
          }
          for (std::size_t t = 0; t < sibs.size(); ++t) {
            const auto out = topo.core_port_to_pod(cix, sibs[t]);
            c.backup_untagged(
                sw, mac,
                static_cast<std::uint16_t>(options.backup_priority - t),
                {SetVlanVidAction{c.vid(0)}, OutputAction::to(out)}, out);
          }
          for (int i = 0; i + 1 < H; ++i) {
            // Tagged passthrough: a foreign aggregation re-ascended the
            // packet to this core — descend toward the home pod,
            // consuming one budget unit (this is what bounds transit
            // through the combiner, whose replicas never rewrite VIDs).
            c.detour(sw, mac, i, options.detour_priority,
                     {SetVlanVidAction{c.vid(i + 1)}, OutputAction::to(down)},
                     down);
            for (std::size_t t = 0; t < sibs.size(); ++t) {
              const auto out = topo.core_port_to_pod(cix, sibs[t]);
              c.detour(sw, mac, i,
                       static_cast<std::uint16_t>(options.detour_priority - 1 -
                                                  t),
                       {SetVlanVidAction{c.vid(i + 1)}, OutputAction::to(out)},
                       out);
            }
          }
        }
      }
    }
  }

  // Every non-wrapped switch received rules.
  c.summary.switches_touched = static_cast<std::size_t>(
      k * h /*edges*/ + k * h - (combine ? 1 : 0) /*aggs*/ + h * h /*cores*/);
  return c.summary;
}

}  // namespace netco::failover
