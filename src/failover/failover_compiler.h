// Static failover-rule compiler (DESIGN §16).
//
// Walks a topo::FatTreeTopology and precomputes, for every (switch,
// out-port) pair on every destination's forwarding tree, an arc-disjoint
// backup — then installs the whole thing as low-priority OpenFlow rules
// guarded by per-port liveness conditions (FlowSpec::guard_port, flipped
// by the keepalive in faultinject::FabricFaultInjector). Forwarding then
// degrades locally and instantly on a failure: the lookup skips the
// dead-guarded primary and the next backup takes over, with no
// controller round-trip — the regime *Exploring the Limits of Static
// Failover Routing* (Chiesa et al.) studies.
//
// Two backup families, reflecting fat-tree structure:
//
//  * Up-path failures (edge→agg, agg→core): the alternative next hop is
//    a sibling of the same tier and reaches every destination untagged —
//    a simple guarded rotation chain at priorities just below the
//    primary.
//  * Down-path failures (core→agg, agg→edge): the only detour crosses to
//    a *different* aggregation index (core groups are partitioned per
//    index), which requires descending to an edge and re-ascending. Those
//    detour packets are VLAN-tagged, and the tag's VID encodes a hop
//    budget: V(i) = detour_vid_base + i, each detour hop rewrites to
//    V(i+1), and no rule exists at V(max_detour_hops) — a packet that
//    exhausts its budget misses the table and is dropped, which is the
//    loop breaker. The home edge strips the tag before host delivery.
//
// The compiler re-installs the primary routes with liveness guards (the
// FlowTable replaces strictly-equal matches in place), so primary rules
// stay cookie-0 while every backup rule carries kFailoverCookie — the
// "resilience.static_hit" / "failover.reroute" counter pair separates
// traffic carried by the static layer from traffic actively detoured.
#pragma once

#include <cstddef>
#include <cstdint>

#include "topo/fattree.h"

namespace netco::failover {

struct CompilerOptions {
  /// First VID of the detour-budget window [base, base + max_detour_hops).
  std::uint16_t detour_vid_base = 0xF00;
  /// Detour hop budget H: a tagged packet is rewritten at most H-1 times
  /// before it must reach (and be stripped at) its home edge. The longest
  /// single-failure detour in a fat-tree consumes 5 budget units.
  int max_detour_hops = 6;
  /// Priority of the (guarded) primary routes — must match what
  /// controller::install_mac_route used, so the re-install replaces them.
  std::uint16_t primary_priority = 10;
  /// Untagged backup chains descend from here (must be < primary).
  std::uint16_t backup_priority = 9;
  /// Tagged detour rules descend from here (must be > primary so tagged
  /// packets never fall through to an untagged MAC route mid-detour).
  std::uint16_t detour_priority = 40;
};

struct CompileSummary {
  std::size_t rules_installed = 0;   ///< backup/detour rules added
  std::size_t primaries_guarded = 0; ///< primary routes re-installed guarded
  std::size_t switches_touched = 0;
  std::size_t macs = 0;              ///< destinations compiled
};

/// Compiles and installs the full guarded backup layer for `topo`.
/// Idempotent: re-running replaces the same rules. The wrapped combiner
/// position is left untouched (its replicas forward by destination MAC,
/// which carries tagged detour packets unchanged).
CompileSummary compile_failover(topo::FatTreeTopology& topo,
                                const CompilerOptions& options = {});

}  // namespace netco::failover
