// Fixed-width console table printer used by the benchmark harness to
// reproduce the paper's tables and figure series as text.
#pragma once

#include <string>
#include <vector>

namespace netco::stats {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; missing cells print empty, extras are dropped.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to a string.
  [[nodiscard]] std::string render() const;

  /// Convenience: renders to stdout.
  void print() const;

  /// Formats a double with `digits` decimals.
  static std::string num(double value, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netco::stats
