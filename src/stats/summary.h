// Descriptive statistics over a sample vector (bench reporting).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace netco::stats {

/// Summary of a sample set.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Computes the summary; an empty input yields an all-zero Summary.
inline Summary summarize(std::vector<double> samples) {
  Summary out;
  out.n = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.min = samples.front();
  out.max = samples.back();
  double sum = 0.0;
  for (double s : samples) sum += s;
  out.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) var += (s - out.mean) * (s - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  const auto at = [&samples](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  return out;
}

}  // namespace netco::stats
