// Descriptive statistics over a sample vector (bench reporting).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace netco::stats {

/// Summary of a sample set.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// The q-quantile of an ascending-sorted sample, by linear interpolation
/// between closest ranks (the "R-7" estimator iperf/numpy use): the
/// quantile sits at fractional rank q·(n−1) and interpolates between the
/// two neighbouring order statistics.
inline double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

/// Computes the summary; an empty input yields an all-zero Summary.
/// stddev is the sample (n−1) standard deviation — the runs are a sample
/// of the scenario's run-to-run distribution, not the population.
inline Summary summarize(std::vector<double> samples) {
  Summary out;
  out.n = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.min = samples.front();
  out.max = samples.back();
  double sum = 0.0;
  for (double s : samples) sum += s;
  out.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) var += (s - out.mean) * (s - out.mean);
  out.stddev = samples.size() > 1
                   ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                   : 0.0;
  out.p50 = sorted_quantile(samples, 0.50);
  out.p95 = sorted_quantile(samples, 0.95);
  return out;
}

}  // namespace netco::stats
