#include "stats/table.h"

#include <algorithm>
#include <cstdio>

namespace netco::stats {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += "| ";
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace netco::stats
