#include "scenario/convergence.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "adversary/behaviors.h"
#include "common/assert.h"
#include "common/hash.h"
#include "controller/static_routing.h"
#include "device/network.h"
#include "faultinject/invariants.h"
#include "host/host.h"
#include "iproute/legacy_router.h"
#include "netco/combiner.h"
#include "obs/observability.h"
#include "openflow/switch.h"
#include "sim/shard.h"

namespace netco::scenario {

const char* to_string(RoutingAttack attack) noexcept {
  switch (attack) {
    case RoutingAttack::kNone: return "none";
    case RoutingAttack::kPoison: return "poison";
    case RoutingAttack::kInflate: return "inflate";
    case RoutingAttack::kBlackhole: return "blackhole";
  }
  return "unknown";
}

namespace {

// The diamond's address plan (see convergence.h header art).
constexpr auto kNetA = net::Ipv4Address::from_octets(10, 1, 0, 0);   // hA /24
constexpr auto kNetB = net::Ipv4Address::from_octets(10, 2, 0, 0);   // hB /24
constexpr auto kNetUp = net::Ipv4Address::from_octets(10, 0, 1, 0);  // RA—P—RB
constexpr auto kNetAc = net::Ipv4Address::from_octets(10, 0, 2, 0);  // RA—RC
constexpr auto kNetCd = net::Ipv4Address::from_octets(10, 0, 3, 0);  // RC—RD
constexpr auto kNetDb = net::Ipv4Address::from_octets(10, 0, 4, 0);  // RD—RB

constexpr std::uint16_t kDataPort = 7001;

/// Benign ground-truth table entry; port < 0 = either side of a metric
/// tie is correct (RC/RD reach the far stub at 3 via both neighbors).
struct ExpectedRoute {
  net::Ipv4Address prefix;
  std::uint8_t len = 0;
  std::uint8_t metric = 0;
  int port = -1;
};

faultinject::FaultKind fault_kind(RoutingAttack attack) {
  switch (attack) {
    case RoutingAttack::kPoison: return faultinject::FaultKind::kRoutePoison;
    case RoutingAttack::kBlackhole:
      return faultinject::FaultKind::kBlackholeAd;
    default: return faultinject::FaultKind::kMetricInflate;
  }
}

/// One diamond circuit on its own Simulator, exposing the ShardCell
/// window protocol (driven by a run_until loop solo, or by a
/// ShardedSimulator as a fleet).
class ConvergenceCircuit {
 public:
  explicit ConvergenceCircuit(const ConvergenceOptions& options)
      : opts_(options),
        sim_(options.seed),
        network_(sim_),
        checker_(faultinject::QuorumTraceChecker::Config{
            .quorum = options.use_combiner ? options.k / 2 + 1 : 1,
            .k = options.use_combiner ? options.k : 0}) {
    NETCO_ASSERT(opts_.k >= 1);
    NETCO_ASSERT(opts_.liars >= 0);
    NETCO_ASSERT(opts_.window > sim::Duration::zero());
    if (opts_.attack == RoutingAttack::kNone) opts_.liars = 0;
    build_topology();
    build_control_plane();
    materialize_plan();
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] obs::TraceSink& trace_sink() noexcept { return checker_; }

  sim::TimePoint start() {
    for (auto& unit : units_) unit.speaker->start();
    for (const faultinject::FaultEvent& event : plan_.events) {
      sim_.schedule_at(sim::TimePoint::from_ns(event.at_ns),
                       [this, &event] { apply_fault(event); });
    }
    data_end_ = sim::TimePoint::origin() + opts_.horizon - opts_.window * 2;
    send_probe();
    cap_ = sim::TimePoint::origin() + opts_.window;
    return cap_;
  }

  sim::TimePoint on_window(sim::TimePoint committed) {
    if (committed < cap_) return cap_;
    boundaries_.push_back(Boundary{.t_ns = committed.ns(),
                                   .sent = result_.data_sent,
                                   .delivered = delivered_.size(),
                                   .matched = tables_match()});
    if (committed + opts_.window > sim::TimePoint::origin() + opts_.horizon) {
      return done_marker();
    }
    cap_ = committed + opts_.window;
    return cap_;
  }

  void finalize() {
    result_.data_delivered = delivered_.size();
    result_.goodput_overall =
        result_.data_sent > 0
            ? static_cast<double>(result_.data_delivered) /
                  static_cast<double>(result_.data_sent)
            : 0.0;

    // Convergence = the first window boundary after the last mismatch,
    // provided the tables then stayed correct through the horizon.
    std::int64_t last_mismatch = -1;
    for (const Boundary& b : boundaries_) {
      if (!b.matched) last_mismatch = b.t_ns;
    }
    result_.converged_correct =
        !boundaries_.empty() && boundaries_.back().matched;
    result_.goodput_during_convergence = result_.goodput_overall;
    if (result_.converged_correct) {
      for (const Boundary& b : boundaries_) {
        if (b.t_ns > last_mismatch) {
          result_.convergence_ns = b.t_ns;
          result_.goodput_during_convergence =
              b.sent > 0 ? static_cast<double>(b.delivered) /
                               static_cast<double>(b.sent)
                         : 0.0;
          break;
        }
      }
    }

    for (const auto& unit : units_) {
      const routing::RipStats& s = unit.speaker->stats();
      result_.updates_sent += s.updates_sent;
      result_.updates_received += s.updates_received;
      result_.route_changes += s.route_changes;
      result_.routes_timed_out += s.routes_timed_out;
    }
    for (const auto* blackhole : blackholes_) {
      result_.data_dropped_by_liars += blackhole->data_dropped();
    }
    result_.invariant_violations = checker_.report().violations;
    result_.stream_hash = checker_.stream_hash();
  }

  [[nodiscard]] ConvergenceResult take_result() {
    return std::move(result_);
  }

  [[nodiscard]] static constexpr sim::TimePoint done_marker() noexcept {
    return sim::TimePoint::from_ns(INT64_MAX);
  }

 private:
  struct RouterUnit {
    iproute::LegacyRouter* router = nullptr;
    std::unique_ptr<routing::RipSpeaker> speaker;
    std::vector<ExpectedRoute> expected;
  };

  struct Boundary {
    std::int64_t t_ns = 0;
    std::uint64_t sent = 0;
    std::size_t delivered = 0;
    bool matched = false;
  };

  void build_topology() {
    const auto ip = net::Ipv4Address::from_octets;
    const auto mac_ha = net::MacAddress::from_id(1);
    const auto mac_hb = net::MacAddress::from_id(2);
    mac_ra_ = {net::MacAddress::from_id(10), net::MacAddress::from_id(11),
               net::MacAddress::from_id(12)};
    mac_rb_ = {net::MacAddress::from_id(20), net::MacAddress::from_id(21),
               net::MacAddress::from_id(22)};
    mac_rc_ = {net::MacAddress::from_id(30), net::MacAddress::from_id(31)};
    mac_rd_ = {net::MacAddress::from_id(40), net::MacAddress::from_id(41)};

    ha_ = &network_.add_node<host::Host>("hA", mac_ha, ip(10, 1, 0, 2));
    hb_ = &network_.add_node<host::Host>("hB", mac_hb, ip(10, 2, 0, 2));
    auto& ra = network_.add_node<iproute::LegacyRouter>("RA");
    auto& rb = network_.add_node<iproute::LegacyRouter>("RB");
    auto& rc = network_.add_node<iproute::LegacyRouter>("RC");
    auto& rd = network_.add_node<iproute::LegacyRouter>("RD");

    // Interface order must equal port-creation order below.
    ra.add_interface({mac_ra_[0], ip(10, 1, 0, 1)});
    ra.add_interface({mac_ra_[1], ip(10, 0, 1, 1)});
    ra.add_interface({mac_ra_[2], ip(10, 0, 2, 1)});
    rb.add_interface({mac_rb_[0], ip(10, 2, 0, 1)});
    rb.add_interface({mac_rb_[1], ip(10, 0, 1, 2)});
    rb.add_interface({mac_rb_[2], ip(10, 0, 4, 2)});
    rc.add_interface({mac_rc_[0], ip(10, 0, 2, 2)});
    rc.add_interface({mac_rc_[1], ip(10, 0, 3, 1)});
    rd.add_interface({mac_rd_[0], ip(10, 0, 3, 2)});
    rd.add_interface({mac_rd_[1], ip(10, 0, 4, 1)});

    const link::LinkConfig link{};
    network_.connect(*ha_, ra, link);  // RA port 0
    network_.connect(*hb_, rb, link);  // RB port 0

    // The router position P on the RA—RB hop: RA/RB port 1 either way.
    if (opts_.use_combiner) {
      core::CombinerOptions copts;
      copts.k = opts_.k;
      combiner_ = core::build_combiner(
          network_, copts,
          {core::PortAttachment{.neighbor = &ra,
                                .link = link,
                                .local_macs = {mac_ra_[1]}},
           core::PortAttachment{.neighbor = &rb,
                                .link = link,
                                .local_macs = {mac_rb_[1]}}},
          "conv");
      combiner_.install_replica_route(mac_ra_[1], 0);
      combiner_.install_replica_route(mac_rb_[1], 1);
    } else {
      auto& p = network_.add_node<openflow::OpenFlowSwitch>(
          "p", core::default_replica_profiles()[0]);
      const auto ra_p = network_.connect(ra, p, link);
      const auto p_rb = network_.connect(p, rb, link);
      controller::install_mac_route(p, mac_rb_[1], p_rb.a_port);
      controller::install_mac_route(p, mac_ra_[1], ra_p.b_port);
      unprotected_ = &p;
    }

    network_.connect(ra, rc, link);  // RA port 2, RC port 0
    network_.connect(rc, rd, link);  // RC port 1, RD port 0
    network_.connect(rd, rb, link);  // RD port 1, RB port 2

    // Connected networks: the harness owns their FIB entries (the
    // speakers only advertise them).
    ra.add_route(kNetA, 24, {0, mac_ha});
    ra.add_route(kNetUp, 30, {1, mac_rb_[1]});
    ra.add_route(kNetAc, 30, {2, mac_rc_[0]});
    rb.add_route(kNetB, 24, {0, mac_hb});
    rb.add_route(kNetUp, 30, {1, mac_ra_[1]});
    rb.add_route(kNetDb, 30, {2, mac_rd_[1]});
    rc.add_route(kNetAc, 30, {0, mac_ra_[2]});
    rc.add_route(kNetCd, 30, {1, mac_rd_[0]});
    rd.add_route(kNetCd, 30, {0, mac_rc_[1]});
    rd.add_route(kNetDb, 30, {1, mac_rb_[2]});

    units_.resize(4);
    units_[0].router = &ra;
    units_[1].router = &rb;
    units_[2].router = &rc;
    units_[3].router = &rd;

    hb_->bind_udp(kDataPort, [this](const net::ParsedPacket& parsed,
                                    const net::Packet& packet) {
      if (packet.size() < parsed.payload_offset + 4) return;
      std::uint32_t seq = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        seq = (seq << 8) |
              std::to_integer<std::uint32_t>(
                  packet.slice(parsed.payload_offset + i, 1)[0]);
      }
      delivered_.insert(seq);
    });
  }

  void build_control_plane() {
    const auto ip = net::Ipv4Address::from_octets;
    for (std::size_t i = 0; i < units_.size(); ++i) {
      routing::RipConfig cfg = opts_.rip;
      // Stagger the first periodic update so the four speakers never
      // announce in lockstep.
      cfg.first_update =
          opts_.rip.first_update +
          sim::Duration::milliseconds(7) * static_cast<std::int64_t>(i);
      units_[i].speaker =
          std::make_unique<routing::RipSpeaker>(*units_[i].router, cfg);
    }
    routing::RipSpeaker& ra = *units_[0].speaker;
    routing::RipSpeaker& rb = *units_[1].speaker;
    routing::RipSpeaker& rc = *units_[2].speaker;
    routing::RipSpeaker& rd = *units_[3].speaker;

    ra.add_connected(kNetA, 24, 0);
    ra.add_connected(kNetUp, 30, 1);
    ra.add_connected(kNetAc, 30, 2);
    rb.add_connected(kNetB, 24, 0);
    rb.add_connected(kNetUp, 30, 1);
    rb.add_connected(kNetDb, 30, 2);
    rc.add_connected(kNetAc, 30, 0);
    rc.add_connected(kNetCd, 30, 1);
    rd.add_connected(kNetCd, 30, 0);
    rd.add_connected(kNetDb, 30, 1);

    ra.add_neighbor({1, ip(10, 0, 1, 2), mac_rb_[1]});
    ra.add_neighbor({2, ip(10, 0, 2, 2), mac_rc_[0]});
    rb.add_neighbor({1, ip(10, 0, 1, 1), mac_ra_[1]});
    rb.add_neighbor({2, ip(10, 0, 4, 1), mac_rd_[1]});
    rc.add_neighbor({0, ip(10, 0, 2, 1), mac_ra_[2]});
    rc.add_neighbor({1, ip(10, 0, 3, 2), mac_rd_[0]});
    rd.add_neighbor({0, ip(10, 0, 3, 1), mac_rc_[1]});
    rd.add_neighbor({1, ip(10, 0, 4, 2), mac_rb_[2]});

    // Benign ground truth (Bellman–Ford fixed point of the diamond).
    units_[0].expected = {{kNetA, 24, 1, 0},  {kNetUp, 30, 1, 1},
                          {kNetAc, 30, 1, 2}, {kNetB, 24, 2, 1},
                          {kNetDb, 30, 2, 1}, {kNetCd, 30, 2, 2}};
    units_[1].expected = {{kNetB, 24, 1, 0},  {kNetUp, 30, 1, 1},
                          {kNetDb, 30, 1, 2}, {kNetA, 24, 2, 1},
                          {kNetAc, 30, 2, 1}, {kNetCd, 30, 2, 2}};
    units_[2].expected = {{kNetAc, 30, 1, 0}, {kNetCd, 30, 1, 1},
                          {kNetA, 24, 2, 0},  {kNetUp, 30, 2, 0},
                          {kNetDb, 30, 2, 1}, {kNetB, 24, 3, -1}};
    units_[3].expected = {{kNetCd, 30, 1, 0}, {kNetDb, 30, 1, 1},
                          {kNetB, 24, 2, 1},  {kNetUp, 30, 2, 1},
                          {kNetAc, 30, 2, 0}, {kNetA, 24, 3, -1}};
  }

  void materialize_plan() {
    plan_ = opts_.plan;
    if (plan_.empty() && opts_.liars > 0) {
      for (int i = 0; i < opts_.liars; ++i) {
        faultinject::FaultEvent event;
        event.at_ns = opts_.attack_start.ns();
        event.kind = fault_kind(opts_.attack);
        event.edge = -1;
        event.replica = i;
        plan_.events.push_back(event);
      }
    }
    plan_.normalize();
  }

  void apply_fault(const faultinject::FaultEvent& event) {
    std::unique_ptr<device::DatapathInterceptor> behavior;
    switch (event.kind) {
      case faultinject::FaultKind::kRoutePoison:
        behavior = std::make_unique<adversary::RoutePoisonBehavior>(
            adversary::match_all());
        break;
      case faultinject::FaultKind::kMetricInflate:
        behavior = std::make_unique<adversary::MetricInflateBehavior>(
            adversary::match_all());
        break;
      case faultinject::FaultKind::kBlackholeAd: {
        auto blackhole = std::make_unique<adversary::BlackholeAdBehavior>(
            adversary::match_all());
        blackholes_.push_back(blackhole.get());
        behavior = std::move(blackhole);
        break;
      }
      default:
        return;  // this harness only speaks the routing.* vocabulary
    }
    openflow::OpenFlowSwitch* target;
    if (opts_.use_combiner) {
      const auto idx = static_cast<std::size_t>(
          std::clamp(event.replica, 0, opts_.k - 1));
      target = combiner_.replicas[idx];
    } else {
      target = unprotected_;
    }
    interceptors_.push_back(std::move(behavior));
    target->set_interceptor(interceptors_.back().get());
    ++result_.fault_events_applied;
  }

  void send_probe() {
    if (sim_.now() >= data_end_) return;
    const std::uint32_t seq = probe_seq_++;
    std::vector<std::byte> payload(16, std::byte{0});
    for (std::size_t i = 0; i < 4; ++i) {
      payload[i] = static_cast<std::byte>((seq >> (24 - 8 * i)) & 0xFF);
    }
    net::Packet probe = net::build_udp(
        net::EthernetHeader{.dst = mac_ra_[0], .src = ha_->mac()},
        std::nullopt,
        net::Ipv4Header{.src = ha_->ip(),
                        .dst = hb_->ip(),
                        .proto = net::IpProto::Udp,
                        .identification = ha_->next_ip_id()},
        net::UdpHeader{.src_port = kDataPort, .dst_port = kDataPort},
        payload);
    ha_->transmit(std::move(probe));
    ++result_.data_sent;
    sim_.schedule_after(opts_.data_period, [this] { send_probe(); });
  }

  [[nodiscard]] bool tables_match() const {
    for (const RouterUnit& unit : units_) {
      std::vector<routing::RipRouteView> live;
      for (const routing::RipRouteView& r : unit.speaker->table()) {
        if (r.metric < routing::kRipInfinity) live.push_back(r);
      }
      if (live.size() != unit.expected.size()) return false;
      for (const ExpectedRoute& e : unit.expected) {
        const auto it = std::find_if(
            live.begin(), live.end(), [&](const routing::RipRouteView& r) {
              return r.prefix == e.prefix && r.len == e.len;
            });
        if (it == live.end() || it->metric != e.metric) return false;
        if (e.port >= 0 &&
            it->port != static_cast<device::PortIndex>(e.port)) {
          return false;
        }
      }
    }
    return true;
  }

  ConvergenceOptions opts_;
  sim::Simulator sim_;
  device::Network network_;
  faultinject::QuorumTraceChecker checker_;
  faultinject::FaultPlan plan_;

  host::Host* ha_ = nullptr;
  host::Host* hb_ = nullptr;
  std::vector<net::MacAddress> mac_ra_, mac_rb_, mac_rc_, mac_rd_;
  core::CombinerInstance combiner_;
  openflow::OpenFlowSwitch* unprotected_ = nullptr;
  std::vector<RouterUnit> units_;

  std::vector<std::unique_ptr<device::DatapathInterceptor>> interceptors_;
  std::vector<adversary::BlackholeAdBehavior*> blackholes_;

  std::uint32_t probe_seq_ = 0;
  std::unordered_set<std::uint32_t> delivered_;
  sim::TimePoint data_end_;
  sim::TimePoint cap_;
  std::vector<Boundary> boundaries_;
  ConvergenceResult result_;
};

/// Adapts a circuit to the ShardCell protocol (fleet runs).
class ConvergenceCell final : public sim::ShardCell {
 public:
  ConvergenceCell(const ConvergenceOptions& options, ConvergenceResult* out)
      : circuit_(options), out_(out) {}

  [[nodiscard]] sim::Simulator& simulator() noexcept override {
    return circuit_.simulator();
  }

  sim::TimePoint start() override {
    cap_ = circuit_.start();
    return cap_;
  }

  void before_window() override {
    obs::global().tracer.set_sink(&circuit_.trace_sink());
  }

  sim::TimePoint on_window(sim::TimePoint committed) override {
    if (committed < cap_) return cap_;
    cap_ = circuit_.on_window(committed);
    return cap_;
  }

  void finalize() override {
    obs::global().tracer.set_sink(&circuit_.trace_sink());
    circuit_.finalize();
    obs::global().tracer.set_sink(nullptr);
    *out_ = circuit_.take_result();
  }

 private:
  ConvergenceCircuit circuit_;
  ConvergenceResult* out_;
  sim::TimePoint cap_;
};

}  // namespace

ConvergenceResult run_convergence(const ConvergenceOptions& options) {
  ConvergenceCircuit circuit(options);
  obs::ScopedTraceSink scoped(circuit.trace_sink());
  sim::TimePoint cap = circuit.start();
  while (cap != ConvergenceCircuit::done_marker()) {
    circuit.simulator().run_until(cap);
    cap = circuit.on_window(cap);
  }
  circuit.finalize();
  return circuit.take_result();
}

ConvergenceFleetResult run_convergence_fleet(const ConvergenceOptions& base,
                                             std::size_t circuits,
                                             int shards) {
  NETCO_ASSERT(circuits >= 1);
  NETCO_ASSERT(shards >= 1);
  ConvergenceFleetResult out;
  out.circuits.resize(circuits);

  sim::ShardedSimulator::Options sim_opts;
  sim_opts.workers = shards;
  sim::ShardedSimulator sharded(sim_opts);
  for (std::size_t i = 0; i < circuits; ++i) {
    ConvergenceOptions circuit_options = base;
    // Circuit 0 keeps the base seed exactly — a 1-circuit fleet must
    // reproduce run_convergence(base) bit-for-bit.
    if (i != 0) {
      circuit_options.seed =
          hash_mix(base.seed, static_cast<std::uint64_t>(i));
    }
    ConvergenceResult* slot = &out.circuits[i];
    sharded.add_cell([circuit_options, slot] {
      return std::make_unique<ConvergenceCell>(circuit_options, slot);
    });
  }
  sharded.set_worker_prologue([](int) {
    obs::global().metrics.reset();
    obs::global().tracer.set_sink(nullptr);
  });
  sharded.run();

  if (circuits == 1) {
    out.merged_stream_hash = out.circuits[0].stream_hash;
  } else {
    std::uint64_t stream = kFnvOffset;
    for (const ConvergenceResult& r : out.circuits) {
      stream = hash_mix(stream, r.stream_hash);
    }
    out.merged_stream_hash = stream;
  }
  return out;
}

}  // namespace netco::scenario
