#include "scenario/workload.h"

#include "common/assert.h"

namespace netco::scenario {

SoakResult run_workload(const SoakOptions& options) {
  NETCO_ASSERT_MSG(options.workload.enabled,
                   "run_workload() needs SoakOptions::workload.enabled");
  return run_soak(options);
}

ShardedSoakResult run_workload_fleet(const ShardedSoakOptions& options) {
  NETCO_ASSERT_MSG(
      options.base.workload.enabled,
      "run_workload_fleet() needs SoakOptions::workload.enabled");
  return run_sharded_soak(options);
}

}  // namespace netco::scenario
