#include "scenario/scenarios.h"

#include <memory>

#include "common/assert.h"
#include "host/tcp.h"
#include "host/udp_app.h"

namespace netco::scenario {
namespace {

/// Warmup excluded from every measurement (ramp-up, table population).
constexpr sim::Duration kWarmup = sim::Duration::milliseconds(100);

struct KindTraits {
  bool use_combiner;
  bool combine;
  int k;
  bool pox;
};

KindTraits traits(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kLinespeed: return {false, false, 0, false};
    case ScenarioKind::kDup3:      return {true, false, 3, false};
    case ScenarioKind::kDup5:      return {true, false, 5, false};
    case ScenarioKind::kCentral3:  return {true, true, 3, false};
    case ScenarioKind::kCentral5:  return {true, true, 5, false};
    case ScenarioKind::kPox3:      return {true, true, 3, true};
  }
  return {false, false, 0, false};
}

}  // namespace

const char* to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kLinespeed: return "Linespeed";
    case ScenarioKind::kDup3:      return "Dup3";
    case ScenarioKind::kDup5:      return "Dup5";
    case ScenarioKind::kCentral3:  return "Central3";
    case ScenarioKind::kCentral5:  return "Central5";
    case ScenarioKind::kPox3:      return "POX3";
  }
  return "?";
}

std::vector<ScenarioKind> all_scenarios() {
  return {ScenarioKind::kLinespeed, ScenarioKind::kDup3, ScenarioKind::kDup5,
          ScenarioKind::kCentral3, ScenarioKind::kCentral5,
          ScenarioKind::kPox3};
}

std::vector<ScenarioKind> table1_scenarios() {
  return {ScenarioKind::kLinespeed, ScenarioKind::kDup3, ScenarioKind::kDup5,
          ScenarioKind::kCentral3, ScenarioKind::kCentral5};
}

topo::Figure3Options make_options(ScenarioKind kind, std::uint64_t seed) {
  const KindTraits t = traits(kind);
  topo::Figure3Options options;
  options.seed = seed;
  options.use_combiner = t.use_combiner;
  options.combiner.combine = t.combine;
  options.combiner.k = t.k == 0 ? 3 : t.k;
  options.combiner.compare_profile = t.pox
                                         ? controller::CostProfile::pox()
                                         : controller::CostProfile::c_program();
  // The compare must tolerate replica skew but evict attack residue fast.
  options.combiner.compare.hold_timeout = sim::Duration::milliseconds(20);
  // With paper-faithful retention the steady cache is release-rate ×
  // hold-timeout (~420 entries at the Central3 operating point); this
  // capacity makes the cleanup procedure active exactly when the packet
  // rate climbs — the §V-B small-packet jitter mechanism.
  options.combiner.compare.cache_capacity = 512;
  options.combiner.compare.cleanup_low_water = 0.75;
  return options;
}

TcpMeasurement measure_tcp(ScenarioKind kind, int runs, sim::Duration per_run,
                           std::uint64_t seed) {
  NETCO_ASSERT(runs > 0 && per_run > kWarmup);
  TcpMeasurement out;
  for (int run = 0; run < runs; ++run) {
    topo::Figure3Topology topo(
        make_options(kind, seed + static_cast<std::uint64_t>(run)));
    // Direction alternates run by run (the paper swaps client/server
    // after the first 10 runs; alternating is statistically identical).
    const bool reverse = (run % 2) == 1;
    host::Host& src = reverse ? topo.h2() : topo.h1();
    host::Host& dst = reverse ? topo.h1() : topo.h2();

    host::TcpConfig cfg;
    cfg.peer_mac = dst.mac();
    cfg.peer_ip = dst.ip();
    cfg.local_port = 5001;
    cfg.peer_port = 5001;
    host::TcpSender sender(src, cfg);

    host::TcpConfig rcfg = cfg;
    rcfg.peer_mac = src.mac();
    rcfg.peer_ip = src.ip();
    host::TcpReceiver receiver(dst, rcfg);

    sender.start();
    topo.simulator().run_until(sim::TimePoint::origin() + kWarmup);
    receiver.reset_delivered();
    topo.simulator().run_until(sim::TimePoint::origin() + per_run);
    const double secs = (per_run - kWarmup).sec();
    out.per_run_mbps.push_back(
        static_cast<double>(receiver.stats().bytes_delivered) * 8.0 / secs /
        1e6);
  }
  out.mbps = stats::summarize(out.per_run_mbps);
  return out;
}

UdpRun measure_udp_at(ScenarioKind kind, DataRate rate, sim::Duration per_run,
                      std::uint64_t seed, std::size_t payload_bytes) {
  NETCO_ASSERT(per_run > kWarmup);
  topo::Figure3Topology topo(make_options(kind, seed));

  host::UdpSenderConfig scfg;
  scfg.dst_mac = topo.h2().mac();
  scfg.dst_ip = topo.h2().ip();
  scfg.rate = rate;
  scfg.payload_bytes = payload_bytes;
  host::UdpSender sender(topo.h1(), scfg);
  host::UdpSink sink(topo.h2(), scfg.dst_port);

  sender.start();
  topo.simulator().run_until(sim::TimePoint::origin() + kWarmup);
  sink.reset();
  topo.simulator().run_until(sim::TimePoint::origin() + per_run);
  sender.stop();
  // Drain in-flight packets so the loss number reflects real loss, not
  // packets still queued at the instant the run ended.
  topo.simulator().run_for(sim::Duration::milliseconds(50));

  const auto report = sink.report();
  UdpRun out;
  out.offered_mbps = rate.mbps();
  out.loss_rate = report.loss_rate;
  out.jitter_ms = report.jitter_ms;
  // Goodput over the measurement window (drain excluded from the clock).
  const double secs = (per_run - kWarmup).sec();
  out.goodput_mbps = static_cast<double>(report.payload_bytes_unique) * 8.0 /
                     secs / 1e6;
  return out;
}

UdpMax find_udp_max(ScenarioKind kind, double loss_bound,
                    sim::Duration per_run, std::uint64_t seed,
                    std::size_t payload_bytes, double hi_mbps) {
  double lo = 1.0;
  double hi = hi_mbps;
  UdpRun best{};
  // The iperf protocol: adjust -b until the highest rate that keeps loss
  // under the bound. 9 bisection steps resolve ~0.2% of the range.
  for (int step = 0; step < 9; ++step) {
    const double mid = (lo + hi) / 2.0;
    const UdpRun run = measure_udp_at(
        kind, DataRate::kilobits_per_sec(static_cast<std::uint64_t>(mid * 1e3)),
        per_run, seed + static_cast<std::uint64_t>(step), payload_bytes);
    if (run.loss_rate <= loss_bound) {
      lo = mid;
      best = run;
    } else {
      hi = mid;
    }
  }
  UdpMax out;
  out.rate_mbps = best.offered_mbps;
  out.goodput_mbps = best.goodput_mbps;
  out.loss_rate = best.loss_rate;
  out.jitter_ms = best.jitter_ms;
  return out;
}

host::PingReport measure_ping(ScenarioKind kind, int count,
                              sim::Duration interval, std::uint64_t seed) {
  topo::Figure3Topology topo(make_options(kind, seed));
  host::PingConfig cfg;
  cfg.dst_mac = topo.h2().mac();
  cfg.dst_ip = topo.h2().ip();
  cfg.count = count;
  cfg.interval = interval;
  host::IcmpPinger pinger(topo.h1(), cfg);
  pinger.start();
  // Run until the pinger finishes (all replies or timeouts).
  const auto deadline =
      sim::TimePoint::origin() +
      interval * count + cfg.timeout * 2 + sim::Duration::seconds(1);
  while (!pinger.finished() && topo.simulator().now() < deadline) {
    topo.simulator().run_until(topo.simulator().now() +
                               sim::Duration::milliseconds(50));
  }
  return pinger.report();
}

}  // namespace netco::scenario
