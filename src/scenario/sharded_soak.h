// Sharded soak: many independent combiner circuits advanced in parallel
// by a sim::ShardedSimulator, with canonical hash/metrics merging.
//
// Each circuit is a SoakCircuit on its own sim::Simulator (its own seed,
// RNG streams, trace checker, and thread-local metrics registry via the
// worker it is pinned to), so per-circuit event streams are bit-identical
// for ANY shard count — parallelism only changes which thread interleaves
// which circuit. The merged artifacts are canonical:
//
//  * merged_stream_hash / merged_egress_hash — the per-circuit hashes
//    folded in circuit-index order (identity for a single circuit, so a
//    1-circuit sharded run reproduces run_soak()'s hash exactly);
//  * metrics_json — per-worker registries merged in worker-index order
//    (counter totals are shard-count invariant; histogram double sums are
//    deterministic per shard count, since float addition reorders).
//
// Optional cross-shard beacons exercise the shard-crossing machinery with
// real link::Channel traffic (bind_remote over ShardChannels in a ring).
// Beacon deliveries are trace-neutral by construction — no RNG draws, no
// trace records — so they scale the cross-shard message count without
// perturbing any circuit's protocol stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/soak.h"

namespace netco::scenario {

/// Parameters for a sharded fleet soak.
struct ShardedSoakOptions {
  /// Per-circuit template. Circuit 0 runs base.seed exactly (so a
  /// 1-circuit run reproduces run_soak(base)); circuit i>0 runs
  /// hash_mix(base.seed, i).
  SoakOptions base;
  /// Independent combiner circuits in the fleet.
  std::size_t circuits = 1;
  /// Worker threads (the "shards=N" knob). Never affects any hash.
  int shards = 1;
  /// Wire a beacon ring circuit i → (i+1) % circuits over cross-shard
  /// channels (ignored with a single circuit).
  bool cross_shard_beacons = false;
  /// Beacon send period per circuit while its sender phase lasts.
  sim::Duration beacon_period = sim::Duration::milliseconds(10);
};

/// Aggregate outcome plus every per-circuit result.
struct ShardedSoakResult {
  std::vector<SoakResult> circuits;  ///< indexed by circuit id

  /// Canonical fold of per-circuit stream hashes (identity for one).
  std::uint64_t merged_stream_hash = 0;
  std::uint64_t merged_egress_hash = 0;

  // Fleet-level sums over circuits.
  std::uint64_t datagrams_sent = 0;
  std::uint64_t delivered_unique = 0;
  std::uint64_t compare_ingested = 0;
  std::uint64_t compare_released = 0;
  std::uint64_t duplicate_egress = 0;
  std::uint64_t fault_events_applied = 0;

  /// Conservative-protocol telemetry (worker-count invariant).
  std::uint64_t rounds = 0;
  /// Cross-shard deliveries (beacon traffic; 0 without beacons).
  std::uint64_t cross_shard_messages = 0;
  std::uint64_t beacons_received = 0;

  /// Wall-clock of the whole fleet run (coordinator-side; the number the
  /// shard-count sweep compares).
  double wall_seconds = 0.0;
  double wall_pps = 0.0;  ///< total offered datagrams / wall second

  /// Per-worker registries merged in worker order.
  std::string metrics_json;

  /// True when every circuit's invariant verdict is clean.
  [[nodiscard]] bool ok() const noexcept {
    for (const SoakResult& r : circuits) {
      if (!r.invariants.ok()) return false;
    }
    return !circuits.empty();
  }
};

/// Runs the fleet. Same seed + same options ⇒ identical merged hashes for
/// every value of shards (including per-circuit stream equality with
/// run_soak for circuit 0).
ShardedSoakResult run_sharded_soak(const ShardedSoakOptions& options);

}  // namespace netco::scenario
