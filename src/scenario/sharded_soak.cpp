#include "scenario/sharded_soak.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/assert.h"
#include "common/hash.h"
#include "link/link.h"
#include "obs/observability.h"
#include "scenario/soak_circuit.h"
#include "sim/shard.h"

namespace netco::scenario {

namespace {

/// Adapts a SoakCircuit to the ShardCell window protocol, plus the
/// optional beacon transmitter that exercises the shard-crossing link
/// path (link::Channel::bind_remote over a ShardChannel).
class SoakCell final : public sim::ShardCell {
 public:
  SoakCell(const SoakOptions& options, sim::ShardChannel* beacon_out,
           std::uint64_t* peer_beacon_count, sim::Duration beacon_period,
           SoakResult* out)
      : circuit_(options), out_(out), beacon_period_(beacon_period) {
    if (beacon_out != nullptr) {
      // The beacon link's propagation doubles as the cross-shard
      // lookahead: a cross-pod link is the latency that *buys* the
      // parallelism, so it must cover the channel's declared bound.
      link::LinkConfig cfg;
      cfg.propagation = beacon_out->lookahead();
      beacon_tx_ = std::make_unique<link::Channel>(circuit_.simulator(), cfg);
      beacon_tx_->set_label("beacon");
      // The delivery runs on the *receiving* cell's worker; bumping a
      // plain counter slot owned by that receiver keeps it race-free.
      beacon_tx_->bind_remote(*beacon_out, [peer_beacon_count](net::Packet) {
        ++*peer_beacon_count;
      });
    }
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept override {
    return circuit_.simulator();
  }

  sim::TimePoint start() override {
    if (beacon_tx_ != nullptr) schedule_beacon();
    cap_ = circuit_.start();
    return cap_;
  }

  void before_window() override {
    // Every worker-thread window must route this circuit's records to
    // this circuit's checker (cells sharing a worker share the
    // thread-local tracer).
    obs::global().tracer.set_sink(&circuit_.trace_sink());
  }

  sim::TimePoint on_window(sim::TimePoint committed) override {
    // Neighbor-constrained horizon below our cap: just keep going. The
    // circuit's own bookkeeping (audits, drain, stop) happens exactly on
    // its audit-period boundaries regardless of horizon slicing.
    if (committed < cap_) return cap_;
    cap_ = circuit_.on_window(committed);
    return cap_;
  }

  void finalize() override {
    obs::global().tracer.set_sink(&circuit_.trace_sink());
    circuit_.finalize();
    obs::global().tracer.set_sink(nullptr);
    *out_ = circuit_.take_result();
  }

 private:
  void schedule_beacon() {
    // Fire-and-forget heartbeats for the whole run; events pending after
    // the circuit finishes simply never execute.
    circuit_.simulator().schedule_after(beacon_period_, [this] {
      beacon_tx_->send(net::Packet::zeroed(64));
      schedule_beacon();
    });
  }

  SoakCircuit circuit_;
  SoakResult* out_;
  sim::Duration beacon_period_;
  std::unique_ptr<link::Channel> beacon_tx_;
  sim::TimePoint cap_;
};

}  // namespace

ShardedSoakResult run_sharded_soak(const ShardedSoakOptions& options) {
  NETCO_ASSERT(options.circuits >= 1);
  NETCO_ASSERT(options.shards >= 1);
  const std::size_t n = options.circuits;
  const int workers = std::min<int>(options.shards, static_cast<int>(n));
  const bool beacons_on = options.cross_shard_beacons && n > 1;
  NETCO_ASSERT_MSG(!beacons_on || options.beacon_period > sim::Duration::zero(),
                   "beacon period must be positive (it is the lookahead)");

  ShardedSoakResult out;
  out.circuits.resize(n);
  std::vector<std::uint64_t> beacons_received(n, 0);
  std::vector<obs::MetricsRegistry> worker_metrics(
      static_cast<std::size_t>(workers));

  sim::ShardedSimulator::Options sim_opts;
  sim_opts.workers = options.shards;
  sim::ShardedSimulator sharded(sim_opts);

  // Factories run on the pinned workers at run(); they capture the ring
  // slots by reference so connect() below can fill them in afterwards.
  std::vector<sim::ShardChannel*> ring(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    SoakOptions circuit_options = options.base;
    // Circuit 0 keeps the base seed exactly — a 1-circuit fleet must
    // reproduce run_soak(base) bit-for-bit.
    if (i != 0) {
      circuit_options.seed = hash_mix(options.base.seed,
                                              static_cast<std::uint64_t>(i));
    }
    SoakResult* slot = &out.circuits[i];
    std::uint64_t* peer_count = &beacons_received[(i + 1) % n];
    const sim::Duration period = options.beacon_period;
    sharded.add_cell([circuit_options, &ring, i, peer_count, period, slot] {
      return std::make_unique<SoakCell>(circuit_options, ring[i], peer_count,
                                        period, slot);
    });
  }
  if (beacons_on) {
    for (std::size_t i = 0; i < n; ++i) {
      ring[i] = &sharded.connect(i, (i + 1) % n, options.beacon_period);
    }
  }

  sharded.set_worker_prologue([](int) {
    // Fresh thread-local context per worker (mirrors run_soak's reset).
    obs::global().metrics.reset();
    obs::global().tracer.set_sink(nullptr);
  });
  sharded.set_worker_epilogue([&worker_metrics](int worker) {
    worker_metrics[static_cast<std::size_t>(worker)].merge_from(
        obs::global().metrics);
  });

  const auto wall_start = std::chrono::steady_clock::now();
  sharded.run();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Canonical merges. The stream-hash fold is the identity for a single
  // circuit, so a 1-circuit fleet exposes run_soak's exact hash.
  if (n == 1) {
    out.merged_stream_hash = out.circuits[0].stream_hash;
    out.merged_egress_hash = out.circuits[0].egress_set_hash;
  } else {
    std::uint64_t stream = kFnvOffset;
    std::uint64_t egress = kFnvOffset;
    for (const SoakResult& r : out.circuits) {
      stream = hash_mix(stream, r.stream_hash);
      egress = hash_mix(egress, r.egress_set_hash);
    }
    out.merged_stream_hash = stream;
    out.merged_egress_hash = egress;
  }
  for (const SoakResult& r : out.circuits) {
    out.datagrams_sent += r.datagrams_sent;
    out.delivered_unique += r.delivered_unique;
    out.compare_ingested += r.compare_ingested;
    out.compare_released += r.compare_released;
    out.duplicate_egress += r.duplicate_egress;
    out.fault_events_applied += r.fault_events_applied;
  }
  out.rounds = sharded.rounds();
  out.cross_shard_messages = sharded.cross_shard_messages();
  for (const std::uint64_t count : beacons_received) {
    out.beacons_received += count;
  }
  out.wall_pps = out.wall_seconds > 0.0
                     ? static_cast<double>(out.datagrams_sent) /
                           out.wall_seconds
                     : 0.0;

  // Worker-order merge: counter totals are shard-count invariant sums;
  // histogram float sums are deterministic for a fixed shard count.
  obs::MetricsRegistry merged;
  for (obs::MetricsRegistry& registry : worker_metrics) {
    merged.merge_from(registry);
  }
  out.metrics_json = merged.to_json();
  return out;
}

}  // namespace netco::scenario
