#include "scenario/failover.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/assert.h"
#include "common/hash.h"
#include "faultinject/invariants.h"
#include "host/host.h"
#include "obs/observability.h"
#include "openflow/switch.h"
#include "sim/shard.h"

namespace netco::scenario {

namespace {

/// Flow f's receiver binds kFlowPortBase + f — one destination host per
/// flow, so the port alone identifies the flow on delivery.
constexpr std::uint16_t kFlowPortBase = 7100;

/// One fat-tree circuit on its own Simulator, exposing the ShardCell
/// window protocol (driven by a run_until loop solo, or by a
/// ShardedSimulator as a fleet).
class FailoverCircuit {
 public:
  explicit FailoverCircuit(const FailoverOptions& options)
      : opts_(options),
        topo_(make_topo_options(options)),
        checker_(faultinject::QuorumTraceChecker::Config{
            .quorum = options.use_combiner ? options.combiner_k / 2 + 1 : 1,
            .k = options.use_combiner ? options.combiner_k : 0,
            .check_duplicates = true,
            .audit_reroutes = true}) {
    NETCO_ASSERT(opts_.window > sim::Duration::zero());
    NETCO_ASSERT(opts_.horizon >= opts_.window * 4);
    NETCO_ASSERT(opts_.data_period > sim::Duration::zero());
    if (opts_.compile_backup_rules) {
      summary_ = failover::compile_failover(topo_, opts_.compiler);
    }
    materialize_plan();
    injector_.emplace(topo_, plan_,
                      faultinject::FabricInjectorOptions{opts_.keepalive});
    const std::int64_t horizon_ns = opts_.horizon.ns();
    windows_ = static_cast<std::size_t>((horizon_ns + opts_.window.ns() - 1) /
                                        opts_.window.ns());
    sent_w_.assign(windows_, 0);
    delivered_w_.assign(windows_, 0);
    build_flows();
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return topo_.simulator();
  }
  [[nodiscard]] obs::TraceSink& trace_sink() noexcept { return checker_; }

  sim::TimePoint start() {
    injector_->arm();
    data_end_ = sim::TimePoint::origin() + opts_.horizon - opts_.window * 2;
    for (std::size_t f = 0; f < flows_.size(); ++f) {
      topo_.simulator().schedule_at(
          sim::TimePoint::origin() +
              sim::Duration::nanoseconds(flows_[f].offset_ns),
          [this, f] { send_flow(f); });
    }
    cap_ = sim::TimePoint::origin() + opts_.window;
    return cap_;
  }

  sim::TimePoint on_window(sim::TimePoint committed) {
    if (committed < cap_) return cap_;
    if (committed + opts_.window > sim::TimePoint::origin() + opts_.horizon) {
      return done_marker();
    }
    cap_ = committed + opts_.window;
    return cap_;
  }

  void finalize() {
    for (const Flow& flow : flows_) {
      result_.data_delivered += flow.delivered.size();
    }
    result_.goodput_overall =
        result_.data_sent > 0
            ? static_cast<double>(result_.data_delivered) /
                  static_cast<double>(result_.data_sent)
            : 0.0;

    // The per-window ledger: last window with traffic, last lossy window.
    std::ptrdiff_t last_data = -1;
    std::ptrdiff_t last_lossy = -1;
    for (std::size_t w = 0; w < windows_; ++w) {
      if (sent_w_[w] == 0) continue;
      last_data = static_cast<std::ptrdiff_t>(w);
      if (delivered_w_[w] < sent_w_[w]) {
        last_lossy = static_cast<std::ptrdiff_t>(w);
      }
    }
    const std::int64_t window_ns = opts_.window.ns();
    result_.fail_at_ns = fail_at_ns_;
    if (fail_at_ns_ >= 0 && last_data >= 0) {
      const auto fail_w = static_cast<std::ptrdiff_t>(
          std::min<std::int64_t>(fail_at_ns_ / window_ns,
                                 static_cast<std::int64_t>(windows_ - 1)));
      double dip = 1.0;
      for (std::ptrdiff_t w = fail_w; w <= last_data; ++w) {
        const auto uw = static_cast<std::size_t>(w);
        if (sent_w_[uw] == 0) continue;
        dip = std::min(dip, static_cast<double>(delivered_w_[uw]) /
                                static_cast<double>(sent_w_[uw]));
      }
      result_.goodput_dip = dip;
    }
    result_.recovered = last_data >= 0 && last_lossy < last_data;
    if (last_lossy < 0) {
      result_.reroute_latency_ns = 0;
    } else if (result_.recovered) {
      result_.reroute_latency_ns =
          (last_lossy + 1) * window_ns -
          (fail_at_ns_ >= 0 ? fail_at_ns_ : 0);
    } else {
      result_.reroute_latency_ns = -1;
    }

    for (int sid = 0; sid < topo_.switch_count(); ++sid) {
      const openflow::OpenFlowSwitch* sw = topo_.switch_by_sid(sid);
      if (sw == nullptr) continue;  // the wrapped combiner position
      const openflow::SwitchStats& s = sw->stats();
      result_.static_backup_hits += s.static_backup_hits;
      result_.failover_reroutes += s.failover_reroutes;
      result_.dropped_no_rule += s.dropped_no_rule;
      result_.controller_packet_ins += s.packet_ins_sent;
    }

    result_.backup_rules_installed = summary_.rules_installed;
    result_.primaries_guarded = summary_.primaries_guarded;
    result_.fault_events = static_cast<std::uint64_t>(injector_->applied());
    result_.checker_reroutes = checker_.reroutes();
    result_.duplicates = checker_.duplicates();
    result_.invariant_violations = checker_.report().violations;
    result_.stream_hash = checker_.stream_hash();
    result_.absorbed = result_.recovered &&
                       result_.invariant_violations == 0 &&
                       result_.duplicates == 0 &&
                       result_.controller_packet_ins == 0;
  }

  [[nodiscard]] FailoverResult take_result() { return std::move(result_); }

  [[nodiscard]] static constexpr sim::TimePoint done_marker() noexcept {
    return sim::TimePoint::from_ns(INT64_MAX);
  }

 private:
  struct Flow {
    host::Host* src = nullptr;
    host::Host* dst = nullptr;
    std::uint16_t port = 0;
    std::int64_t offset_ns = 0;  ///< first send, relative to the origin
    std::uint32_t next_seq = 0;
    std::unordered_set<std::uint32_t> delivered;
  };

  static topo::FatTreeOptions make_topo_options(
      const FailoverOptions& options) {
    topo::FatTreeOptions topts;
    topts.k = options.k;
    topts.seed = options.seed;
    if (options.use_combiner) {
      topts.combine_agg = options.protect;
      topts.combiner.k = options.combiner_k;
    }
    return topts;
  }

  void materialize_plan() {
    plan_ = opts_.plan;
    if (plan_.empty() && opts_.link_cuts + opts_.switch_kills > 0) {
      plan_ = faultinject::make_kill_plan(
          topo_, {.seed = opts_.seed,
                  .link_cuts = opts_.link_cuts,
                  .switch_kills = opts_.switch_kills,
                  .at = opts_.fail_at,
                  .target = opts_.target});
    }
    plan_.normalize();
    for (const faultinject::FaultEvent& event : plan_.events) {
      switch (event.kind) {
        case faultinject::FaultKind::kFabricLinkCut:
        case faultinject::FaultKind::kFabricLinkRestore:
        case faultinject::FaultKind::kSwitchKill:
        case faultinject::FaultKind::kSwitchRestart:
          if (fail_at_ns_ < 0 || event.at_ns < fail_at_ns_) {
            fail_at_ns_ = event.at_ns;
          }
          break;
        default:
          break;
      }
    }
  }

  /// Every host streams to its counterpart one pod over: flow
  /// (p, e, i) → ((p+1) mod k, e, i). All flows are inter-pod, so every
  /// one crosses an aggregation tier and the core in both pods.
  void build_flows() {
    const int k = opts_.k;
    const int h = k / 2;
    flows_.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(h) *
                   static_cast<std::size_t>(h));
    for (int p = 0; p < k; ++p) {
      for (int e = 0; e < h; ++e) {
        for (int i = 0; i < h; ++i) {
          const std::size_t f = flows_.size();
          Flow flow;
          flow.src = &topo_.host(p, e, i);
          flow.dst = &topo_.host((p + 1) % k, e, i);
          flow.port = static_cast<std::uint16_t>(kFlowPortBase + f);
          flow.offset_ns =
              opts_.flow_start.ns() +
              static_cast<std::int64_t>(f) * opts_.flow_stagger.ns();
          flows_.push_back(std::move(flow));
          flows_.back().dst->bind_udp(
              flows_.back().port,
              [this, f](const net::ParsedPacket& parsed,
                        const net::Packet& packet) {
                on_delivery(f, parsed, packet);
              });
        }
      }
    }
    NETCO_ASSERT(!flows_.empty());
  }

  [[nodiscard]] std::size_t window_of(std::size_t f,
                                      std::uint32_t seq) const {
    const std::int64_t at = flows_[f].offset_ns +
                            static_cast<std::int64_t>(seq) *
                                opts_.data_period.ns();
    const auto w = static_cast<std::size_t>(at / opts_.window.ns());
    return std::min(w, windows_ - 1);
  }

  void send_flow(std::size_t f) {
    if (topo_.simulator().now() >= data_end_) return;
    Flow& flow = flows_[f];
    const std::uint32_t seq = flow.next_seq++;
    // Payload: seq big-endian in bytes 0..3, flow id in 4..7 — every
    // packet's content (and hence trace id) is unique across the run.
    std::vector<std::byte> payload(16, std::byte{0});
    for (std::size_t i = 0; i < 4; ++i) {
      payload[i] = static_cast<std::byte>((seq >> (24 - 8 * i)) & 0xFF);
      payload[4 + i] = static_cast<std::byte>(
          (static_cast<std::uint32_t>(f) >> (24 - 8 * i)) & 0xFF);
    }
    net::Packet probe = net::build_udp(
        net::EthernetHeader{.dst = flow.dst->mac(), .src = flow.src->mac()},
        std::nullopt,
        net::Ipv4Header{.src = flow.src->ip(),
                        .dst = flow.dst->ip(),
                        .proto = net::IpProto::Udp,
                        .identification = flow.src->next_ip_id()},
        net::UdpHeader{.src_port = kFlowPortBase, .dst_port = flow.port},
        payload);
    flow.src->transmit(std::move(probe));
    ++result_.data_sent;
    ++sent_w_[window_of(f, seq)];
    topo_.simulator().schedule_after(opts_.data_period,
                                     [this, f] { send_flow(f); });
  }

  void on_delivery(std::size_t f, const net::ParsedPacket& parsed,
                   const net::Packet& packet) {
    if (packet.size() < parsed.payload_offset + 4) return;
    std::uint32_t seq = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      seq = (seq << 8) | std::to_integer<std::uint32_t>(
                             packet.slice(parsed.payload_offset + i, 1)[0]);
    }
    if (!flows_[f].delivered.insert(seq).second) return;
    ++delivered_w_[window_of(f, seq)];
  }

  FailoverOptions opts_;
  topo::FatTreeTopology topo_;
  faultinject::QuorumTraceChecker checker_;
  failover::CompileSummary summary_;
  faultinject::FaultPlan plan_;
  std::optional<faultinject::FabricFaultInjector> injector_;
  std::int64_t fail_at_ns_ = -1;

  std::vector<Flow> flows_;
  std::size_t windows_ = 0;
  std::vector<std::uint64_t> sent_w_;
  std::vector<std::uint64_t> delivered_w_;

  sim::TimePoint data_end_;
  sim::TimePoint cap_;
  FailoverResult result_;
};

/// Adapts a circuit to the ShardCell protocol (fleet runs).
class FailoverCell final : public sim::ShardCell {
 public:
  FailoverCell(const FailoverOptions& options, FailoverResult* out)
      : circuit_(options), out_(out) {}

  [[nodiscard]] sim::Simulator& simulator() noexcept override {
    return circuit_.simulator();
  }

  sim::TimePoint start() override {
    cap_ = circuit_.start();
    return cap_;
  }

  void before_window() override {
    obs::global().tracer.set_sink(&circuit_.trace_sink());
  }

  sim::TimePoint on_window(sim::TimePoint committed) override {
    if (committed < cap_) return cap_;
    cap_ = circuit_.on_window(committed);
    return cap_;
  }

  void finalize() override {
    obs::global().tracer.set_sink(&circuit_.trace_sink());
    circuit_.finalize();
    obs::global().tracer.set_sink(nullptr);
    *out_ = circuit_.take_result();
  }

 private:
  FailoverCircuit circuit_;
  FailoverResult* out_;
  sim::TimePoint cap_;
};

}  // namespace

FailoverResult run_failover(const FailoverOptions& options) {
  FailoverCircuit circuit(options);
  obs::ScopedTraceSink scoped(circuit.trace_sink());
  sim::TimePoint cap = circuit.start();
  while (cap != FailoverCircuit::done_marker()) {
    circuit.simulator().run_until(cap);
    cap = circuit.on_window(cap);
  }
  circuit.finalize();
  return circuit.take_result();
}

FailoverFleetResult run_failover_fleet(const FailoverOptions& base,
                                       std::size_t circuits, int shards) {
  NETCO_ASSERT(circuits >= 1);
  NETCO_ASSERT(shards >= 1);
  FailoverFleetResult out;
  out.circuits.resize(circuits);

  sim::ShardedSimulator::Options sim_opts;
  sim_opts.workers = shards;
  sim::ShardedSimulator sharded(sim_opts);
  for (std::size_t i = 0; i < circuits; ++i) {
    FailoverOptions circuit_options = base;
    // Circuit 0 keeps the base seed exactly — a 1-circuit fleet must
    // reproduce run_failover(base) bit-for-bit.
    if (i != 0) {
      circuit_options.seed =
          hash_mix(base.seed, static_cast<std::uint64_t>(i));
    }
    FailoverResult* slot = &out.circuits[i];
    sharded.add_cell([circuit_options, slot] {
      return std::make_unique<FailoverCell>(circuit_options, slot);
    });
  }
  sharded.set_worker_prologue([](int) {
    obs::global().metrics.reset();
    obs::global().tracer.set_sink(nullptr);
  });
  sharded.run();

  if (circuits == 1) {
    out.merged_stream_hash = out.circuits[0].stream_hash;
  } else {
    std::uint64_t stream = kFnvOffset;
    for (const FailoverResult& r : out.circuits) {
      stream = hash_mix(stream, r.stream_hash);
    }
    out.merged_stream_hash = stream;
  }
  return out;
}

}  // namespace netco::scenario
