#include "scenario/case_study.h"

#include <memory>
#include <vector>

#include "adversary/behaviors.h"
#include "host/ping.h"
#include "topo/fattree.h"

namespace netco::scenario {
namespace {

constexpr int kArity = 4;  // k=4 fat-tree: 2 edges + 2 aggs per pod

/// Builds the §VI attack: mirror fw1-bound traffic coming up from vm1's
/// edge to an off-path core, and drop everything addressed to vm1.
std::unique_ptr<adversary::CompositeBehavior> make_attack(
    const net::MacAddress& fw1, const net::MacAddress& vm1,
    device::PortIndex port_from_edge0, device::PortIndex port_to_core1,
    const adversary::MirrorBehavior** mirror_out) {
  std::vector<std::unique_ptr<device::DatapathInterceptor>> chain;
  auto mirror = std::make_unique<adversary::MirrorBehavior>(
      adversary::from_port(port_from_edge0, adversary::match_dl_dst(fw1)),
      port_to_core1);
  *mirror_out = mirror.get();
  chain.push_back(std::move(mirror));
  chain.push_back(std::make_unique<adversary::DropBehavior>(
      adversary::match_dl_dst(vm1)));
  return std::make_unique<adversary::CompositeBehavior>(std::move(chain));
}

}  // namespace

const char* to_string(CaseStudyMode mode) noexcept {
  switch (mode) {
    case CaseStudyMode::kBaseline:  return "baseline";
    case CaseStudyMode::kAttacked:  return "attacked";
    case CaseStudyMode::kProtected: return "netco-protected";
  }
  return "?";
}

CaseStudyResult run_case_study(CaseStudyMode mode, int cycles,
                               std::uint64_t seed) {
  topo::FatTreeOptions options;
  options.k = kArity;
  options.seed = seed;
  if (mode == CaseStudyMode::kProtected) {
    options.combine_agg = topo::AggPosition{.pod = 0, .index = 0};
    options.combiner.k = 3;
  }
  topo::FatTreeTopology topo(options);

  host::Host& vm1 = topo.host(0, 0, 0);
  host::Host& fw1 = topo.host(0, 1, 0);
  const device::PortIndex port_from_edge0 = topo.agg_port_to_edge(0);
  const device::PortIndex port_to_core1 = topo.agg_port_to_core(1);

  // Install the malicious datapath.
  const adversary::MirrorBehavior* mirror = nullptr;
  std::unique_ptr<adversary::CompositeBehavior> attack;
  if (mode == CaseStudyMode::kAttacked) {
    attack = make_attack(fw1.mac(), vm1.mac(), port_from_edge0, port_to_core1,
                         &mirror);
    topo.agg(0, 0)->set_interceptor(attack.get());
  } else if (mode == CaseStudyMode::kProtected) {
    attack = make_attack(fw1.mac(), vm1.mac(), port_from_edge0, port_to_core1,
                         &mirror);
    topo.combiner().replicas[0]->set_interceptor(attack.get());
  }

  // Screening method 1: tcpdump-style tap on the mirror-target core.
  std::uint64_t mirrored_at_core = 0;
  topo.core(1).set_ingress_tap(
      [&mirrored_at_core, fw1_mac = fw1.mac()](device::PortIndex,
                                               const net::Packet& packet) {
        if (packet.size() >= 6 && packet.mac_at(0) == fw1_mac)
          ++mirrored_at_core;
      });

  // Run the ICMP echo cycles vm1 → fw1 (the tunnel-2 path of Fig. 1).
  host::PingConfig ping_config;
  ping_config.dst_mac = fw1.mac();
  ping_config.dst_ip = fw1.ip();
  ping_config.count = cycles;
  ping_config.interval = sim::Duration::milliseconds(5);
  ping_config.timeout = sim::Duration::milliseconds(200);
  host::IcmpPinger pinger(vm1, ping_config);
  pinger.start();

  const auto deadline =
      sim::TimePoint::origin() + sim::Duration::seconds(2);
  while (!pinger.finished() && topo.simulator().now() < deadline) {
    topo.simulator().run_until(topo.simulator().now() +
                               sim::Duration::milliseconds(20));
  }

  CaseStudyResult result;
  const auto report = pinger.report();
  result.requests_sent = report.transmitted;
  result.replies_received_at_vm1 = report.received;
  result.requests_at_fw1 = fw1.stats().icmp_echo_requests;
  result.mirrored_at_core = mirrored_at_core;
  if (mirror != nullptr) {
    result.attacker_packets_attacked = mirror->attack_stats().packets_attacked;
  }

  // Screening method 2: host-side MAC filters count stray arrivals.
  for (const auto& node : topo.network().nodes()) {
    if (const auto* host = dynamic_cast<const host::Host*>(node.get())) {
      result.stray_at_hosts += host->stats().rx_stray;
    }
  }

  if (mode == CaseStudyMode::kProtected) {
    for (const auto* edge : topo.combiner().edges) {
      const auto* stats = topo.combiner().compare->stats_for(edge->name());
      if (stats == nullptr) continue;
      result.compare_ingested += stats->ingested;
      result.compare_released += stats->released;
      result.compare_evicted_minority += stats->evicted_timeout;
    }
  }
  return result;
}

}  // namespace netco::scenario
