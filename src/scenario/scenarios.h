// The six evaluation scenarios of §V-A, plus the measurement drivers that
// reproduce the paper's iperf/ping methodology.
//
//   Linespeed — no combiner, single router (the performance ceiling);
//   Central3  — full NetCo, k = 3, compare as a fast C process;
//   Central5  — full NetCo, k = 5;
//   POX3      — the compare as a POX (Python) controller app, k = 3;
//   Dup3/Dup5 — split without combining (duplicates reach the host).
//
// Every measurement run builds a *fresh* topology (fresh seeds ⇒
// independent runs, matching the paper's 10+10 iperf test runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/ping.h"
#include "stats/summary.h"
#include "topo/figure3.h"

namespace netco::scenario {

/// The evaluation scenarios (§V-A).
enum class ScenarioKind : std::uint8_t {
  kLinespeed,
  kDup3,
  kDup5,
  kCentral3,
  kCentral5,
  kPox3,
};

/// Display name ("Linespeed", "Central3", ...).
[[nodiscard]] const char* to_string(ScenarioKind kind) noexcept;

/// The six scenarios in the paper's presentation order.
[[nodiscard]] std::vector<ScenarioKind> all_scenarios();

/// The five Table-I scenarios (everything except POX3).
[[nodiscard]] std::vector<ScenarioKind> table1_scenarios();

/// Builds the Fig. 3 options that realize `kind` (tuned defaults).
[[nodiscard]] topo::Figure3Options make_options(ScenarioKind kind,
                                                std::uint64_t seed);

// --- measurement drivers (iperf/ping methodology) ------------------------

/// One TCP bulk-transfer measurement set.
struct TcpMeasurement {
  stats::Summary mbps;                 ///< per-run goodput summary
  std::vector<double> per_run_mbps;
};

/// Runs `runs` independent TCP transfers of `per_run` each (direction
/// alternates per run, per the paper's 10+10 protocol) and reports the
/// receiver-side goodput.
TcpMeasurement measure_tcp(ScenarioKind kind, int runs, sim::Duration per_run,
                           std::uint64_t seed = 1);

/// One UDP run at a fixed offered rate.
struct UdpRun {
  double offered_mbps = 0.0;
  double goodput_mbps = 0.0;
  double loss_rate = 0.0;
  double jitter_ms = 0.0;
};

/// Runs a single fresh UDP measurement (warmup excluded from the report).
UdpRun measure_udp_at(ScenarioKind kind, DataRate rate, sim::Duration per_run,
                      std::uint64_t seed = 1, std::size_t payload_bytes = 1470);

/// Result of the iperf "-b until maximum" search (§V-A).
struct UdpMax {
  double rate_mbps = 0.0;     ///< highest offered rate within the loss bound
  double goodput_mbps = 0.0;  ///< goodput measured at that rate
  double loss_rate = 0.0;
  double jitter_ms = 0.0;
};

/// Binary-searches the highest offered rate whose loss stays below
/// `loss_bound` (paper: 0.5 %), then reports the run at that rate.
UdpMax find_udp_max(ScenarioKind kind, double loss_bound,
                    sim::Duration per_run, std::uint64_t seed = 1,
                    std::size_t payload_bytes = 1470,
                    double hi_mbps = 1000.0);

/// Ping run (paper: sequences of 50 ICMP cycles).
host::PingReport measure_ping(ScenarioKind kind, int count,
                              sim::Duration interval, std::uint64_t seed = 1);

}  // namespace netco::scenario
