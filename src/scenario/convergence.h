// Routing-convergence harness: a diamond of four legacy routers running
// the RIP-v2 control plane (src/routing), with the RA—RB backbone hop
// passing through either a NetCo combiner circuit or a single unprotected
// switch — the "router position" under evaluation.
//
//            hA — RA ===[ P ]=== RB — hB        P = combiner | 1 switch
//                  \             /
//                   RC ------- RD                (honest detour path)
//
// RIP announcements are plain UDP datagrams, so they replicate through
// the combiner exactly like data traffic: a lying replica inside P
// (route poisoning, metric inflation, blackhole advertisements —
// src/adversary control-plane behaviours, injected via FaultPlan events)
// rewrites its copy of every announcement, and the compare element's
// majority quorum decides whether the lie ever reaches RA/RB. The
// harness measures what the paper's reliability claim means for a
// *control* plane: time to converge to the correct tables, and goodput
// of an hA→hB data flow while convergence is under attack.
//
// Determinism contract matches the soak: one circuit per Simulator, all
// trace records folded into a QuorumTraceChecker stream hash, identical
// hashes for same-seed runs — solo (run_convergence) or as a fleet on a
// ShardedSimulator (run_convergence_fleet), for any shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "faultinject/fault_plan.h"
#include "routing/rip.h"
#include "sim/time.h"

namespace netco::scenario {

/// Which control-plane lie the liars tell (FaultPlan kinds routing.*).
enum class RoutingAttack : std::uint8_t {
  kNone,       ///< benign run
  kPoison,     ///< false low metrics: every advertised metric → 0
  kInflate,    ///< every advertised metric + 8 (clamped to 16)
  kBlackhole,  ///< poisoned announcements + attracted data dropped
};

[[nodiscard]] const char* to_string(RoutingAttack attack) noexcept;

/// Parameters of one convergence run.
struct ConvergenceOptions {
  std::uint64_t seed = 1;

  /// true → P is a k-replica combiner circuit; false → one plain switch.
  bool use_combiner = true;
  int k = 3;

  /// Lying replicas inside P (combiner mode: replicas 0..liars-1;
  /// unprotected mode: any value > 0 corrupts the single switch).
  int liars = 0;
  RoutingAttack attack = RoutingAttack::kInflate;
  /// When the liars switch on (simulated time).
  sim::Duration attack_start = sim::Duration::zero();

  /// Explicit fault schedule; when empty, one routing.* event per liar at
  /// attack_start is synthesized from the two fields above.
  faultinject::FaultPlan plan;

  /// Protocol timing for all four speakers (first_update is staggered
  /// per router on top of this base so periodic updates never sync).
  routing::RipConfig rip;

  sim::Duration horizon = sim::Duration::seconds(3);
  /// Table-check / goodput-sampling cadence.
  sim::Duration window = sim::Duration::milliseconds(50);

  /// hA → hB probe flow (one datagram per period until shortly before
  /// the horizon).
  sim::Duration data_period = sim::Duration::milliseconds(5);
};

/// Outcome of one run.
struct ConvergenceResult {
  /// All four tables match the benign ground truth at the horizon, and
  /// kept matching from convergence_ns on.
  bool converged_correct = false;
  /// End of the first window after the last table mismatch (-1 = never
  /// converged to the correct tables).
  std::int64_t convergence_ns = -1;

  std::uint64_t data_sent = 0;
  std::uint64_t data_delivered = 0;  ///< unique probe sequences at hB
  /// delivered/sent at the convergence boundary (overall ratio when the
  /// run never converged) — the cost of the convergence transient.
  double goodput_during_convergence = 0.0;
  double goodput_overall = 0.0;
  /// Data packets swallowed by blackhole liars.
  std::uint64_t data_dropped_by_liars = 0;

  // Control-plane totals over the four speakers.
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t route_changes = 0;
  std::uint64_t routes_timed_out = 0;

  std::uint64_t fault_events_applied = 0;
  /// Protocol-invariant violations seen by the trace checker.
  std::uint64_t invariant_violations = 0;
  /// FNV-1a over every trace record — the determinism fingerprint.
  std::uint64_t stream_hash = 0;
};

/// Runs one circuit on one thread. Same seed + options ⇒ same
/// ConvergenceResult, including stream_hash.
ConvergenceResult run_convergence(const ConvergenceOptions& options);

/// A fleet of independent circuits on a ShardedSimulator.
struct ConvergenceFleetResult {
  std::vector<ConvergenceResult> circuits;  ///< indexed by circuit id
  /// Per-circuit stream hashes folded in circuit order (identity for a
  /// single circuit — reproduces run_convergence's hash exactly).
  std::uint64_t merged_stream_hash = 0;
};

/// Circuit 0 runs base.seed exactly; circuit i > 0 runs
/// hash_mix(base.seed, i). The merged hash is shard-count invariant.
ConvergenceFleetResult run_convergence_fleet(const ConvergenceOptions& base,
                                             std::size_t circuits,
                                             int shards);

}  // namespace netco::scenario
