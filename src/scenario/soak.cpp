#include "scenario/soak.h"

#include "obs/observability.h"
#include "scenario/soak_circuit.h"

namespace netco::scenario {

SoakResult run_soak(const SoakOptions& options) {
  obs::Observability& obs = obs::global();
  obs.metrics.reset();

  // The circuit owns the whole stack (topology, checker, injector, UDP
  // endpoints) and its window hooks encode the classic soak program:
  // run to the cap, audit, repeat; stop + one drain window; final audit.
  // Driving it with a plain run_until() loop here is bit-identical to the
  // pre-refactor inline loop — the sharded harness drives the same hooks
  // from worker threads (scenario/sharded_soak.cpp).
  SoakCircuit circuit(options);
  obs::ScopedTraceSink scoped(circuit.trace_sink());

  sim::TimePoint cap = circuit.start();
  while (cap != SoakCircuit::done_marker()) {
    circuit.simulator().run_until(cap);
    cap = circuit.on_window(cap);
  }
  circuit.finalize();
  return circuit.take_result();
}

}  // namespace netco::scenario
