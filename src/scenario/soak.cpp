#include "scenario/soak.h"

#include <algorithm>
#include <chrono>

#include "common/assert.h"
#include "faultinject/injector.h"
#include "host/udp_app.h"
#include "obs/observability.h"

namespace netco::scenario {

namespace {

/// Expected run length for a packet budget at an offered rate, with head
/// room for warmup, fault churn, and pacing jitter.
sim::Duration expected_duration(const SoakOptions& options) {
  const double pps = static_cast<double>(options.rate.bps()) /
                     (static_cast<double>(options.payload_bytes) * 8.0);
  const double secs = static_cast<double>(options.packets) / pps;
  return sim::Duration::seconds_f(secs);
}

/// Forwards only the record kinds the protocol checker actually reads
/// (everything except the hub/replica/link forwarding narration), so a
/// perf-comparison pair is not dominated by serialize-and-hash cost that
/// is identical on both sides anyway (see SoakOptions::protocol_trace_only).
class ProtocolFilterSink final : public obs::TraceSink {
 public:
  explicit ProtocolFilterSink(obs::TraceSink& downstream)
      : downstream_(downstream) {}

  void append(const obs::TraceRecord& record) override {
    switch (record.event) {
      case obs::TraceEvent::kHubIngress:
      case obs::TraceEvent::kHubMerge:
      case obs::TraceEvent::kReplicaForward:
      case obs::TraceEvent::kLinkDrop:
      case obs::TraceEvent::kLinkLoss:
        return;
      default:
        downstream_.append(record);
    }
  }

 private:
  obs::TraceSink& downstream_;
};

}  // namespace

SoakResult run_soak(const SoakOptions& options) {
  NETCO_ASSERT(options.packets > 0 && options.rate.positive());
  NETCO_ASSERT_MSG(
      !(options.sampling.enabled && options.resilience.enabled),
      "sampled verification and warm-standby resilience are mutually "
      "exclusive: fast-path releases bypass the standby's suppression "
      "window (see SoakOptions::sampling)");
  obs::Observability& obs = obs::global();
  obs.metrics.reset();

  // Central3/Central5 tuning, then override the soak-specific knobs.
  topo::Figure3Options topo_options = make_options(
      options.k >= 5 ? ScenarioKind::kCentral5 : ScenarioKind::kCentral3,
      options.seed);
  topo_options.combiner.k = options.k;
  topo_options.combiner.compare.policy = options.policy;
  // Blocks must recover: a fault plan *will* trip the flood monitors
  // (byzantine swaps produce attributable garbage), and a permanent block
  // of an honest replica would turn one transient into a dead replica for
  // the rest of the soak. This also keeps the unblock timer path hot.
  topo_options.combiner.block_duration = sim::Duration::milliseconds(50);
  topo_options.health = options.health;
  topo_options.combiner.compare.sampling = options.sampling;

  SoakOptions opts = options;  // materialize the default plan
  const sim::Duration horizon = expected_duration(options);
  if (opts.plan.empty() && opts.inject_default_faults) {
    faultinject::FaultPlanParams params;
    params.k = options.k;
    params.horizon = horizon;
    // Short smoke runs still deserve churn: keep the quiet lead-in below
    // a fifth of the run instead of a fixed 100 ms.
    params.start = std::min(params.start,
                            sim::Duration::nanoseconds(horizon.ns() / 5));
    // With the resilience subsystem on, the default plan also kills the
    // trusted compare once mid-run — the failure the subsystem exists for.
    if (opts.resilience.enabled) params.compare_crashes = 1;
    opts.plan = faultinject::FaultPlan::random(options.seed, params);
  }

  topo::Figure3Topology topo(topo_options);

  faultinject::QuorumTraceChecker::Config check_cfg;
  check_cfg.quorum = options.k / 2 + 1;
  check_cfg.first_copy = options.policy == core::ReleasePolicy::kFirstCopy;
  // Adaptive mode: the checker follows health.quarantine/readmit records
  // in the stream, so quarantine-shrunken quorums validate correctly.
  check_cfg.k = options.k;
  // The at-most-once egress invariant engages for resilience runs
  // (crash-recovery and failover could double-release) and for sampled
  // runs (the fast path and the full compare must never both release).
  check_cfg.check_duplicates = opts.resilience.enabled ||
                               opts.sampling.enabled;
  faultinject::QuorumTraceChecker checker(check_cfg);
  ProtocolFilterSink filtered(checker);
  obs::ScopedTraceSink scoped(options.protocol_trace_only
                                  ? static_cast<obs::TraceSink&>(filtered)
                                  : checker);

  // Construct after the topology, destroy before it (taps and timers
  // reference the edges). Requires the compare (combine mode).
  std::unique_ptr<resilience::ResilienceManager> resilience_mgr;
  core::CombinerInstance& combiner_early = topo.combiner();
  if (opts.resilience.enabled && combiner_early.compare != nullptr) {
    resilience_mgr = std::make_unique<resilience::ResilienceManager>(
        topo.simulator(), combiner_early, opts.resilience);
  }

  faultinject::FaultInjector injector(topo, opts.plan);
  injector.set_resilience(resilience_mgr.get());
  injector.arm();

  host::UdpSenderConfig scfg;
  scfg.dst_mac = topo.h2().mac();
  scfg.dst_ip = topo.h2().ip();
  scfg.rate = opts.rate;
  scfg.payload_bytes = opts.payload_bytes;
  host::UdpSender sender(topo.h1(), scfg);
  host::UdpSink sink(topo.h2(), scfg.dst_port);

  SoakResult result;
  core::CombinerInstance& combiner = topo.combiner();
  const auto audit_cores = [&] {
    if (combiner.compare == nullptr) return;
    for (const auto* edge : combiner.edges) {
      const core::CompareCore* core =
          combiner.compare->core_for(edge->name());
      if (core == nullptr) continue;
      faultinject::check_audit(core->audit(), edge->name(),
                               result.invariants);
    }
    // The standby's shadow cores keep the same bookkeeping invariants.
    for (std::size_t i = 0; i < combiner.shadow_cores.size(); ++i) {
      faultinject::check_audit(combiner.shadow_cores[i]->audit(),
                               "standby-" + std::to_string(i),
                               result.invariants);
    }
    ++result.audits;
  };

  const auto wall_start = std::chrono::steady_clock::now();
  sender.start();
  // Hard stop at 8× the expected duration: the soak must terminate even
  // if a future regression stalls the sender.
  const sim::TimePoint deadline =
      sim::TimePoint::origin() + horizon * 8 + sim::Duration::seconds(1);
  // Tail-goodput window: once three quarters of the budget is offered,
  // snapshot the counters; the tail ratio is measured past that mark. The
  // mark lands on an audit-period boundary, so it is sim-deterministic.
  std::uint64_t tail_sent_mark = 0;
  std::uint64_t tail_delivered_mark = 0;
  bool tail_marked = false;
  while (sender.stats().datagrams_sent < opts.packets &&
         topo.simulator().now() < deadline) {
    topo.simulator().run_for(opts.audit_period);
    audit_cores();
    if (!tail_marked &&
        sender.stats().datagrams_sent >= opts.packets - opts.packets / 4) {
      tail_marked = true;
      tail_sent_mark = sender.stats().datagrams_sent;
      tail_delivered_mark = sink.report().unique_received;
    }
  }
  sender.stop();

  // Drain: let in-flight packets land and cached entries age out, so the
  // checker's vote map sees every entry's terminal event.
  const sim::Duration hold =
      topo_options.combiner.compare.hold_timeout;
  topo.simulator().run_for(hold * 3 + sim::Duration::milliseconds(100));
  audit_cores();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  result.datagrams_sent = sender.stats().datagrams_sent;
  result.delivered_unique = sink.report().unique_received;
  if (combiner.compare != nullptr) {
    for (const auto* edge : combiner.edges) {
      const core::CompareStats* stats =
          combiner.compare->stats_for(edge->name());
      if (stats == nullptr) continue;
      result.compare_ingested += stats->ingested;
      result.compare_released += stats->released;
      result.fastpath_released += stats->fastpath_released;
      result.sampled_escalated += stats->sampled_escalated;
    }
  }
  result.trace_records = checker.records_seen();
  result.fault_events_applied = injector.applied();
  result.sim_seconds = topo.simulator().now().since_origin().sec();
  result.throughput_pps =
      result.sim_seconds > 0.0
          ? static_cast<double>(result.datagrams_sent) / result.sim_seconds
          : 0.0;
  result.wall_seconds = wall_seconds;
  result.wall_pps =
      wall_seconds > 0.0
          ? static_cast<double>(result.datagrams_sent) / wall_seconds
          : 0.0;
  const obs::Histogram& verdict =
      obs.metrics.histogram("compare.verdict_latency_us");
  result.verdict_p50_us = verdict.quantile(0.50);
  result.verdict_p95_us = verdict.quantile(0.95);
  result.verdict_p99_us = verdict.quantile(0.99);
  const std::uint64_t tail_sent =
      result.datagrams_sent - (tail_marked ? tail_sent_mark : 0);
  const std::uint64_t tail_delivered =
      result.delivered_unique - (tail_marked ? tail_delivered_mark : 0);
  result.tail_goodput_ratio =
      tail_sent > 0
          ? static_cast<double>(tail_delivered) / static_cast<double>(tail_sent)
          : 0.0;
  result.duplicate_egress = checker.duplicates();
  if (resilience_mgr != nullptr) {
    const resilience::ResilienceSummary rs = resilience_mgr->summary();
    result.resilience_checkpoints = rs.checkpoints;
    result.resilience_failovers = rs.failovers;
    result.resilience_degraded_entries = rs.degraded_entries;
    result.time_to_failover_ns = rs.time_to_failover_ns;
    result.gap_loss = rs.gap_loss;
    result.downtime_drops = rs.downtime_drops;
    result.suppressed_recovered = rs.suppressed_recovered;
  }
  if (health::HealthService* health = topo.health()) {
    const health::HealthSummary summary = health->summary();
    result.health_quarantines = summary.quarantines;
    result.health_readmits = summary.readmits;
    result.health_bans = summary.bans;
    result.health_probe_windows = summary.probe_windows;
    result.first_quarantine_ns = summary.first_quarantine_ns;
    result.first_readmit_ns = summary.first_readmit_ns;
  }
  // Detection-latency telemetry: quarantine lag behind the plan's first
  // byzantine swap (the EXPERIMENTS.md latency-vs-throughput axis).
  for (const faultinject::FaultEvent& ev : opts.plan.events) {
    if (ev.kind == faultinject::FaultKind::kBehaviorSwap &&
        ev.behavior != faultinject::SwapBehavior::kHonest) {
      result.first_swap_ns = ev.at_ns;
      break;
    }
  }
  if (result.first_swap_ns >= 0 &&
      result.first_quarantine_ns >= result.first_swap_ns) {
    result.time_to_quarantine_ns =
        result.first_quarantine_ns - result.first_swap_ns;
  }
  result.invariants.merge(checker.report());
  result.stream_hash = checker.stream_hash();
  result.egress_set_hash = checker.egress_set_hash();
  result.metrics_json = obs.metrics.to_json();
  return result;
}

}  // namespace netco::scenario
