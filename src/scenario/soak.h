// Long-running soak of the combiner under a deterministic FaultPlan.
//
// run_soak() drives a UDP stream through a fresh Fig. 3 combiner while a
// FaultInjector executes the plan, the QuorumTraceChecker validates every
// release against the trace stream, and periodic CompareCore::audit()
// snapshots validate the cache bookkeeping. Because faults, traffic, and
// audits all run through the one seeded simulator, a soak is exactly as
// bit-reproducible as a clean run: same seed → identical trace stream
// hash and identical metrics snapshot. bench/soak_netco.cpp runs this at
// ~10^6 packets per configuration; tests/soak_smoke_test.cpp runs a
// 2-second slice of it as a tier-1 test.
#pragma once

#include <cstdint>
#include <string>

#include "faultinject/fault_plan.h"
#include "faultinject/invariants.h"
#include "health/monitor.h"
#include "netco/compare_core.h"
#include "resilience/resilience.h"
#include "scenario/scenarios.h"
#include "workload/config.h"

namespace netco::scenario {

/// Soak parameters.
struct SoakOptions {
  int k = 3;
  core::ReleasePolicy policy = core::ReleasePolicy::kMajority;
  std::uint64_t seed = 1;
  /// Stop the sender once this many datagrams have been offered. Each is
  /// multiplied k-fold at the hub, so compare ingests ≈ k × packets.
  std::uint64_t packets = 100'000;
  std::size_t payload_bytes = 200;
  /// Offered rate. Small packets keep the compare busy; the default sits
  /// below the c_program compare's ~80k packet-in/s capacity at k=3 so
  /// that faults, not steady-state overload, drive the dynamics (the
  /// bench lowers it further for k=5).
  DataRate rate = DataRate::megabits_per_sec(16);
  /// Fault schedule. Empty → a default FaultPlan::random(seed) sized to
  /// the expected run length (unless inject_default_faults is false).
  faultinject::FaultPlan plan;
  /// false + an empty plan = a fault-free run — the baseline the recovery
  /// scenarios compare their post-quarantine goodput against.
  bool inject_default_faults = true;
  /// How often the compare caches are audited.
  sim::Duration audit_period = sim::Duration::milliseconds(50);
  /// Replica-health loop configuration (disabled by default — a soak with
  /// health off is bit-identical to one built before the subsystem).
  health::HealthConfig health;
  /// Trusted-component resilience (disabled by default, same guarantee).
  /// Enabling it also turns on the checker's duplicate-egress invariant
  /// and, when the default fault plan is used, adds one compare crash.
  resilience::ResilienceConfig resilience;
  /// Sampled-verification fast path (§XII; disabled by default, same
  /// bit-identity guarantee). Enabling it also arms the checker's
  /// duplicate-egress invariant — the fast path must never double-release.
  /// Mutually exclusive with resilience.enabled: fast-path releases happen
  /// synchronously at the edge, invisible to a warm standby's suppression
  /// window, so the combination would break at-most-once egress.
  core::CompareSampling sampling;
  /// Flow-level workload engine (src/workload). When enabled, the circuit
  /// replaces the single iperf-like UDP stream with a population of
  /// sessions (Poisson arrivals, Pareto flow sizes, scenario-shaped rate)
  /// driven off a hierarchical timer wheel; `packets` and `rate` are then
  /// ignored and the run length is workload.duration plus the drain.
  workload::WorkloadConfig workload;
  /// Feed the invariant checker only the protocol-relevant records
  /// (compare.*, health.*, resilience.*), skipping the per-record
  /// serialize-and-hash cost of the forwarding narration (hub.*,
  /// replica.forward, link.*). Every invariant still checks — the checker
  /// never reads the dropped record kinds — but stream_hash then covers
  /// the protocol stream only. Perf-comparison configs set this on BOTH
  /// sides of a pair so the measured delta is the compare path, not
  /// shared observability overhead.
  bool protocol_trace_only = false;
};

/// Everything a soak run produces.
struct SoakResult {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t delivered_unique = 0;
  std::uint64_t compare_ingested = 0;
  std::uint64_t compare_released = 0;
  std::uint64_t trace_records = 0;
  std::uint64_t fault_events_applied = 0;
  std::uint64_t audits = 0;
  double sim_seconds = 0.0;
  double throughput_pps = 0.0;  ///< offered datagrams / sim second
  /// Wall-clock cost of the run: how fast the *simulator* chews through
  /// the workload. Not deterministic (excluded from the double-run
  /// comparison); this is the hot-path number perf PRs move.
  double wall_seconds = 0.0;
  double wall_pps = 0.0;  ///< offered datagrams / wall second
  /// Verdict latency percentiles (µs) from "compare.verdict_latency_us".
  double verdict_p50_us = 0.0;
  double verdict_p95_us = 0.0;
  double verdict_p99_us = 0.0;
  /// Goodput over the tail of the send phase (the last quarter of the
  /// packet budget): delivered/offered once the fault plan's recoveries —
  /// and any health-loop quarantines — have settled. The recovery
  /// acceptance bar compares this against a fault-free baseline.
  double tail_goodput_ratio = 0.0;
  /// Health-loop outcome (all zero / -1 when the loop is disabled).
  std::uint64_t health_quarantines = 0;
  std::uint64_t health_readmits = 0;
  std::uint64_t health_bans = 0;
  std::uint64_t health_probe_windows = 0;
  std::int64_t first_quarantine_ns = -1;  ///< sim-time, -1 = never
  std::int64_t first_readmit_ns = -1;
  /// Resilience outcome (all zero / -1 while the subsystem is disabled).
  std::uint64_t resilience_checkpoints = 0;
  std::uint64_t resilience_failovers = 0;
  std::uint64_t resilience_degraded_entries = 0;
  std::int64_t time_to_failover_ns = -1;  ///< -1 = no failover happened
  std::uint64_t gap_loss = 0;             ///< quorums nobody emitted
  std::uint64_t duplicate_egress = 0;     ///< trace-checker duplicates
  std::uint64_t downtime_drops = 0;       ///< packet-ins the dead process ate
  std::uint64_t suppressed_recovered = 0; ///< post-restart taint suppressions
  /// Sampled-verification outcome (zero while sampling is disabled).
  std::uint64_t fastpath_released = 0;
  std::uint64_t sampled_escalated = 0;
  /// Order-independent digest of the released-packet multiset per wire —
  /// equal across a sampled and a full-verify run that delivered the same
  /// packets, even though their trace streams (and stream_hash) differ.
  std::uint64_t egress_set_hash = 0;
  /// Detection-latency telemetry: sim-time of the plan's first byzantine
  /// behaviour swap, and the first quarantine's lag behind it (-1 = no
  /// swap in the plan / quarantine never happened / happened before it).
  std::int64_t first_swap_ns = -1;
  std::int64_t time_to_quarantine_ns = -1;
  /// Workload-engine outcome (all zero while SoakOptions::workload is
  /// disabled). Offered/delivered mirror datagrams_sent/delivered_unique;
  /// the extra fields are the flow-level story a single stream lacks.
  std::uint64_t wl_sessions_started = 0;
  std::uint64_t wl_sessions_finished = 0;
  std::uint64_t wl_flows_started = 0;
  std::uint64_t wl_flows_completed = 0;
  std::uint64_t wl_flows_aborted = 0;
  std::uint64_t wl_retransmit_packets = 0;
  std::uint64_t wl_packets_stale = 0;
  std::uint64_t wl_pool_exhausted = 0;
  std::uint64_t wl_admission_waits = 0;
  std::uint64_t wl_pool_peak_live = 0;
  std::uint64_t wl_timer_scheduled = 0;
  std::uint64_t wl_timer_fired = 0;
  std::uint64_t wl_timer_cancelled = 0;
  std::uint64_t wl_ddos_emitted = 0;
  /// Flow-completion-time percentiles (ms) from "workload.fct_ms".
  double wl_fct_p50_ms = 0.0;
  double wl_fct_p95_ms = 0.0;
  double wl_fct_p99_ms = 0.0;
  /// Merged verdict of the trace checker and every cache audit.
  faultinject::InvariantReport invariants;
  /// FNV-1a over the canonical trace stream (determinism fingerprint).
  std::uint64_t stream_hash = 0;
  /// Canonical global metrics snapshot at the end of the run.
  std::string metrics_json;

  [[nodiscard]] bool ok() const noexcept { return invariants.ok(); }
};

/// Runs one soak. Resets the global metrics registry at entry (the
/// snapshot in the result belongs to this run alone).
SoakResult run_soak(const SoakOptions& options);

}  // namespace netco::scenario
