// Static-failover harness: every host of a k-ary fat-tree streams UDP to
// its counterpart in the next pod (all flows inter-pod, so every flow
// crosses the core and — with the combiner at the protected position —
// transits it both up out of its pod and down into it), while a
// correlated multi-failure plan (faultinject::make_kill_plan) cuts links
// and kills switches at one instant. The compiled backup layer
// (failover::compile_failover) is the only thing allowed to react: there
// is no controller attached to the fabric, so a miss is a drop, and
// `controller_packet_ins` staying zero is part of the "absorbed by static
// rules alone" verdict.
//
// Goodput is attributed to windows analytically by *send* time (flow
// start + seq·period), so a window's ratio compares packets launched in
// that window against the subset that ever arrived — the dip and the
// reroute latency fall out of the per-window ledger without timestamping
// individual deliveries.
//
// Determinism contract matches the soak and convergence harnesses: one
// circuit per Simulator, every trace record folded into a
// QuorumTraceChecker stream hash, identical hashes for same-seed runs —
// solo (run_failover) or as a fleet on a ShardedSimulator
// (run_failover_fleet), for any shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "failover/failover_compiler.h"
#include "faultinject/fabric_injector.h"
#include "faultinject/fault_plan.h"
#include "sim/time.h"
#include "topo/fattree.h"

namespace netco::scenario {

/// Parameters of one static-failover run.
struct FailoverOptions {
  std::uint64_t seed = 1;

  int k = 4;  ///< fat-tree radix (even, >= 2)
  /// true → the protected aggregation position is a NetCo combiner.
  bool use_combiner = true;
  int combiner_k = 3;  ///< replicas inside the combiner
  /// The aggregation position the combiner wraps (§VI attack position —
  /// (0,0) sits on every primary path into and out of pod 0).
  topo::AggPosition protect{0, 0};

  /// Ablation switch: false skips compile_failover(), leaving only the
  /// unguarded primary routes — the control a failure must NOT survive.
  bool compile_backup_rules = true;
  failover::CompilerOptions compiler;

  /// Explicit fault schedule; when empty and link_cuts + switch_kills > 0,
  /// a correlated kill plan is synthesized (all failures at fail_at).
  faultinject::FaultPlan plan;
  int link_cuts = 0;
  int switch_kills = 0;
  faultinject::KillTarget target = faultinject::KillTarget::kAny;
  sim::Duration fail_at = sim::Duration::milliseconds(200);
  /// Port-death detection latency (the switch_keepalive).
  sim::Duration keepalive = faultinject::FabricInjectorOptions{}.keepalive;

  sim::Duration horizon = sim::Duration::milliseconds(500);
  /// Goodput-attribution window (also the fleet commit cadence).
  sim::Duration window = sim::Duration::milliseconds(25);
  sim::Duration data_period = sim::Duration::milliseconds(1);
  /// First packet of flow 0; flow f starts flow_start + f·flow_stagger so
  /// the fabric never sees lockstep bursts.
  sim::Duration flow_start = sim::Duration::milliseconds(10);
  sim::Duration flow_stagger = sim::Duration::microseconds(137);
};

/// Outcome of one run.
struct FailoverResult {
  std::uint64_t data_sent = 0;
  std::uint64_t data_delivered = 0;  ///< unique (flow, seq) pairs received
  double goodput_overall = 0.0;
  /// Worst per-window delivery ratio at or after the failure instant
  /// (1.0 when the plan was empty or nothing dipped).
  double goodput_dip = 1.0;
  /// End of the last lossy window minus the failure instant: how long
  /// traffic bled before the static layer carried everything again.
  /// 0 = no window ever lost a packet; -1 = never recovered.
  std::int64_t reroute_latency_ns = 0;
  /// Loss stopped before the data ended (a trailing clean window exists).
  bool recovered = false;
  /// recovered AND zero invariant violations, duplicate egresses, and
  /// controller packet-ins — the "static rules alone" verdict.
  bool absorbed = false;

  // Fabric-switch totals (the wrapped combiner position not included).
  std::uint64_t static_backup_hits = 0;  ///< hits on kFailoverCookie rules
  std::uint64_t failover_reroutes = 0;   ///< lookups that skipped a dead rule
  std::uint64_t dropped_no_rule = 0;
  std::uint64_t controller_packet_ins = 0;

  std::size_t backup_rules_installed = 0;  ///< 0 in the ablation run
  std::size_t primaries_guarded = 0;
  std::uint64_t fault_events = 0;  ///< fabric events actually applied
  std::int64_t fail_at_ns = -1;    ///< first fabric event (-1 = benign run)

  std::uint64_t checker_reroutes = 0;  ///< failover.reroute records seen
  std::uint64_t duplicates = 0;        ///< duplicate egress / reroute loops
  std::uint64_t invariant_violations = 0;
  /// FNV-1a over every trace record — the determinism fingerprint.
  std::uint64_t stream_hash = 0;
};

/// Runs one circuit on one thread. Same seed + options ⇒ same
/// FailoverResult, including stream_hash.
FailoverResult run_failover(const FailoverOptions& options);

/// A fleet of independent circuits on a ShardedSimulator.
struct FailoverFleetResult {
  std::vector<FailoverResult> circuits;  ///< indexed by circuit id
  /// Per-circuit stream hashes folded in circuit order (identity for a
  /// single circuit — reproduces run_failover's hash exactly).
  std::uint64_t merged_stream_hash = 0;
};

/// Circuit 0 runs base.seed exactly; circuit i > 0 runs
/// hash_mix(base.seed, i). The merged hash is shard-count invariant.
FailoverFleetResult run_failover_fleet(const FailoverOptions& base,
                                       std::size_t circuits, int shards);

}  // namespace netco::scenario
