// One combiner circuit of a soak, packaged as a window-driven unit.
//
// SoakCircuit owns everything run_soak() used to build on its stack — the
// Fig. 3 topology, the QuorumTraceChecker, the fault injector, the UDP
// endpoints — and exposes the soak's event program as the window protocol
// sim/shard.h expects: start() arms the sender and returns the first
// window cap, on_window() runs the between-window bookkeeping (audits,
// tail-goodput mark, sender stop, drain) and returns the next cap, and
// finalize() collects the SoakResult. Driving those hooks with a plain
// `run_until(cap)` loop on one thread reproduces the classic run_soak()
// event program bit-for-bit (run_soak() does exactly that); driving them
// from a ShardedSimulator runs many circuits in parallel with identical
// per-circuit streams — determinism is per-circuit, the harness merely
// chooses how many to interleave.
#pragma once

#include <chrono>
#include <memory>

#include "faultinject/injector.h"
#include "faultinject/invariants.h"
#include "host/udp_app.h"
#include "obs/trace.h"
#include "resilience/resilience.h"
#include "scenario/soak.h"
#include "topo/figure3.h"
#include "workload/engine.h"

namespace netco::scenario {

/// Forwards only the record kinds the protocol checker actually reads
/// (everything except the hub/replica/link forwarding narration), so a
/// perf-comparison pair is not dominated by serialize-and-hash cost that
/// is identical on both sides anyway (see SoakOptions::protocol_trace_only).
class ProtocolFilterSink final : public obs::TraceSink {
 public:
  explicit ProtocolFilterSink(obs::TraceSink& downstream)
      : downstream_(downstream) {}

  void append(const obs::TraceRecord& record) override {
    switch (record.event) {
      case obs::TraceEvent::kHubIngress:
      case obs::TraceEvent::kHubMerge:
      case obs::TraceEvent::kReplicaForward:
      case obs::TraceEvent::kLinkDrop:
      case obs::TraceEvent::kLinkLoss:
        return;
      default:
        downstream_.append(record);
    }
  }

 private:
  obs::TraceSink& downstream_;
};

class SoakCircuit {
 public:
  /// Validates the options (k bounds, mode exclusivity) and builds the
  /// whole circuit in run_soak()'s construction order. Emits no trace
  /// records itself — install trace_sink() on the running thread's tracer
  /// before the first window.
  explicit SoakCircuit(const SoakOptions& options);
  ~SoakCircuit();

  SoakCircuit(const SoakCircuit&) = delete;
  SoakCircuit& operator=(const SoakCircuit&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return topo_->simulator();
  }

  /// The sink the circuit's records must reach: the invariant checker,
  /// behind the protocol filter when options.protocol_trace_only.
  [[nodiscard]] obs::TraceSink& trace_sink() noexcept {
    return opts_.protocol_trace_only
               ? static_cast<obs::TraceSink&>(filtered_)
               : checker_;
  }

  /// Starts the sender; returns the first window cap.
  sim::TimePoint start();

  /// Between-window bookkeeping after the simulator reached `committed`
  /// (the previous cap): audit, tail mark, phase transitions. Returns the
  /// next cap, or done_marker() once the drain window has been audited.
  sim::TimePoint on_window(sim::TimePoint committed);

  /// Epilogue: fills the SoakResult (counters, hashes, invariants, and —
  /// from the *calling thread's* metrics registry — verdict percentiles
  /// and the metrics snapshot). Call on the thread that ran the windows.
  void finalize();

  /// Moves the collected result out (valid after finalize()).
  [[nodiscard]] SoakResult take_result() { return std::move(result_); }

  /// Cap sentinel, identical to sim::ShardCell::done_marker().
  [[nodiscard]] static constexpr sim::TimePoint done_marker() noexcept {
    return sim::TimePoint::from_ns(INT64_MAX);
  }

 private:
  /// kSettling exists only in workload mode: after the engine's pool has
  /// emptied, one extra window lets the compare caches age out before the
  /// final audit (the classic path folds this into kDraining's fixed
  /// hold-based window).
  enum class Phase { kSending, kDraining, kSettling, kDone };

  void audit_cores();
  sim::TimePoint on_workload_window(sim::TimePoint committed);

  // Declaration order mirrors run_soak()'s stack: the topology outlives
  // the checker, which outlives the resilience taps and injector, which
  // outlive the UDP endpoints.
  SoakOptions opts_;  ///< with the default fault plan materialized
  sim::Duration horizon_;
  topo::Figure3Options topo_options_;
  std::unique_ptr<topo::Figure3Topology> topo_;
  faultinject::QuorumTraceChecker checker_;
  ProtocolFilterSink filtered_;
  std::unique_ptr<resilience::ResilienceManager> resilience_mgr_;
  std::unique_ptr<faultinject::FaultInjector> injector_;
  std::unique_ptr<host::UdpSender> sender_;
  std::unique_ptr<host::UdpSink> sink_;
  /// Workload mode (opts_.workload.enabled): replaces sender_/sink_.
  std::unique_ptr<workload::WorkloadEngine> engine_;

  SoakResult result_;
  std::chrono::steady_clock::time_point wall_start_;
  sim::TimePoint deadline_;
  std::uint64_t tail_sent_mark_ = 0;
  std::uint64_t tail_delivered_mark_ = 0;
  bool tail_marked_ = false;
  Phase phase_ = Phase::kSending;
};

}  // namespace netco::scenario
