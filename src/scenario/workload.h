// Flow-level workload runs: the soak harness driven by src/workload's
// population engine instead of the single iperf-like stream.
//
// run_workload() is run_soak() with SoakOptions::workload.enabled — the
// same Fig. 3 circuit, fault injector, invariant checkers, and trace
// determinism, but offered load comes from a session population (Poisson
// arrivals, Pareto flow sizes, scenario-shaped rate) multiplexed over a
// flat flow pool and a hierarchical timer wheel. run_workload_fleet()
// scales that out over a ShardedSimulator exactly like run_sharded_soak.
#pragma once

#include "scenario/sharded_soak.h"
#include "scenario/soak.h"

namespace netco::scenario {

/// Runs one workload circuit. options.workload.enabled must be set; the
/// result's wl_* fields and FCT percentiles are filled alongside the
/// usual soak artifacts (hashes, invariants, metrics snapshot).
SoakResult run_workload(const SoakOptions& options);

/// Runs a fleet of workload circuits (options.base.workload.enabled must
/// be set) with the sharded harness's determinism guarantees: merged
/// hashes are identical for every shard count.
ShardedSoakResult run_workload_fleet(const ShardedSoakOptions& options);

}  // namespace netco::scenario
