// The §VI datacenter routing attack case study.
//
// A malicious aggregation switch in a fat-tree mirrors every packet headed
// for the firewall fw1 up to a core switch (exfiltration past the firewall
// position) and drops every packet addressed to vm1 (killing the replies).
// Three scenarios:
//
//   kBaseline  — all switches benign. 10/10 echo cycles; both screening
//                methods (per-interface taps à la tcpdump, and flow-table
//                counters) confirm no packet strays from the benign path.
//   kAttacked  — the aggregation switch misbehaves: fw1 sees every request
//                twice (20 arrivals for 10 sent), vm1 sees 0 replies.
//   kProtected — the same malicious datapath is one replica inside a k=3
//                NetCo combiner: all 10 cycles complete; the mirrored
//                copies arrive at the compare but never leave it.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace netco::scenario {

/// Which §VI scenario to run.
enum class CaseStudyMode : std::uint8_t { kBaseline, kAttacked, kProtected };

/// Display name.
[[nodiscard]] const char* to_string(CaseStudyMode mode) noexcept;

/// Everything the §VI narrative reports.
struct CaseStudyResult {
  int requests_sent = 0;
  int replies_received_at_vm1 = 0;     ///< completed echo cycles
  std::uint64_t requests_at_fw1 = 0;   ///< echo requests fw1 answered
  std::uint64_t mirrored_at_core = 0;  ///< fw1-bound packets seen at the
                                       ///< mirror-target core switch
  std::uint64_t stray_at_hosts = 0;    ///< frames arriving at hosts not
                                       ///< addressed to them
  // Compare-side evidence (kProtected only):
  std::uint64_t compare_ingested = 0;
  std::uint64_t compare_released = 0;
  std::uint64_t compare_evicted_minority = 0;  ///< mirrored copies that died
                                               ///< in the compare
  std::uint64_t attacker_packets_attacked = 0;
};

/// Runs one scenario with `cycles` ICMP echo cycles (paper: 10).
CaseStudyResult run_case_study(CaseStudyMode mode, int cycles = 10,
                               std::uint64_t seed = 1);

}  // namespace netco::scenario
