#include "scenario/soak_circuit.h"

#include <algorithm>
#include <string>

#include "common/assert.h"
#include "netco/vote_cache.h"
#include "obs/observability.h"

namespace netco::scenario {

namespace {

/// Expected run length for a packet budget at an offered rate, with head
/// room for warmup, fault churn, and pacing jitter. In workload mode the
/// arrival phase length is configured directly.
sim::Duration expected_duration(const SoakOptions& options) {
  if (options.workload.enabled) return options.workload.duration;
  const double pps = static_cast<double>(options.rate.bps()) /
                     (static_cast<double>(options.payload_bytes) * 8.0);
  const double secs = static_cast<double>(options.packets) / pps;
  return sim::Duration::seconds_f(secs);
}

topo::Figure3Options make_topo_options(const SoakOptions& options) {
  // Central3/Central5 tuning, then override the soak-specific knobs.
  topo::Figure3Options topo_options = make_options(
      options.k >= 5 ? ScenarioKind::kCentral5 : ScenarioKind::kCentral3,
      options.seed);
  topo_options.combiner.k = options.k;
  topo_options.combiner.compare.policy = options.policy;
  // Blocks must recover: a fault plan *will* trip the flood monitors
  // (byzantine swaps produce attributable garbage), and a permanent block
  // of an honest replica would turn one transient into a dead replica for
  // the rest of the soak. This also keeps the unblock timer path hot.
  topo_options.combiner.block_duration = sim::Duration::milliseconds(50);
  topo_options.health = options.health;
  topo_options.combiner.compare.sampling = options.sampling;
  return topo_options;
}

faultinject::QuorumTraceChecker::Config make_checker_config(
    const SoakOptions& options) {
  faultinject::QuorumTraceChecker::Config check_cfg;
  check_cfg.quorum = options.k / 2 + 1;
  check_cfg.first_copy = options.policy == core::ReleasePolicy::kFirstCopy;
  // Adaptive mode: the checker follows health.quarantine/readmit records
  // in the stream, so quarantine-shrunken quorums validate correctly.
  check_cfg.k = options.k;
  // The at-most-once egress invariant engages for resilience runs
  // (crash-recovery and failover could double-release) and for sampled
  // runs (the fast path and the full compare must never both release).
  check_cfg.check_duplicates =
      options.resilience.enabled || options.sampling.enabled;
  return check_cfg;
}

}  // namespace

SoakCircuit::SoakCircuit(const SoakOptions& options)
    : opts_(options),
      horizon_(expected_duration(options)),
      topo_options_(make_topo_options(options)),
      checker_(make_checker_config(options)),
      filtered_(checker_),
      // Hard stop at 8× the expected duration: the soak must terminate
      // even if a future regression stalls the sender.
      deadline_(sim::TimePoint::origin() + horizon_ * 8 +
                sim::Duration::seconds(1)) {
  NETCO_ASSERT(options.packets > 0 && options.rate.positive());
  // Reject oversized fleets here, with the full context, rather than as
  // silent vote drops when the fast path shifts a replica id past the
  // 64-bit bitmask (core::WeightedVoteCache::kMaxReplicas).
  NETCO_ASSERT_MSG(
      options.k >= 1 && options.k < core::WeightedVoteCache::kMaxReplicas,
      "SoakOptions.k out of range: replica fleets are capped at 63 (ids "
      "must fit the 64-bit vote bitmask)");
  NETCO_ASSERT_MSG(
      !(options.sampling.enabled && options.resilience.enabled),
      "sampled verification and warm-standby resilience are mutually "
      "exclusive: fast-path releases bypass the standby's suppression "
      "window (see SoakOptions::sampling)");

  if (opts_.plan.empty() && opts_.inject_default_faults) {
    faultinject::FaultPlanParams params;
    params.k = opts_.k;
    params.horizon = horizon_;
    // Short smoke runs still deserve churn: keep the quiet lead-in below
    // a fifth of the run instead of a fixed 100 ms.
    params.start = std::min(params.start,
                            sim::Duration::nanoseconds(horizon_.ns() / 5));
    // With the resilience subsystem on, the default plan also kills the
    // trusted compare once mid-run — the failure the subsystem exists for.
    if (opts_.resilience.enabled) params.compare_crashes = 1;
    opts_.plan = faultinject::FaultPlan::random(opts_.seed, params);
  }

  topo_ = std::make_unique<topo::Figure3Topology>(topo_options_);

  // Construct after the topology, destroy before it (taps and timers
  // reference the edges). Requires the compare (combine mode).
  core::CombinerInstance& combiner = topo_->combiner();
  if (opts_.resilience.enabled && combiner.compare != nullptr) {
    resilience_mgr_ = std::make_unique<resilience::ResilienceManager>(
        topo_->simulator(), combiner, opts_.resilience);
  }

  injector_ = std::make_unique<faultinject::FaultInjector>(*topo_, opts_.plan);
  injector_->set_resilience(resilience_mgr_.get());
  injector_->arm();

  if (opts_.workload.enabled) {
    // The engine replaces the single-stream endpoints. The DDoS-burst
    // scenario floods from replica 0 toward the h2-side edge (s2), so the
    // forged copies arrive at one compare core with no sibling quorum —
    // the flood/health machinery is the defense under test.
    std::optional<workload::DdosHook> hook;
    if (opts_.workload.scenario == workload::Scenario::kDdosBurst) {
      NETCO_ASSERT_MSG(!combiner.replicas.empty(),
                       "ddos-burst workload needs a combiner replica");
      workload::DdosHook h;
      h.datapath = combiner.replicas[0];
      h.config.out_port = combiner.replica_edge_port[0][1];
      h.config.packets_per_sec = opts_.workload.ddos_packets_per_sec;
      h.config.packet_bytes = opts_.workload.ddos_packet_bytes;
      h.config.dst_mac = topo_->h2().mac();
      h.config.src_mac = topo_->h1().mac();
      hook = h;
    }
    engine_ = std::make_unique<workload::WorkloadEngine>(
        topo_->h1(), topo_->h2(), opts_.workload, opts_.seed, hook);
    return;
  }
  host::UdpSenderConfig scfg;
  scfg.dst_mac = topo_->h2().mac();
  scfg.dst_ip = topo_->h2().ip();
  scfg.rate = opts_.rate;
  scfg.payload_bytes = opts_.payload_bytes;
  sender_ = std::make_unique<host::UdpSender>(topo_->h1(), scfg);
  sink_ = std::make_unique<host::UdpSink>(topo_->h2(), scfg.dst_port);
}

SoakCircuit::~SoakCircuit() = default;

void SoakCircuit::audit_cores() {
  core::CombinerInstance& combiner = topo_->combiner();
  if (combiner.compare == nullptr) return;
  for (const auto* edge : combiner.edges) {
    const core::CompareCore* core = combiner.compare->core_for(edge->name());
    if (core == nullptr) continue;
    faultinject::check_audit(core->audit(), edge->name(), result_.invariants);
  }
  // The standby's shadow cores keep the same bookkeeping invariants.
  for (std::size_t i = 0; i < combiner.shadow_cores.size(); ++i) {
    faultinject::check_audit(combiner.shadow_cores[i]->audit(),
                             "standby-" + std::to_string(i),
                             result_.invariants);
  }
  ++result_.audits;
}

sim::TimePoint SoakCircuit::start() {
  wall_start_ = std::chrono::steady_clock::now();
  if (engine_ != nullptr) {
    engine_->start();
  } else {
    sender_->start();
  }
  return topo_->simulator().now() + opts_.audit_period;
}

sim::TimePoint SoakCircuit::on_window(sim::TimePoint committed) {
  if (engine_ != nullptr) return on_workload_window(committed);
  switch (phase_) {
    case Phase::kSending: {
      audit_cores();
      // Tail-goodput window: once three quarters of the budget is
      // offered, snapshot the counters; the tail ratio is measured past
      // that mark. The mark lands on an audit-period boundary, so it is
      // sim-deterministic.
      if (!tail_marked_ && sender_->stats().datagrams_sent >=
                               opts_.packets - opts_.packets / 4) {
        tail_marked_ = true;
        tail_sent_mark_ = sender_->stats().datagrams_sent;
        tail_delivered_mark_ = sink_->report().unique_received;
      }
      if (sender_->stats().datagrams_sent < opts_.packets &&
          committed < deadline_) {
        return committed + opts_.audit_period;
      }
      sender_->stop();
      phase_ = Phase::kDraining;
      // Drain: let in-flight packets land and cached entries age out, so
      // the checker's vote map sees every entry's terminal event.
      const sim::Duration hold = topo_options_.combiner.compare.hold_timeout;
      return committed + hold * 3 + sim::Duration::milliseconds(100);
    }
    case Phase::kDraining: {
      audit_cores();
      result_.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start_)
              .count();
      phase_ = Phase::kDone;
      return done_marker();
    }
    case Phase::kSettling:
    case Phase::kDone:
      break;
  }
  return done_marker();
}

sim::TimePoint SoakCircuit::on_workload_window(sim::TimePoint committed) {
  switch (phase_) {
    case Phase::kSending: {
      audit_cores();
      // Tail mark at three quarters of the arrival phase (a window
      // boundary, so sim-deterministic like the classic path's mark).
      if (!tail_marked_ &&
          committed.since_origin().ns() >= horizon_.ns() - horizon_.ns() / 4) {
        tail_marked_ = true;
        tail_sent_mark_ = engine_->stats().packets_offered;
        tail_delivered_mark_ = engine_->stats().packets_delivered;
      }
      if (committed.since_origin() < horizon_ && committed < deadline_) {
        return committed + opts_.audit_period;
      }
      engine_->begin_drain();
      phase_ = Phase::kDraining;
      return committed + opts_.audit_period;
    }
    case Phase::kDraining: {
      audit_cores();
      // Active flows run to completion or abort; poll window-by-window.
      // The deadline bounds the drain even if a future regression wedges
      // a flow (retries are finite, so this only trips on bugs).
      if (!engine_->idle() && committed < deadline_) {
        return committed + opts_.audit_period;
      }
      phase_ = Phase::kSettling;
      // Let in-flight packets land and compare entries age out so the
      // checker's vote map sees every entry's terminal event.
      const sim::Duration hold = topo_options_.combiner.compare.hold_timeout;
      return committed + hold * 3 + sim::Duration::milliseconds(100);
    }
    case Phase::kSettling: {
      audit_cores();
      result_.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start_)
              .count();
      phase_ = Phase::kDone;
      return done_marker();
    }
    case Phase::kDone:
      break;
  }
  return done_marker();
}

void SoakCircuit::finalize() {
  NETCO_ASSERT_MSG(phase_ == Phase::kDone, "finalize() before the drain");
  if (engine_ != nullptr) {
    const workload::WorkloadStats& ws = engine_->stats();
    result_.datagrams_sent = ws.packets_offered;
    result_.delivered_unique = ws.packets_delivered;
    result_.wl_sessions_started = ws.sessions_started;
    result_.wl_sessions_finished = ws.sessions_finished;
    result_.wl_flows_started = ws.flows_started;
    result_.wl_flows_completed = ws.flows_completed;
    result_.wl_flows_aborted = ws.flows_aborted;
    result_.wl_retransmit_packets = ws.retransmit_packets;
    result_.wl_packets_stale = ws.packets_stale;
    result_.wl_pool_exhausted = ws.pool_exhausted;
    result_.wl_admission_waits = ws.admission_waits;
    result_.wl_pool_peak_live = engine_->pool().peak_live();
    result_.wl_timer_scheduled = engine_->wheel().scheduled();
    result_.wl_timer_fired = engine_->wheel().fired();
    result_.wl_timer_cancelled = engine_->wheel().cancelled();
    result_.wl_ddos_emitted = engine_->ddos_emitted();
    engine_->export_metrics();
    const obs::Histogram& fct = obs::global().metrics.histogram(
        "workload.fct_ms");
    result_.wl_fct_p50_ms = fct.quantile(0.50);
    result_.wl_fct_p95_ms = fct.quantile(0.95);
    result_.wl_fct_p99_ms = fct.quantile(0.99);
  } else {
    result_.datagrams_sent = sender_->stats().datagrams_sent;
    result_.delivered_unique = sink_->report().unique_received;
  }
  core::CombinerInstance& combiner = topo_->combiner();
  if (combiner.compare != nullptr) {
    for (const auto* edge : combiner.edges) {
      const core::CompareStats* stats =
          combiner.compare->stats_for(edge->name());
      if (stats == nullptr) continue;
      result_.compare_ingested += stats->ingested;
      result_.compare_released += stats->released;
      result_.fastpath_released += stats->fastpath_released;
      result_.sampled_escalated += stats->sampled_escalated;
    }
  }
  result_.trace_records = checker_.records_seen();
  result_.fault_events_applied = injector_->applied();
  result_.sim_seconds = topo_->simulator().now().since_origin().sec();
  result_.throughput_pps =
      result_.sim_seconds > 0.0
          ? static_cast<double>(result_.datagrams_sent) / result_.sim_seconds
          : 0.0;
  result_.wall_pps =
      result_.wall_seconds > 0.0
          ? static_cast<double>(result_.datagrams_sent) / result_.wall_seconds
          : 0.0;
  const obs::Histogram& verdict =
      obs::global().metrics.histogram("compare.verdict_latency_us");
  result_.verdict_p50_us = verdict.quantile(0.50);
  result_.verdict_p95_us = verdict.quantile(0.95);
  result_.verdict_p99_us = verdict.quantile(0.99);
  const std::uint64_t tail_sent =
      result_.datagrams_sent - (tail_marked_ ? tail_sent_mark_ : 0);
  const std::uint64_t tail_delivered =
      result_.delivered_unique - (tail_marked_ ? tail_delivered_mark_ : 0);
  result_.tail_goodput_ratio =
      tail_sent > 0
          ? static_cast<double>(tail_delivered) /
                static_cast<double>(tail_sent)
          : 0.0;
  result_.duplicate_egress = checker_.duplicates();
  if (resilience_mgr_ != nullptr) {
    const resilience::ResilienceSummary rs = resilience_mgr_->summary();
    result_.resilience_checkpoints = rs.checkpoints;
    result_.resilience_failovers = rs.failovers;
    result_.resilience_degraded_entries = rs.degraded_entries;
    result_.time_to_failover_ns = rs.time_to_failover_ns;
    result_.gap_loss = rs.gap_loss;
    result_.downtime_drops = rs.downtime_drops;
    result_.suppressed_recovered = rs.suppressed_recovered;
  }
  if (health::HealthService* health = topo_->health()) {
    const health::HealthSummary summary = health->summary();
    result_.health_quarantines = summary.quarantines;
    result_.health_readmits = summary.readmits;
    result_.health_bans = summary.bans;
    result_.health_probe_windows = summary.probe_windows;
    result_.first_quarantine_ns = summary.first_quarantine_ns;
    result_.first_readmit_ns = summary.first_readmit_ns;
  }
  // Detection-latency telemetry: quarantine lag behind the plan's first
  // byzantine swap (the EXPERIMENTS.md latency-vs-throughput axis).
  for (const faultinject::FaultEvent& ev : opts_.plan.events) {
    if (ev.kind == faultinject::FaultKind::kBehaviorSwap &&
        ev.behavior != faultinject::SwapBehavior::kHonest) {
      result_.first_swap_ns = ev.at_ns;
      break;
    }
  }
  if (result_.first_swap_ns >= 0 &&
      result_.first_quarantine_ns >= result_.first_swap_ns) {
    result_.time_to_quarantine_ns =
        result_.first_quarantine_ns - result_.first_swap_ns;
  }
  result_.invariants.merge(checker_.report());
  result_.stream_hash = checker_.stream_hash();
  result_.egress_set_hash = checker_.egress_set_hash();
  result_.metrics_json = obs::global().metrics.to_json();
}

}  // namespace netco::scenario
