// Adversarial router behaviours (threat model, §II of the paper).
//
// Each behaviour is a DatapathInterceptor installed on an OpenFlowSwitch.
// The threat model places *no* restriction on a malicious datapath, so
// interceptors run before the flow table and may redirect, duplicate,
// rewrite, drop, or fabricate traffic. The four §II attack classes map to:
//
//   1. Rerouting           → RerouteBehavior
//   2. Mirroring           → MirrorBehavior
//   3. Packet modification → ModifyBehavior (+ DropBehavior for deletion,
//                            DosFlooder for generation)
//   4. Denial-of-Service   → DosFlooder (flooding) / DropBehavior (drops)
//
// Behaviours take a PacketPredicate selecting victim traffic, a
// CompositeBehavior chains several, and ScheduledBehavior gates any
// behaviour to a time window (attacks that switch on mid-run).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "device/datapath.h"
#include "net/headers.h"
#include "openflow/switch.h"
#include "sim/simulator.h"

namespace netco::adversary {

/// Selects which packets an attack applies to (ingress port + headers).
using PacketPredicate = std::function<bool(
    device::PortIndex, const net::ParsedPacket&, const net::Packet&)>;

/// Predicate matching every packet.
PacketPredicate match_all();

/// Predicate matching a destination MAC.
PacketPredicate match_dl_dst(const net::MacAddress& mac);

/// Predicate matching an IPv4 destination.
PacketPredicate match_nw_dst(net::Ipv4Address ip);

/// Restricts `inner` to packets arriving on `port` (e.g. the §VI
/// aggregation switch mirrors only traffic coming up from one edge,
/// so the mirrored copy passing through again is not re-mirrored).
PacketPredicate from_port(device::PortIndex port, PacketPredicate inner);

/// Counters shared by all behaviours.
struct AttackStats {
  std::uint64_t packets_inspected = 0;
  std::uint64_t packets_attacked = 0;
};

/// Base with predicate + stats plumbing.
class BehaviorBase : public device::DatapathInterceptor {
 public:
  explicit BehaviorBase(PacketPredicate predicate)
      : predicate_(std::move(predicate)) {}

  /// Attack counters.
  [[nodiscard]] const AttackStats& attack_stats() const noexcept {
    return stats_;
  }

 protected:
  /// True if the packet is a victim; updates counters.
  bool selects(device::PortIndex in_port, const net::ParsedPacket& parsed,
               const net::Packet& packet);

 private:
  PacketPredicate predicate_;
  AttackStats stats_;
};

/// §II-1: forwards victim packets to the wrong port instead of routing them.
class RerouteBehavior final : public BehaviorBase {
 public:
  RerouteBehavior(PacketPredicate predicate, device::PortIndex wrong_port)
      : BehaviorBase(std::move(predicate)), wrong_port_(wrong_port) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;

 private:
  device::PortIndex wrong_port_;
};

/// §II-2: duplicates victim packets to an extra port; the original still
/// follows the normal pipeline (the §VI aggregation-switch attack).
class MirrorBehavior final : public BehaviorBase {
 public:
  MirrorBehavior(PacketPredicate predicate, device::PortIndex mirror_port)
      : BehaviorBase(std::move(predicate)), mirror_port_(mirror_port) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;

 private:
  device::PortIndex mirror_port_;
};

/// §II-3: rewrites victim packets in flight (VLAN retag, MAC rewrite,
/// payload corruption — the mutation is caller-provided).
class ModifyBehavior final : public BehaviorBase {
 public:
  using Mutator = std::function<void(net::Packet&)>;

  ModifyBehavior(PacketPredicate predicate, Mutator mutator)
      : BehaviorBase(std::move(predicate)), mutator_(std::move(mutator)) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;

  /// Convenience mutators.
  static Mutator retag_vlan(std::uint16_t vid);
  static Mutator rewrite_dl_dst(const net::MacAddress& mac);
  static Mutator corrupt_payload();

 private:
  Mutator mutator_;
};

/// §II-3/4: silently deletes victim packets.
class DropBehavior final : public BehaviorBase {
 public:
  explicit DropBehavior(PacketPredicate predicate)
      : BehaviorBase(std::move(predicate)) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;
};

// --- control-plane attacks (routing lies, DESIGN §15) ------------------------
//
// These behaviours rewrite RIP-v2 announcements (routing/rip_msg.h) in
// flight — the "corrupt routing *state*, not just packets" fault class of
// Robust Routing Made Easy / Authenticated Adversarial Routing. Every
// mutation is a pure function of the wire bytes (checksums re-fixed), so
// a lying replica's copies are credible to a checksum-verifying receiver
// and two identical liars produce bit-identical lies — the k=3 quorum
// boundary made concrete.

/// Route poisoning: advertises false low metrics. Every entry metric is
/// rewritten to 0 (below the legal minimum), so the receiver computes
/// offered metric 1 for every prefix — including ones the liar's side has
/// no business attracting — and installs wrong next hops / metrics.
class RoutePoisonBehavior final : public BehaviorBase {
 public:
  explicit RoutePoisonBehavior(PacketPredicate predicate)
      : BehaviorBase(std::move(predicate)) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;
};

/// Metric inflation: every entry metric is inflated by `inflate_by`
/// (clamped to infinity), pushing traffic off the attacked path onto
/// longer detours — convergence lands on the wrong tables.
class MetricInflateBehavior final : public BehaviorBase {
 public:
  MetricInflateBehavior(PacketPredicate predicate, std::uint8_t inflate_by = 8)
      : BehaviorBase(std::move(predicate)), inflate_by_(inflate_by) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;

  /// The inflation step shared with the FaultPlan applier (must stay a
  /// pure function so identical liars emit identical bytes).
  static std::uint8_t inflate8(std::uint8_t metric);

 private:
  std::uint8_t inflate_by_;
};

/// Blackhole advertisement: the combined attack — announcements are
/// poisoned (metrics → 0) to *attract* traffic, and the attracted data
/// plane (every non-RIP IPv4 packet the predicate selects) is silently
/// dropped.
class BlackholeAdBehavior final : public BehaviorBase {
 public:
  explicit BlackholeAdBehavior(PacketPredicate predicate)
      : BehaviorBase(std::move(predicate)) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;

  /// Data packets swallowed (announcement rewrites count in attack_stats).
  [[nodiscard]] std::uint64_t data_dropped() const noexcept {
    return data_dropped_;
  }

 private:
  std::uint64_t data_dropped_ = 0;
};

/// Chains behaviours; the first one that swallows the packet wins.
class CompositeBehavior final : public device::DatapathInterceptor {
 public:
  /// Takes ownership of the chained behaviours.
  explicit CompositeBehavior(
      std::vector<std::unique_ptr<device::DatapathInterceptor>> chain)
      : chain_(std::move(chain)) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;

 private:
  std::vector<std::unique_ptr<device::DatapathInterceptor>> chain_;
};

/// Gates an inner behaviour to [start, end) of simulated time.
class ScheduledBehavior final : public device::DatapathInterceptor {
 public:
  ScheduledBehavior(std::unique_ptr<device::DatapathInterceptor> inner,
                    sim::TimePoint start, sim::TimePoint end)
      : inner_(std::move(inner)), start_(start), end_(end) {}

  bool intercept(device::Datapath& dp, device::PortIndex in_port,
                 net::Packet& packet) override;

 private:
  std::unique_ptr<device::DatapathInterceptor> inner_;
  sim::TimePoint start_;
  sim::TimePoint end_;
};

/// §II-4: a compromised switch fabricating traffic at a fixed packet rate
/// out of one of its ports (resource-exhaustion DoS). Not an interceptor —
/// it generates packets on its own clock.
class DosFlooder {
 public:
  struct Config {
    device::PortIndex out_port = 0;
    /// Fabricated packets per second.
    double packets_per_sec = 50'000;
    std::size_t packet_bytes = 1500;
    /// Forged addresses for the flood.
    net::MacAddress dst_mac;
    net::MacAddress src_mac;
  };

  DosFlooder(device::Datapath& datapath, Config config);

  /// Starts flooding until stop().
  void start();
  void stop();

  /// Packets fabricated so far.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  void tick();

  device::Datapath& datapath_;
  Config config_;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
  std::uint32_t seq_ = 0;
  sim::EventHandle handle_;
};

}  // namespace netco::adversary
