#include "adversary/behaviors.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "routing/rip_msg.h"

namespace netco::adversary {

PacketPredicate match_all() {
  return [](device::PortIndex, const net::ParsedPacket&, const net::Packet&) {
    return true;
  };
}

PacketPredicate match_dl_dst(const net::MacAddress& mac) {
  return [mac](device::PortIndex, const net::ParsedPacket& parsed,
               const net::Packet&) { return parsed.eth.dst == mac; };
}

PacketPredicate match_nw_dst(net::Ipv4Address ip) {
  return [ip](device::PortIndex, const net::ParsedPacket& parsed,
              const net::Packet&) {
    return parsed.ipv4 && parsed.ipv4->dst == ip;
  };
}

PacketPredicate from_port(device::PortIndex port, PacketPredicate inner) {
  return [port, inner = std::move(inner)](device::PortIndex in_port,
                                          const net::ParsedPacket& parsed,
                                          const net::Packet& packet) {
    return in_port == port && inner(in_port, parsed, packet);
  };
}

bool BehaviorBase::selects(device::PortIndex in_port,
                           const net::ParsedPacket& parsed,
                           const net::Packet& packet) {
  ++stats_.packets_inspected;
  if (!predicate_(in_port, parsed, packet)) return false;
  ++stats_.packets_attacked;
  return true;
}

bool RerouteBehavior::intercept(device::Datapath& dp,
                                device::PortIndex in_port,
                                net::Packet& packet) {
  const auto parsed = net::parse_packet(packet);
  if (!parsed || !selects(in_port, *parsed, packet)) return false;
  dp.raw_output(wrong_port_, packet);
  return true;  // the legitimate route never sees the packet
}

bool MirrorBehavior::intercept(device::Datapath& dp,
                               device::PortIndex in_port,
                               net::Packet& packet) {
  const auto parsed = net::parse_packet(packet);
  if (!parsed || !selects(in_port, *parsed, packet)) return false;
  dp.raw_output(mirror_port_, packet);  // exfiltrated copy
  return false;                         // original continues normally
}

bool ModifyBehavior::intercept(device::Datapath& /*dp*/,
                               device::PortIndex in_port,
                               net::Packet& packet) {
  const auto parsed = net::parse_packet(packet);
  if (!parsed || !selects(in_port, *parsed, packet)) return false;
  mutator_(packet);
  return false;  // modified packet continues through the pipeline
}

ModifyBehavior::Mutator ModifyBehavior::retag_vlan(std::uint16_t vid) {
  return [vid](net::Packet& packet) { net::set_vlan(packet, vid); };
}

ModifyBehavior::Mutator ModifyBehavior::rewrite_dl_dst(
    const net::MacAddress& mac) {
  return [mac](net::Packet& packet) { net::set_dl_dst(packet, mac); };
}

ModifyBehavior::Mutator ModifyBehavior::corrupt_payload() {
  return [](net::Packet& packet) {
    // Flip a byte near the end: past every header, inside the payload.
    if (packet.size() > 0) net::corrupt_byte(packet, packet.size() - 1);
  };
}

bool DropBehavior::intercept(device::Datapath& /*dp*/,
                             device::PortIndex in_port,
                             net::Packet& packet) {
  const auto parsed = net::parse_packet(packet);
  if (!parsed || !selects(in_port, *parsed, packet)) return false;
  return true;  // swallow
}

namespace {

std::uint8_t poison_metric(std::uint8_t /*metric*/) { return 0; }

}  // namespace

bool RoutePoisonBehavior::intercept(device::Datapath& /*dp*/,
                                    device::PortIndex in_port,
                                    net::Packet& packet) {
  const auto parsed = net::parse_packet(packet);
  if (!parsed || !routing::is_rip_datagram(*parsed)) return false;
  if (!selects(in_port, *parsed, packet)) return false;
  routing::rewrite_metrics(packet, *parsed, &poison_metric);
  return false;  // the lie continues through the pipeline
}

std::uint8_t MetricInflateBehavior::inflate8(std::uint8_t metric) {
  return static_cast<std::uint8_t>(
      std::min<int>(metric + 8, routing::kRipInfinity));
}

bool MetricInflateBehavior::intercept(device::Datapath& /*dp*/,
                                      device::PortIndex in_port,
                                      net::Packet& packet) {
  const auto parsed = net::parse_packet(packet);
  if (!parsed || !routing::is_rip_datagram(*parsed)) return false;
  if (!selects(in_port, *parsed, packet)) return false;
  // rewrite_metrics wants a capture-free function; dispatch on the step.
  if (inflate_by_ == 8) {
    routing::rewrite_metrics(packet, *parsed, &MetricInflateBehavior::inflate8);
  } else {
    const std::uint8_t step = inflate_by_;
    const auto message = routing::parse(packet.slice(
        parsed->payload_offset, packet.size() - parsed->payload_offset));
    if (!message) return false;
    for (std::size_t i = 0; i < message->entries.size(); ++i) {
      const std::size_t at = parsed->payload_offset +
                             routing::kRipHeaderBytes +
                             i * routing::kRipEntryBytes +
                             routing::kRipEntryMetricOffset;
      packet.set_u8(at, static_cast<std::uint8_t>(std::min<int>(
                            message->entries[i].metric + step,
                            routing::kRipInfinity)));
    }
    net::fix_checksums(packet);
  }
  return false;
}

bool BlackholeAdBehavior::intercept(device::Datapath& /*dp*/,
                                    device::PortIndex in_port,
                                    net::Packet& packet) {
  const auto parsed = net::parse_packet(packet);
  if (!parsed) return false;
  if (routing::is_rip_datagram(*parsed)) {
    if (!selects(in_port, *parsed, packet)) return false;
    routing::rewrite_metrics(packet, *parsed, &poison_metric);
    return false;  // the attracting lie goes out
  }
  if (!parsed->ipv4 || !selects(in_port, *parsed, packet)) return false;
  ++data_dropped_;
  return true;  // the attracted traffic goes nowhere
}

bool CompositeBehavior::intercept(device::Datapath& dp,
                                  device::PortIndex in_port,
                                  net::Packet& packet) {
  for (const auto& behavior : chain_) {
    if (behavior->intercept(dp, in_port, packet)) return true;
  }
  return false;
}

bool ScheduledBehavior::intercept(device::Datapath& dp,
                                  device::PortIndex in_port,
                                  net::Packet& packet) {
  const auto now = dp.datapath_simulator().now();
  if (now < start_ || now >= end_) return false;
  return inner_->intercept(dp, in_port, packet);
}

DosFlooder::DosFlooder(device::Datapath& datapath, Config config)
    : datapath_(datapath), config_(config) {
  NETCO_ASSERT(config_.packets_per_sec > 0);
  NETCO_ASSERT(config_.packet_bytes >= 60);
}

void DosFlooder::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void DosFlooder::stop() {
  running_ = false;
  handle_.cancel();
}

void DosFlooder::tick() {
  if (!running_) return;
  const auto gap = sim::Duration::nanoseconds(
      static_cast<std::int64_t>(1e9 / config_.packets_per_sec));
  handle_ =
      datapath_.datapath_simulator().schedule_after(gap, [this] { tick(); });

  // Fabricate a UDP datagram with a rolling sequence so every flood packet
  // is distinct (defeats naive duplicate suppression).
  std::vector<std::byte> payload(config_.packet_bytes - 42, std::byte{0xDD});
  const std::uint32_t seq = seq_++;
  for (int i = 0; i < 4; ++i)
    payload[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((seq >> (24 - 8 * i)) & 0xFF);
  net::Packet flood = net::build_udp(
      net::EthernetHeader{.dst = config_.dst_mac, .src = config_.src_mac},
      std::nullopt,
      net::Ipv4Header{.src = net::Ipv4Address::from_id(6666),
                      .dst = net::Ipv4Address::from_id(1)},
      net::UdpHeader{.src_port = 6666, .dst_port = 6666}, payload);
  ++emitted_;
  datapath_.raw_output(config_.out_port, std::move(flood));
}

}  // namespace netco::adversary
