#include "controller/learning_switch.h"

#include <utility>

#include "net/headers.h"

namespace netco::controller {

void LearningSwitchApp::on_packet_in(Controller& /*controller*/,
                                     openflow::ControlChannel& channel,
                                     openflow::PacketIn event) {
  const auto parsed = net::parse_packet(event.packet);
  if (!parsed) return;

  MacTable& table = tables_[&channel];
  if (!parsed->eth.src.is_multicast()) {
    table[parsed->eth.src] = event.in_port;
  }

  const auto it = table.find(parsed->eth.dst);
  if (it == table.end() || parsed->eth.dst.is_broadcast()) {
    // Unknown destination: flood this packet, learn on the way back.
    channel.packet_out(openflow::PacketOut{
        .actions = {openflow::OutputAction::flood()},
        .packet = std::move(event.packet),
        .in_port = event.in_port});
    return;
  }

  // Known destination: install a dl_dst flow and forward this packet.
  openflow::FlowSpec spec;
  spec.match.with_dl_dst(parsed->eth.dst);
  spec.actions = {openflow::OutputAction::to(it->second)};
  spec.priority = 10;
  spec.idle_timeout = idle_timeout_;
  channel.flow_mod(
      openflow::FlowMod{openflow::FlowModCommand::kAdd, std::move(spec)});
  channel.packet_out(openflow::PacketOut{
      .actions = {openflow::OutputAction::to(it->second)},
      .packet = std::move(event.packet),
      .in_port = event.in_port});
}

std::size_t LearningSwitchApp::learned_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [channel, table] : tables_) n += table.size();
  return n;
}

}  // namespace netco::controller
