#include "controller/controller.h"

#include <algorithm>
#include <utility>

namespace netco::controller {

CostProfile CostProfile::c_program() {
  // A compiled compare process on a direct Ethernet socket (the paper's
  // h3). 16 µs per packet ≈ 245 Mb/s of released 1470-byte datagrams at
  // k = 3 — the Central3 operating point of Table I.
  return CostProfile{.name = "c",
                     .per_packet_in = sim::Duration::microseconds(12),
                     .per_byte_ns = 3.65,
                     .channel_latency = sim::Duration::microseconds(10),
                     .channel_jitter = sim::Duration::microseconds(25),
                     .max_queue = 384};
}

CostProfile CostProfile::pox() {
  // Interpreted Python handler plus the full controller pipe: the paper
  // attributes POX3's collapse to exactly these two costs.
  return CostProfile{.name = "pox",
                     .per_packet_in = sim::Duration::microseconds(50),
                     .per_byte_ns = 6.6,
                     .channel_latency = sim::Duration::microseconds(100),
                     .channel_jitter = sim::Duration::microseconds(80),
                     .max_queue = 256};
}

Controller::Controller(sim::Simulator& simulator, std::string name, App& app,
                       CostProfile profile)
    : simulator_(simulator),
      name_(std::move(name)),
      app_(app),
      profile_(std::move(profile)) {}

openflow::ControlChannel& Controller::attach(openflow::OpenFlowSwitch& sw) {
  channels_.push_back(std::make_unique<openflow::ControlChannel>(
      simulator_, sw, *this, profile_.channel_latency,
      profile_.channel_jitter));
  openflow::ControlChannel& channel = *channels_.back();
  app_.on_attached(*this, channel);
  return channel;
}

void Controller::on_packet_in(openflow::ControlChannel& channel,
                              openflow::PacketIn event) {
  ++stats_.packet_ins_received;
  // Plain tail drop. No burst correlation is needed here: the quorum
  // arithmetic amplifies uncorrelated copy loss by itself (a packet dies
  // when any 2 of its 3 copies die, so P(fail) ≈ 3p² produces the sharp
  // loss cliff the paper's -b search runs into at the compare's capacity).
  if (queue_.size() >= profile_.max_queue) {
    ++stats_.packet_ins_dropped;
    return;
  }
  queue_.push_back(Pending{&channel, std::move(event)});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  if (!busy_) drain();
}

void Controller::drain() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // Service the head-of-line message after the per-message CPU cost (plus
  // any debt an app billed via charge_extra); one CPU, strict FIFO.
  sim::Duration cost =
      profile_.per_packet_in + extra_debt_ +
      sim::Duration::nanoseconds(static_cast<std::int64_t>(
          profile_.per_byte_ns *
          static_cast<double>(queue_.front().event.packet.size())));
  if (profile_.service_jitter > 0.0) {
    const double factor = simulator_.rng().uniform(
        1.0 - profile_.service_jitter, 1.0 + profile_.service_jitter);
    cost = sim::Duration::nanoseconds(
        static_cast<std::int64_t>(static_cast<double>(cost.ns()) * factor));
  }
  extra_debt_ = sim::Duration::zero();
  simulator_.schedule_after(cost, [this] {
    Pending item = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.packet_ins_processed;
    app_.on_packet_in(*this, *item.channel, std::move(item.event));
    drain();
  });
}

}  // namespace netco::controller
