#include "controller/static_routing.h"

#include "common/log.h"

namespace netco::controller {

void install_mac_route(openflow::OpenFlowSwitch& sw,
                       const net::MacAddress& dst, device::PortIndex out_port,
                       std::uint16_t priority) {
  openflow::FlowSpec spec;
  spec.match.with_dl_dst(dst);
  spec.actions = {openflow::OutputAction::to(out_port)};
  spec.priority = priority;
  sw.table().add(std::move(spec), sw.simulator().now());
}

void install_mac_drop(openflow::OpenFlowSwitch& sw, const net::MacAddress& dst,
                      std::uint16_t priority) {
  openflow::FlowSpec spec;
  spec.match.with_dl_dst(dst);
  spec.actions = {};  // empty action list == drop in OF 1.0
  spec.priority = priority;
  sw.table().add(std::move(spec), sw.simulator().now());
}

void StaticRoutingApp::on_attached(Controller& /*controller*/,
                                   openflow::ControlChannel& channel) {
  const auto it = routes_.find(channel.attached_switch().name());
  if (it == routes_.end()) return;
  for (const auto& [mac, port] : it->second) {
    openflow::FlowSpec spec;
    spec.match.with_dl_dst(mac);
    spec.actions = {openflow::OutputAction::to(port)};
    spec.priority = 10;
    channel.flow_mod(
        openflow::FlowMod{openflow::FlowModCommand::kAdd, std::move(spec)});
  }
}

void StaticRoutingApp::on_packet_in(Controller& /*controller*/,
                                    openflow::ControlChannel& channel,
                                    openflow::PacketIn event) {
  ++misses_;
  NETCO_LOG_DEBUG("static-routing", "policy miss on {}: {}",
                  channel.attached_switch().name(), event.packet.summary());
}

}  // namespace netco::controller
