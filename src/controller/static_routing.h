// Proactive, destination-MAC-based routing (the paper's §VI setup:
// "routing based on MAC destination addresses").
//
// Routes can be installed either directly into a switch's table (the usual
// path for topology builders) or through a controller app that pushes them
// over the control channel on attach (exercises flow-mod plumbing).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "controller/controller.h"
#include "net/address.h"
#include "openflow/switch.h"

namespace netco::controller {

/// Installs "dl_dst == dst → output(port)" directly into `sw`'s table.
void install_mac_route(openflow::OpenFlowSwitch& sw,
                       const net::MacAddress& dst, device::PortIndex out_port,
                       std::uint16_t priority = 10);

/// Installs a drop rule for `dst` (empty action list) into `sw`'s table.
void install_mac_drop(openflow::OpenFlowSwitch& sw, const net::MacAddress& dst,
                      std::uint16_t priority = 10);

/// A static route set: per switch name, destination MAC → output port.
using RouteMap = std::unordered_map<
    std::string, std::vector<std::pair<net::MacAddress, device::PortIndex>>>;

/// Controller app that pushes a static RouteMap over the control channel
/// when each switch attaches, then drops any packet-in (a strict network
/// where table misses are policy violations).
class StaticRoutingApp : public App {
 public:
  explicit StaticRoutingApp(RouteMap routes) : routes_(std::move(routes)) {}

  void on_attached(Controller& controller,
                   openflow::ControlChannel& channel) override;
  void on_packet_in(Controller& controller, openflow::ControlChannel& channel,
                    openflow::PacketIn event) override;

  /// Packet-ins seen (i.e. policy misses); useful as an alarm count.
  [[nodiscard]] std::uint64_t miss_count() const noexcept { return misses_; }

 private:
  RouteMap routes_;
  std::uint64_t misses_ = 0;
};

}  // namespace netco::controller
