// SDN controller framework.
//
// A Controller multiplexes any number of switch control channels onto a
// single-threaded event handler with a configurable per-message CPU cost.
// The cost profile is how the paper's POX3-vs-Central3 gap is modelled:
// an interpreted-Python controller spends over an order of magnitude more
// CPU per packet-in than compiled C, and every data packet in the POX
// scenario takes the controller round trip.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "openflow/channel.h"
#include "openflow/switch.h"
#include "sim/simulator.h"

namespace netco::controller {

/// CPU/latency personality of a controller process.
struct CostProfile {
  std::string name = "c";
  /// CPU time consumed per packet-in before the handler runs (fixed part;
  /// per_byte_ns adds a size-dependent copy/compare term). Messages are
  /// serviced strictly in arrival order by one CPU.
  sim::Duration per_packet_in = sim::Duration::microseconds(2);
  /// Per-byte handling cost of a packet-in's frame.
  double per_byte_ns = 0.0;
  /// One-way control channel latency to every attached switch.
  sim::Duration channel_latency = sim::Duration::microseconds(20);
  /// Additional U(0, jitter) per message on the channel (kernel/NIC
  /// scheduling noise; de-bunches near-simultaneous copies).
  sim::Duration channel_jitter = sim::Duration::microseconds(20);
  /// Packet-in queue capacity (tail drop).
  std::size_t max_queue = 4096;
  /// Relative service-time jitter: each message costs
  /// per_packet_in × U(1-jitter, 1+jitter) of CPU. Real per-packet costs
  /// vary (caches, interrupts); a perfectly deterministic server lets
  /// lockstep arrival patterns slip exactly k-1 copies of every packet
  /// through a full queue, which no real compare process exhibits.
  double service_jitter = 0.3;

  /// Compiled-C process wired close to the data plane (the paper's h3).
  static CostProfile c_program();
  /// Interpreted POX/Python controller application.
  static CostProfile pox();
};

class Controller;

/// Controller application logic (the "app" running on the controller).
class App {
 public:
  virtual ~App() = default;

  /// A switch was attached; install proactive state here if desired.
  virtual void on_attached(Controller& controller,
                           openflow::ControlChannel& channel) {
    (void)controller;
    (void)channel;
  }

  /// A packet-in was dequeued and charged its CPU cost.
  virtual void on_packet_in(Controller& controller,
                            openflow::ControlChannel& channel,
                            openflow::PacketIn event) = 0;
};

/// Controller runtime statistics.
struct ControllerStats {
  std::uint64_t packet_ins_received = 0;
  std::uint64_t packet_ins_processed = 0;
  std::uint64_t packet_ins_dropped = 0;  ///< queue overflow
  std::size_t max_queue_depth = 0;
};

/// A logically centralized controller process.
class Controller : public openflow::ControllerEndpoint {
 public:
  Controller(sim::Simulator& simulator, std::string name, App& app,
             CostProfile profile = CostProfile::c_program());

  /// Connects `sw` to this controller; the channel uses the profile's
  /// latency. Returns the channel (owned by the controller).
  openflow::ControlChannel& attach(openflow::OpenFlowSwitch& sw);

  // ControllerEndpoint:
  void on_packet_in(openflow::ControlChannel& channel,
                    openflow::PacketIn event) override;

  /// Lets an app bill additional CPU time discovered while handling a
  /// message (e.g. the compare's cache-cleanup pass). The debt delays the
  /// next message's service — the mechanism behind the paper's observation
  /// that frequent cache cleanups raise jitter.
  void charge_extra(sim::Duration cost) { extra_debt_ += cost; }

  /// Runtime counters.
  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }

  /// The cost profile in force.
  [[nodiscard]] const CostProfile& profile() const noexcept { return profile_; }

  /// Controller process name (for logs).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The event loop.
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

 private:
  struct Pending {
    openflow::ControlChannel* channel;
    openflow::PacketIn event;
  };
  void drain();

  sim::Simulator& simulator_;
  std::string name_;
  App& app_;
  CostProfile profile_;
  std::vector<std::unique_ptr<openflow::ControlChannel>> channels_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  bool dropping_ = false;  ///< hysteresis overflow state
  sim::Duration extra_debt_ = sim::Duration::zero();
  ControllerStats stats_;
};

}  // namespace netco::controller
