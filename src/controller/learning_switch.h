// Classic MAC-learning L2 switch application.
//
// Learns (source MAC → ingress port) per datapath; installs a dl_dst exact
// flow once the destination is known, floods otherwise. This is the app the
// Mininet prototype runs on switches outside the combiner and is used by
// tests as a realistic controller workload.
#pragma once

#include <unordered_map>

#include "controller/controller.h"
#include "net/address.h"

namespace netco::controller {

/// Per-controller MAC-learning logic (OF 1.0 reactive forwarding).
class LearningSwitchApp : public App {
 public:
  /// `flow_idle_timeout` bounds stale entries (zero = permanent).
  explicit LearningSwitchApp(
      sim::Duration flow_idle_timeout = sim::Duration::seconds(60))
      : idle_timeout_(flow_idle_timeout) {}

  void on_packet_in(Controller& controller, openflow::ControlChannel& channel,
                    openflow::PacketIn event) override;

  /// Number of (datapath, MAC) bindings currently learned.
  [[nodiscard]] std::size_t learned_count() const noexcept;

 private:
  using MacTable = std::unordered_map<net::MacAddress, device::PortIndex>;
  sim::Duration idle_timeout_;
  std::unordered_map<const openflow::ControlChannel*, MacTable> tables_;
};

}  // namespace netco::controller
