// MetricsRegistry: named counters and fixed-bucket histograms shared by
// every component (ROADMAP observability layer).
//
// Components look their instruments up once (construction time) and keep
// the returned reference — instruments have stable addresses for the
// lifetime of the registry, and reset() zeroes values without invalidating
// them. The registry is single-threaded like the simulator itself.
//
// to_json() renders a canonical snapshot (keys sorted, fixed number
// formatting) so benches can dump machine-readable metrics next to their
// tables and tests can diff snapshots textually.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace netco::obs {

/// A monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram (cumulative-style buckets, like Prometheus).
///
/// `upper_bounds` are the inclusive upper edges of the finite buckets, in
/// ascending order; an implicit +inf bucket catches the rest. quantile()
/// interpolates linearly inside the containing bucket, clamped to the
/// observed [min, max] so it never extrapolates past real samples.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Estimated q-quantile (q in [0, 1]); 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }

  void reset() noexcept;

  /// Folds another histogram's samples into this one. Both must share the
  /// same bucket bounds (asserted). Counts/sums add; min/max widen. Used
  /// to aggregate per-worker registries after a sharded run.
  void merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default bucket edges for microsecond-scale latencies (1-2-5 decades,
/// 1 µs … 100 ms).
[[nodiscard]] std::vector<double> default_latency_buckets_us();

/// Default bucket edges for queue depths in bytes (powers of four up to
/// ~1 MiB).
[[nodiscard]] std::vector<double> default_queue_depth_buckets();

/// The registry: name → instrument, stable addresses, canonical export.
class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  Counter& counter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it with
  /// `upper_bounds` (or the default latency buckets when empty) on first
  /// use. Later calls ignore `upper_bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  /// Canonical JSON object: {"counters":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every instrument; registrations (and addresses) survive.
  void reset() noexcept;

  /// Folds another registry into this one: counters add by name,
  /// histograms merge by name (creating missing instruments with the
  /// source's bounds). Merging per-worker registries in a fixed worker
  /// order yields identical counter totals for any shard count; histogram
  /// double sums are deterministic per shard count (float addition
  /// reorders across pinnings).
  void merge_from(const MetricsRegistry& other);

  [[nodiscard]] std::size_t counter_count() const noexcept {
    return counters_.size();
  }
  [[nodiscard]] std::size_t histogram_count() const noexcept {
    return histograms_.size();
  }

 private:
  // std::map: sorted iteration makes to_json() canonical; unique_ptr keeps
  // instrument addresses stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace netco::obs
