// Packet-lifecycle tracing (ROADMAP observability layer).
//
// Every trusted component emits structured records as a packet moves
// through the combiner pipeline:
//
//   hub.ingress → replica[i].forward → compare.{release, evict_timeout,
//   evict_capacity, evict_quota, duplicate, late, mismatch}
//
// Records are keyed by a *stable packet id* — the FNV-1a content hash of
// the wire bytes — so the k copies a hub multiplies share one id and the
// compare's verdict can be joined against the hub ingress that started the
// lifecycle. Call sites pass the id precomputed via Packet::content_hash(),
// which is memoized in the packet's shared COW payload buffer: one hash
// per payload generation, no matter how many records a lifecycle emits. The simulator is bit-reproducible (same seed → identical
// event order), so the serialized trace stream is itself a deterministic
// artifact: the golden-trace tests byte-compare whole runs.
//
// Cost model: the Tracer's disabled path is a single pointer null-check —
// no record construction, no string materialization, no sink virtual call.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace netco::obs {

/// The lifecycle stages a packet can be traced through.
enum class TraceEvent : std::uint8_t {
  kHubIngress,           ///< trusted splitter multiplied an upstream packet
  kHubMerge,             ///< trusted splitter merged a downstream packet
  kReplicaForward,       ///< an (untrusted) switch transmitted the packet
  kCompareIngest,        ///< compare received a copy from replica[i]
  kCompareRelease,       ///< terminal: quorum reached, one copy released
  kCompareEvictTimeout,  ///< terminal: minority packet timed out (§IV case 1)
  kCompareEvictCapacity, ///< terminal: cleanup-pass victim
  kCompareEvictQuota,    ///< terminal: per-replica isolation victim
  kCompareDuplicate,     ///< same replica re-sent the packet (§IV case 2)
  kCompareLate,          ///< copy arrived after the release (never re-released)
  kCompareMismatch,      ///< kFirstCopy: replica[i] failed to confirm (§IV)
  kCompareExpire,        ///< a released (retained) entry aged out of the cache
  kLinkDrop,             ///< drop-tail queue overflow
  kLinkLoss,             ///< fault-injected random loss (link.set_loss)
  kHealthQuarantine,     ///< health loop masked a replica out of the fan-out
  kHealthReadmit,        ///< probation succeeded, replica back in the circuit
  kHealthBan,            ///< quarantine budget exhausted, replica out for good
  kCompareSuppressed,    ///< quorum reached but release withheld (shadow
                         ///< standby, or a checkpoint-restored entry whose
                         ///< pre-crash release status is unknown)
  kResilienceCheckpoint,    ///< compare state serialized to stable storage
  kResilienceCrash,         ///< compare process died (state lost)
  kResilienceHang,          ///< compare process stopped responding
  kResilienceRestore,       ///< compare warm-restarted from a checkpoint
  kResilienceFailover,      ///< standby promoted, feeder ports rewired
  kResilienceHeartbeatMiss, ///< watchdog missed a heartbeat
  kResilienceDegradedEnter, ///< no compare live; degraded policy engaged
  kResilienceDegradedExit,  ///< compare back; degraded policy disengaged
  kResilienceHubCrash,      ///< hub fan-out rules lost (edge index in replica)
  kResilienceHubRestart,    ///< hub rules re-installed, counters continue
  kCompareSampled,          ///< packet elected for the full k-way compare
                            ///< (sampled-verification mode, §XII)
  kCompareFastpath,         ///< fast-path release on a healthy-weighted vote
  kRoutingUpdateTx,         ///< RIP speaker sent an announcement (§15)
  kRoutingUpdateRx,         ///< RIP speaker accepted an announcement
  kRoutingRouteChange,      ///< a table entry was installed/replaced/moved
  kRoutingRouteTimeout,     ///< a route aged out (no re-confirmation)
  kFailoverLinkDown,        ///< fault plan cut a fabric link (§16)
  kFailoverLinkUp,          ///< fault plan restored a fabric link
  kFailoverSwitchKill,      ///< fault plan killed a whole fabric switch
  kFailoverSwitchRestart,   ///< fault plan restarted a fabric switch
  kFailoverPortDead,        ///< keepalive declared a switch port dead
  kFailoverPortLive,        ///< keepalive declared a switch port live again
  kFailoverReroute,         ///< lookup detoured past a dead-guarded rule
};

/// Stable lowercase name ("compare.release", ...) used in the JSON export.
[[nodiscard]] const char* to_string(TraceEvent event) noexcept;

/// One structured lifecycle record.
struct TraceRecord {
  std::int64_t at_ns = 0;        ///< simulated time of the event
  TraceEvent event{};            ///< lifecycle stage
  std::uint64_t packet_id = 0;   ///< stable id (content hash of wire bytes)
  std::int32_t replica = -1;     ///< replica index when attributable, else -1
  std::uint32_t bytes = 0;       ///< packet size on the wire
  std::string component;         ///< emitting component ("netco-e0", ...)
};

/// Canonical single-line JSON rendering (no trailing newline). Field order
/// and formatting are fixed — golden tests compare these bytes.
[[nodiscard]] std::string to_json(const TraceRecord& record);

/// Where trace records go.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void append(const TraceRecord& record) = 0;
};

/// Bounded in-memory sink for tests: keeps the newest `capacity` records.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  void append(const TraceRecord& record) override;

  [[nodiscard]] const std::deque<TraceRecord>& records() const noexcept {
    return records_;
  }
  /// Total records ever appended (>= records().size() once wrapped).
  [[nodiscard]] std::uint64_t total_appended() const noexcept {
    return appended_;
  }
  /// The whole buffer as newline-separated canonical JSON — the golden
  /// stream the determinism tests byte-compare.
  [[nodiscard]] std::string serialize() const;

  void clear() noexcept {
    records_.clear();
    appended_ = 0;
  }

 private:
  std::size_t capacity_;
  std::uint64_t appended_ = 0;
  std::deque<TraceRecord> records_;
};

/// JSONL file sink for benches (one canonical record per line).
///
/// Write errors are loud: a short fwrite (disk full, closed pipe) aborts
/// via NETCO_ASSERT instead of silently truncating the stream — a torn
/// final record would otherwise surface later as a baffling golden-trace
/// mismatch rather than an I/O error. Destruction flushes and verifies
/// the flush, so a sink that destructs cleanly has every record on disk.
class JsonlFileSink final : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  void append(const TraceRecord& record) override;

  /// Flushes buffered records to the OS; asserts on failure.
  void flush();

  /// False when the file could not be opened (records are then dropped).
  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t lines_written() const noexcept {
    return lines_;
  }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t lines_ = 0;
};

/// The emit front-end components talk to. Disabled (no sink) by default.
class Tracer {
 public:
  [[nodiscard]] bool enabled() const noexcept { return sink_ != nullptr; }

  /// Installs (or, with nullptr, removes) the sink. Non-owning.
  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] TraceSink* sink() const noexcept { return sink_; }

  /// Emits one record; a no-op costing one branch when disabled.
  void emit(std::int64_t at_ns, TraceEvent event, std::uint64_t packet_id,
            std::string_view component, std::int32_t replica = -1,
            std::uint32_t bytes = 0) {
    if (sink_ == nullptr) [[likely]] return;
    emit_slow(at_ns, event, packet_id, component, replica, bytes);
  }

 private:
  void emit_slow(std::int64_t at_ns, TraceEvent event,
                 std::uint64_t packet_id, std::string_view component,
                 std::int32_t replica, std::uint32_t bytes);

  TraceSink* sink_ = nullptr;
};

}  // namespace netco::obs
