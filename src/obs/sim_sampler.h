// SimulatorSampler: periodic event-loop occupancy sampling.
//
// Records, every `period` of simulated time, the simulator's live event
// count (events_pending) and raw queue occupancy (queue_size, which
// includes cancelled tombstones awaiting lazy purge) into histograms, and
// the number of events executed since the previous sample into a counter —
// the event-loop occupancy signal the ROADMAP perf PRs diff before/after.
// The sampling events are themselves scheduled deterministically, so runs
// remain bit-reproducible.
#pragma once

#include "obs/observability.h"
#include "sim/simulator.h"

namespace netco::obs {

class SimulatorSampler {
 public:
  /// Samples into `context` (the global context by default).
  explicit SimulatorSampler(sim::Simulator& simulator,
                            sim::Duration period = sim::Duration::milliseconds(1),
                            Observability* context = nullptr);

  SimulatorSampler(const SimulatorSampler&) = delete;
  SimulatorSampler& operator=(const SimulatorSampler&) = delete;

  ~SimulatorSampler() { stop(); }

  /// Starts (or restarts) the periodic sampling.
  void start();

  /// Cancels the pending sample; idempotent.
  void stop() noexcept;

  /// Samples taken so far.
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  void tick();

  sim::Simulator& simulator_;
  sim::Duration period_;
  Histogram& pending_depth_;
  Histogram& queue_depth_;
  Counter& executed_;
  Counter& sample_count_;
  std::uint64_t last_executed_ = 0;
  std::uint64_t samples_ = 0;
  sim::EventHandle handle_;
};

}  // namespace netco::obs
