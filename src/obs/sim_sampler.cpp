#include "obs/sim_sampler.h"

namespace netco::obs {

SimulatorSampler::SimulatorSampler(sim::Simulator& simulator,
                                   sim::Duration period,
                                   Observability* context)
    : simulator_(simulator),
      period_(period),
      pending_depth_((context != nullptr ? *context : global())
                         .metrics.histogram("sim.events_pending",
                                            default_queue_depth_buckets())),
      queue_depth_((context != nullptr ? *context : global())
                       .metrics.histogram("sim.queue_size",
                                          default_queue_depth_buckets())),
      executed_((context != nullptr ? *context : global())
                    .metrics.counter("sim.events_executed")),
      sample_count_((context != nullptr ? *context : global())
                        .metrics.counter("sim.samples")) {}

void SimulatorSampler::start() {
  stop();
  last_executed_ = simulator_.events_executed();
  handle_ = simulator_.schedule_after(period_, [this] { tick(); });
}

void SimulatorSampler::stop() noexcept { handle_.cancel(); }

void SimulatorSampler::tick() {
  pending_depth_.observe(static_cast<double>(simulator_.events_pending()));
  queue_depth_.observe(static_cast<double>(simulator_.queue_size()));
  const std::uint64_t executed = simulator_.events_executed();
  executed_.inc(executed - last_executed_);
  last_executed_ = executed;
  sample_count_.inc();
  ++samples_;
  handle_ = simulator_.schedule_after(period_, [this] { tick(); });
}

}  // namespace netco::obs
