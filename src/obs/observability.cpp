#include "obs/observability.h"

#include <cstdlib>

namespace netco::obs {

Observability& global() noexcept {
  thread_local Observability instance;
  return instance;
}

std::unique_ptr<JsonlFileSink> trace_sink_from_env() {
  const char* path = std::getenv("NETCO_TRACE_OUT");
  if (path == nullptr || *path == '\0') return nullptr;
  return std::make_unique<JsonlFileSink>(path);
}

}  // namespace netco::obs
