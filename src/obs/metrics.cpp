#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.h"

namespace netco::obs {
namespace {

/// Renders a double compactly and deterministically: integers without a
/// decimal point, everything else with up to 12 significant digits.
std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  NETCO_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bucket bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto next = cumulative + counts_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within bucket i between its lower and upper edge.
      const double lower = i == 0 ? min_ : std::max(min_, bounds_[i - 1]);
      const double upper = i < bounds_.size() ? std::min(max_, bounds_[i])
                                              : max_;
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[i]);
      return std::clamp(lower + (upper - lower) * into, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  NETCO_ASSERT_MSG(bounds_ == other.bounds_,
                   "cannot merge histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::vector<double> default_latency_buckets_us() {
  std::vector<double> out;
  for (double decade = 1.0; decade <= 1e4; decade *= 10.0) {
    out.push_back(decade);
    out.push_back(decade * 2.0);
    out.push_back(decade * 5.0);
  }
  out.push_back(1e5);  // 100 ms
  return out;
}

std::vector<double> default_queue_depth_buckets() {
  std::vector<double> out;
  for (double b = 64.0; b <= 1'048'576.0; b *= 4.0) out.push_back(b);
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  auto& slot = histograms_[name];
  if (!slot) {
    if (upper_bounds.empty()) upper_bounds = default_latency_buckets_us();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, ctr] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(ctr->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(hist->count());
    out += ",\"sum\":";
    out += render_number(hist->sum());
    out += ",\"min\":";
    out += render_number(hist->min());
    out += ",\"max\":";
    out += render_number(hist->max());
    out += ",\"p50\":";
    out += render_number(hist->quantile(0.50));
    out += ",\"p95\":";
    out += render_number(hist->quantile(0.95));
    out += ",\"p99\":";
    out += render_number(hist->quantile(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, ctr] : other.counters_) {
    counter(name).inc(ctr->value());
  }
  for (const auto& [name, hist] : other.histograms_) {
    histogram(name, hist->bounds()).merge_from(*hist);
  }
}

void MetricsRegistry::reset() noexcept {
  for (auto& [name, ctr] : counters_) ctr->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace netco::obs
