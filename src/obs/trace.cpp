#include "obs/trace.h"

#include <cstdio>

#include "common/assert.h"

namespace netco::obs {

const char* to_string(TraceEvent event) noexcept {
  switch (event) {
    case TraceEvent::kHubIngress: return "hub.ingress";
    case TraceEvent::kHubMerge: return "hub.merge";
    case TraceEvent::kReplicaForward: return "replica.forward";
    case TraceEvent::kCompareIngest: return "compare.ingest";
    case TraceEvent::kCompareRelease: return "compare.release";
    case TraceEvent::kCompareEvictTimeout: return "compare.evict_timeout";
    case TraceEvent::kCompareEvictCapacity: return "compare.evict_capacity";
    case TraceEvent::kCompareEvictQuota: return "compare.evict_quota";
    case TraceEvent::kCompareDuplicate: return "compare.duplicate";
    case TraceEvent::kCompareLate: return "compare.late";
    case TraceEvent::kCompareMismatch: return "compare.mismatch";
    case TraceEvent::kCompareExpire: return "compare.expire";
    case TraceEvent::kLinkDrop: return "link.drop";
    case TraceEvent::kLinkLoss: return "link.loss";
    case TraceEvent::kHealthQuarantine: return "health.quarantine";
    case TraceEvent::kHealthReadmit: return "health.readmit";
    case TraceEvent::kHealthBan: return "health.ban";
    case TraceEvent::kCompareSuppressed: return "compare.suppressed";
    case TraceEvent::kResilienceCheckpoint: return "resilience.checkpoint";
    case TraceEvent::kResilienceCrash: return "resilience.crash";
    case TraceEvent::kResilienceHang: return "resilience.hang";
    case TraceEvent::kResilienceRestore: return "resilience.restore";
    case TraceEvent::kResilienceFailover: return "resilience.failover";
    case TraceEvent::kResilienceHeartbeatMiss:
      return "resilience.heartbeat_miss";
    case TraceEvent::kResilienceDegradedEnter:
      return "resilience.degraded_enter";
    case TraceEvent::kResilienceDegradedExit:
      return "resilience.degraded_exit";
    case TraceEvent::kResilienceHubCrash: return "resilience.hub_crash";
    case TraceEvent::kResilienceHubRestart: return "resilience.hub_restart";
    case TraceEvent::kCompareSampled: return "compare.sampled";
    case TraceEvent::kCompareFastpath: return "compare.fastpath";
    case TraceEvent::kRoutingUpdateTx: return "routing.update_tx";
    case TraceEvent::kRoutingUpdateRx: return "routing.update_rx";
    case TraceEvent::kRoutingRouteChange: return "routing.route_change";
    case TraceEvent::kRoutingRouteTimeout: return "routing.route_timeout";
    case TraceEvent::kFailoverLinkDown: return "failover.link_down";
    case TraceEvent::kFailoverLinkUp: return "failover.link_up";
    case TraceEvent::kFailoverSwitchKill: return "failover.switch_kill";
    case TraceEvent::kFailoverSwitchRestart: return "failover.switch_restart";
    case TraceEvent::kFailoverPortDead: return "failover.port_dead";
    case TraceEvent::kFailoverPortLive: return "failover.port_live";
    case TraceEvent::kFailoverReroute: return "failover.reroute";
  }
  return "unknown";
}

std::string to_json(const TraceRecord& record) {
  // %016llx keeps packet ids fixed-width so streams diff cleanly.
  char head[160];
  const int n = std::snprintf(
      head, sizeof head,
      "{\"t\":%lld,\"ev\":\"%s\",\"pkt\":\"%016llx\",\"replica\":%d,"
      "\"bytes\":%u,\"src\":\"",
      static_cast<long long>(record.at_ns), to_string(record.event),
      static_cast<unsigned long long>(record.packet_id), record.replica,
      record.bytes);
  std::string out(head, static_cast<std::size_t>(n));
  out += record.component;  // component names are plain identifiers
  out += "\"}";
  return out;
}

void RingBufferSink::append(const TraceRecord& record) {
  ++appended_;
  if (records_.size() == capacity_) records_.pop_front();
  records_.push_back(record);
}

std::string RingBufferSink::serialize() const {
  std::string out;
  for (const auto& record : records_) {
    out += to_json(record);
    out += '\n';
  }
  return out;
}

JsonlFileSink::JsonlFileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

JsonlFileSink::~JsonlFileSink() {
  if (file_ == nullptr) return;
  // Flush before close so a failure (ENOSPC surfacing at the final
  // buffer drain) is distinguishable from a close error, and a cleanly
  // destructed sink deterministically has every record on disk.
  const bool flushed = std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  NETCO_ASSERT_MSG(flushed, "trace sink: final flush failed (disk full?)");
}

void JsonlFileSink::append(const TraceRecord& record) {
  if (file_ == nullptr) return;
  const std::string line = to_json(record);
  const std::size_t wrote = std::fwrite(line.data(), 1, line.size(), file_);
  const bool ok = wrote == line.size() && std::fputc('\n', file_) != EOF;
  NETCO_ASSERT_MSG(ok, "trace sink: short write (disk full?)");
  ++lines_;
}

void JsonlFileSink::flush() {
  if (file_ == nullptr) return;
  NETCO_ASSERT_MSG(std::fflush(file_) == 0,
                   "trace sink: flush failed (disk full?)");
}

void Tracer::emit_slow(std::int64_t at_ns, TraceEvent event,
                       std::uint64_t packet_id, std::string_view component,
                       std::int32_t replica, std::uint32_t bytes) {
  TraceRecord record;
  record.at_ns = at_ns;
  record.event = event;
  record.packet_id = packet_id;
  record.replica = replica;
  record.bytes = bytes;
  record.component.assign(component.data(), component.size());
  sink_->append(record);
}

}  // namespace netco::obs
