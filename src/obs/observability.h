// Process-global observability context: one Tracer + one MetricsRegistry.
//
// The simulator is single-threaded and benches/tests run one simulation at
// a time, so a process-global context keeps the wiring trivial: components
// grab their instruments at construction and the Tracer's null-sink check
// is the entire disabled-path cost. Tests install a RingBufferSink via the
// RAII ScopedTraceSink; benches install a JSONL sink when NETCO_TRACE_OUT
// names a file (see trace_sink_from_env()).
#pragma once

#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace netco::obs {

/// The observability context.
struct Observability {
  Tracer tracer;
  MetricsRegistry metrics;
};

/// The process-global context.
[[nodiscard]] Observability& global() noexcept;

/// Installs `sink` on the global tracer for the current scope, restoring
/// the previous sink (usually none) on destruction.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink& sink) noexcept
      : previous_(global().tracer.sink()) {
    global().tracer.set_sink(&sink);
  }
  ~ScopedTraceSink() { global().tracer.set_sink(previous_); }

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* previous_;
};

/// Builds a JSONL file sink from the NETCO_TRACE_OUT environment variable;
/// nullptr when the variable is unset (tracing stays disabled). The caller
/// owns the sink and must install it on global().tracer.
[[nodiscard]] std::unique_ptr<JsonlFileSink> trace_sink_from_env();

}  // namespace netco::obs
