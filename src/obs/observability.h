// Per-thread observability context: one Tracer + one MetricsRegistry.
//
// Each simulation shard is single-threaded and owns its whole component
// graph, so a *thread-local* context keeps the wiring trivial: components
// grab their instruments at construction (on the worker thread that built
// them — sim/shard.h runs cell factories on the pinned worker) and the
// Tracer's null-sink check is the entire disabled-path cost. For the
// classic single-threaded harnesses nothing changes: main's context is
// the only one that exists. Sharded harnesses merge worker registries
// into an aggregate via MetricsRegistry::merge_from at worker exit
// (scenario/sharded_soak.cpp). Tests install a RingBufferSink via the
// RAII ScopedTraceSink; benches install a JSONL sink when NETCO_TRACE_OUT
// names a file (see trace_sink_from_env()).
#pragma once

#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace netco::obs {

/// The observability context.
struct Observability {
  Tracer tracer;
  MetricsRegistry metrics;
};

/// The calling thread's context (thread-local; see file comment).
[[nodiscard]] Observability& global() noexcept;

/// Installs `sink` on the calling thread's tracer for the current scope,
/// restoring the previous sink (usually none) on destruction.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink& sink) noexcept
      : previous_(global().tracer.sink()) {
    global().tracer.set_sink(&sink);
  }
  ~ScopedTraceSink() { global().tracer.set_sink(previous_); }

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* previous_;
};

/// Builds a JSONL file sink from the NETCO_TRACE_OUT environment variable;
/// nullptr when the variable is unset (tracing stays disabled). The caller
/// owns the sink and must install it on global().tracer.
[[nodiscard]] std::unique_ptr<JsonlFileSink> trace_sink_from_env();

}  // namespace netco::obs
