#include "resilience/resilience.h"

#include <cmath>
#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "netco/hub.h"
#include "resilience/checkpoint.h"

namespace netco::resilience {

namespace {

/// Degraded pass-through priorities relative to the edge rule set: the
/// punt-to-compare rule sits at 20 and the anti-spoof screens at 25.
/// kFailOpenSingle installs *between* them (above the punt so traffic
/// stops dying against the dead process, below the screen so spoofed
/// source MACs still drop). kFailStatic pre-installs *below* the punt —
/// invisible until the punt rule is removed.
constexpr std::uint16_t kPuntPriority = 20;
constexpr std::uint16_t kFailOpenPriority = 22;
constexpr std::uint16_t kFailStaticPriority = 15;

sim::Duration scaled(sim::Duration base, double factor) {
  return sim::Duration::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(base.ns()) * factor));
}

}  // namespace

const char* to_string(DegradedPolicy policy) noexcept {
  switch (policy) {
    case DegradedPolicy::kFailClosed: return "fail_closed";
    case DegradedPolicy::kFailOpenSingle: return "fail_open_single";
    case DegradedPolicy::kFailStatic: return "fail_static";
  }
  return "?";
}

// --- StandbyCompare ----------------------------------------------------

StandbyCompare::StandbyCompare(sim::Simulator& simulator,
                               core::CombinerInstance& combiner,
                               const ResilienceConfig& config)
    : simulator_(simulator), combiner_(combiner), config_(config) {
  NETCO_ASSERT(combiner_.compare != nullptr);
  combiner_.shadow_cores.clear();
  for (std::size_t i = 0; i < combiner_.edges.size(); ++i) {
    openflow::OpenFlowSwitch* edge = combiner_.edges[i];
    core::CompareCore* primary = combiner_.compare->core_for(edge->name());
    NETCO_ASSERT(primary != nullptr);

    auto shadow = std::make_unique<EdgeShadow>(primary->config());
    shadow->edge = edge;
    shadow->core.set_trace_label("standby/" + edge->name());
    shadow->core.set_shadow(true);
    for (std::size_t j = 0; j < combiner_.edge_replica_port[i].size(); ++j) {
      shadow->replica_ports[combiner_.edge_replica_port[i][j]] =
          static_cast<int>(j);
    }
    combiner_.shadow_cores.push_back(&shadow->core);
    shadows_.push_back(std::move(shadow));

    // The mirror feed: the tap fires for every ingress packet *before*
    // the blocked-port check and the flow table, so the handler filters
    // both itself (see on_ingress).
    edge->set_ingress_tap(
        [this, i](device::PortIndex in_port, const net::Packet& packet) {
          on_ingress(i, in_port, packet);
        });
    schedule_sweep(i);
  }
}

StandbyCompare::~StandbyCompare() {
  combiner_.shadow_cores.clear();
  for (auto& shadow : shadows_) {
    shadow->edge->set_ingress_tap({});
  }
}

void StandbyCompare::on_ingress(std::size_t edge_idx,
                                device::PortIndex in_port,
                                const net::Packet& packet) {
  EdgeShadow& shadow = *shadows_[edge_idx];
  // Parity with the primary's view: a blocked port never produces a
  // packet-in, so it must not feed the shadow either.
  if (shadow.edge->port_blocked(in_port)) return;
  const auto it = shadow.replica_ports.find(in_port);
  if (it == shadow.replica_ports.end()) return;  // neighbor side, not a copy
  const int replica = it->second;
  simulator_.schedule_after(
      config_.mirror_latency, [this, edge_idx, replica, p = packet]() mutable {
        deliver(edge_idx, replica, std::move(p));
      });
}

void StandbyCompare::deliver(std::size_t edge_idx, int replica,
                             net::Packet packet) {
  EdgeShadow& shadow = *shadows_[edge_idx];
  auto released =
      shadow.core.ingest(replica, std::move(packet), simulator_.now());
  if (released && promoted_) {
    // Same egress path as the primary: packet-out with OFPP_TABLE, so the
    // trusted edge forwards by its MAC table.
    shadow.edge->receive_packet_out(openflow::PacketOut{
        .actions = {openflow::OutputAction::table()},
        .packet = std::move(*released),
        .in_port = device::kNoPort});
  }
}

void StandbyCompare::schedule_sweep(std::size_t edge_idx) {
  EdgeShadow& shadow = *shadows_[edge_idx];
  const sim::Duration period = shadow.core.config().hold_timeout / 2;
  simulator_.schedule_after(period, [this, edge_idx] {
    EdgeShadow& s = *shadows_[edge_idx];
    s.core.sweep(simulator_.now());
    // The standby has no control channel; block/inactivity advice is the
    // primary's job (and the health loop's). Drain it so it cannot pile up.
    (void)s.core.take_advice();
    schedule_sweep(edge_idx);
  });
}

void StandbyCompare::promote() {
  promoted_ = true;
  for (auto& shadow : shadows_) shadow->core.set_shadow(false);
}

std::uint64_t StandbyCompare::shadow_releases() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shadow : shadows_) {
    total += shadow->core.stats().shadow_releases;
  }
  return total;
}

core::CompareCore* StandbyCompare::core_for(std::size_t edge_idx) noexcept {
  return edge_idx < shadows_.size() ? &shadows_[edge_idx]->core : nullptr;
}

// --- ResilienceManager -------------------------------------------------

ResilienceManager::ResilienceManager(sim::Simulator& simulator,
                                     core::CombinerInstance& combiner,
                                     ResilienceConfig config)
    : simulator_(simulator),
      combiner_(combiner),
      config_(config),
      obs_(&obs::global()),
      checkpoint_counter_(&obs_->metrics.counter("resilience.checkpoints")),
      failover_counter_(&obs_->metrics.counter("resilience.failovers")),
      miss_counter_(&obs_->metrics.counter("resilience.heartbeat_misses")),
      degraded_counter_(&obs_->metrics.counter("resilience.degraded_entries")) {
  NETCO_ASSERT(combiner_.compare != nullptr);
  checkpoint_text_.resize(combiner_.edges.size());

  if (config_.standby) {
    standby_ = std::make_unique<StandbyCompare>(simulator_, combiner_, config_);
  } else if (config_.policy == DegradedPolicy::kFailStatic) {
    // Pre-install the static failover rules now, below the punt rule.
    // They carry no traffic until a declared outage removes the punt —
    // the switch's fail-standalone fallback, staged in advance.
    for (std::size_t i = 0; i < combiner_.edges.size(); ++i) {
      openflow::FlowSpec spec;
      spec.match.with_in_port(
          combiner_.edge_replica_port[i]
              [static_cast<std::size_t>(config_.designated_replica)]);
      spec.actions = {
          openflow::OutputAction::to(combiner_.edge_neighbor_port[i])};
      spec.priority = kFailStaticPriority;
      combiner_.edges[i]->table().add(std::move(spec), simulator_.now());
    }
  }

  // Checkpoint 0: a crash before the first periodic round must still find
  // something to restore from.
  take_checkpoint();
  simulator_.schedule_after(config_.checkpoint_period,
                            [this] { checkpoint_tick(); });
  simulator_.schedule_after(config_.heartbeat_period,
                            [this] { heartbeat_tick(); });
}

void ResilienceManager::trace(obs::TraceEvent event, int replica,
                              std::uint64_t bytes) {
  obs::Tracer& tracer = obs_->tracer;
  if (tracer.enabled()) {
    tracer.emit(simulator_.now().ns(), event, 0, "resilience", replica,
                static_cast<std::uint32_t>(bytes));
  }
}

void ResilienceManager::take_checkpoint() {
  for (std::size_t i = 0; i < combiner_.edges.size(); ++i) {
    core::CompareCore* core =
        combiner_.compare->core_for(combiner_.edges[i]->name());
    if (core == nullptr) continue;
    std::string text = serialize_snapshot(core->snapshot(simulator_.now()));
    // Round-trip through the codec on every checkpoint: an encoder/decoder
    // skew surfaces as a failed checkpoint in the first soak, not during
    // disaster recovery.
    NETCO_ASSERT(parse_snapshot(text).has_value());
    trace(obs::TraceEvent::kResilienceCheckpoint, static_cast<int>(i),
          text.size());
    checkpoint_text_[i] = std::move(text);
  }
  ++checkpoints_;
  checkpoint_counter_->inc();
}

void ResilienceManager::checkpoint_tick() {
  if (!monitoring_) return;  // failover happened; the primary is history
  if (combiner_.compare->process_state() ==
      core::CompareService::ProcessState::kLive) {
    take_checkpoint();
  }
  simulator_.schedule_after(config_.checkpoint_period,
                            [this] { checkpoint_tick(); });
}

void ResilienceManager::heartbeat_tick() {
  if (!monitoring_) return;
  const bool responsive =
      !heartbeat_suppressed_ &&
      combiner_.compare->process_state() ==
          core::CompareService::ProcessState::kLive;
  sim::Duration next = config_.heartbeat_period;
  if (responsive) {
    misses_ = 0;
  } else {
    ++misses_;
    ++heartbeat_misses_;
    miss_counter_->inc();
    trace(obs::TraceEvent::kResilienceHeartbeatMiss, misses_, 0);
    if (misses_ >= config_.heartbeat_miss_threshold && !dead_declared_) {
      dead_declared_ = true;
      on_declared_dead();
    }
    // Exponential backoff between probes: each consecutive miss widens
    // the spacing, giving a merely-stalled process progressively more
    // time to answer before the threshold is crossed.
    next = scaled(config_.heartbeat_period,
                  std::pow(config_.backoff_factor, misses_));
  }
  simulator_.schedule_after(next, [this] { heartbeat_tick(); });
}

void ResilienceManager::begin_outage() {
  if (outage_open_) return;
  outage_open_ = true;
  outage_start_ns_ = simulator_.now().ns();
  shadow_mark_ = standby_ != nullptr ? standby_->shadow_releases() : 0;
}

void ResilienceManager::on_declared_dead() {
  if (standby_ != nullptr && !standby_->promoted()) {
    simulator_.schedule_after(config_.promote_latency,
                              [this] { do_promote(); });
  } else if (standby_ == nullptr) {
    enter_degraded();
  }
}

void ResilienceManager::do_promote() {
  // Measure liveness *before* fencing: a heartbeat false positive
  // promotes over a healthy primary, which kept releasing until this
  // instant — its releases are not gap loss.
  const bool primary_was_live =
      combiner_.compare->process_state() ==
      core::CompareService::ProcessState::kLive;
  // Fence first, then promote: at no instant can both release.
  combiner_.compare->set_process_state(
      core::CompareService::ProcessState::kRetired);
  standby_->promote();
  ++failovers_;
  failover_counter_->inc();
  monitoring_ = false;  // the fenced primary is no longer watched

  std::uint64_t gap = 0;
  if (outage_open_) {
    time_to_failover_ns_ = simulator_.now().ns() - outage_start_ns_;
    if (!primary_was_live) {
      gap = standby_->shadow_releases() - shadow_mark_;
      gap_loss_ += gap;
    }
    outage_open_ = false;
  }
  trace(obs::TraceEvent::kResilienceFailover, -1, gap);
  NETCO_LOG_INFO("resilience",
                 "failover: standby promoted, primary fenced (gap {})", gap);
}

void ResilienceManager::compare_crash(sim::Duration recover_after) {
  ++compare_crashes_;
  if (combiner_.compare->process_state() ==
      core::CompareService::ProcessState::kRetired) {
    return;  // crashing the fenced old primary changes nothing
  }
  begin_outage();
  combiner_.compare->set_process_state(
      core::CompareService::ProcessState::kCrashed);
  trace(obs::TraceEvent::kResilienceCrash, -1, 0);
  if (recover_after > sim::Duration::zero()) {
    simulator_.schedule_after(recover_after, [this] { restart_primary(); });
  }
}

void ResilienceManager::compare_hang(sim::Duration recover_after) {
  ++compare_hangs_;
  if (combiner_.compare->process_state() ==
      core::CompareService::ProcessState::kRetired) {
    return;
  }
  begin_outage();
  combiner_.compare->set_process_state(
      core::CompareService::ProcessState::kHung);
  trace(obs::TraceEvent::kResilienceHang, -1, 0);
  if (recover_after > sim::Duration::zero()) {
    simulator_.schedule_after(recover_after, [this] { restart_primary(); });
  }
}

void ResilienceManager::restart_primary() {
  const auto state = combiner_.compare->process_state();
  if (state == core::CompareService::ProcessState::kRetired) {
    // A failover won the race while we were down. The old primary must
    // never release again — it stays fenced.
    return;
  }
  std::size_t restored = 0;
  if (state == core::CompareService::ProcessState::kCrashed) {
    // Warm restart: the crash lost the in-memory state; rebuild every
    // core from its last checkpoint. restore() taints unreleased entries
    // so a post-restart quorum on them is suppressed, never re-released.
    for (std::size_t i = 0; i < combiner_.edges.size(); ++i) {
      core::CompareCore* core =
          combiner_.compare->core_for(combiner_.edges[i]->name());
      if (core == nullptr) continue;
      auto snap = parse_snapshot(checkpoint_text_[i]);
      NETCO_ASSERT(snap.has_value());  // verified when captured
      core->restore(*snap, simulator_.now());
      restored += snap->entries.size();
    }
  }
  // A hang kept its memory: becoming live again is the whole recovery.
  combiner_.compare->set_process_state(
      core::CompareService::ProcessState::kLive);
  trace(obs::TraceEvent::kResilienceRestore, -1, restored);
  outage_open_ = false;
  dead_declared_ = false;
  misses_ = 0;
  if (degraded_) exit_degraded();
}

void ResilienceManager::enter_degraded() {
  degraded_ = true;
  ++degraded_entries_;
  degraded_counter_->inc();
  const std::uint64_t epoch = ++degraded_epoch_;
  trace(obs::TraceEvent::kResilienceDegradedEnter,
        static_cast<int>(config_.policy), 0);

  switch (config_.policy) {
    case DegradedPolicy::kFailClosed:
      // Deliberately nothing: replica copies keep punting to the dead
      // process and drop there (counted as downtime drops). Safety over
      // availability — the inert default.
      break;
    case DegradedPolicy::kFailOpenSingle:
      // After the rewire latency, the designated replica's traffic
      // bypasses the compare. Loudly: this path has no majority vote.
      simulator_.schedule_after(config_.promote_latency, [this, epoch] {
        if (!degraded_ || epoch != degraded_epoch_) return;
        for (std::size_t i = 0; i < combiner_.edges.size(); ++i) {
          openflow::FlowSpec spec;
          spec.match.with_in_port(
              combiner_.edge_replica_port[i][static_cast<std::size_t>(
                  config_.designated_replica)]);
          spec.actions = {
              openflow::OutputAction::to(combiner_.edge_neighbor_port[i])};
          spec.priority = kFailOpenPriority;
          combiner_.edges[i]->table().add(std::move(spec), simulator_.now());
        }
        NETCO_LOG_INFO("resilience",
                       "ALARM: fail-open — replica {} bypasses the compare",
                       config_.designated_replica);
      });
      break;
    case DegradedPolicy::kFailStatic:
      // After the keepalive delay, remove the punt rule for the
      // designated port; traffic falls through to the pre-installed
      // static rules (the fail-standalone transition).
      simulator_.schedule_after(config_.switch_keepalive, [this, epoch] {
        if (!degraded_ || epoch != degraded_epoch_) return;
        for (std::size_t i = 0; i < combiner_.edges.size(); ++i) {
          openflow::Match match;
          match.with_in_port(
              combiner_.edge_replica_port[i][static_cast<std::size_t>(
                  config_.designated_replica)]);
          combiner_.edges[i]->table().remove_strict(match, kPuntPriority);
        }
      });
      break;
  }
}

void ResilienceManager::exit_degraded() {
  degraded_ = false;
  ++degraded_epoch_;  // cancels any still-pending activation
  trace(obs::TraceEvent::kResilienceDegradedExit,
        static_cast<int>(config_.policy), 0);

  for (std::size_t i = 0; i < combiner_.edges.size(); ++i) {
    const device::PortIndex rp =
        combiner_.edge_replica_port[i]
            [static_cast<std::size_t>(config_.designated_replica)];
    switch (config_.policy) {
      case DegradedPolicy::kFailClosed:
        break;
      case DegradedPolicy::kFailOpenSingle: {
        openflow::Match match;
        match.with_in_port(rp);
        combiner_.edges[i]->table().remove_strict(match, kFailOpenPriority);
        break;
      }
      case DegradedPolicy::kFailStatic: {
        // Re-arm the punt toward the (now live) compare. add() replaces a
        // strictly-equal entry, so a never-activated fallback is safe.
        openflow::FlowSpec punt;
        punt.match.with_in_port(rp);
        punt.actions = {openflow::OutputAction::controller()};
        punt.priority = kPuntPriority;
        combiner_.edges[i]->table().add(std::move(punt), simulator_.now());
        break;
      }
    }
  }
}

void ResilienceManager::hub_crash(int edge_idx, sim::Duration recover_after) {
  if (edge_idx < 0 ||
      static_cast<std::size_t>(edge_idx) >= combiner_.edges.size()) {
    return;
  }
  const auto i = static_cast<std::size_t>(edge_idx);
  ++hub_crashes_;
  core::remove_hub_rules(*combiner_.edges[i], combiner_.edge_neighbor_port[i]);
  trace(obs::TraceEvent::kResilienceHubCrash, edge_idx, 0);
  if (recover_after > sim::Duration::zero()) {
    simulator_.schedule_after(recover_after, [this, i, edge_idx] {
      // The hub is stateless: restart is exactly re-installing the
      // fan-out. Port and registry counters never reset, so the split
      // sequence continues where it stopped (counter continuity). With
      // the health loop active, its next install_fanout() re-applies any
      // quarantine mask on top of this full fan-out.
      core::install_hub_rules(*combiner_.edges[i],
                              combiner_.edge_neighbor_port[i],
                              combiner_.edge_replica_port[i]);
      trace(obs::TraceEvent::kResilienceHubRestart, edge_idx, 0);
    });
  }
}

void ResilienceManager::heartbeat_loss(sim::Duration duration) {
  begin_outage();
  heartbeat_suppressed_ = true;
  if (duration > sim::Duration::zero()) {
    simulator_.schedule_after(duration, [this] {
      heartbeat_suppressed_ = false;
      // Suppression ended without a declared failover: the primary was
      // live all along, so no outage materialized.
      if (!dead_declared_) outage_open_ = false;
    });
  }
}

ResilienceSummary ResilienceManager::summary() const {
  ResilienceSummary s;
  s.checkpoints = checkpoints_;
  s.failovers = failovers_;
  s.compare_crashes = compare_crashes_;
  s.compare_hangs = compare_hangs_;
  s.hub_crashes = hub_crashes_;
  s.heartbeat_misses = heartbeat_misses_;
  s.degraded_entries = degraded_entries_;
  s.time_to_failover_ns = time_to_failover_ns_;
  s.gap_loss = gap_loss_;
  s.downtime_drops = combiner_.compare->downtime_drops();
  for (const auto* edge : combiner_.edges) {
    const core::CompareStats* stats =
        combiner_.compare->stats_for(edge->name());
    if (stats != nullptr) s.suppressed_recovered += stats->suppressed_recovered;
  }
  if (standby_ != nullptr) s.shadow_releases = standby_->shadow_releases();
  return s;
}

}  // namespace netco::resilience
