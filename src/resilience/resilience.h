// Resilience of the *trusted* components (compare process, hub rules).
//
// The paper's argument rests on a small trusted base: hubs ("stateless,
// realizable in the datapath") and the compare element. Trusted does not
// mean immortal — this subsystem makes the combiner survive crashes of
// exactly those components:
//
//  * Compare crash-recovery: ResilienceManager checkpoints every edge's
//    CompareCore periodically (through the text codec in checkpoint.h, so
//    writer and parser cannot skew) and warm-restarts a crashed process
//    from the last checkpoint. Restored unreleased entries are tainted
//    (CompareCore::restore) so recovery never double-releases: the
//    at-most-once guarantee costs bounded gap loss, never a duplicate.
//  * Warm standby failover: StandbyCompare shadows the primary — per-edge
//    shadow cores fed from the edge ingress tap, reaching the same
//    quorums but withholding every release. A heartbeat watchdog (missed
//    beats with exponential backoff, so a single stall is not escalated
//    at full rate) declares the primary dead; promotion fences the
//    primary (ProcessState::kRetired — even a false-positive failover
//    cannot split-brain into duplicate egress) and flips the shadows
//    live. Entries the standby already shadow-released stay suppressed.
//  * Degraded-mode policies when no standby exists and the compare dies:
//      - kFailClosed (default, inert): packets keep punting to the dead
//        process and drop — availability sacrificed for safety;
//      - kFailOpenSingle: after a rewire latency, one *designated*
//        replica's traffic bypasses the compare straight to the neighbor
//        (alarm raised — all §II protection is off for that path);
//      - kFailStatic: pre-installed low-priority pass-through rules are
//        exposed by removing the punt rule after a keepalive delay (the
//        OpenFlow fail-standalone analog).
//  * Hub crash: the fan-out rule is removed (hub_crash) and reinstalled
//    on restart — the hub is stateless, so restart is rewire plus
//    counter continuity (the registry counters never reset).
//
// Everything runs through the seeded simulator: failover timing, gap
// loss, and duplicate counts are bit-reproducible per seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netco/combiner.h"
#include "netco/compare_core.h"
#include "obs/observability.h"
#include "sim/simulator.h"

namespace netco::resilience {

/// What the combiner does while no compare process is live and no standby
/// can take over.
enum class DegradedPolicy : std::uint8_t {
  kFailClosed,      ///< drop everything (safe, unavailable) — the default
  kFailOpenSingle,  ///< pass one designated replica through, with alarm
  kFailStatic,      ///< expose pre-installed static failover rules
};

[[nodiscard]] const char* to_string(DegradedPolicy policy) noexcept;

/// Resilience configuration. The default (`enabled = false`) is inert: a
/// soak with resilience off is bit-identical to one built before the
/// subsystem existed.
struct ResilienceConfig {
  bool enabled = false;
  /// Run a warm standby compare (shadow cores + promotion on failover).
  bool standby = false;
  /// How often every edge core is checkpointed.
  sim::Duration checkpoint_period = sim::Duration::milliseconds(25);
  /// Heartbeat probe spacing while the primary responds.
  sim::Duration heartbeat_period = sim::Duration::milliseconds(5);
  /// Consecutive missed beats before the primary is declared dead.
  int heartbeat_miss_threshold = 3;
  /// Probe-spacing multiplier applied per consecutive miss — the
  /// false-positive guard: a briefly stalled process gets progressively
  /// more slack before the declare-dead threshold is reached.
  double backoff_factor = 2.0;
  /// Ingress-mirror latency into the standby's shadow cores (models the
  /// port-mirror / second packet-in path).
  sim::Duration mirror_latency = sim::Duration::microseconds(20);
  /// Time from declare-dead to the standby being live (feeder rewiring);
  /// also the rewire latency of kFailOpenSingle.
  sim::Duration promote_latency = sim::Duration::microseconds(200);
  /// Degraded-mode policy when no standby exists.
  DegradedPolicy policy = DegradedPolicy::kFailClosed;
  /// The replica kFailOpenSingle / kFailStatic pass through.
  int designated_replica = 0;
  /// kFailStatic: how long the switches wait for their controller before
  /// falling back to the static rules (OpenFlow fail-standalone analog).
  sim::Duration switch_keepalive = sim::Duration::milliseconds(10);
};

/// End-of-run resilience counters (all sim-deterministic).
struct ResilienceSummary {
  std::uint64_t checkpoints = 0;        ///< checkpoint rounds taken
  std::uint64_t failovers = 0;          ///< standby promotions
  std::uint64_t compare_crashes = 0;
  std::uint64_t compare_hangs = 0;
  std::uint64_t hub_crashes = 0;
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t degraded_entries = 0;   ///< times degraded mode was entered
  /// Declared-outage start → standby live (-1 = no failover happened).
  std::int64_t time_to_failover_ns = -1;
  /// Quorums reached during the outage window that nobody emitted — the
  /// bounded loss the at-most-once guarantee costs.
  std::uint64_t gap_loss = 0;
  /// Packet-ins the dead/fenced process dropped.
  std::uint64_t downtime_drops = 0;
  /// Post-restart quorums suppressed on checkpoint-recovered entries.
  std::uint64_t suppressed_recovered = 0;
  /// Quorums the standby reached in shadow mode.
  std::uint64_t shadow_releases = 0;
};

/// The warm standby: one shadow CompareCore per edge, fed from the edge's
/// ingress tap (the mirror port), judging the same quorums as the primary
/// but withholding every release until promote().
///
/// Owns the edges' ingress taps while alive; destroy it only after the
/// simulation stops running (scheduled mirror deliveries capture `this`).
class StandbyCompare {
 public:
  StandbyCompare(sim::Simulator& simulator, core::CombinerInstance& combiner,
                 const ResilienceConfig& config);
  ~StandbyCompare();

  StandbyCompare(const StandbyCompare&) = delete;
  StandbyCompare& operator=(const StandbyCompare&) = delete;

  /// Flips every shadow core live. From here on, quorums release via the
  /// edge's packet-out path (OFPP_TABLE), exactly like the primary did.
  void promote();
  [[nodiscard]] bool promoted() const noexcept { return promoted_; }

  /// Sum of shadow-suppressed releases across edges (gap-loss accounting).
  [[nodiscard]] std::uint64_t shadow_releases() const noexcept;

  /// The shadow core for edge `i` (tests/diagnostics).
  [[nodiscard]] core::CompareCore* core_for(std::size_t edge_idx) noexcept;

 private:
  struct EdgeShadow {
    core::CompareCore core;
    openflow::OpenFlowSwitch* edge = nullptr;
    std::unordered_map<device::PortIndex, int> replica_ports;
    explicit EdgeShadow(const core::CompareConfig& cfg) : core(cfg) {}
  };

  void on_ingress(std::size_t edge_idx, device::PortIndex in_port,
                  const net::Packet& packet);
  void deliver(std::size_t edge_idx, int replica, net::Packet packet);
  void schedule_sweep(std::size_t edge_idx);

  sim::Simulator& simulator_;
  core::CombinerInstance& combiner_;
  ResilienceConfig config_;
  bool promoted_ = false;
  std::vector<std::unique_ptr<EdgeShadow>> shadows_;
};

/// Orchestrates checkpoints, the heartbeat watchdog, failover / warm
/// restart, degraded-mode policies, and hub crash/restart. One instance
/// per combiner; construct after the topology, destroy after the last
/// simulator run (scheduled timers capture `this`).
class ResilienceManager {
 public:
  ResilienceManager(sim::Simulator& simulator,
                    core::CombinerInstance& combiner, ResilienceConfig config);

  ResilienceManager(const ResilienceManager&) = delete;
  ResilienceManager& operator=(const ResilienceManager&) = delete;

  // --- fault entry points (FaultInjector delegates here) ---------------
  /// Kills the compare process; its in-memory state is lost. With
  /// `recover_after` > 0 a warm restart from the last checkpoint is
  /// scheduled (ignored if a failover wins the race — the old primary
  /// stays fenced). Zero = down until failover or forever.
  void compare_crash(sim::Duration recover_after);
  /// Wedges the process (heartbeats stop, memory intact). Un-hanging
  /// resumes in place — no restore needed.
  void compare_hang(sim::Duration recover_after);
  /// Removes edge `edge_idx`'s fan-out rule; restart reinstalls it.
  void hub_crash(int edge_idx, sim::Duration recover_after);
  /// Suppresses heartbeat *observation* while the primary stays live — a
  /// monitoring-path partition. Exercises the false-positive guard: if a
  /// failover fires anyway, fencing keeps egress duplicate-free.
  void heartbeat_loss(sim::Duration duration);

  /// The standby (nullptr unless config.standby).
  [[nodiscard]] StandbyCompare* standby() noexcept { return standby_.get(); }

  [[nodiscard]] ResilienceSummary summary() const;

  [[nodiscard]] const ResilienceConfig& config() const noexcept {
    return config_;
  }

 private:
  void take_checkpoint();
  void checkpoint_tick();
  void heartbeat_tick();
  void on_declared_dead();
  void do_promote();
  void restart_primary();
  void enter_degraded();
  void exit_degraded();
  void begin_outage();
  void trace(obs::TraceEvent event, int replica, std::uint64_t bytes);

  sim::Simulator& simulator_;
  core::CombinerInstance& combiner_;
  ResilienceConfig config_;
  std::unique_ptr<StandbyCompare> standby_;

  /// Latest good checkpoint text per edge (round-trip-verified at capture).
  std::vector<std::string> checkpoint_text_;

  // Watchdog state.
  bool monitoring_ = true;   ///< false after failover: nothing left to watch
  bool heartbeat_suppressed_ = false;
  int misses_ = 0;
  bool dead_declared_ = false;

  // Outage window bookkeeping (gap loss + time-to-failover).
  bool outage_open_ = false;
  std::int64_t outage_start_ns_ = 0;
  std::uint64_t shadow_mark_ = 0;  ///< standby shadow_releases at outage start

  // Degraded mode.
  bool degraded_ = false;
  std::uint64_t degraded_epoch_ = 0;  ///< guards scheduled activations

  // Counters.
  std::uint64_t checkpoints_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t compare_crashes_ = 0;
  std::uint64_t compare_hangs_ = 0;
  std::uint64_t hub_crashes_ = 0;
  std::uint64_t heartbeat_misses_ = 0;
  std::uint64_t degraded_entries_ = 0;
  std::int64_t time_to_failover_ns_ = -1;
  std::uint64_t gap_loss_ = 0;

  obs::Observability* obs_;
  obs::Counter* checkpoint_counter_;   ///< "resilience.checkpoints"
  obs::Counter* failover_counter_;     ///< "resilience.failovers"
  obs::Counter* miss_counter_;         ///< "resilience.heartbeat_misses"
  obs::Counter* degraded_counter_;     ///< "resilience.degraded_entries"
};

}  // namespace netco::resilience
