#include "resilience/checkpoint.h"

#include <cstdio>
#include <cstring>

namespace netco::resilience {

namespace {

constexpr char kMagic[] = "netco-checkpoint v1";

void append_bits(std::string& out, const std::vector<bool>& bits) {
  for (const bool b : bits) out += b ? '1' : '0';
}

std::vector<bool> parse_bits(const char* s) {
  std::vector<bool> out;
  for (; *s == '0' || *s == '1'; ++s) out.push_back(*s == '1');
  return out;
}

void append_hex(std::string& out, const std::vector<std::byte>& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (const std::byte b : bytes) {
    const auto v = static_cast<unsigned>(b);
    out += kDigits[v >> 4];
    out += kDigits[v & 0xF];
  }
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

bool parse_hex(const char* s, std::vector<std::byte>& out) {
  for (; *s != '\0' && *s != '\n'; s += 2) {
    const int hi = hex_nibble(s[0]);
    if (hi < 0) return false;
    const int lo = hex_nibble(s[1]);
    if (lo < 0) return false;  // also catches odd-length input
    out.push_back(static_cast<std::byte>((hi << 4) | lo));
  }
  return true;
}

/// Returns the next '\n'-terminated line of `text` starting at `pos`
/// (without the newline) and advances `pos` past it; false at the end.
bool next_line(const std::string& text, std::size_t& pos, std::string& line) {
  if (pos >= text.size()) return false;
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) {
    line.assign(text, pos, text.size() - pos);
    pos = text.size();
  } else {
    line.assign(text, pos, nl - pos);
    pos = nl + 1;
  }
  return true;
}

}  // namespace

std::string serialize_snapshot(const core::CompareSnapshot& snap) {
  std::string out;
  char buf[512];
  int n = std::snprintf(buf, sizeof buf, "%s at=%lld\n", kMagic,
                        static_cast<long long>(snap.at_ns));
  out.append(buf, static_cast<std::size_t>(n));

  const core::CompareStats& s = snap.stats;
  n = std::snprintf(
      buf, sizeof buf,
      "stats %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu "
      "%zu %zu %llu %llu %llu\n",
      static_cast<unsigned long long>(s.ingested),
      static_cast<unsigned long long>(s.released),
      static_cast<unsigned long long>(s.late_after_release),
      static_cast<unsigned long long>(s.duplicates_same_port),
      static_cast<unsigned long long>(s.evicted_timeout),
      static_cast<unsigned long long>(s.evicted_capacity),
      static_cast<unsigned long long>(s.evicted_quota),
      static_cast<unsigned long long>(s.cleanup_passes),
      static_cast<unsigned long long>(s.mismatch_detected),
      static_cast<unsigned long long>(s.rejected_replica),
      static_cast<unsigned long long>(s.shadow_releases),
      static_cast<unsigned long long>(s.suppressed_recovered),
      s.cache_entries, s.max_cache_entries,
      static_cast<unsigned long long>(s.fastpath_ingested),
      static_cast<unsigned long long>(s.fastpath_released),
      static_cast<unsigned long long>(s.sampled_escalated));
  out.append(buf, static_cast<std::size_t>(n));

  n = std::snprintf(buf, sizeof buf, "live %016llx %d\n",
                    static_cast<unsigned long long>(snap.live_mask),
                    snap.live_count);
  out.append(buf, static_cast<std::size_t>(n));

  out += "since";
  for (const std::int64_t t : snap.live_since_ns) {
    n = std::snprintf(buf, sizeof buf, " %lld", static_cast<long long>(t));
    out.append(buf, static_cast<std::size_t>(n));
  }
  out += "\nmissed";
  for (const std::uint64_t m : snap.missed_streak) {
    n = std::snprintf(buf, sizeof buf, " %llu",
                      static_cast<unsigned long long>(m));
    out.append(buf, static_cast<std::size_t>(n));
  }
  out += "\nflags ";
  append_bits(out, snap.flagged_block);
  out += ' ';
  append_bits(out, snap.flagged_inactive);
  out += '\n';

  n = std::snprintf(buf, sizeof buf, "entries %zu\n", snap.entries.size());
  out.append(buf, static_cast<std::size_t>(n));
  for (const core::SnapshotEntry& e : snap.entries) {
    n = std::snprintf(
        buf, sizeof buf, "e %016llx %016llx %u %016llx %d %d %d%d%d %lld ",
        static_cast<unsigned long long>(e.key),
        static_cast<unsigned long long>(e.base_key), e.probe_depth,
        static_cast<unsigned long long>(e.replica_mask), e.contributions,
        e.first_replica, e.holds_singleton_slot ? 1 : 0, e.released ? 1 : 0,
        e.recovered ? 1 : 0, static_cast<long long>(e.first_seen_ns));
    out.append(buf, static_cast<std::size_t>(n));
    append_hex(out, e.payload);
    out += '\n';
  }
  out += "end\n";
  return out;
}

std::optional<core::CompareSnapshot> parse_snapshot(const std::string& text) {
  core::CompareSnapshot snap;
  std::size_t pos = 0;
  std::string line;

  if (!next_line(text, pos, line)) return std::nullopt;
  long long at = 0;
  {
    char magic[32] = {0};
    char version[16] = {0};
    if (std::sscanf(line.c_str(), "%31s %15s at=%lld", magic, version, &at) !=
            3 ||
        std::strcmp(magic, "netco-checkpoint") != 0 ||
        std::strcmp(version, "v1") != 0) {
      // sscanf can't express the space inside kMagic in one token; match
      // the two words explicitly instead.
      char m2[24] = {0};
      if (std::sscanf(line.c_str(), "netco-checkpoint %23s", m2) != 1) {
        return std::nullopt;
      }
      if (std::sscanf(line.c_str(), "netco-checkpoint v1 at=%lld", &at) != 1) {
        return std::nullopt;
      }
    }
  }
  snap.at_ns = at;

  if (!next_line(text, pos, line)) return std::nullopt;
  {
    unsigned long long v[12];
    std::size_t ce = 0, mce = 0;
    // The three fast-path counters were appended in §XII; a v1 checkpoint
    // written before then carries 14 fields and restores them as zero.
    unsigned long long fp_in = 0, fp_rel = 0, fp_esc = 0;
    const int matched =
        std::sscanf(line.c_str(),
                    "stats %llu %llu %llu %llu %llu %llu %llu %llu %llu "
                    "%llu %llu %llu %zu %zu %llu %llu %llu",
                    &v[0], &v[1], &v[2], &v[3], &v[4], &v[5], &v[6], &v[7],
                    &v[8], &v[9], &v[10], &v[11], &ce, &mce, &fp_in, &fp_rel,
                    &fp_esc);
    if (matched != 14 && matched != 17) {
      return std::nullopt;
    }
    core::CompareStats& s = snap.stats;
    s.ingested = v[0];
    s.released = v[1];
    s.late_after_release = v[2];
    s.duplicates_same_port = v[3];
    s.evicted_timeout = v[4];
    s.evicted_capacity = v[5];
    s.evicted_quota = v[6];
    s.cleanup_passes = v[7];
    s.mismatch_detected = v[8];
    s.rejected_replica = v[9];
    s.shadow_releases = v[10];
    s.suppressed_recovered = v[11];
    s.cache_entries = ce;
    s.max_cache_entries = mce;
    s.fastpath_ingested = fp_in;
    s.fastpath_released = fp_rel;
    s.sampled_escalated = fp_esc;
  }

  if (!next_line(text, pos, line)) return std::nullopt;
  {
    unsigned long long mask = 0;
    int count = 0;
    if (std::sscanf(line.c_str(), "live %llx %d", &mask, &count) != 2) {
      return std::nullopt;
    }
    snap.live_mask = mask;
    snap.live_count = count;
  }

  if (!next_line(text, pos, line) || line.rfind("since", 0) != 0) {
    return std::nullopt;
  }
  {
    const char* s = line.c_str() + 5;
    long long v = 0;
    int consumed = 0;
    while (std::sscanf(s, " %lld%n", &v, &consumed) == 1) {
      snap.live_since_ns.push_back(v);
      s += consumed;
    }
  }

  if (!next_line(text, pos, line) || line.rfind("missed", 0) != 0) {
    return std::nullopt;
  }
  {
    const char* s = line.c_str() + 6;
    unsigned long long v = 0;
    int consumed = 0;
    while (std::sscanf(s, " %llu%n", &v, &consumed) == 1) {
      snap.missed_streak.push_back(v);
      s += consumed;
    }
  }

  if (!next_line(text, pos, line) || line.rfind("flags ", 0) != 0) {
    return std::nullopt;
  }
  {
    const std::size_t sep = line.find(' ', 6);
    if (sep == std::string::npos) return std::nullopt;
    snap.flagged_block = parse_bits(line.c_str() + 6);
    snap.flagged_inactive = parse_bits(line.c_str() + sep + 1);
  }

  if (!next_line(text, pos, line)) return std::nullopt;
  std::size_t entry_count = 0;
  if (std::sscanf(line.c_str(), "entries %zu", &entry_count) != 1) {
    return std::nullopt;
  }
  snap.entries.reserve(entry_count);
  for (std::size_t i = 0; i < entry_count; ++i) {
    if (!next_line(text, pos, line)) return std::nullopt;
    core::SnapshotEntry e;
    unsigned long long key = 0, base = 0, mask = 0;
    unsigned depth = 0;
    int contributions = 0, first = 0, slot = 0, released = 0, recovered = 0;
    long long seen = 0;
    int payload_at = 0;
    if (std::sscanf(line.c_str(),
                    "e %llx %llx %u %llx %d %d %1d%1d%1d %lld %n", &key,
                    &base, &depth, &mask, &contributions, &first, &slot,
                    &released, &recovered, &seen, &payload_at) != 10) {
      return std::nullopt;
    }
    e.key = key;
    e.base_key = base;
    e.probe_depth = depth;
    e.replica_mask = mask;
    e.contributions = contributions;
    e.first_replica = first;
    e.holds_singleton_slot = slot != 0;
    e.released = released != 0;
    e.recovered = recovered != 0;
    e.first_seen_ns = seen;
    if (!parse_hex(line.c_str() + payload_at, e.payload)) return std::nullopt;
    snap.entries.push_back(std::move(e));
  }

  if (!next_line(text, pos, line) || line != "end") return std::nullopt;
  return snap;
}

}  // namespace netco::resilience
