// Checkpoint codec for CompareSnapshot (the compare crash-recovery path).
//
// The format is a line-oriented text record — deliberately boring, so a
// checkpoint written by one build parses under the next and a human can
// read the recovery evidence in a bug report. Exemplar payloads travel as
// hex so the round trip is byte-exact (the restored entry must memcmp
// equal against late copies, exactly like the original).
//
// ResilienceManager round-trips *every* checkpoint through this codec
// (serialize at checkpoint time, parse at restore time), so the encoder
// and decoder cannot skew silently: a field one side forgets shows up as
// a failed restore in the first soak, not in a disaster recovery.
#pragma once

#include <optional>
#include <string>

#include "netco/compare_core.h"

namespace netco::resilience {

/// Canonical text rendering of a snapshot (stable field order; equal
/// snapshots serialize to equal bytes).
[[nodiscard]] std::string serialize_snapshot(const core::CompareSnapshot& snap);

/// Parses a serialize_snapshot() record. std::nullopt on any malformed
/// line — a torn checkpoint must fail loudly, not restore half a cache.
[[nodiscard]] std::optional<core::CompareSnapshot> parse_snapshot(
    const std::string& text);

}  // namespace netco::resilience
