// Workload engine configuration: user populations as arrival processes.
//
// A workload run models sessions arriving as a (possibly time-varying)
// Poisson process; each session runs a geometric number of flows with
// bounded-Pareto sizes, separated by exponential think times — the
// classic heavy-tailed web-user model (Crovella/Bestavros). Four scenario
// shapes modulate the arrival rate or attach an adversary:
//
//   steady       λ(t) = λ0
//   diurnal      λ(t) = λ0 · (1 + A · sin(2πt/T))       (day/night ramp)
//   flash-crowd  λ(t) = λ0 · M inside a burst window     (news event)
//   ddos-burst   λ(t) = λ0, plus adversary::DosFlooder injecting forged
//                traffic at one replica inside the burst window (the
//                combiner's health machinery is the defense under test)
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace netco::workload {

/// Scenario shapes for the arrival process (see file comment).
enum class Scenario : std::uint8_t {
  kSteady,
  kDiurnal,
  kFlashCrowd,
  kDdosBurst,
};

[[nodiscard]] const char* to_string(Scenario scenario) noexcept;

/// Flow-level workload parameters. Defaults model a modest population that
/// a k=3 combiner sustains with headroom; benches sweep the arrival rate.
struct WorkloadConfig {
  /// Master switch: when false inside SoakOptions, the soak runs the
  /// classic single-stream UDP sender and nothing here is read.
  bool enabled = false;

  Scenario scenario = Scenario::kSteady;

  /// Base session arrival rate λ0 (sessions per second of sim time).
  double session_arrivals_per_sec = 200.0;

  /// Arrival phase length T: arrivals stop and the drain begins at T.
  sim::Duration duration = sim::Duration::seconds(3);

  // --- population shape --------------------------------------------------
  /// Flows per session ~ Geometric (support ≥ 1) with this mean.
  double flows_per_session_mean = 3.0;
  /// Think time between a session's flows ~ Exponential with this mean.
  sim::Duration think_mean = sim::Duration::milliseconds(200);
  /// Flow size in packets ~ bounded Pareto(alpha) on [min, max]: many
  /// mice, few elephants — the heavy tail that breaks mean-based sizing.
  double pareto_alpha = 1.3;
  std::uint32_t flow_min_packets = 1;
  std::uint32_t flow_max_packets = 256;
  /// UDP payload bytes per packet (>= 12: flow index + token + seq).
  std::size_t payload_bytes = 200;

  // --- flow transport (windowed, iperf-like pacing) ----------------------
  /// Packets offered per pacing tick start at `initial_window`, double per
  /// tick up to `max_window` (slow-start shape), and halve on a timeout.
  std::uint32_t initial_window = 2;
  std::uint32_t max_window = 32;
  sim::Duration pacing_interval = sim::Duration::milliseconds(2);
  /// Completion-check timeout after a flow has offered all packets: any
  /// shortfall is retransmitted as fresh datagrams.
  sim::Duration rto = sim::Duration::milliseconds(40);
  /// Retransmit rounds before the flow is abandoned.
  std::uint32_t max_retries = 6;

  // --- capacity ----------------------------------------------------------
  /// Flow records in the flat pool: sessions beyond this are dropped (and
  /// counted). Sized up to millions in the capacity bench.
  std::size_t pool_capacity = 1 << 16;
  /// Sessions transmitting concurrently; the rest queue in an intrusive
  /// FIFO inside the pool (admission control, not allocation).
  std::uint32_t active_cap = 256;

  // --- scenario shaping --------------------------------------------------
  /// Diurnal: λ(t) = λ0 · (1 + amplitude · sin(2πt/duration)), floored at
  /// 5% of λ0.
  double diurnal_amplitude = 0.6;
  /// Flash crowd: λ multiplier inside the burst window.
  double flash_multiplier = 8.0;
  /// Burst window (flash crowd and DDoS) as fractions of `duration`.
  double burst_start_frac = 0.4;
  double burst_len_frac = 0.2;
  /// DDoS: forged packets per second injected at replica 0 in the window.
  double ddos_packets_per_sec = 20'000.0;
  std::size_t ddos_packet_bytes = 200;

  // --- plumbing -----------------------------------------------------------
  /// Destination UDP port the engine binds on the receiving host.
  std::uint16_t dst_port = 5002;
  /// Timer-wheel tick for the per-flow timers (pacing, RTO, think).
  sim::Duration wheel_tick = sim::Duration::microseconds(100);
};

}  // namespace netco::workload
