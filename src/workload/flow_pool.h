// Flat SoA pool of flow/session records: the zero-allocation substrate of
// the workload engine.
//
// One record is one live session (holding its current flow's transport
// state). All columns are preallocated at construction and recycled
// through a free list — after construction the pool never allocates, no
// matter how many sessions churn through it, so a million-session run
// costs a million-record slab once and nothing per user.
//
// Stale-handle safety uses the same generation scheme as sim::TimerWheel
// and the simulator's CancelSlab: release() bumps the record's generation,
// so any identity captured before (timer args, in-flight packet tokens)
// can be detected as stale by the engine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace netco::workload {

/// Session/flow lifecycle. kPacing and kRtoWait are both "active"
/// (occupying an admission slot): offering packets vs waiting for the
/// completion-check timeout.
enum class FlowState : std::uint8_t {
  kFree,
  kPending,   ///< admitted to the pool, queued for an active slot
  kPacing,    ///< offering packets, window open
  kRtoWait,   ///< all packets offered, completion timer running
  kThinking,  ///< between flows of one session
};

/// SoA record pool with freelist recycling. Columns are public by design:
/// the engine is the sole user and indexes them directly (record index =
/// column index); a record struct would re-interleave what the layout
/// deliberately splits.
class FlowPool {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  explicit FlowPool(std::size_t capacity)
      : state(capacity, FlowState::kFree),
        retries(capacity, 0),
        window(capacity, 0),
        generation(capacity, 1),
        token(capacity, 0),
        flows_left(capacity, 0),
        total(capacity, 0),
        to_offer(capacity, 0),
        delivered(capacity, 0),
        next_seq(capacity, 0),
        fifo_next(capacity, kNil),
        timer(capacity, 0),
        flow_start_ns(capacity, 0) {
    NETCO_ASSERT(capacity > 0 && capacity < kNil);
    free_.reserve(capacity);
    // Freelist as a stack, seeded in reverse so acquisition order is
    // 0, 1, 2, … — keeps early records hot and runs deterministic.
    for (std::size_t i = capacity; i-- > 0;)
      free_.push_back(static_cast<std::uint32_t>(i));
  }

  /// Pops a free record (state kPending, fields zeroed); kNil when the
  /// pool is exhausted. O(1), allocation-free.
  std::uint32_t acquire() noexcept {
    if (free_.empty()) return kNil;
    const std::uint32_t index = free_.back();
    free_.pop_back();
    state[index] = FlowState::kPending;
    retries[index] = 0;
    window[index] = 0;
    token[index] = 0;
    flows_left[index] = 0;
    total[index] = 0;
    to_offer[index] = 0;
    delivered[index] = 0;
    next_seq[index] = 0;
    fifo_next[index] = kNil;
    timer[index] = 0;
    flow_start_ns[index] = 0;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return index;
  }

  /// Returns a record to the free list and bumps its generation (stale
  /// tokens and timer args become detectable). O(1).
  void release(std::uint32_t index) noexcept {
    NETCO_ASSERT(state[index] != FlowState::kFree);
    state[index] = FlowState::kFree;
    ++generation[index];
    token[index] = 0;
    free_.push_back(index);
    --live_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return state.size(); }
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t peak_live() const noexcept { return peak_live_; }

  // --- columns (index = record id) ---------------------------------------
  std::vector<FlowState> state;
  std::vector<std::uint8_t> retries;        ///< retransmit rounds this flow
  std::vector<std::uint16_t> window;        ///< packets per pacing tick
  std::vector<std::uint32_t> generation;    ///< bumped on release
  std::vector<std::uint32_t> token;         ///< wire identity of the current flow
  std::vector<std::uint32_t> flows_left;    ///< flows remaining incl. current
  std::vector<std::uint32_t> total;         ///< packets in the current flow
  std::vector<std::uint32_t> to_offer;      ///< packets left in this round
  std::vector<std::uint32_t> delivered;     ///< packets landed this flow
  std::vector<std::uint32_t> next_seq;      ///< next fresh datagram seq
  std::vector<std::uint32_t> fifo_next;     ///< intrusive admission queue
  std::vector<std::uint64_t> timer;         ///< TimerWheel id (0 = none)
  std::vector<std::int64_t> flow_start_ns;  ///< FCT epoch

 private:
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace netco::workload
