// WorkloadEngine: drives a user population through the combiner.
//
// Sessions arrive as a Poisson process shaped by the configured scenario;
// each session cycles flow → think → flow over a flat FlowPool record.
// All per-flow timers (pacing, completion check, think time) run on a
// sim::TimerWheel; the arrival process itself runs on the raw simulator
// heap because it needs sub-tick resolution at high rates (one recurring
// event, so the heap cost is constant).
//
// Determinism: every state transition happens inside a simulator event and
// every random draw comes from the engine's seeded Rng, so a workload run
// is bit-reproducible exactly like the classic soak — same seed, same
// trace stream, same metrics snapshot.
//
// Emission mimics host::UdpSender: datagrams are charged to the sending
// host's CPU (udp_tx cost) with a bounded engine-wide CPU backlog, so an
// overdriven population falls behind its offered load the way a real
// sender does instead of building unbounded queues. Each datagram carries
// (record index, flow token, seq); the receiving host's handler credits
// the flow only when the token matches the record's current flow, so late
// deliveries into a recycled record are counted as stale, never credited.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "adversary/behaviors.h"
#include "common/rng.h"
#include "host/host.h"
#include "obs/observability.h"
#include "sim/timer_wheel.h"
#include "workload/config.h"
#include "workload/flow_pool.h"

namespace netco::workload {

/// Raw engine counters (plain struct so circuits can read them from any
/// thread after the run; the same values are exported as obs metrics).
struct WorkloadStats {
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_finished = 0;  ///< completed or drained out
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_aborted = 0;      ///< gave up after max_retries
  std::uint64_t packets_offered = 0;    ///< datagrams handed to the wire
  std::uint64_t packets_delivered = 0;  ///< credited to a live flow
  std::uint64_t packets_stale = 0;      ///< arrived for a dead/recycled flow
  std::uint64_t retransmit_packets = 0;
  std::uint64_t pool_exhausted = 0;     ///< sessions dropped, pool full
  std::uint64_t admission_waits = 0;    ///< flows that queued for a slot
  std::uint64_t pacing_skips = 0;       ///< bursts clipped by CPU backlog
  std::uint64_t drained_records = 0;    ///< idle records freed by the drain
};

/// DDoS-burst wiring: the datapath (a replica switch) the flooder runs on
/// plus its forged-traffic parameters.
struct DdosHook {
  device::Datapath* datapath = nullptr;
  adversary::DosFlooder::Config config;
};

class WorkloadEngine {
 public:
  /// Wire format: flow record index + flow token + datagram seq.
  static constexpr std::size_t kMinPayload = 12;

  /// Binds `config.dst_port` on `dst`; emits from `src`. The hook is
  /// required (and only read) for Scenario::kDdosBurst.
  WorkloadEngine(host::Host& src, host::Host& dst, WorkloadConfig config,
                 std::uint64_t seed, std::optional<DdosHook> ddos = {});
  ~WorkloadEngine();

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  /// Arms the arrival process (and the DDoS burst window, if configured).
  void start();

  /// Stops arrivals and frees every record with no traffic in flight
  /// (pending/thinking sessions). Active flows run on to completion or
  /// abort; poll idle() to learn when the pool is empty.
  void begin_drain();

  /// True once every record has been released (valid after begin_drain()).
  [[nodiscard]] bool idle() const noexcept { return pool_.live() == 0; }

  [[nodiscard]] const WorkloadStats& stats() const noexcept { return stats_; }

  /// Copies the raw counters into obs::global().metrics as workload.*
  /// counters (call once, after the run settles).
  void export_metrics() const;

  [[nodiscard]] const FlowPool& pool() const noexcept { return pool_; }
  [[nodiscard]] const sim::TimerWheel& wheel() const noexcept {
    return wheel_;
  }
  /// Forged packets the DDoS burst injected (0 in other scenarios).
  [[nodiscard]] std::uint64_t ddos_emitted() const noexcept {
    return flooder_ ? flooder_->emitted() : 0;
  }

 private:
  /// In-flight datagrams allowed in the sender CPU queue before pacing
  /// bursts are clipped (engine-wide, mirroring UdpSender's backlog cap).
  static constexpr std::size_t kTxBacklogLimit = 64;

  static void on_timer(void* ctx, std::uint64_t arg);

  void schedule_arrival();
  void on_arrival();
  void start_session();
  void begin_flow(std::uint32_t index);
  void activate(std::uint32_t index);
  void admit_from_queue();
  void do_pace(std::uint32_t index);
  void on_rto(std::uint32_t index);
  void on_think(std::uint32_t index);
  void complete_flow(std::uint32_t index);
  void end_flow(std::uint32_t index);
  void emit_packet(std::uint32_t index);
  void on_datagram(const net::ParsedPacket& parsed, const net::Packet& packet);

  [[nodiscard]] double arrival_rate_at(sim::TimePoint t) const noexcept;
  [[nodiscard]] std::uint32_t draw_flow_count();
  [[nodiscard]] std::uint32_t draw_flow_packets();

  host::Host& src_;
  host::Host& dst_;
  WorkloadConfig config_;
  Rng rng_;
  FlowPool pool_;
  sim::TimerWheel wheel_;

  // Intrusive admission FIFO over FlowPool::fifo_next.
  std::uint32_t fifo_head_ = FlowPool::kNil;
  std::uint32_t fifo_tail_ = FlowPool::kNil;
  std::uint32_t active_count_ = 0;

  std::uint32_t next_token_ = 1;  ///< 0 = never a live flow
  std::size_t tx_backlog_ = 0;
  bool running_ = false;
  bool draining_ = false;

  sim::EventHandle arrival_;
  std::unique_ptr<adversary::DosFlooder> flooder_;
  sim::EventHandle ddos_start_;
  sim::EventHandle ddos_stop_;

  WorkloadStats stats_;
  obs::Histogram& fct_ms_;
  obs::Histogram& flow_size_pkts_;

  /// Liveness token for queued CPU jobs (same pattern as UdpSender).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace netco::workload
