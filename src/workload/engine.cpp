#include "workload/engine.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "net/headers.h"

namespace netco::workload {
namespace {

constexpr std::uint16_t kSrcPort = 40001;

/// FCT buckets (ms): sub-RTT mice through multi-second elephants.
std::vector<double> fct_bounds() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

/// Flow-size buckets (packets): powers of two over the Pareto support.
std::vector<double> flow_size_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

}  // namespace

const char* to_string(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kSteady:
      return "steady";
    case Scenario::kDiurnal:
      return "diurnal";
    case Scenario::kFlashCrowd:
      return "flash-crowd";
    case Scenario::kDdosBurst:
      return "ddos-burst";
  }
  return "?";
}

WorkloadEngine::WorkloadEngine(host::Host& src, host::Host& dst,
                               WorkloadConfig config, std::uint64_t seed,
                               std::optional<DdosHook> ddos)
    : src_(src),
      dst_(dst),
      config_(config),
      rng_(seed),
      pool_(config.pool_capacity),
      wheel_(src.simulator(), {.tick = config.wheel_tick}),
      fct_ms_(obs::global().metrics.histogram("workload.fct_ms",
                                              fct_bounds())),
      flow_size_pkts_(obs::global().metrics.histogram(
          "workload.flow_size_pkts", flow_size_bounds())) {
  NETCO_ASSERT(config_.payload_bytes >= kMinPayload);
  NETCO_ASSERT(config_.session_arrivals_per_sec > 0.0);
  NETCO_ASSERT(config_.duration.ns() > 0);
  NETCO_ASSERT(config_.active_cap > 0);
  NETCO_ASSERT(config_.initial_window > 0 &&
               config_.initial_window <= config_.max_window &&
               config_.max_window <= 0xFFFF);
  if (config_.scenario == Scenario::kDdosBurst) {
    NETCO_ASSERT_MSG(ddos.has_value() && ddos->datapath != nullptr,
                     "ddos-burst scenario requires a DdosHook");
    flooder_ = std::make_unique<adversary::DosFlooder>(*ddos->datapath,
                                                       ddos->config);
  }
  dst_.bind_udp(config_.dst_port,
                [this](const net::ParsedPacket& parsed,
                       const net::Packet& packet) {
                  on_datagram(parsed, packet);
                });
}

WorkloadEngine::~WorkloadEngine() {
  dst_.unbind_udp(config_.dst_port);
  *alive_ = false;
}

void WorkloadEngine::start() {
  if (running_) return;
  running_ = true;
  schedule_arrival();
  if (flooder_) {
    const auto frac_ns = [this](double frac) {
      return sim::Duration::nanoseconds(static_cast<std::int64_t>(
          static_cast<double>(config_.duration.ns()) * frac));
    };
    ddos_start_ = src_.simulator().schedule_after(
        frac_ns(config_.burst_start_frac), [this] { flooder_->start(); });
    ddos_stop_ = src_.simulator().schedule_after(
        frac_ns(config_.burst_start_frac + config_.burst_len_frac),
        [this] { flooder_->stop(); });
  }
}

double WorkloadEngine::arrival_rate_at(sim::TimePoint t) const noexcept {
  const double base = config_.session_arrivals_per_sec;
  const double frac = static_cast<double>(t.since_origin().ns()) /
                      static_cast<double>(config_.duration.ns());
  switch (config_.scenario) {
    case Scenario::kSteady:
    case Scenario::kDdosBurst:
      return base;
    case Scenario::kDiurnal:
      return std::max(0.05 * base,
                      base * (1.0 + config_.diurnal_amplitude *
                                        std::sin(2.0 * M_PI * frac)));
    case Scenario::kFlashCrowd:
      return (frac >= config_.burst_start_frac &&
              frac < config_.burst_start_frac + config_.burst_len_frac)
                 ? base * config_.flash_multiplier
                 : base;
  }
  return base;
}

void WorkloadEngine::schedule_arrival() {
  if (draining_) return;
  const sim::TimePoint now = src_.simulator().now();
  if (now.since_origin() >= config_.duration) return;
  const double rate = arrival_rate_at(now);
  const double gap_s = rng_.exponential(1.0 / rate);
  const auto gap = std::max(
      sim::Duration::nanoseconds(1), sim::Duration::seconds_f(gap_s));
  arrival_ = src_.simulator().schedule_after(gap, [this] { on_arrival(); });
}

void WorkloadEngine::on_arrival() {
  if (draining_) return;
  start_session();
  schedule_arrival();
}

std::uint32_t WorkloadEngine::draw_flow_count() {
  const double mean = config_.flows_per_session_mean;
  if (mean <= 1.0) return 1;
  // Geometric with support >= 1 and the configured mean (p = 1/mean).
  const double u = std::min(rng_.uniform01(), 1.0 - 1e-12);
  const double n =
      1.0 + std::floor(std::log1p(-u) / std::log1p(-1.0 / mean));
  return static_cast<std::uint32_t>(std::clamp(n, 1.0, 65536.0));
}

std::uint32_t WorkloadEngine::draw_flow_packets() {
  const std::uint32_t lo = std::max<std::uint32_t>(1, config_.flow_min_packets);
  const std::uint32_t hi = std::max(lo, config_.flow_max_packets);
  if (lo == hi) return lo;
  // Bounded Pareto inverse CDF on [lo, hi].
  const double alpha = config_.pareto_alpha;
  const double u = std::min(rng_.uniform01(), 1.0 - 1e-12);
  const double ratio =
      std::pow(static_cast<double>(lo) / static_cast<double>(hi), alpha);
  const double x = static_cast<double>(lo) /
                   std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
  return static_cast<std::uint32_t>(std::clamp(
      x, static_cast<double>(lo), static_cast<double>(hi)));
}

void WorkloadEngine::start_session() {
  const std::uint32_t index = pool_.acquire();
  if (index == FlowPool::kNil) {
    ++stats_.pool_exhausted;
    return;
  }
  ++stats_.sessions_started;
  pool_.flows_left[index] = draw_flow_count();
  begin_flow(index);
}

void WorkloadEngine::begin_flow(std::uint32_t index) {
  pool_.state[index] = FlowState::kPending;
  if (active_count_ < config_.active_cap) {
    activate(index);
    return;
  }
  ++stats_.admission_waits;
  pool_.fifo_next[index] = FlowPool::kNil;
  if (fifo_tail_ == FlowPool::kNil) {
    fifo_head_ = fifo_tail_ = index;
  } else {
    pool_.fifo_next[fifo_tail_] = index;
    fifo_tail_ = index;
  }
}

void WorkloadEngine::activate(std::uint32_t index) {
  ++active_count_;
  ++stats_.flows_started;
  pool_.state[index] = FlowState::kPacing;
  pool_.token[index] = next_token_++;
  if (next_token_ == 0) next_token_ = 1;  // 0 marks "no live flow"
  const std::uint32_t total = draw_flow_packets();
  flow_size_pkts_.observe(static_cast<double>(total));
  pool_.total[index] = total;
  pool_.to_offer[index] = total;
  pool_.delivered[index] = 0;
  pool_.next_seq[index] = 0;
  pool_.retries[index] = 0;
  pool_.window[index] = static_cast<std::uint16_t>(config_.initial_window);
  pool_.flow_start_ns[index] = src_.simulator().now().ns();
  do_pace(index);
}

void WorkloadEngine::admit_from_queue() {
  while (active_count_ < config_.active_cap && fifo_head_ != FlowPool::kNil) {
    const std::uint32_t index = fifo_head_;
    fifo_head_ = pool_.fifo_next[index];
    if (fifo_head_ == FlowPool::kNil) fifo_tail_ = FlowPool::kNil;
    pool_.fifo_next[index] = FlowPool::kNil;
    activate(index);
  }
}

void WorkloadEngine::on_timer(void* ctx, std::uint64_t arg) {
  auto* engine = static_cast<WorkloadEngine*>(ctx);
  const auto index = static_cast<std::uint32_t>(arg);
  engine->pool_.timer[index] = 0;
  switch (engine->pool_.state[index]) {
    case FlowState::kPacing:
      engine->do_pace(index);
      break;
    case FlowState::kRtoWait:
      engine->on_rto(index);
      break;
    case FlowState::kThinking:
      engine->on_think(index);
      break;
    case FlowState::kFree:
    case FlowState::kPending:
      NETCO_ASSERT_MSG(false, "timer fired for an idle flow record");
  }
}

void WorkloadEngine::do_pace(std::uint32_t index) {
  const std::uint32_t burst =
      std::min<std::uint32_t>(pool_.window[index], pool_.to_offer[index]);
  std::uint32_t sent = 0;
  while (sent < burst) {
    if (tx_backlog_ >= kTxBacklogLimit) {
      ++stats_.pacing_skips;  // CPU swamped: clip the burst, retry next tick
      break;
    }
    emit_packet(index);
    ++sent;
  }
  pool_.to_offer[index] -= sent;
  if (pool_.to_offer[index] > 0) {
    if (sent == burst) {  // grow only when the whole burst left on time
      pool_.window[index] = static_cast<std::uint16_t>(
          std::min<std::uint32_t>(pool_.window[index] * 2, config_.max_window));
    }
    pool_.timer[index] = wheel_.schedule_after(config_.pacing_interval,
                                               &on_timer, this, index);
    return;
  }
  pool_.state[index] = FlowState::kRtoWait;
  pool_.timer[index] =
      wheel_.schedule_after(config_.rto, &on_timer, this, index);
}

void WorkloadEngine::on_rto(std::uint32_t index) {
  if (pool_.delivered[index] >= pool_.total[index]) {
    complete_flow(index);
    return;
  }
  if (pool_.retries[index] >= config_.max_retries) {
    ++stats_.flows_aborted;
    end_flow(index);
    return;
  }
  ++pool_.retries[index];
  const std::uint32_t missing = pool_.total[index] - pool_.delivered[index];
  stats_.retransmit_packets += missing;
  // Shortfall becomes a fresh round: new datagrams (new seqs and IP ids —
  // the compare must never see a retransmission as a stale copy), half
  // the window (timeout = congestion signal).
  pool_.to_offer[index] = missing;
  pool_.window[index] = static_cast<std::uint16_t>(std::max<std::uint32_t>(
      config_.initial_window, pool_.window[index] / 2));
  pool_.state[index] = FlowState::kPacing;
  do_pace(index);
}

void WorkloadEngine::on_think(std::uint32_t index) { begin_flow(index); }

void WorkloadEngine::complete_flow(std::uint32_t index) {
  fct_ms_.observe(
      static_cast<double>(src_.simulator().now().ns() -
                          pool_.flow_start_ns[index]) /
      1e6);
  ++stats_.flows_completed;
  end_flow(index);
}

void WorkloadEngine::end_flow(std::uint32_t index) {
  if (pool_.timer[index] != 0) {
    wheel_.cancel(pool_.timer[index]);  // the hot O(1) cancel path
    pool_.timer[index] = 0;
  }
  pool_.token[index] = 0;  // in-flight stragglers are stale from here on
  --active_count_;
  admit_from_queue();
  if (draining_ || pool_.flows_left[index] <= 1) {
    ++stats_.sessions_finished;
    pool_.release(index);
    return;
  }
  --pool_.flows_left[index];
  pool_.state[index] = FlowState::kThinking;
  const double think_s = rng_.exponential(config_.think_mean.sec());
  pool_.timer[index] = wheel_.schedule_after(
      std::max(sim::Duration::nanoseconds(1),
               sim::Duration::seconds_f(think_s)),
      &on_timer, this, index);
}

void WorkloadEngine::emit_packet(std::uint32_t index) {
  const std::uint32_t seq = pool_.next_seq[index]++;
  const std::uint32_t token = pool_.token[index];
  std::vector<std::byte> payload(config_.payload_bytes, std::byte{0});
  const auto put_u32 = [&payload](std::size_t off, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i)
      payload[off + i] = static_cast<std::byte>((v >> (24 - 8 * i)) & 0xFF);
  };
  put_u32(0, index);
  put_u32(4, token);
  put_u32(8, seq);

  net::Packet datagram = net::build_udp(
      net::EthernetHeader{.dst = dst_.mac(), .src = src_.mac()}, std::nullopt,
      net::Ipv4Header{.src = src_.ip(),
                      .dst = dst_.ip(),
                      .identification = src_.next_ip_id()},
      net::UdpHeader{.src_port = kSrcPort, .dst_port = config_.dst_port},
      payload);

  ++tx_backlog_;
  const auto tx_cost =
      src_.profile().udp_tx_cost +
      sim::Duration::nanoseconds(static_cast<std::int64_t>(
          src_.profile().udp_tx_ns_per_byte *
          static_cast<double>(config_.payload_bytes)));
  src_.cpu_submit(tx_cost,
                  [this, alive = std::weak_ptr<bool>(alive_),
                   p = std::move(datagram)]() mutable {
                    const auto guard = alive.lock();
                    if (!guard || !*guard) return;  // engine died
                    --tx_backlog_;
                    ++stats_.packets_offered;
                    src_.transmit(std::move(p));
                  });
}

void WorkloadEngine::on_datagram(const net::ParsedPacket& parsed,
                                 const net::Packet& packet) {
  const std::size_t off = parsed.payload_offset;
  if (packet.size() < off + kMinPayload) {
    ++stats_.packets_stale;  // runt (e.g. DDoS garbage that leaked through)
    return;
  }
  const auto get_u32 = [&packet, off](std::size_t at) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) v = (v << 8) | packet.u8(off + at + i);
    return v;
  };
  const std::uint32_t index = get_u32(0);
  const std::uint32_t token = get_u32(4);
  if (index >= pool_.capacity() || token == 0 ||
      pool_.token[index] != token) {
    // Late delivery for a flow that already completed, aborted, or whose
    // record was recycled: never credit it to the current occupant.
    ++stats_.packets_stale;
    return;
  }
  ++stats_.packets_delivered;
  ++pool_.delivered[index];
  if (pool_.delivered[index] >= pool_.total[index]) complete_flow(index);
}

void WorkloadEngine::begin_drain() {
  if (draining_) return;
  draining_ = true;
  arrival_.cancel();
  ddos_start_.cancel();
  ddos_stop_.cancel();
  if (flooder_) flooder_->stop();
  // Free every record with nothing in flight. Active flows (kPacing,
  // kRtoWait) run on; their completion/abort path sees draining_ and
  // releases the record instead of starting the next flow.
  for (std::uint32_t i = 0; i < pool_.capacity(); ++i) {
    switch (pool_.state[i]) {
      case FlowState::kPending:
      case FlowState::kThinking:
        if (pool_.timer[i] != 0) {
          wheel_.cancel(pool_.timer[i]);
          pool_.timer[i] = 0;
        }
        ++stats_.drained_records;
        ++stats_.sessions_finished;  // drained out counts as finished
        pool_.release(i);
        break;
      default:
        break;
    }
  }
  fifo_head_ = fifo_tail_ = FlowPool::kNil;  // all pending records freed
}

void WorkloadEngine::export_metrics() const {
  auto& metrics = obs::global().metrics;
  const auto set = [&metrics](const char* name, std::uint64_t value) {
    metrics.counter(name).inc(value);
  };
  set("workload.sessions_started", stats_.sessions_started);
  set("workload.sessions_finished", stats_.sessions_finished);
  set("workload.flows_started", stats_.flows_started);
  set("workload.flows_completed", stats_.flows_completed);
  set("workload.flows_aborted", stats_.flows_aborted);
  set("workload.packets_offered", stats_.packets_offered);
  set("workload.packets_delivered", stats_.packets_delivered);
  set("workload.packets_stale", stats_.packets_stale);
  set("workload.retransmit_packets", stats_.retransmit_packets);
  set("workload.pool_exhausted", stats_.pool_exhausted);
  set("workload.admission_waits", stats_.admission_waits);
  set("workload.pacing_skips", stats_.pacing_skips);
  set("workload.drained_records", stats_.drained_records);
  set("workload.pool_peak_live", pool_.peak_live());
  set("workload.timer_scheduled", wheel_.scheduled());
  set("workload.timer_fired", wheel_.fired());
  set("workload.timer_cancelled", wheel_.cancelled());
  set("workload.timer_cascades", wheel_.cascades());
}

}  // namespace netco::workload
