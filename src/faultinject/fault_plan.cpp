#include "faultinject/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/rng.h"

namespace netco::faultinject {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkDown: return "link.down";
    case FaultKind::kLinkUp: return "link.up";
    case FaultKind::kLinkLoss: return "link.loss";
    case FaultKind::kLinkLatency: return "link.latency";
    case FaultKind::kReplicaCrash: return "replica.crash";
    case FaultKind::kReplicaRestart: return "replica.restart";
    case FaultKind::kBehaviorSwap: return "behavior.swap";
    case FaultKind::kCacheSqueeze: return "cache.squeeze";
    case FaultKind::kCacheRestore: return "cache.restore";
    case FaultKind::kCompareCrash: return "compare.crash";
    case FaultKind::kCompareHang: return "compare.hang";
    case FaultKind::kHubCrash: return "hub.crash";
    case FaultKind::kHeartbeatLoss: return "heartbeat.loss";
    case FaultKind::kRoutePoison: return "routing.poison";
    case FaultKind::kMetricInflate: return "routing.inflate";
    case FaultKind::kBlackholeAd: return "routing.blackhole";
    case FaultKind::kFabricLinkCut: return "link.cut";
    case FaultKind::kFabricLinkRestore: return "link.restore";
    case FaultKind::kSwitchKill: return "switch.kill";
    case FaultKind::kSwitchRestart: return "switch.restart";
  }
  return "unknown";
}

const char* to_string(SwapBehavior behavior) noexcept {
  switch (behavior) {
    case SwapBehavior::kHonest: return "honest";
    case SwapBehavior::kDrop: return "drop";
    case SwapBehavior::kCorrupt: return "corrupt";
    case SwapBehavior::kReroute: return "reroute";
  }
  return "unknown";
}

std::string FaultPlan::to_json() const {
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const int n = std::snprintf(
        buf, sizeof buf,
        "%s\n{\"t\":%lld,\"kind\":\"%s\",\"edge\":%d,\"replica\":%d,"
        "\"loss\":%.4f,\"latency_ns\":%lld,\"capacity\":%zu,"
        "\"behavior\":\"%s\",\"duration_ns\":%lld,"
        "\"node\":%d,\"peer\":%d}",
        i == 0 ? "" : ",", static_cast<long long>(e.at_ns),
        to_string(e.kind), e.edge, e.replica, e.loss_rate,
        static_cast<long long>(e.extra_latency_ns), e.cache_capacity,
        to_string(e.behavior), static_cast<long long>(e.duration_ns), e.node,
        e.peer);
    out.append(buf, static_cast<std::size_t>(n));
  }
  out += "\n]";
  return out;
}

namespace {

/// Inverse of to_string(FaultKind), by exhaustive lookup: a new kind that
/// misses this table fails the round-trip test, not a disaster restore.
std::optional<FaultKind> kind_from_string(const char* name) {
  static constexpr FaultKind kAll[] = {
      FaultKind::kLinkDown,      FaultKind::kLinkUp,
      FaultKind::kLinkLoss,      FaultKind::kLinkLatency,
      FaultKind::kReplicaCrash,  FaultKind::kReplicaRestart,
      FaultKind::kBehaviorSwap,  FaultKind::kCacheSqueeze,
      FaultKind::kCacheRestore,  FaultKind::kCompareCrash,
      FaultKind::kCompareHang,   FaultKind::kHubCrash,
      FaultKind::kHeartbeatLoss, FaultKind::kRoutePoison,
      FaultKind::kMetricInflate, FaultKind::kBlackholeAd,
      FaultKind::kFabricLinkCut, FaultKind::kFabricLinkRestore,
      FaultKind::kSwitchKill,    FaultKind::kSwitchRestart,
  };
  for (const FaultKind kind : kAll) {
    if (std::strcmp(name, to_string(kind)) == 0) return kind;
  }
  return std::nullopt;
}

std::optional<SwapBehavior> behavior_from_string(const char* name) {
  static constexpr SwapBehavior kAll[] = {
      SwapBehavior::kHonest, SwapBehavior::kDrop, SwapBehavior::kCorrupt,
      SwapBehavior::kReroute};
  for (const SwapBehavior behavior : kAll) {
    if (std::strcmp(name, to_string(behavior)) == 0) return behavior;
  }
  return std::nullopt;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::from_json(const std::string& json) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < json.size()) {
    std::size_t nl = json.find('\n', pos);
    if (nl == std::string::npos) nl = json.size();
    std::string line = json.substr(pos, nl - pos);
    pos = nl + 1;
    // Event records are one per line, '{'-first; strip the separator
    // to_json() appends to the following line.
    if (line.empty() || line[0] != '{') continue;
    if (!line.empty() && line.back() == ',') line.pop_back();

    FaultEvent e;
    long long t = 0, latency = 0, duration = 0;
    double loss = 0.0;
    std::size_t capacity = 0;
    char kind[64] = {0};
    char behavior[64] = {0};
    int node = -1, peer = -1;
    int n = std::sscanf(
        line.c_str(),
        "{\"t\":%lld,\"kind\":\"%63[^\"]\",\"edge\":%d,\"replica\":%d,"
        "\"loss\":%lf,\"latency_ns\":%lld,\"capacity\":%zu,"
        "\"behavior\":\"%63[^\"]\",\"duration_ns\":%lld,"
        "\"node\":%d,\"peer\":%d}",
        &t, kind, &e.edge, &e.replica, &loss, &latency, &capacity, behavior,
        &duration, &node, &peer);
    if (n == 8) {
      duration = 0;  // pre-duration_ns rendering
    } else if (n == 9) {
      // pre-node/peer rendering: defaults stand
    } else if (n != 11) {
      return std::nullopt;
    }
    const auto parsed_kind = kind_from_string(kind);
    const auto parsed_behavior = behavior_from_string(behavior);
    // Reject loudly: a silent nullopt on a typo'd kind looks exactly like
    // an empty artifact, and the run proceeds fault-free.
    if (!parsed_kind) {
      std::fprintf(stderr,
                   "FaultPlan::from_json: unknown fault kind \"%s\"\n", kind);
      return std::nullopt;
    }
    if (!parsed_behavior) {
      std::fprintf(stderr,
                   "FaultPlan::from_json: unknown swap behavior \"%s\"\n",
                   behavior);
      return std::nullopt;
    }
    e.at_ns = t;
    e.kind = *parsed_kind;
    e.loss_rate = loss;
    e.extra_latency_ns = latency;
    e.cache_capacity = capacity;
    e.behavior = *parsed_behavior;
    e.duration_ns = duration;
    e.node = node;
    e.peer = peer;
    plan.events.push_back(e);
  }
  plan.normalize();
  return plan;
}

void FaultPlan::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_ns < b.at_ns;
                   });
}

namespace {

/// Draws an apply/revert window inside [lo, hi): at least min_len long,
/// reverting strictly before hi.
std::pair<std::int64_t, std::int64_t> draw_window(Rng& rng, std::int64_t lo,
                                                  std::int64_t hi,
                                                  std::int64_t min_len) {
  const std::int64_t a = rng.uniform_i64(lo, hi - min_len - 1);
  const std::int64_t b = rng.uniform_i64(a + min_len, hi - 1);
  return {a, b};
}

}  // namespace

FaultPlan FaultPlan::random(std::uint64_t seed,
                            const FaultPlanParams& params) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  const std::int64_t lo = params.start.ns();
  const std::int64_t hi = params.horizon.ns();
  if (hi <= lo) return plan;
  const std::int64_t min_len = std::max<std::int64_t>((hi - lo) / 64, 1);

  const auto pick_edge = [&] {
    return static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(params.edges)));
  };
  const auto pick_replica = [&] {
    return static_cast<int>(
        rng.uniform_u64(static_cast<std::uint64_t>(params.k)));
  };

  // Single-link impairments may overlap freely: they only thin one copy
  // stream, never a whole replica.
  for (int i = 0; i < params.link_blips; ++i) {
    const auto [a, b] = draw_window(rng, lo, hi, min_len);
    const int edge = pick_edge();
    const int replica = pick_replica();
    plan.events.push_back({a, FaultKind::kLinkDown, edge, replica, 0, 0, 0,
                           SwapBehavior::kHonest});
    plan.events.push_back({b, FaultKind::kLinkUp, edge, replica, 0, 0, 0,
                           SwapBehavior::kHonest});
  }
  for (int i = 0; i < params.loss_bursts; ++i) {
    const auto [a, b] = draw_window(rng, lo, hi, min_len);
    const int edge = pick_edge();
    const int replica = pick_replica();
    const double rate = rng.uniform(0.01, params.max_loss);
    plan.events.push_back({a, FaultKind::kLinkLoss, edge, replica, rate, 0,
                           0, SwapBehavior::kHonest});
    plan.events.push_back({b, FaultKind::kLinkLoss, edge, replica, 0.0, 0,
                           0, SwapBehavior::kHonest});
  }
  for (int i = 0; i < params.latency_ramps; ++i) {
    const auto [a, b] = draw_window(rng, lo, hi, min_len);
    const int edge = pick_edge();
    const int replica = pick_replica();
    const std::int64_t extra =
        rng.uniform_i64(1000, std::max<std::int64_t>(
                                  params.max_extra_latency.ns(), 2000));
    plan.events.push_back({a, FaultKind::kLinkLatency, edge, replica, 0,
                           extra, 0, SwapBehavior::kHonest});
    plan.events.push_back({b, FaultKind::kLinkLatency, edge, replica, 0, 0,
                           0, SwapBehavior::kHonest});
  }

  // Whole-replica impairments (crash or byzantine swap) get disjoint time
  // slots: with at most one replica impaired, an honest majority survives
  // every instant of the plan for k >= 3.
  const int whole = params.replica_crashes + params.behavior_swaps;
  if (whole > 0) {
    const std::int64_t slot = (hi - lo) / whole;
    static constexpr SwapBehavior kSwaps[] = {
        SwapBehavior::kDrop, SwapBehavior::kCorrupt, SwapBehavior::kReroute};
    for (int i = 0; i < whole; ++i) {
      const std::int64_t slot_lo = lo + slot * i;
      const std::int64_t slot_hi = slot_lo + slot;
      if (slot_hi - slot_lo <= 2 * min_len) continue;
      const auto [a, b] = draw_window(rng, slot_lo, slot_hi, min_len);
      const int replica = pick_replica();
      if (i < params.replica_crashes) {
        plan.events.push_back({a, FaultKind::kReplicaCrash, -1, replica, 0,
                               0, 0, SwapBehavior::kHonest});
        plan.events.push_back({b, FaultKind::kReplicaRestart, -1, replica,
                               0, 0, 0, SwapBehavior::kHonest});
      } else {
        const SwapBehavior swap = kSwaps[rng.uniform_u64(3)];
        plan.events.push_back({a, FaultKind::kBehaviorSwap, -1, replica, 0,
                               0, 0, swap});
        plan.events.push_back({b, FaultKind::kBehaviorSwap, -1, replica, 0,
                               0, 0, SwapBehavior::kHonest});
      }
    }
  }

  for (int i = 0; i < params.cache_squeezes; ++i) {
    const auto [a, b] = draw_window(rng, lo, hi, min_len);
    plan.events.push_back({a, FaultKind::kCacheSqueeze, -1, 0, 0, 0,
                           params.squeeze_capacity, SwapBehavior::kHonest});
    plan.events.push_back({b, FaultKind::kCacheRestore, -1, 0, 0, 0, 0,
                           SwapBehavior::kHonest});
  }

  // Trusted-component faults: one event carrying its recovery delay
  // (duration_ns) instead of an explicit revert twin — the resilience
  // manager owns the recovery schedule.
  for (int i = 0; i < params.compare_crashes; ++i) {
    const auto [a, b] = draw_window(rng, lo, hi, min_len);
    plan.events.push_back({a, FaultKind::kCompareCrash, -1, 0, 0, 0, 0,
                           SwapBehavior::kHonest, b - a});
  }
  for (int i = 0; i < params.compare_hangs; ++i) {
    const auto [a, b] = draw_window(rng, lo, hi, min_len);
    plan.events.push_back({a, FaultKind::kCompareHang, -1, 0, 0, 0, 0,
                           SwapBehavior::kHonest, b - a});
  }
  for (int i = 0; i < params.hub_crashes; ++i) {
    const auto [a, b] = draw_window(rng, lo, hi, min_len);
    plan.events.push_back({a, FaultKind::kHubCrash, pick_edge(), 0, 0, 0, 0,
                           SwapBehavior::kHonest, b - a});
  }
  for (int i = 0; i < params.heartbeat_losses; ++i) {
    const auto [a, b] = draw_window(rng, lo, hi, min_len);
    plan.events.push_back({a, FaultKind::kHeartbeatLoss, -1, 0, 0, 0, 0,
                           SwapBehavior::kHonest, b - a});
  }

  plan.normalize();
  return plan;
}

}  // namespace netco::faultinject
