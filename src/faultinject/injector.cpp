#include "faultinject/injector.h"

#include <utility>

#include "adversary/behaviors.h"
#include "common/assert.h"
#include "common/log.h"
#include "resilience/resilience.h"

namespace netco::faultinject {

FaultInjector::FaultInjector(topo::Figure3Topology& topo, FaultPlan plan)
    : topo_(topo), plan_(std::move(plan)) {}

void FaultInjector::arm() {
  core::CombinerInstance& combiner = topo_.combiner();
  original_capacity_.clear();
  if (combiner.compare != nullptr) {
    for (const auto* edge : combiner.edges) {
      const core::CompareCore* core = combiner.compare->core_for(edge->name());
      original_capacity_.push_back(
          core != nullptr ? core->config().cache_capacity : 0);
    }
  }
  for (const FaultEvent& event : plan_.events) {
    topo_.simulator().schedule_at(sim::TimePoint::from_ns(event.at_ns),
                                  [this, &event] { apply(event); });
  }
}

void FaultInjector::set_replica_links_down(int replica, bool down) {
  core::CombinerInstance& combiner = topo_.combiner();
  for (auto& per_edge : combiner.edge_replica_link) {
    per_edge[static_cast<std::size_t>(replica)]->set_down(down);
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  ++applied_;
  core::CombinerInstance& combiner = topo_.combiner();
  const auto for_each_link = [&](auto&& fn) {
    for (std::size_t i = 0; i < combiner.edge_replica_link.size(); ++i) {
      if (event.edge >= 0 && static_cast<std::size_t>(event.edge) != i) {
        continue;
      }
      fn(*combiner.edge_replica_link[i][static_cast<std::size_t>(
          event.replica)]);
    }
  };

  switch (event.kind) {
    case FaultKind::kLinkDown:
      for_each_link([](link::Link& link) { link.set_down(true); });
      break;
    case FaultKind::kLinkUp:
      for_each_link([](link::Link& link) { link.set_down(false); });
      break;
    case FaultKind::kLinkLoss:
      for_each_link(
          [&](link::Link& link) { link.set_loss(event.loss_rate); });
      break;
    case FaultKind::kLinkLatency:
      for_each_link([&](link::Link& link) {
        link.set_extra_latency(
            sim::Duration::nanoseconds(event.extra_latency_ns));
      });
      break;
    case FaultKind::kReplicaCrash:
      set_replica_links_down(event.replica, true);
      break;
    case FaultKind::kReplicaRestart:
      set_replica_links_down(event.replica, false);
      break;
    case FaultKind::kBehaviorSwap: {
      auto* replica = combiner.replicas[static_cast<std::size_t>(
          event.replica)];
      switch (event.behavior) {
        case SwapBehavior::kHonest:
          replica->set_interceptor(nullptr);
          break;
        case SwapBehavior::kDrop:
          interceptors_.push_back(std::make_unique<adversary::DropBehavior>(
              adversary::match_all()));
          replica->set_interceptor(interceptors_.back().get());
          break;
        case SwapBehavior::kCorrupt:
          interceptors_.push_back(
              std::make_unique<adversary::ModifyBehavior>(
                  adversary::match_all(),
                  adversary::ModifyBehavior::corrupt_payload()));
          replica->set_interceptor(interceptors_.back().get());
          break;
        case SwapBehavior::kReroute:
          // Everything goes back toward edge 0 — the §II-1 wrong-port
          // attack. The combiner's anti-spoof screen and the compare's
          // garbage accounting are what should contain it.
          interceptors_.push_back(
              std::make_unique<adversary::RerouteBehavior>(
                  adversary::match_all(),
                  combiner.replica_edge_port[static_cast<std::size_t>(
                      event.replica)][0]));
          replica->set_interceptor(interceptors_.back().get());
          break;
      }
      break;
    }
    case FaultKind::kCompareCrash:
    case FaultKind::kCompareHang:
    case FaultKind::kHubCrash:
    case FaultKind::kHeartbeatLoss: {
      if (resilience_ == nullptr) {
        NETCO_LOG_INFO("faultinject",
                       "{} skipped: no resilience manager wired up",
                       to_string(event.kind));
        break;
      }
      const auto recover = sim::Duration::nanoseconds(event.duration_ns);
      switch (event.kind) {
        case FaultKind::kCompareCrash:
          resilience_->compare_crash(recover);
          break;
        case FaultKind::kCompareHang:
          resilience_->compare_hang(recover);
          break;
        case FaultKind::kHubCrash:
          for (std::size_t i = 0; i < combiner.edges.size(); ++i) {
            if (event.edge >= 0 && static_cast<std::size_t>(event.edge) != i) {
              continue;
            }
            resilience_->hub_crash(static_cast<int>(i), recover);
          }
          break;
        case FaultKind::kHeartbeatLoss:
          resilience_->heartbeat_loss(recover);
          break;
        default:
          break;
      }
      break;
    }
    // Control-plane attacks: a lying replica rewrites the RIP announcements
    // flowing through it (and, for blackhole, swallows the data it attracts).
    case FaultKind::kRoutePoison:
    case FaultKind::kMetricInflate:
    case FaultKind::kBlackholeAd: {
      auto* replica = combiner.replicas[static_cast<std::size_t>(
          event.replica)];
      if (event.kind == FaultKind::kRoutePoison) {
        interceptors_.push_back(
            std::make_unique<adversary::RoutePoisonBehavior>(
                adversary::match_all()));
      } else if (event.kind == FaultKind::kMetricInflate) {
        interceptors_.push_back(
            std::make_unique<adversary::MetricInflateBehavior>(
                adversary::match_all()));
      } else {
        interceptors_.push_back(
            std::make_unique<adversary::BlackholeAdBehavior>(
                adversary::match_all()));
      }
      replica->set_interceptor(interceptors_.back().get());
      break;
    }
    // Fabric faults address fat-tree switches, not the combiner circuit;
    // they belong to FabricFaultInjector (fabric_injector.h).
    case FaultKind::kFabricLinkCut:
    case FaultKind::kFabricLinkRestore:
    case FaultKind::kSwitchKill:
    case FaultKind::kSwitchRestart:
      NETCO_LOG_INFO("faultinject",
                     "{} skipped: fabric fault on a combiner-circuit injector",
                     to_string(event.kind));
      break;
    case FaultKind::kCacheSqueeze:
    case FaultKind::kCacheRestore: {
      if (combiner.compare == nullptr) break;
      const sim::TimePoint now = topo_.simulator().now();
      for (std::size_t i = 0; i < combiner.edges.size(); ++i) {
        if (event.edge >= 0 && static_cast<std::size_t>(event.edge) != i) {
          continue;
        }
        core::CompareCore* core =
            combiner.compare->core_for(combiner.edges[i]->name());
        if (core == nullptr) continue;
        const std::size_t capacity =
            event.kind == FaultKind::kCacheSqueeze
                ? event.cache_capacity
                : original_capacity_[i];
        core->set_cache_capacity(capacity, now);
      }
      break;
    }
  }
  NETCO_LOG_DEBUG("faultinject", "applied {} replica={} edge={}",
                  to_string(event.kind), event.replica, event.edge);
}

}  // namespace netco::faultinject
