// Online invariant checking for fault-injection soaks.
//
// Two complementary checkers:
//
//  * check_audit() validates a CompareCore::audit() snapshot — the cache's
//    incremental bookkeeping (per-replica singleton quotas, age list,
//    capacity bound) against ground truth recomputed from the cache. This
//    is what catches slow accounting drift (the quota-leak class of bug)
//    that no end-to-end assertion would notice until the quota saturates.
//
//  * QuorumTraceChecker validates the *protocol* from the trace stream:
//    every compare.release must be preceded by ingests from a strict
//    majority of replicas (or at least one in kFirstCopy detection mode).
//    It sits in the trace path as a TraceSink, optionally teeing to a
//    downstream sink, and folds every record into an FNV-1a stream hash —
//    the determinism fingerprint the soak byte-compares across same-seed
//    runs without buffering millions of records.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "netco/compare_core.h"
#include "obs/trace.h"

namespace netco::faultinject {

/// Accumulated verdict of one or more checkers.
struct InvariantReport {
  std::uint64_t checks = 0;      ///< individual assertions evaluated
  std::uint64_t violations = 0;  ///< assertions that failed
  /// Human-readable description of the first violations (capped so a
  /// pathological run cannot eat memory).
  std::vector<std::string> details;

  [[nodiscard]] bool ok() const noexcept { return violations == 0; }

  /// Records one failed assertion.
  void note(std::string detail);

  /// Folds another report into this one.
  void merge(const InvariantReport& other);
};

/// Checks a cache self-audit: quota counters match a live recount, the
/// age list and cache agree, ages are ordered, occupancy respects the
/// capacity bound. `where` labels violations ("netco-e0@t=...").
void check_audit(const core::CompareAudit& audit, const std::string& where,
                 InvariantReport& report);

/// Trace-stream protocol checker (see file comment).
class QuorumTraceChecker final : public obs::TraceSink {
 public:
  struct Config {
    /// Votes required for a legal release (k/2+1 in kMajority mode).
    int quorum = 2;
    /// kFirstCopy detection mode: a release needs only one vote.
    bool first_copy = false;
    /// Replica count. When > 0 the checker tracks health.quarantine /
    /// health.readmit / health.ban records from the stream and validates
    /// against the *adaptive* quorum: votes from quarantined replicas
    /// don't count, the requirement is a strict majority over the live
    /// set, and a live set of ≤ 2 falls back to first-copy mode — the
    /// same rules CompareCore applies. 0 keeps the fixed legacy check.
    int k = 0;
    /// At-most-once egress check (resilience soaks): a second release of
    /// the same packet id for the same edge within duplicate_window_ns is
    /// a violation. Egress is grouped by the component's suffix after '/'
    /// — "compare/netco-e0" and "standby/netco-e0" feed the same wire, so
    /// a primary release followed by a standby re-release of the same
    /// packet is exactly the split-brain duplicate this hunts. Off by
    /// default: a workload may legitimately repeat identical datagrams
    /// (same content hash) on a longer timescale.
    bool check_duplicates = false;
    std::int64_t duplicate_window_ns = 50'000'000;  ///< 50 ms
    /// Audit failover.reroute records with the same duplicate-window
    /// machinery, keyed per emitting switch: the same packet id rerouted
    /// twice at the same switch inside the window means a detour loop
    /// (the VID hop budget should make that impossible — each rewrite
    /// changes the content hash, so only a genuine same-state revisit
    /// trips this). Requires check_duplicates.
    bool audit_reroutes = false;
  };

  explicit QuorumTraceChecker(Config config, obs::TraceSink* tee = nullptr)
      : config_(config), tee_(tee) {}

  void append(const obs::TraceRecord& record) override;

  [[nodiscard]] const InvariantReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] std::uint64_t records_seen() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t releases() const noexcept { return releases_; }

  /// Duplicate egress events found (0 unless check_duplicates).
  [[nodiscard]] std::uint64_t duplicates() const noexcept {
    return duplicates_;
  }

  /// failover.reroute records seen (static backup layer detours).
  [[nodiscard]] std::uint64_t reroutes() const noexcept { return reroutes_; }

  /// FNV-1a over the canonical JSON of every record seen so far — equal
  /// hashes across two runs mean byte-identical trace streams.
  [[nodiscard]] std::uint64_t stream_hash() const noexcept { return hash_; }

  /// Order-independent digest of every egress event: a wrapping sum of
  /// hash_mix(packet_id, fnv1a(egress group)) over both release kinds
  /// (compare.release and compare.fastpath). Two runs that delivered the
  /// same multiset of packets onto the same wires agree on this hash even
  /// when the *timing* (and hence the stream hash) differs — the
  /// differential-testing anchor for sampled vs full verification.
  [[nodiscard]] std::uint64_t egress_set_hash() const noexcept {
    return egress_hash_;
  }

 private:
  Config config_;
  obs::TraceSink* tee_;
  InvariantReport report_;
  std::uint64_t records_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t hash_ = kFnvOffset;
  std::uint64_t egress_hash_ = 0;
  /// Bit per replica currently quarantined or banned (config_.k mode).
  std::uint64_t quarantined_mask_ = 0;
  /// component → packet id → replica vote bitmask. Entries die with their
  /// cache entry (release verdict, eviction, or expiry), so the map is
  /// bounded by the compare caches' live size.
  std::unordered_map<std::string,
                     std::unordered_map<std::uint64_t, std::uint64_t>>
      votes_;
  /// Egress groups (component suffix after '/') interned to dense ids with
  /// their name-FNV precomputed: release records are the hot path of a
  /// sampled soak, and re-hashing / re-substringing the component per
  /// record dominated the checker's cost before interning.
  struct EgressGroup {
    std::size_t id = 0;
    std::uint64_t name_fnv = 0;
  };
  [[nodiscard]] const EgressGroup& egress_group(const std::string& component);
  std::unordered_map<std::string, EgressGroup> group_by_component_;
  std::unordered_map<std::string, EgressGroup> group_by_suffix_;
  /// Duplicate-egress tracking (check_duplicates mode): per egress group,
  /// packet id → last release time, plus a pruning log so the maps stay
  /// bounded by the window's release volume.
  std::uint64_t duplicates_ = 0;
  std::uint64_t reroutes_ = 0;
  std::vector<std::unordered_map<std::uint64_t, std::int64_t>> last_release_;
  std::deque<std::tuple<std::int64_t, std::size_t, std::uint64_t>>
      release_log_;
};

}  // namespace netco::faultinject
