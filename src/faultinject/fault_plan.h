// FaultPlan: a seeded, serializable schedule of fault events.
//
// Reliability claims about the combiner ("zero invariant violations under
// churn") are only as strong as the churn they were tested against, and
// only debuggable if the churn is reproducible. A FaultPlan pins both: it
// is generated from a seed up front, can be serialized for the bench
// artifact, and is executed through the simulator's event queue — so a
// soak run under faults is exactly as bit-reproducible as a clean run.
//
// The event vocabulary covers the failure modes the paper's threat model
// and evaluation exercise: link cuts and recoveries (§V availability),
// lossy / slow links, whole-replica crashes and restarts, byzantine
// behaviour swaps (§II attack classes via src/adversary), and compare
// cache-pressure squeezes (§V-B memory churn).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace netco::faultinject {

/// What a single fault event does.
enum class FaultKind : std::uint8_t {
  kLinkDown,        ///< cut one edge↔replica link
  kLinkUp,          ///< restore it
  kLinkLoss,        ///< set a random-loss rate on a link (0 restores)
  kLinkLatency,     ///< add one-way latency to a link (0 restores)
  kReplicaCrash,    ///< cut every link of one replica
  kReplicaRestart,  ///< restore every link of one replica
  kBehaviorSwap,    ///< install a byzantine datapath behaviour on a replica
  kCacheSqueeze,    ///< shrink the compare cache capacity (memory pressure)
  kCacheRestore,    ///< restore the original compare cache capacity
  // Trusted-component faults (delegated to resilience::ResilienceManager;
  // skipped with a log line when no manager is wired up).
  kCompareCrash,    ///< kill the compare process — in-memory state lost
  kCompareHang,     ///< wedge the compare process — memory intact
  kHubCrash,        ///< remove an edge's fan-out rule (-1 = every edge)
  kHeartbeatLoss,   ///< partition the heartbeat path (primary stays live)
  // Control-plane attacks on RIP announcements (src/routing, DESIGN §15).
  kRoutePoison,     ///< replica advertises false low metrics (all → 0)
  kMetricInflate,   ///< replica inflates every advertised metric (+8, cap 16)
  kBlackholeAd,     ///< poisoned announcements + attracted data dropped
  // Fabric faults on the fat-tree itself (DESIGN §16). These address
  // switches by topology id (FaultEvent::node/peer), not combiner edge/
  // replica indexes — the existing kLinkDown/kLinkUp names stay reserved
  // for edge↔replica links.
  kFabricLinkCut,      ///< cut the fabric link node↔peer ("link.cut")
  kFabricLinkRestore,  ///< restore it ("link.restore")
  kSwitchKill,         ///< kill a fabric switch: all its links down
  kSwitchRestart,      ///< restore every link of a killed fabric switch
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// Datapath behaviour installed by kBehaviorSwap (see src/adversary).
enum class SwapBehavior : std::uint8_t {
  kHonest,   ///< remove any installed behaviour
  kDrop,     ///< silently delete all traffic (§II-3/4)
  kCorrupt,  ///< flip payload bytes in flight (§II-3)
  kReroute,  ///< forward everything to the wrong edge (§II-1)
};

[[nodiscard]] const char* to_string(SwapBehavior behavior) noexcept;

/// One scheduled fault.
struct FaultEvent {
  std::int64_t at_ns = 0;             ///< simulated time to fire
  FaultKind kind = FaultKind::kLinkDown;
  int edge = -1;                      ///< edge index, -1 = every edge
  int replica = 0;                    ///< replica index (link/replica faults)
  double loss_rate = 0.0;             ///< kLinkLoss
  std::int64_t extra_latency_ns = 0;  ///< kLinkLatency
  std::size_t cache_capacity = 0;     ///< kCacheSqueeze
  SwapBehavior behavior = SwapBehavior::kHonest;  ///< kBehaviorSwap
  /// Recovery delay for the trusted-component kinds (crash → restart,
  /// hang → resume, hub crash → reinstall, heartbeat loss → restore);
  /// 0 = no scheduled recovery. Appended last so existing positional
  /// initializers stay valid.
  std::int64_t duration_ns = 0;
  /// Fabric-fault addressing (kFabricLink*/kSwitch*): topology switch ids
  /// per topo::FatTreeTopology::switch_by_sid. `node` is the switch the
  /// fault targets; `peer` the other endpoint for link faults (-1 for
  /// switch faults). Appended after duration_ns for the same reason.
  int node = -1;
  int peer = -1;
};

/// Knobs for FaultPlan::random().
struct FaultPlanParams {
  int k = 3;      ///< replicas in the circuit
  int edges = 2;  ///< trusted edges (Fig. 3 has two)
  /// Faults are drawn inside [start, horizon); recoveries are scheduled
  /// before the horizon so the run ends with a healthy plant.
  sim::Duration start = sim::Duration::milliseconds(100);
  sim::Duration horizon = sim::Duration::seconds(2);
  int link_blips = 4;       ///< down/up pairs on single links
  int loss_bursts = 3;      ///< loss-rate set/clear pairs
  int latency_ramps = 2;    ///< extra-latency set/clear pairs
  int replica_crashes = 1;  ///< crash/restart pairs
  int behavior_swaps = 1;   ///< byzantine/honest pairs
  int cache_squeezes = 1;   ///< squeeze/restore pairs
  /// Trusted-component faults (default 0: plans without a resilience
  /// manager are byte-identical to plans generated before these existed).
  int compare_crashes = 0;   ///< compare kill + scheduled warm restart
  int compare_hangs = 0;     ///< compare wedge + scheduled resume
  int hub_crashes = 0;       ///< fan-out rule removal + reinstall
  int heartbeat_losses = 0;  ///< monitoring-path partitions
  double max_loss = 0.3;
  sim::Duration max_extra_latency = sim::Duration::microseconds(200);
  std::size_t squeeze_capacity = 64;
};

/// The full schedule. Events are kept sorted by time (ties keep insertion
/// order, which random() makes deterministic).
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Canonical one-line-per-event JSON array (stable field order), for the
  /// bench artifact and for byte-comparing plans across runs.
  [[nodiscard]] std::string to_json() const;

  /// Parses a to_json() rendering back into a plan (the seed is not part
  /// of the JSON and comes back 0). Accepts records without the trailing
  /// node/peer fields, and without duration_ns before that, so plans
  /// serialized by older builds still load.
  /// std::nullopt on any malformed event line.
  static std::optional<FaultPlan> from_json(const std::string& json);

  /// Sorts events by time, keeping the relative order of simultaneous
  /// events (random() already emits sorted plans; hand-built ones call
  /// this before arming).
  void normalize();

  /// Draws a plan from a seed. Crash and behaviour-swap windows are
  /// allocated in disjoint time slots so at most one replica is impaired
  /// at any instant — a k>=3 majority quorum stays reachable throughout,
  /// which is what lets the soak demand zero invariant violations.
  static FaultPlan random(std::uint64_t seed, const FaultPlanParams& params);
};

}  // namespace netco::faultinject
