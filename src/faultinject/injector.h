// FaultInjector: executes a FaultPlan against a Figure3Topology.
//
// arm() schedules every plan event on the topology's simulator, so faults
// interleave with traffic in deterministic event order. All state needed
// to revert (original cache capacities, owned byzantine interceptors)
// lives here; the injector must outlive the simulation run.
#pragma once

#include <memory>
#include <vector>

#include "device/datapath.h"
#include "faultinject/fault_plan.h"
#include "topo/figure3.h"

namespace netco::resilience {
class ResilienceManager;
}  // namespace netco::resilience

namespace netco::faultinject {

class FaultInjector {
 public:
  /// Binds a plan to a built combiner topology. The topology must use the
  /// combiner (cache faults need the compare service).
  FaultInjector(topo::Figure3Topology& topo, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event on the simulator. Call once, before run.
  void arm();

  /// Wires up the resilience manager the trusted-component fault kinds
  /// (compare crash/hang, hub crash, heartbeat loss) delegate to. Without
  /// one, those events are counted but skipped with a log line. Must be
  /// set before the simulation reaches the first such event; the manager
  /// must outlive the run.
  void set_resilience(resilience::ResilienceManager* manager) noexcept {
    resilience_ = manager;
  }

  /// Events applied so far.
  [[nodiscard]] std::size_t applied() const noexcept { return applied_; }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void apply(const FaultEvent& event);
  void set_replica_links_down(int replica, bool down);

  topo::Figure3Topology& topo_;
  FaultPlan plan_;
  resilience::ResilienceManager* resilience_ = nullptr;
  std::size_t applied_ = 0;
  /// Original compare cache capacity per edge, captured at arm() so
  /// kCacheRestore reverts squeezes exactly.
  std::vector<std::size_t> original_capacity_;
  /// Byzantine behaviours installed by kBehaviorSwap. Owned here because
  /// OpenFlowSwitch::set_interceptor borrows.
  std::vector<std::unique_ptr<device::DatapathInterceptor>> interceptors_;
};

}  // namespace netco::faultinject
