// FabricFaultInjector: executes fabric fault plans (link.cut/link.restore,
// switch.kill/switch.restart) against a topo::FatTreeTopology, modelling
// the failure *and* its local detection.
//
// A cut takes the link down immediately (packets in flight drop); each
// plain endpoint switch then marks its port dead after the keepalive
// delay — the same `switch_keepalive` the fail_static degraded policy
// uses — which is what arms the compiler's guarded backup rules. There is
// no controller in this loop anywhere: detection and reroute are both
// local to the switch.
//
// make_kill_plan() builds the correlated multi-failure plans the soak
// sweeps: N link cuts + M switch kills all firing at one instant, drawn
// seeded from the fabric (optionally restricted to elements on the
// primary forwarding paths, so a single failure provably hits traffic).
#pragma once

#include <cstdint>
#include <vector>

#include "faultinject/fault_plan.h"
#include "resilience/resilience.h"
#include "sim/time.h"
#include "topo/fattree.h"

namespace netco::faultinject {

struct FabricInjectorOptions {
  /// Port-death detection latency after a link goes down (and symmetric
  /// recovery latency after it comes back).
  sim::Duration keepalive = resilience::ResilienceConfig{}.switch_keepalive;
};

/// Arms and applies fabric fault events from a plan. Non-fabric kinds in
/// the plan are ignored (they belong to the combiner-circuit injector).
class FabricFaultInjector {
 public:
  FabricFaultInjector(topo::FatTreeTopology& topo, FaultPlan plan,
                      FabricInjectorOptions options = {});

  /// Schedules every fabric event through the topology's simulator.
  void arm();

  /// Fabric events applied so far.
  [[nodiscard]] int applied() const noexcept { return applied_; }

 private:
  void apply(const FaultEvent& event);
  /// Cuts/restores one recorded wire and schedules the endpoint port
  /// liveness flips after the keepalive.
  void set_wire(const topo::FabricLink& wire, bool down);

  topo::FatTreeTopology& topo_;
  FaultPlan plan_;
  FabricInjectorOptions options_;
  int applied_ = 0;
};

/// Which fabric elements a kill plan may target.
enum class KillTarget : std::uint8_t {
  kAny,          ///< any switch↔switch wire / any agg or core switch
  kPrimaryPath,  ///< only elements the deterministic primary routing uses
                 ///< (agg index 0, core slot 0) — guarantees traffic impact
};

struct KillPlanOptions {
  std::uint64_t seed = 1;
  int link_cuts = 0;     ///< concurrent fabric link cuts
  int switch_kills = 0;  ///< concurrent switch kills (aggs/cores only)
  sim::Duration at = sim::Duration::milliseconds(200);  ///< the kill instant
  KillTarget target = KillTarget::kAny;
};

/// Draws a correlated multi-failure plan: all cuts and kills fire at
/// `at`, with no recovery events — the soak measures whether the static
/// rules alone absorb the permanent damage. Distinct elements are drawn
/// without replacement; the wrapped combiner position and host wires are
/// never targeted (the combiner has its own fault vocabulary), and edge
/// switches are never killed (killing one isolates its hosts by
/// construction — no routing can absorb that).
FaultPlan make_kill_plan(const topo::FatTreeTopology& topo,
                         const KillPlanOptions& options);

}  // namespace netco::faultinject
