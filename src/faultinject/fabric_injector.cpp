#include "faultinject/fabric_injector.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "common/rng.h"
#include "obs/observability.h"

namespace netco::faultinject {

FabricFaultInjector::FabricFaultInjector(topo::FatTreeTopology& topo,
                                         FaultPlan plan,
                                         FabricInjectorOptions options)
    : topo_(topo), plan_(std::move(plan)), options_(options) {}

void FabricFaultInjector::arm() {
  for (const FaultEvent& event : plan_.events) {
    switch (event.kind) {
      case FaultKind::kFabricLinkCut:
      case FaultKind::kFabricLinkRestore:
      case FaultKind::kSwitchKill:
      case FaultKind::kSwitchRestart:
        topo_.simulator().schedule_at(sim::TimePoint::from_ns(event.at_ns),
                                      [this, &event] { apply(event); });
        break;
      default:
        break;  // combiner-circuit faults: not ours
    }
  }
}

void FabricFaultInjector::set_wire(const topo::FabricLink& wire, bool down) {
  wire.link->set_down(down);
  // Each plain endpoint notices after the keepalive delay and flips the
  // liveness guard on its port — the local, controller-free detection
  // that arms (or disarms) the compiled backup rules.
  const auto flip = [this, down](int sid, device::PortIndex port) {
    if (sid < 0) return;  // host endpoint: no flow table to reroute
    openflow::OpenFlowSwitch* sw = topo_.switch_by_sid(sid);
    if (sw == nullptr) return;  // wrapped position: combiner-managed
    topo_.simulator().schedule_after(options_.keepalive, [sw, port, down] {
      sw->set_port_live(port, !down);
    });
  };
  flip(wire.a_sid, wire.a_port);
  flip(wire.b_sid, wire.b_port);
}

void FabricFaultInjector::apply(const FaultEvent& event) {
  ++applied_;
  obs::Tracer& tracer = obs::global().tracer;
  const auto now_ns = topo_.simulator().now().ns();
  switch (event.kind) {
    case FaultKind::kFabricLinkCut:
    case FaultKind::kFabricLinkRestore: {
      const topo::FabricLink* wire =
          topo_.find_fabric_link(event.node, event.peer);
      if (wire == nullptr) {
        NETCO_LOG_WARN("faultinject", "{}: no fabric wire {}<->{}",
                       to_string(event.kind), event.node, event.peer);
        return;
      }
      const bool down = event.kind == FaultKind::kFabricLinkCut;
      set_wire(*wire, down);
      if (tracer.enabled()) {
        tracer.emit(now_ns,
                    down ? obs::TraceEvent::kFailoverLinkDown
                         : obs::TraceEvent::kFailoverLinkUp,
                    static_cast<std::uint64_t>(event.node), "fabric",
                    event.peer, 0);
      }
      break;
    }
    case FaultKind::kSwitchKill:
    case FaultKind::kSwitchRestart: {
      const bool down = event.kind == FaultKind::kSwitchKill;
      int wires = 0;
      for (const topo::FabricLink& wire : topo_.fabric_links()) {
        if (wire.a_sid != event.node && wire.b_sid != event.node) continue;
        set_wire(wire, down);
        ++wires;
      }
      if (wires == 0) {
        NETCO_LOG_WARN("faultinject", "{}: switch sid {} has no wires",
                       to_string(event.kind), event.node);
        return;
      }
      if (tracer.enabled()) {
        tracer.emit(now_ns,
                    down ? obs::TraceEvent::kFailoverSwitchKill
                         : obs::TraceEvent::kFailoverSwitchRestart,
                    static_cast<std::uint64_t>(event.node), "fabric",
                    event.node, static_cast<std::uint32_t>(wires));
      }
      break;
    }
    default:
      return;
  }
  NETCO_LOG_DEBUG("faultinject", "applied {} node={} peer={}",
                  to_string(event.kind), event.node, event.peer);
}

FaultPlan make_kill_plan(const topo::FatTreeTopology& topo,
                         const KillPlanOptions& options) {
  const int k = topo.options().k;
  const int h = k / 2;
  const auto& combine = topo.options().combine_agg;
  const int wrapped_sid =
      combine ? topo.agg_sid(combine->pod, combine->index) : -1;

  // Candidate wires: switch↔switch only; kPrimaryPath keeps the wires the
  // deterministic routing actually uses (edge↔agg0 up-links, agg0↔core
  // slot 0 up-links — which double as every primary down-path).
  std::vector<std::pair<int, int>> wires;
  for (const topo::FabricLink& wire : topo.fabric_links()) {
    if (wire.b_sid < 0) continue;  // host wire
    if (options.target == KillTarget::kPrimaryPath) {
      bool primary = false;
      for (int p = 0; p < k && !primary; ++p) {
        const int agg0 = topo.agg_sid(p, 0);
        if (wire.a_sid != agg0 && wire.b_sid != agg0) continue;
        const int other = wire.a_sid == agg0 ? wire.b_sid : wire.a_sid;
        primary = other < k * h /*any edge of the pod*/ ||
                  other == topo.core_sid(0);
      }
      if (!primary) continue;
    }
    wires.emplace_back(wire.a_sid, wire.b_sid);
  }

  // Candidate switch kills: aggregations and cores, never edges (an edge
  // kill isolates its hosts — no routing absorbs that) and never the
  // wrapped position (the combiner has its own fault vocabulary).
  std::vector<int> switches;
  for (int p = 0; p < k; ++p) {
    for (int a = 0; a < h; ++a) {
      const int sid = topo.agg_sid(p, a);
      if (sid == wrapped_sid) continue;
      if (options.target == KillTarget::kPrimaryPath && a != 0) continue;
      switches.push_back(sid);
    }
  }
  for (int cix = 0; cix < h * h; ++cix) {
    if (options.target == KillTarget::kPrimaryPath && cix != 0) continue;
    switches.push_back(topo.core_sid(cix));
  }

  FaultPlan plan;
  plan.seed = options.seed;
  Rng rng(options.seed);
  const std::int64_t at = options.at.ns();
  const auto draw = [&rng](auto& pool) {
    const std::size_t i = rng.uniform_u64(pool.size());
    const auto picked = pool[i];
    pool[i] = pool.back();
    pool.pop_back();
    return picked;
  };
  for (int i = 0; i < options.link_cuts && !wires.empty(); ++i) {
    const auto [a, b] = draw(wires);
    FaultEvent e;
    e.at_ns = at;
    e.kind = FaultKind::kFabricLinkCut;
    e.node = a;
    e.peer = b;
    plan.events.push_back(e);
  }
  for (int i = 0; i < options.switch_kills && !switches.empty(); ++i) {
    const int sid = draw(switches);
    FaultEvent e;
    e.at_ns = at;
    e.kind = FaultKind::kSwitchKill;
    e.node = sid;
    plan.events.push_back(e);
  }
  plan.normalize();
  return plan;
}

}  // namespace netco::faultinject
