#include "faultinject/invariants.h"

#include <bit>
#include <cstdio>
#include <span>
#include <utility>

namespace netco::faultinject {

namespace {
constexpr std::size_t kMaxDetails = 32;
}  // namespace

void InvariantReport::note(std::string detail) {
  ++violations;
  if (details.size() < kMaxDetails) details.push_back(std::move(detail));
}

void InvariantReport::merge(const InvariantReport& other) {
  checks += other.checks;
  violations += other.violations;
  for (const auto& detail : other.details) {
    if (details.size() == kMaxDetails) break;
    details.push_back(detail);
  }
}

void check_audit(const core::CompareAudit& audit, const std::string& where,
                 InvariantReport& report) {
  char buf[160];

  ++report.checks;
  if (!audit.age_cache_consistent) {
    report.note(where + ": age list and cache disagree");
  }
  ++report.checks;
  if (!audit.age_ordered) {
    report.note(where + ": age list not oldest-first");
  }
  ++report.checks;
  if (audit.cache_entries > audit.cache_capacity) {
    std::snprintf(buf, sizeof buf, "%s: cache %zu exceeds capacity %zu",
                  where.c_str(), audit.cache_entries, audit.cache_capacity);
    report.note(buf);
  }
  for (std::size_t r = 0; r < audit.quota_counts.size(); ++r) {
    ++report.checks;
    if (audit.quota_counts[r] != audit.live_singletons[r]) {
      std::snprintf(
          buf, sizeof buf,
          "%s: replica %zu quota counter %llu != live singletons %llu",
          where.c_str(), r,
          static_cast<unsigned long long>(audit.quota_counts[r]),
          static_cast<unsigned long long>(audit.live_singletons[r]));
      report.note(buf);
    }
  }

  if (!audit.vote_active) return;
  const core::VoteCacheAudit& v = audit.vote;
  ++report.checks;
  if (!v.consistent) {
    std::snprintf(buf, sizeof buf,
                  "%s: vote cache inconsistent (entries=%zu age=%zu "
                  "chain=%zu free=%zu arena=%zu)",
                  where.c_str(), v.entries, v.age_entries, v.chain_entries,
                  v.free_slots, v.arena);
    report.note(buf);
  }
  ++report.checks;
  if (!v.age_ordered) {
    report.note(where + ": vote cache age list not oldest-first");
  }
  ++report.checks;
  if (v.entries > v.capacity) {
    std::snprintf(buf, sizeof buf,
                  "%s: vote cache %zu exceeds capacity %zu", where.c_str(),
                  v.entries, v.capacity);
    report.note(buf);
  }
  for (std::size_t r = 0; r < v.quota_counts.size(); ++r) {
    ++report.checks;
    if (v.quota_counts[r] != v.live_quota_held[r]) {
      std::snprintf(
          buf, sizeof buf,
          "%s: vote cache replica %zu quota counter %llu != held slots %llu",
          where.c_str(), r,
          static_cast<unsigned long long>(v.quota_counts[r]),
          static_cast<unsigned long long>(v.live_quota_held[r]));
      report.note(buf);
    }
  }
}

const QuorumTraceChecker::EgressGroup& QuorumTraceChecker::egress_group(
    const std::string& component) {
  const auto hit = group_by_component_.find(component);
  if (hit != group_by_component_.end()) return hit->second;
  // Cold path: a component seen for the first time. Group by the wire:
  // "compare/netco-e0" and "standby/netco-e0" both emit onto edge
  // netco-e0, so they must intern to the same group.
  const std::size_t slash = component.find('/');
  const std::string suffix =
      slash == std::string::npos ? component : component.substr(slash + 1);
  auto [git, inserted] = group_by_suffix_.try_emplace(suffix);
  if (inserted) {
    git->second.id = group_by_suffix_.size() - 1;
    git->second.name_fnv =
        fnv1a(std::as_bytes(std::span(suffix.data(), suffix.size())));
    last_release_.resize(group_by_suffix_.size());
  }
  return group_by_component_.emplace(component, git->second).first->second;
}

void QuorumTraceChecker::append(const obs::TraceRecord& record) {
  ++records_;
  const std::string line = obs::to_json(record) + '\n';
  hash_ = fnv1a(std::as_bytes(std::span(line.data(), line.size())), hash_);
  if (tee_ != nullptr) tee_->append(record);

  switch (record.event) {
    case obs::TraceEvent::kCompareIngest:
      if (record.replica >= 0 && record.replica < 64) {
        votes_[record.component][record.packet_id] |=
            1ULL << static_cast<unsigned>(record.replica);
      }
      break;
    case obs::TraceEvent::kCompareRelease:
    case obs::TraceEvent::kCompareFastpath: {
      const bool fastpath = record.event == obs::TraceEvent::kCompareFastpath;
      ++releases_;
      ++report_.checks;
      const auto comp = votes_.find(record.component);
      const std::uint64_t mask =
          comp != votes_.end()
              ? [&] {
                  const auto it = comp->second.find(record.packet_id);
                  return it != comp->second.end() ? it->second : 0ULL;
                }()
              : 0ULL;
      std::uint64_t counted = mask;
      // A fast-path release record names its deciding replica — the vote
      // that tripped the release rule rides the release record instead of
      // a separate ingest record (the sampled mode's trace thinning).
      if (fastpath && record.replica >= 0 && record.replica < 64) {
        counted |= 1ULL << static_cast<unsigned>(record.replica);
      }
      int needed = config_.first_copy ? 1 : config_.quorum;
      if (config_.k > 0) {
        // Adaptive mode: mirror CompareCore's live-set rules against the
        // health records already folded into quarantined_mask_.
        counted &= ~quarantined_mask_;
        const int live = config_.k - std::popcount(quarantined_mask_);
        needed = (config_.first_copy || live <= 2) ? 1 : live / 2 + 1;
      }
      // A fast-path release is first-copy-shaped by design: legal with one
      // vote, as long as that vote came from a non-quarantined replica —
      // filtered here unconditionally, because the k > 0 filter above is
      // off in non-adaptive checker configs and a quarantined deciding
      // replica must never pass on the OR'd-in release vote alone.
      if (fastpath) {
        counted &= ~quarantined_mask_;
        needed = 1;
      }
      const int vote_count = std::popcount(counted);
      if (vote_count < needed) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "%s: released %016llx with %d votes (need %d) t=%lld",
                      record.component.c_str(),
                      static_cast<unsigned long long>(record.packet_id),
                      vote_count, needed,
                      static_cast<long long>(record.at_ns));
        report_.note(buf);
      }
      const EgressGroup& group = egress_group(record.component);
      egress_hash_ += hash_mix(record.packet_id, group.name_fnv);
      if (config_.check_duplicates) {
        // Prune releases that fell out of the window; forget a mapped
        // time only if no newer release overwrote it.
        while (!release_log_.empty() &&
               record.at_ns - std::get<0>(release_log_.front()) >
                   config_.duplicate_window_ns) {
          const auto& [ns, gid, id] = release_log_.front();
          auto& stale = last_release_[gid];
          const auto iit = stale.find(id);
          if (iit != stale.end() && iit->second == ns) stale.erase(iit);
          release_log_.pop_front();
        }
        ++report_.checks;
        auto& per_group = last_release_[group.id];
        const auto it = per_group.find(record.packet_id);
        if (it != per_group.end() &&
            record.at_ns - it->second <= config_.duplicate_window_ns) {
          ++duplicates_;
          char buf[160];
          std::snprintf(
              buf, sizeof buf,
              "%s: duplicate egress of %016llx at t=%lld (previous t=%lld)",
              record.component.c_str(),
              static_cast<unsigned long long>(record.packet_id),
              static_cast<long long>(record.at_ns),
              static_cast<long long>(it->second));
          report_.note(buf);
        }
        per_group[record.packet_id] = record.at_ns;
        release_log_.emplace_back(record.at_ns, group.id, record.packet_id);
      }
      break;
    }
    case obs::TraceEvent::kFailoverReroute: {
      ++reroutes_;
      if (!config_.check_duplicates || !config_.audit_reroutes) break;
      // Same duplicate-window audit as egress, keyed by the emitting
      // switch: every detour hop rewrites the VID (new content hash), so
      // a repeat of the same id at the same switch is a genuine loop.
      const EgressGroup& group = egress_group(record.component);
      while (!release_log_.empty() &&
             record.at_ns - std::get<0>(release_log_.front()) >
                 config_.duplicate_window_ns) {
        const auto& [ns, gid, id] = release_log_.front();
        auto& stale = last_release_[gid];
        const auto iit = stale.find(id);
        if (iit != stale.end() && iit->second == ns) stale.erase(iit);
        release_log_.pop_front();
      }
      ++report_.checks;
      auto& per_group = last_release_[group.id];
      const auto it = per_group.find(record.packet_id);
      if (it != per_group.end() &&
          record.at_ns - it->second <= config_.duplicate_window_ns) {
        ++duplicates_;
        char buf[160];
        std::snprintf(
            buf, sizeof buf,
            "%s: reroute loop on %016llx at t=%lld (previous t=%lld)",
            record.component.c_str(),
            static_cast<unsigned long long>(record.packet_id),
            static_cast<long long>(record.at_ns),
            static_cast<long long>(it->second));
        report_.note(buf);
      }
      per_group[record.packet_id] = record.at_ns;
      release_log_.emplace_back(record.at_ns, group.id, record.packet_id);
      break;
    }
    case obs::TraceEvent::kCompareEvictTimeout:
    case obs::TraceEvent::kCompareEvictCapacity:
    case obs::TraceEvent::kCompareEvictQuota:
    case obs::TraceEvent::kCompareExpire: {
      // The cache entry is gone; forget its votes so the map stays
      // bounded by the live cache size.
      const auto comp = votes_.find(record.component);
      if (comp != votes_.end()) comp->second.erase(record.packet_id);
      break;
    }
    case obs::TraceEvent::kHealthQuarantine:
    case obs::TraceEvent::kHealthBan:
      if (record.replica >= 0 && record.replica < 64) {
        quarantined_mask_ |= 1ULL << static_cast<unsigned>(record.replica);
      }
      break;
    case obs::TraceEvent::kHealthReadmit:
      if (record.replica >= 0 && record.replica < 64) {
        quarantined_mask_ &= ~(1ULL << static_cast<unsigned>(record.replica));
      }
      break;
    default:
      break;
  }
}

}  // namespace netco::faultinject
