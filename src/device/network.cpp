#include "device/network.h"

namespace netco::device {

Connection Network::connect(Node& a, Node& b, link::LinkConfig config) {
  auto link = std::make_unique<link::Link>(simulator_, config);
  link->set_labels(a.name(), b.name());
  Connection conn;
  conn.link = link.get();
  conn.a_port = a.attach_channel(&link->forward());
  conn.b_port = b.attach_channel(&link->reverse());
  link->forward().bind_sink([&b, port = conn.b_port](net::Packet packet) {
    b.handle_packet(port, std::move(packet));
  });
  link->reverse().bind_sink([&a, port = conn.a_port](net::Packet packet) {
    a.handle_packet(port, std::move(packet));
  });
  links_.push_back(std::move(link));
  return conn;
}

Node* Network::find(std::string_view name) const noexcept {
  for (const auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

}  // namespace netco::device
