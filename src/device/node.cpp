#include "device/node.h"

#include "common/assert.h"

namespace netco::device {

PortIndex Node::attach_channel(link::Channel* out) {
  NETCO_ASSERT(out != nullptr);
  out_.push_back(out);
  return static_cast<PortIndex>(out_.size() - 1);
}

void Node::send(PortIndex port, net::Packet packet) {
  NETCO_ASSERT_MSG(port < out_.size(), "send() on unknown port");
  out_[port]->send(std::move(packet));
}

void Node::flood(PortIndex except, const net::Packet& packet) {
  for (PortIndex p = 0; p < out_.size(); ++p) {
    if (p == except) continue;
    out_[p]->send(packet);
  }
}

const link::Channel& Node::channel(PortIndex port) const {
  NETCO_ASSERT(port < out_.size());
  return *out_[port];
}

}  // namespace netco::device
