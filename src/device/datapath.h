// Datapath: the capability surface an adversarial (or diagnostic)
// interceptor gets over the device it compromised.
//
// Both OpenFlow switches and legacy routers implement it — the §II threat
// model does not care what kind of box the backdoor sits in.
#pragma once

#include "device/node.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace netco::device {

/// What a compromised datapath lets its payload do.
class Datapath {
 public:
  virtual ~Datapath() = default;

  /// Emits `packet` directly on `port`, bypassing the forwarding logic.
  virtual void raw_output(PortIndex port, net::Packet packet) = 0;

  /// The event loop (for behaviours that keep their own clocks/timers).
  virtual sim::Simulator& datapath_simulator() = 0;
};

/// Hook invoked for every packet entering a datapath's pipeline.
class DatapathInterceptor {
 public:
  virtual ~DatapathInterceptor() = default;

  /// Inspect/mutate `packet` as it enters the pipeline. Return true to
  /// swallow the packet (normal forwarding is skipped); the interceptor
  /// may emit packets itself via Datapath::raw_output(). Return false to
  /// let the (possibly modified) packet continue normally.
  virtual bool intercept(Datapath& datapath, PortIndex in_port,
                         net::Packet& packet) = 0;
};

}  // namespace netco::device
