// Network: owner of all nodes and links of one simulated topology.
#pragma once

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "device/node.h"
#include "link/link.h"
#include "sim/simulator.h"

namespace netco::device {

/// The two port indices created by a connect() call.
struct Connection {
  PortIndex a_port = kNoPort;  ///< port allocated on the first node
  PortIndex b_port = kNoPort;  ///< port allocated on the second node
  link::Link* link = nullptr;  ///< the underlying link (for stats)
};

/// Container that owns nodes and links and performs the wiring.
///
/// Topology builders create a Network, populate it, and hand it (by
/// reference) to applications and measurement code. Node lifetimes equal the
/// Network's lifetime, so raw references between components are safe.
class Network {
 public:
  explicit Network(sim::Simulator& simulator) : simulator_(simulator) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Constructs a node of type `T` in place; the Network owns it.
  /// `T`'s constructor must take (sim::Simulator&, args...).
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(simulator_, std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Creates a full-duplex link between `a` and `b`, allocating one new
  /// port on each, and binds the receive sinks.
  Connection connect(Node& a, Node& b, link::LinkConfig config = {});

  /// Finds a node by name; nullptr if absent.
  [[nodiscard]] Node* find(std::string_view name) const noexcept;

  /// All nodes, in creation order.
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& nodes()
      const noexcept {
    return nodes_;
  }

  /// All links, in creation order.
  [[nodiscard]] const std::vector<std::unique_ptr<link::Link>>& links()
      const noexcept {
    return links_;
  }

  /// The event loop driving this network.
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

 private:
  sim::Simulator& simulator_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<link::Link>> links_;
};

}  // namespace netco::device
