// Node: base class of everything attached to the simulated network
// (hosts, OpenFlow switches, trusted hubs, compare elements...).
//
// A node owns nothing about the links; the Network container wires link
// channels to node ports and binds the receive sinks. Ports are dense
// indices starting at 0 — matching OpenFlow port numbering in spirit
// (OpenFlow numbers from 1; the switch layer handles that offset).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "link/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace netco::device {

/// Index of a port on a node (0-based, dense).
using PortIndex = std::uint32_t;

/// Sentinel meaning "no port" (e.g. packets injected by the control plane).
inline constexpr PortIndex kNoPort = static_cast<PortIndex>(-1);

/// Base class for all simulated devices.
class Node {
 public:
  Node(sim::Simulator& simulator, std::string name)
      : simulator_(simulator), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Delivery entry point, invoked by the link layer when a packet fully
  /// arrives on `in_port`.
  virtual void handle_packet(PortIndex in_port, net::Packet packet) = 0;

  /// Registers an outgoing channel and returns the new port's index.
  /// Called by Network during wiring; not part of the device API proper.
  PortIndex attach_channel(link::Channel* out);

  /// Transmits `packet` out of `port`.
  void send(PortIndex port, net::Packet packet);

  /// Transmits a copy of `packet` on every port except `except`
  /// (pass kNoPort to use all ports). This is OpenFlow FLOOD.
  void flood(PortIndex except, const net::Packet& packet);

  /// Number of attached ports.
  [[nodiscard]] std::size_t port_count() const noexcept { return out_.size(); }

  /// The outgoing channel behind `port` (for stats inspection).
  [[nodiscard]] const link::Channel& channel(PortIndex port) const;

  /// Human-readable unique name ("s1", "r2", "h1"...).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The event loop this node lives in.
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

 private:
  sim::Simulator& simulator_;
  std::string name_;
  std::vector<link::Channel*> out_;
};

}  // namespace netco::device
