// CompareCore: the trusted *compare* element of the robust network
// combiner — the heart of NetCo (§III–IV of the paper).
//
// The compare receives, from each of k redundant untrusted routers, the
// packets those routers forwarded, and releases exactly one copy of a
// packet once a strict majority (> floor(k/2)) of routers delivered it.
// Packets that never reach a majority (fabricated, rerouted-in, modified,
// or flooded by a malicious minority) are held for a bounded time and then
// evicted without ever being released.
//
// This class is pure logic: no I/O, no event loop. Deployment wrappers
// (CompareService for the out-of-band "C program"/POX variants, the
// virtualized inband variant) feed it (replica, packet, now) triples.
//
// Paper behaviours implemented here:
//  * bit-by-bit comparison (memcmp) — or header-only / hashed modes;
//  * majority release, exactly once; late copies of a released packet are
//    ignored; the entry dies once all k replicas reported (or timed out);
//  * case 1 (§IV): a packet seen on one ingress only is buffered, timed
//    out, and deleted — never forwarded;
//  * case 2 (§IV): repeated copies on one ingress are flagged; a per-port
//    rate monitor produces "block this port" advice (DoS containment);
//  * case 3 (§IV): consecutive releases missing a given ingress raise an
//    unavailability alarm for the network administrator;
//  * bounded waiting time (hold_timeout) so the compare itself cannot be
//    memory-DoSed, plus per-replica buffer quotas ("logically isolated
//    buffers") and a global capacity with a cleanup procedure whose cost
//    the caller can model (the jitter mechanism of §V-B).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "netco/verdict.h"
#include "netco/vote_cache.h"
#include "obs/observability.h"
#include "sim/time.h"

namespace netco::core {

/// How two packets are compared for identity.
enum class CompareMode : std::uint8_t {
  kFullPacket,  ///< bit-by-bit memcmp over the whole frame (paper default)
  kHeaderOnly,  ///< first header_prefix bytes only (L2–L4 headers)
  kHashed,      ///< 64-bit content hash only (cheapest; collision-trusting)
};

/// When a packet is released.
enum class ReleasePolicy : std::uint8_t {
  kMajority,   ///< prevention: strict majority of k (k ≥ 3)
  kFirstCopy,  ///< detection only: release the first copy immediately and
               ///< alarm on disagreement/timeout (k = 2 suffices)
};

/// Sampled-verification mode (§XII): only 1-in-period packets take the
/// full k-way compare; the rest ride a fast path that releases on the
/// first copy from a healthy-weighted replica (or once the weighted tally
/// crosses half the live weight). The period is adaptive: it collapses to
/// 1 — full verification for every packet — the moment any live replica's
/// health weight degrades below healthy_weight, a replica is flagged, or
/// the core was just restored from a checkpoint. Strictly opt-in: with
/// enabled == false the core is bit-identical to one built before the
/// subsystem existed.
struct CompareSampling {
  bool enabled = false;
  /// 1-in-period packets are escalated to the full compare while every
  /// live replica is healthy. 1 = sample everything (full verify).
  std::uint32_t period = 16;
  /// A replica with weight >= this is "healthy": its first copy releases
  /// on the fast path, and the adaptive period stays wide only while all
  /// live replicas clear this bar.
  double healthy_weight = 0.75;
  /// Weighted-vote cache capacity (clamped to cache_capacity so a cache
  /// squeeze bounds both stores).
  std::size_t vote_capacity = 4096;
  /// Per-replica singleton quota in the vote cache (same isolation as the
  /// full cache's per_replica_quota).
  std::size_t vote_quota = 1024;
};

/// Compare element configuration.
struct CompareConfig {
  int k = 3;  ///< number of redundant routers (replicas)
  CompareMode mode = CompareMode::kFullPacket;
  ReleasePolicy policy = ReleasePolicy::kMajority;
  /// Bytes compared in kHeaderOnly mode (Ethernet+VLAN+IPv4+L4 ≈ 58).
  std::size_t header_prefix = 58;
  /// Maximum time a packet waits for its majority before eviction. The
  /// paper: "a function of the latencies of all the connected devices".
  sim::Duration hold_timeout = sim::Duration::milliseconds(20);
  /// Global cache capacity in entries; exceeding it triggers a cleanup
  /// pass (oldest-first eviction down to the low-water mark).
  std::size_t cache_capacity = 2048;
  /// Cleanup evicts down to this fraction of capacity.
  double cleanup_low_water = 0.9;
  /// Per-replica quota of "singleton" entries (entries only that replica
  /// has contributed to). Overflow evicts that replica's oldest singleton —
  /// the paper's logically-isolated buffers.
  std::size_t per_replica_quota = 512;
  /// Port-flood detection, signal 1: more than this many packets from one
  /// replica within rate_window flags the replica for blocking.
  std::uint64_t rate_limit_packets = 50'000;
  /// Port-flood detection, signal 2 (§IV case 2): more than this much
  /// *garbage* from one replica within rate_window — same-port duplicates
  /// plus singleton packets that died without ever reaching a quorum —
  /// flags it for blocking. Garbage is the sharper signal: a saturated
  /// compare CPU caps the arrival rate it can observe, but garbage is
  /// attributable misbehaviour regardless of load.
  std::uint64_t garbage_limit_packets = 1'000;
  sim::Duration rate_window = sim::Duration::milliseconds(100);
  /// Consecutive finalized packets missing a replica before the
  /// unavailability alarm fires.
  std::uint64_t inactivity_threshold = 50;
  /// Paper-faithful retention: a released entry whose k copies all arrived
  /// stays cached until the hold timeout or a capacity cleanup, like the
  /// prototype's packet cache. false = eager erasure (lower memory; used
  /// by deployments that prefer a tight cache).
  bool retain_completed = true;
  /// Mask applied to every cache key. ~0 (default) keeps the full 64-bit
  /// hash; narrowing it models a memory-constrained key space and forces
  /// the perturbed-key collision chains to engage (tests use this to forge
  /// deterministic collisions).
  std::uint64_t key_mask = ~0ULL;
  /// Sampled-verification fast path (disabled by default).
  CompareSampling sampling{};

  /// Strict majority for the configured k.
  [[nodiscard]] int quorum() const noexcept { return k / 2 + 1; }
};

/// Counters.
struct CompareStats {
  std::uint64_t ingested = 0;
  std::uint64_t released = 0;
  std::uint64_t late_after_release = 0;   ///< copies arriving post-release
  std::uint64_t duplicates_same_port = 0; ///< same replica, same packet
  std::uint64_t evicted_timeout = 0;      ///< minority entries timed out
  std::uint64_t evicted_capacity = 0;     ///< cleanup-pass victims
  std::uint64_t evicted_quota = 0;        ///< per-replica isolation victims
  std::uint64_t cleanup_passes = 0;
  std::uint64_t mismatch_detected = 0;    ///< kFirstCopy disagreements
  std::uint64_t rejected_replica = 0;     ///< ingests with replica ∉ [0,k)
  /// Quorums reached in shadow mode (standby): the release was withheld.
  std::uint64_t shadow_releases = 0;
  /// Quorums reached on checkpoint-restored entries: the release was
  /// withheld because the entry may already have been released pre-crash.
  std::uint64_t suppressed_recovered = 0;
  /// Sampled-verification mode (zero while sampling is disabled).
  std::uint64_t fastpath_ingested = 0;  ///< copies that took the fast path
  std::uint64_t fastpath_released = 0;  ///< fast-path releases (⊂ released)
  std::uint64_t sampled_escalated = 0;  ///< packets elected for full verify
  std::size_t cache_entries = 0;          ///< current occupancy
  std::size_t max_cache_entries = 0;
};

/// One cache entry, externalized for checkpointing (src/resilience). The
/// exemplar travels as raw wire bytes; everything else mirrors Entry.
struct SnapshotEntry {
  std::uint64_t key = 0;
  std::uint64_t base_key = 0;
  std::uint32_t probe_depth = 0;
  std::vector<std::byte> payload;
  std::uint64_t replica_mask = 0;
  int contributions = 0;
  int first_replica = 0;
  bool holds_singleton_slot = false;
  bool released = false;
  bool recovered = false;
  std::int64_t first_seen_ns = 0;
};

/// Serializable compare state: everything a warm restart needs to resume
/// conservatively — cache entries in age order, counters, the live set
/// with its `live_since` causality marks, and the case-2/3 monitor state.
/// The per-replica rate windows are deliberately NOT captured: replaying
/// them after a crash would re-accuse replicas for pre-crash traffic.
struct CompareSnapshot {
  std::int64_t at_ns = 0;  ///< when the snapshot was taken
  CompareStats stats;
  std::uint64_t live_mask = 0;
  int live_count = 0;
  std::vector<std::int64_t> live_since_ns;
  std::vector<std::uint64_t> missed_streak;
  std::vector<bool> flagged_block;
  std::vector<bool> flagged_inactive;
  std::vector<SnapshotEntry> entries;  ///< oldest first (age order)
};

/// Self-audit snapshot of the cache bookkeeping, for online invariant
/// checking (fault-injection soaks call this between batches). The audit
/// recomputes ground truth from the cache itself so it catches drift in
/// the incrementally maintained counters.
struct CompareAudit {
  std::size_t cache_entries = 0;    ///< cache_.size()
  std::size_t age_entries = 0;      ///< age list length
  std::size_t cache_capacity = 0;   ///< configured bound
  /// Every age-list key resolves to a cache entry whose stored age
  /// iterator points back at that position, and the two sizes match.
  bool age_cache_consistent = true;
  /// The age list is oldest-first (first_seen non-decreasing).
  bool age_ordered = true;
  /// The incrementally maintained per-replica quota counters...
  std::vector<std::uint64_t> quota_counts;
  /// ...versus a fresh recount of live single-contribution entries.
  std::vector<std::uint64_t> live_singletons;
  /// Weighted-vote-cache bookkeeping (meaningful when vote_active).
  bool vote_active = false;
  VoteCacheAudit vote;
};

/// Outcome of one fast-path ingest (see CompareCore::ingest_sampled).
struct FastResult {
  /// The packet is elected for the full k-way compare: the caller must
  /// route this copy through the normal packet-in path (ingest()).
  bool escalated = false;
  /// Fast-path egress: at most one copy per packet, ever.
  std::optional<net::Packet> released;
};

/// Events the deployment layer should act on.
struct CompareAdvice {
  /// Replicas the rate monitor wants blocked (port indices into [0,k)).
  std::vector<int> block_replicas;
  /// Replicas declared unavailable (inactivity alarm).
  std::vector<int> inactive_replicas;
};

/// The pure compare logic.
class CompareCore {
 public:
  explicit CompareCore(CompareConfig config);

  /// Feeds one packet received from `replica` (0-based) at time `now`.
  /// Returns the packet to release downstream, if this arrival completed a
  /// quorum (or, under kFirstCopy, if it is the first copy). A replica
  /// index outside [0, k) is rejected (counted in stats().rejected_replica)
  /// instead of corrupting the vote bitmask.
  std::optional<net::Packet> ingest(int replica, net::Packet packet,
                                    sim::TimePoint now);

  // --- sampled-verification fast path (§XII) ----------------------------

  /// Fast-path ingest: consults the weighted vote cache instead of the
  /// full compare. Three outcomes: the copy is *escalated* (its packet is
  /// elected for full verification, or already lives in the full cache —
  /// the caller punts it through the normal ingest() path), it *votes*
  /// (its replica's health weight joins the packet's tally; the first
  /// copy from a healthy live replica — or the copy that pushes the tally
  /// past half the live weight — releases), or it is late/duplicate noise
  /// (counted and traced exactly like the full path). The decision is
  /// memoized per packet key, so every copy of one packet takes the same
  /// route even if the adaptive period moves mid-flight.
  FastResult ingest_sampled(int replica, const net::Packet& packet,
                            sim::TimePoint now);

  /// Health-weight import: weight 1 = pristine, 0 = dead. Pushed by the
  /// health service after every verdict batch (1 - EWMA score). Without a
  /// health loop all weights stay 1.0 and the fast path releases on any
  /// first live copy.
  void set_replica_weight(int replica, double weight) noexcept;
  [[nodiscard]] double replica_weight(int replica) const noexcept;

  /// The sampling period currently in force: config().sampling.period
  /// while every live replica is healthy and unflagged, 1 (full
  /// verification) the moment anything degrades — or right after a
  /// checkpoint restore, until one hold_timeout of live traffic passes.
  [[nodiscard]] std::uint32_t effective_period(sim::TimePoint now) const
      noexcept;

  /// The weighted vote cache (nullptr while sampling is disabled).
  [[nodiscard]] const WeightedVoteCache* vote_cache() const noexcept {
    return votes_.get();
  }

  /// Evicts entries whose hold time expired. Call periodically (the
  /// deployment wrappers do). Returns the number of entries evicted.
  std::size_t sweep(sim::TimePoint now);

  /// Entries the last ingest()/sweep() cleaned up in a capacity pass —
  /// deployment layers convert this into modelled CPU stall time.
  [[nodiscard]] std::size_t last_cleanup_work() const noexcept {
    return last_cleanup_work_;
  }

  /// Pending advice (block/inactivity); cleared by the call.
  CompareAdvice take_advice();

  /// Counters.
  [[nodiscard]] const CompareStats& stats() const noexcept { return stats_; }

  /// The configuration in force.
  [[nodiscard]] const CompareConfig& config() const noexcept { return config_; }

  /// Recomputes the cache bookkeeping from scratch (O(cache size)) so an
  /// external checker can compare it against the incremental counters.
  [[nodiscard]] CompareAudit audit() const;

  /// Fault/pressure injection: rebinds the cache capacity mid-run. A
  /// squeeze below the current occupancy triggers an immediate cleanup
  /// pass (billable via last_cleanup_work(), like any other pass).
  void set_cache_capacity(std::size_t capacity, sim::TimePoint now);

  // --- crash-recovery integration (src/resilience) ----------------------

  /// Captures the full serializable state (cache in age order, counters,
  /// live set + causality marks, monitor state) as of `now`.
  [[nodiscard]] CompareSnapshot snapshot(sim::TimePoint now) const;

  /// Warm restart: discards all current state and rebuilds from a
  /// snapshot. Every restored entry that was NOT released at checkpoint
  /// time is tainted (`recovered`): the crash may have eaten a release
  /// that happened after the checkpoint, so when such an entry later
  /// reaches a quorum the release is *suppressed* (counted in
  /// stats().suppressed_recovered, traced as compare.suppressed) — the
  /// at-most-once guarantee costs a bounded gap loss, never a duplicate.
  void restore(const CompareSnapshot& snap, sim::TimePoint now);

  /// Shadow mode (warm standby): ingest, compare, and judge exactly like
  /// a primary, but withhold every release — the entry is marked released
  /// (so a late promotion cannot re-emit it) and counted in
  /// stats().shadow_releases. Promotion flips this off.
  void set_shadow(bool shadow) noexcept { shadow_ = shadow; }
  [[nodiscard]] bool shadow() const noexcept { return shadow_; }

  // --- replica-health integration (src/health) -------------------------

  /// Installs (or, with nullptr, removes) the per-replica verdict sink.
  /// While null, no verdicts form and the compare behaves bit-identically
  /// to a core without the health subsystem.
  void set_verdict_sink(VerdictSink* sink) noexcept { verdict_sink_ = sink; }

  /// Adds/removes `replica` from the live set. Copies from a non-live
  /// replica are still ingested, compared against the exemplar, and judged
  /// (probation probes) but never count toward a quorum. The quorum adapts
  /// to the live set: strict majority over live replicas, falling back to
  /// first-copy detection mode once the live set shrinks to 2 (a majority
  /// of 2 would couple the release to the slower replica and stall on a
  /// single crash — detection is the correct degraded mode). The replica's
  /// missed-streak and inactivity flag are reset on every transition, so a
  /// quarantined replica cannot (re-)trigger the case-3 alarm and a
  /// readmitted one starts with a clean slate. `now` timestamps a
  /// readmission: entries created while the replica was out (it never
  /// received those copies) must not produce kMissed verdicts against it
  /// when they die after the readmission.
  void set_replica_live(int replica, bool live, sim::TimePoint now);

  /// Whether `replica` currently counts toward quorums.
  [[nodiscard]] bool replica_live(int replica) const noexcept {
    return (live_mask_ & (1ULL << static_cast<unsigned>(replica))) != 0;
  }

  /// Replicas currently in the live set.
  [[nodiscard]] int live_count() const noexcept { return live_count_; }

  /// Strict majority over the *live* set (== config().quorum() while all
  /// k replicas are live).
  [[nodiscard]] int live_quorum() const noexcept {
    return live_count_ / 2 + 1;
  }

  /// True when the shrunken live set forces first-copy detection mode.
  [[nodiscard]] bool degraded_first_copy() const noexcept {
    return live_count_ < config_.k && live_count_ <= 2;
  }

  /// Component name stamped on this core's trace records ("compare" by
  /// default; deployments use "compare/<edge>" to tell edges apart).
  void set_trace_label(std::string label) { trace_label_ = std::move(label); }
  [[nodiscard]] const std::string& trace_label() const noexcept {
    return trace_label_;
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t base_key = 0;   ///< unperturbed key (collision-chain id)
    std::uint32_t probe_depth = 0;  ///< position in the perturbed-key chain
    net::Packet exemplar;         ///< first copy received
    std::uint64_t replica_mask = 0;
    int contributions = 0;
    int first_replica = 0;  ///< quota accounting while a singleton
    /// True while this entry occupies a slot of first_replica's singleton
    /// quota. Tracked explicitly (rather than re-derived from
    /// contributions/released at erase time) so every eviction path
    /// returns the slot — a released-but-unconfirmed kFirstCopy singleton
    /// used to leak its slot and drift the quota upward forever.
    bool holds_singleton_slot = false;
    bool released = false;
    /// Restored from a checkpoint while unreleased: its pre-crash release
    /// status is unknowable, so any later quorum is suppressed (see
    /// restore()). Never set on entries created by live traffic.
    bool recovered = false;
    sim::TimePoint first_seen;
    /// Position in the age list for O(1) eviction.
    std::list<std::uint64_t>::iterator age_it;
  };

  /// Collision-chain bookkeeping for one base key: how many live entries
  /// sit at perturbed keys, and the deepest occupied perturbation. The
  /// probe in ingest() must walk to max_depth even across holes left by
  /// evictions — stopping at the first absent key would split a packet's
  /// contributions over two entries and starve its quorum.
  struct Chain {
    std::uint32_t live = 0;
    std::uint32_t max_depth = 0;
  };

  [[nodiscard]] std::uint64_t key_of(const net::Packet& packet) const;
  [[nodiscard]] bool same_packet(const net::Packet& a,
                                 const net::Packet& b) const;
  /// True when `packet` already has an entry in the *full* cache (probe
  /// walk, read-only). Copies of such packets must escalate so the full
  /// entry's quorum is not starved.
  [[nodiscard]] bool full_entry_exists(std::uint64_t base,
                                       const net::Packet& packet) const;
  /// Deterministic election: does this key take the full compare?
  [[nodiscard]] static bool sampled_key(std::uint64_t base,
                                        std::uint32_t period) noexcept;
  /// Sum of live replicas' weights (the fast-path quorum denominator).
  [[nodiscard]] double live_weight_total() const noexcept;
  /// Verdict/trace/stat bookkeeping for a dying vote-cache slot; the
  /// evict_event selects the never-released counter (timeout, capacity or
  /// quota — mirroring the full cache's three eviction paths). A released
  /// slot leaves a tombstone for its key so in-flight sibling copies
  /// cannot re-open a releasable slot (see tombstone_release()).
  void finalize_vote_death(std::uint64_t key, std::uint64_t packet_id,
                           std::uint64_t mask, std::uint32_t bytes,
                           int first_replica, bool released, bool escalated,
                           sim::TimePoint first_seen, sim::TimePoint now,
                           obs::TraceEvent evict_event);
  /// Records that `key`'s packet was released and its cache state is gone
  /// (slot evicted/swept, or a released full-cache entry erased). Until
  /// the tombstone expires — one hold_timeout, the same horizon in-flight
  /// copies are bounded by — a fast-path copy of the key is absorbed as
  /// late_after_release instead of electing a fresh (releasable) slot,
  /// which is the at-most-once backstop against cache-squeeze evictions
  /// of just-released entries. No-op while sampling is off.
  void tombstone_release(std::uint64_t key, sim::TimePoint now);
  /// Whether `key` has an unexpired release tombstone (lazily expiring).
  [[nodiscard]] bool recently_released_key(std::uint64_t key,
                                           sim::TimePoint now);
  /// Converts the scratch list of cache-internal evictions (capacity
  /// squeezes, quota overflow) into stats/traces/verdicts.
  void drain_vote_evictions(sim::TimePoint now);
  /// Inactivity + verdict bookkeeping on entry death.
  void finalize(Entry& entry, sim::TimePoint now);
  /// The replica-mask half of finalize(), shared with the vote cache:
  /// matched/missed verdicts plus the case-3 inactivity streak for a
  /// quorum-vouched packet that died with this vote mask.
  void finalize_masks(std::uint64_t replica_mask, sim::TimePoint first_seen,
                      sim::TimePoint now);
  void erase_entry(std::uint64_t key, sim::TimePoint now);
  void capacity_cleanup(sim::TimePoint now);
  void quota_evict(int replica, sim::TimePoint now);
  void note_arrival(int replica, sim::TimePoint now);
  void note_garbage(int replica, sim::TimePoint now);
  void flag_block(int replica, sim::TimePoint now);
  /// Emits one verdict (no-op while no sink is installed).
  void verdict(VerdictKind kind, int replica, sim::TimePoint now);
  /// Attributable-garbage verdict for a dead singleton entry.
  void divergent_verdict(const Entry& entry, sim::TimePoint now);
  /// Emits one lifecycle record (no-op when tracing is disabled).
  void trace(obs::TraceEvent event, const net::Packet& packet,
             sim::TimePoint now, int replica);
  /// Same, for vote-cache slots (which keep the id, not the packet).
  void trace_id(obs::TraceEvent event, std::uint64_t packet_id,
                std::uint32_t bytes, sim::TimePoint now, int replica);

  CompareConfig config_;
  CompareStats stats_;
  std::size_t last_cleanup_work_ = 0;
  bool shadow_ = false;  ///< standby shadow mode: quorums never release
  std::string trace_label_ = "compare";
  VerdictSink* verdict_sink_ = nullptr;
  /// Bit per replica in [0, k): 1 = counts toward quorums. All-ones by
  /// default; the health subsystem's QuarantineManager shrinks it.
  std::uint64_t live_mask_ = 0;
  int live_count_ = 0;
  /// Per replica: when it last (re)joined the live set. A live replica is
  /// only blamed for entries first seen after this point — the fan-out
  /// did not include it before.
  std::vector<sim::TimePoint> live_since_;
  obs::Observability* obs_;           ///< global context, cached
  obs::Histogram* verdict_latency_;   ///< "compare.verdict_latency_us"
  obs::Counter* released_counter_;    ///< "compare.released"
  obs::Counter* ingested_counter_;    ///< "compare.ingested"
  /// Created only when sampling is enabled, so a full-verify core leaves
  /// the global metrics snapshot byte-identical to the pre-§XII builds.
  obs::Counter* sampled_counter_ = nullptr;   ///< "compare.sampled"
  obs::Counter* fastpath_counter_ = nullptr;  ///< "compare.fastpath"

  // Sampled-verification state (all dormant while sampling is disabled).
  std::unique_ptr<WeightedVoteCache> votes_;
  std::vector<double> weights_;  ///< health weights, 1.0 = pristine
  /// Until this instant the effective period is pinned to 1: a restored
  /// core must fully verify until pre-crash in-flight traffic drains.
  sim::TimePoint sampling_resume_at_ = sim::TimePoint::origin();
  std::vector<VoteEvicted> evicted_scratch_;
  /// Release tombstones (key → release/erase time): keys whose packet
  /// released but whose cache state is already gone. Bounded by the
  /// release volume of one hold_timeout window — the FIFO prunes expired
  /// entries on every sweep (the map value disambiguates a key that was
  /// re-tombstoned inside the window, mirroring the checker's
  /// release-log pruning).
  std::unordered_map<std::uint64_t, std::int64_t> tombstones_;
  std::deque<std::pair<std::int64_t, std::uint64_t>> tombstone_fifo_;

  // key → entry. Collisions across *different* packets with equal keys are
  // resolved by same_packet() refusing to merge; the colliding packet is
  // keyed by a salted rehash (open chaining via key perturbation).
  std::unordered_map<std::uint64_t, Entry> cache_;
  // base key → chain occupancy, only for bases with perturbed entries.
  std::unordered_map<std::uint64_t, Chain> chains_;
  std::list<std::uint64_t> age_;  ///< oldest-first keys

  // Per-replica monitors.
  std::vector<std::uint64_t> singleton_count_;
  std::vector<std::deque<std::int64_t>> arrival_ns_;  ///< rate windows
  std::vector<std::deque<std::int64_t>> garbage_ns_;  ///< garbage windows
  std::vector<std::uint64_t> missed_streak_;
  std::vector<bool> flagged_block_;
  std::vector<bool> flagged_inactive_;
  CompareAdvice pending_advice_;
};

}  // namespace netco::core
