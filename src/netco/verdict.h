// Per-replica verdict stream: the structured judgement CompareCore forms
// about each replica while doing its normal work.
//
// The paper stops at alarms — case-2 flood advice and the case-3
// unavailability alarm are handed to "the network administrator" and the
// circuit never acts on them. The verdict stream is the machine-readable
// form of that evidence, emitted continuously instead of only at alarm
// thresholds, so an in-process reinforcement loop (src/health) can score
// replicas and reconfigure the circuit without a human in the path:
//
//   kMatched      — a copy from the replica agreed with the released packet
//                   (counted when the cache entry dies, so late-but-honest
//                   copies still count in the replica's favour);
//   kMissed       — the replica failed to deliver a packet the quorum
//                   vouched for (the per-packet form of the case-3 signal);
//   kDivergent    — a copy nobody confirmed died in the cache: corrupt,
//                   fabricated, or rerouted-in traffic attributable to the
//                   replica that sent it (the per-packet case-1/2 signal);
//   kFloodFlagged — the windowed rate/garbage monitor tripped (case 2);
//   kInactive     — the consecutive-miss alarm threshold tripped (case 3).
//
// Verdicts carry the replica's liveness at formation time: copies from a
// quarantined replica are still compared and judged (probation probes) but
// never count toward a quorum, and their verdicts arrive with live=false.
//
// Emission is a single null-check when no sink is installed; with the sink
// absent the compare behaves bit-identically to a build without this file.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace netco::core {

/// What the compare concluded about one replica for one packet (or, for
/// the flagged kinds, one monitor window).
enum class VerdictKind : std::uint8_t {
  kMatched,       ///< copy agreed with the released packet
  kMissed,        ///< absent from a packet the quorum vouched for
  kDivergent,     ///< attributable garbage (corrupt/fabricated singleton)
  kFloodFlagged,  ///< rate/garbage window tripped (§IV case 2)
  kInactive,      ///< consecutive-miss threshold tripped (§IV case 3)
};

/// Stable lowercase name ("matched", "missed", ...).
[[nodiscard]] const char* to_string(VerdictKind kind) noexcept;

/// One verdict about one replica.
struct ReplicaVerdict {
  VerdictKind kind = VerdictKind::kMatched;
  int replica = 0;
  /// Whether the replica was in the compare's live set when the verdict
  /// formed. Probation-probe verdicts arrive with live == false.
  bool live = true;
  sim::TimePoint at;
};

/// Where verdicts go. The health subsystem implements this; CompareCore
/// holds a non-owning pointer and emits nothing while it is null.
class VerdictSink {
 public:
  virtual ~VerdictSink() = default;
  virtual void on_verdict(const ReplicaVerdict& verdict) = 0;
};

}  // namespace netco::core
