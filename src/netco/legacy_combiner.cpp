#include "netco/legacy_combiner.h"

#include "common/assert.h"
#include "common/fmt.h"
#include "controller/static_routing.h"

namespace netco::core {

void LegacyCombinerInstance::add_route(net::Ipv4Address prefix, int len,
                                       std::size_t idx,
                                       const net::MacAddress& next_mac) {
  NETCO_ASSERT(idx < edges.size());
  for (auto* replica : replicas) {
    replica->add_route(prefix, len,
                       iproute::NextHop{
                           .port = static_cast<device::PortIndex>(idx),
                           .next_mac = next_mac});
  }
}

LegacyCombinerInstance build_legacy_combiner(
    device::Network& network, const LegacyCombinerOptions& options,
    const std::vector<LegacyAttachment>& attachments,
    const std::string& name_prefix) {
  NETCO_ASSERT(options.k >= 2);
  NETCO_ASSERT(!attachments.empty());
  const auto k = static_cast<std::size_t>(options.k);
  const std::size_t n = attachments.size();

  LegacyCombinerInstance inst;

  // 1. k cloned legacy replicas. Interface configuration is identical on
  //    every replica — they all emulate the same logical router.
  for (std::size_t j = 0; j < k; ++j) {
    auto& replica = network.add_node<iproute::LegacyRouter>(
        fmt("{}-r{}", name_prefix, j),
        options.replica_delays[j % options.replica_delays.size()]);
    for (const auto& attachment : attachments) {
      replica.add_interface(attachment.interface);
    }
    inst.replicas.push_back(&replica);
  }

  // 2. Trusted edges, spliced to the neighbors.
  const openflow::SwitchProfile edge_profile{
      .vendor = "trusted-edge", .processing_delay = options.edge_delay};
  inst.edge_replica_port.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& edge = network.add_node<openflow::OpenFlowSwitch>(
        fmt("{}-e{}", name_prefix, i), edge_profile);
    inst.edges.push_back(&edge);
    const auto conn =
        network.connect(*attachments[i].neighbor, edge, attachments[i].link);
    inst.edge_neighbor_port.push_back(conn.b_port);
  }

  // 3. Edge ↔ replica mesh. Replica port index == attachment index, the
  //    same invariant the interface list relies on.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const auto conn = network.connect(*inst.edges[i], *inst.replicas[j],
                                        options.internal_link);
      inst.edge_replica_port[i].push_back(conn.a_port);
    }
  }

  // 4. Compare process + edge rules (hub, screen, punt, MAC routes) —
  //    identical policy to the OpenFlow combiner.
  inst.compare = std::make_unique<CompareService>();
  inst.compare_controller = std::make_unique<controller::Controller>(
      network.simulator(), fmt("{}-compare", name_prefix), *inst.compare,
      options.compare_profile);

  for (std::size_t i = 0; i < n; ++i) {
    auto& edge = *inst.edges[i];
    const auto now = network.simulator().now();

    openflow::FlowSpec hub;
    hub.match.with_in_port(inst.edge_neighbor_port[i]);
    for (std::size_t j = 0; j < k; ++j) {
      hub.actions.push_back(
          openflow::OutputAction::to(inst.edge_replica_port[i][j]));
    }
    hub.priority = 30;
    edge.table().add(std::move(hub), now);

    for (const auto& mac : attachments[i].local_macs) {
      controller::install_mac_route(edge, mac, inst.edge_neighbor_port[i]);
    }

    CompareService::EdgeConfig config;
    config.compare = options.compare;
    config.compare.k = options.k;
    for (std::size_t j = 0; j < k; ++j) {
      const device::PortIndex rp = inst.edge_replica_port[i][j];
      config.replica_ports[rp] = static_cast<int>(j);
      for (const auto& mac : attachments[i].local_macs) {
        openflow::FlowSpec drop;
        drop.match.with_in_port(rp).with_dl_src(mac);
        drop.priority = 25;
        edge.table().add(std::move(drop), now);
      }
      openflow::FlowSpec punt;
      punt.match.with_in_port(rp);
      punt.actions = {openflow::OutputAction::controller()};
      punt.priority = 20;
      edge.table().add(std::move(punt), now);
    }
    // The replicas' own frames (ICMP replies / time-exceeded from the
    // router interfaces) carry the interface MAC as dl_src — they must
    // pass the screen (the interface MAC is not a local host MAC) and be
    // routable back out: released packets destined to a local host use
    // the MAC routes above.
    inst.compare->configure_edge(edge.name(), std::move(config));
    inst.compare_controller->attach(edge);
  }

  return inst;
}

}  // namespace netco::core
