#include "netco/compare_service.h"

#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "openflow/switch.h"

namespace netco::core {

void CompareService::configure_edge(const std::string& switch_name,
                                    EdgeConfig config) {
  const auto [it, inserted] =
      edges_.emplace(switch_name, EdgeState(std::move(config)));
  if (inserted) {
    // Disambiguates trace records when several edges share one process.
    it->second.core.set_trace_label("compare/" + switch_name);
  }
}

void CompareService::on_attached(controller::Controller& controller,
                                 openflow::ControlChannel& channel) {
  const auto it = edges_.find(channel.attached_switch().name());
  if (it == edges_.end()) return;  // not one of ours
  it->second.channel = &channel;
  schedule_sweep(controller, it->second);
}

void CompareService::schedule_sweep(controller::Controller& controller,
                                    EdgeState& state) {
  // Periodic minority-packet eviction, at twice the hold-timeout rate.
  const sim::Duration period = state.config.compare.hold_timeout / 2;
  controller.simulator().schedule_after(period, [this, &controller, &state] {
    // A dead or wedged process runs no sweeps; entries simply age until
    // the process is live again (hang) or restored (crash).
    if (state_ == ProcessState::kLive) {
      state.core.sweep(controller.simulator().now());
      act_on_advice(controller, state);
    }
    schedule_sweep(controller, state);
  });
}

void CompareService::on_packet_in(controller::Controller& controller,
                                  openflow::ControlChannel& channel,
                                  openflow::PacketIn event) {
  if (state_ != ProcessState::kLive) {
    // Crashed / hung / fenced process: the packet-in is lost. This is the
    // gap the resilience layer (checkpoints, standby, degraded policies)
    // exists to bound.
    ++downtime_drops_;
    return;
  }
  const auto it = edges_.find(channel.attached_switch().name());
  if (it == edges_.end()) return;
  EdgeState& state = it->second;

  int replica = -1;
  if (!state.config.replica_vlans.empty()) {
    // Virtualized mode: tunnel tag identifies the path, then comes off so
    // the k copies compare equal.
    const auto parsed = net::parse_packet(event.packet);
    if (parsed && parsed->vlan) {
      const auto it_vlan = state.config.replica_vlans.find(parsed->vlan->vid);
      if (it_vlan != state.config.replica_vlans.end()) {
        replica = it_vlan->second;
        net::strip_vlan(event.packet);
      }
    }
  } else {
    const auto port_it = state.config.replica_ports.find(event.in_port);
    if (port_it != state.config.replica_ports.end()) {
      replica = port_it->second;
    }
  }
  if (replica < 0) {
    ++unknown_port_drops_;
    return;
  }

  auto released = state.core.ingest(replica, std::move(event.packet),
                                    controller.simulator().now());

  // Bill any capacity-cleanup pass to the compare CPU: this stall is the
  // §V-B jitter mechanism (small packets fill the cache faster).
  if (state.core.last_cleanup_work() > 0) {
    controller.charge_extra(state.config.cleanup_cost_per_entry *
                            static_cast<std::int64_t>(
                                state.core.last_cleanup_work()));
  }

  if (released && !state.config.verify_only) {
    // One copy goes back to the edge switch and is forwarded according to
    // its MAC table (packet-out OFPP_TABLE; in_port is "controller").
    channel.packet_out(openflow::PacketOut{
        .actions = {openflow::OutputAction::table()},
        .packet = std::move(*released),
        .in_port = device::kNoPort});
  }
  act_on_advice(controller, state);
}

void CompareService::act_on_advice(controller::Controller& controller,
                                   EdgeState& state) {
  // Check the channel before consuming the advice: a detached edge keeps
  // its advice pending until (if ever) a channel re-attaches, instead of
  // silently swallowing it.
  if (state.channel == nullptr) return;
  CompareAdvice advice = state.core.take_advice();
  const std::string edge = state.channel->attached_switch().name();

  for (int replica : advice.block_replicas) {
    // Reverse-map replica index → edge port.
    for (const auto& [port, idx] : state.config.replica_ports) {
      if (idx != replica) continue;
      state.channel->port_mod(openflow::PortMod{.port = port, .blocked = true});
      NETCO_LOG_INFO("compare", "{}: blocking replica {} (port {}) — flood",
                     edge, replica, port);
      if (state.config.block_duration > sim::Duration::zero()) {
        controller.simulator().schedule_after(
            state.config.block_duration, [&state, port] {
              // The edge may have detached (switch crash, teardown) while
              // the unblock timer was pending — state outlives the channel.
              if (state.channel == nullptr) return;
              state.channel->port_mod(
                  openflow::PortMod{.port = port, .blocked = false});
            });
      }
    }
    alarms_.push_back(CompareAlarm{.edge = edge,
                                   .replica = replica,
                                   .kind = CompareAlarm::Kind::kPortBlocked,
                                   .at = controller.simulator().now()});
  }
  for (int replica : advice.inactive_replicas) {
    NETCO_LOG_INFO("compare", "{}: replica {} unavailable — alarm", edge,
                   replica);
    alarms_.push_back(CompareAlarm{.edge = edge,
                                   .replica = replica,
                                   .kind = CompareAlarm::Kind::kReplicaInactive,
                                   .at = controller.simulator().now()});
  }
}

const CompareStats* CompareService::stats_for(
    const std::string& edge_name) const {
  const auto it = edges_.find(edge_name);
  return it == edges_.end() ? nullptr : &it->second.core.stats();
}

CompareCore* CompareService::core_for(const std::string& edge_name) {
  const auto it = edges_.find(edge_name);
  return it == edges_.end() ? nullptr : &it->second.core;
}

void CompareService::detach_edge(const std::string& edge_name) {
  const auto it = edges_.find(edge_name);
  if (it != edges_.end()) it->second.channel = nullptr;
}

}  // namespace netco::core
