// Robust combiner around a *legacy* (non-OpenFlow) router position — the
// extension sketched in the paper's conclusion ("our approach can easily
// be extended to legacy routers").
//
// Structure is identical to the OpenFlow combiner (trusted OF edges as
// hub/compare-feeders, out-of-band compare), but the k replicas are
// LegacyRouter instances deployed as exact configuration clones: same
// interface MACs and IPs on every replica, so their L2 rewrites and TTL
// decrements produce bit-identical copies that the memcmp compare accepts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "device/network.h"
#include "iproute/legacy_router.h"
#include "netco/compare_service.h"

namespace netco::core {

/// One neighbor of the legacy router position.
struct LegacyAttachment {
  device::Node* neighbor = nullptr;
  link::LinkConfig link;
  /// Hosts living behind this neighbor (screening + released-packet MAC
  /// routes on the trusted edge).
  std::vector<net::MacAddress> local_macs;
  /// The logical router's interface on this port — cloned to all replicas.
  iproute::Interface interface;
};

/// Construction options.
struct LegacyCombinerOptions {
  int k = 3;
  CompareConfig compare;
  controller::CostProfile compare_profile =
      controller::CostProfile::c_program();
  link::LinkConfig internal_link;
  sim::Duration edge_delay = sim::Duration::microseconds(5);
  /// Per-replica forwarding latencies (vendor diversity; cycled).
  std::vector<sim::Duration> replica_delays = {
      sim::Duration::microseconds(15), sim::Duration::nanoseconds(16500),
      sim::Duration::nanoseconds(13800)};
};

/// Handles to the built combiner.
struct LegacyCombinerInstance {
  std::vector<openflow::OpenFlowSwitch*> edges;
  std::vector<iproute::LegacyRouter*> replicas;
  std::vector<device::PortIndex> edge_neighbor_port;
  std::vector<std::vector<device::PortIndex>> edge_replica_port;
  std::unique_ptr<controller::Controller> compare_controller;
  std::unique_ptr<CompareService> compare;

  /// Installs prefix/len → next hop (out through attachment `idx`,
  /// addressed to `next_mac`) into every replica's FIB.
  void add_route(net::Ipv4Address prefix, int len, std::size_t idx,
                 const net::MacAddress& next_mac);
};

/// Builds the combiner; replica FIBs start empty (use add_route).
LegacyCombinerInstance build_legacy_combiner(
    device::Network& network, const LegacyCombinerOptions& options,
    const std::vector<LegacyAttachment>& attachments,
    const std::string& name_prefix);

}  // namespace netco::core
