#include "netco/hub.h"

#include <utility>

namespace netco::core {

Hub::Hub(sim::Simulator& simulator, std::string name,
         sim::Duration processing_delay)
    : device::Node(simulator, std::move(name)),
      delay_(processing_delay),
      obs_(&obs::global()),
      split_counter_(&obs_->metrics.counter("hub." + this->name() + ".split")),
      merge_counter_(&obs_->metrics.counter("hub." + this->name() + ".merge")),
      split_total_(&obs_->metrics.counter("hub.split")),
      merge_total_(&obs_->metrics.counter("hub.merge")),
      fanout_counter_(&obs_->metrics.counter("hub.copies_out")) {}

void Hub::set_port_masked(device::PortIndex port, bool masked) {
  if (port == 0) return;  // upstream side; masking it would black-hole
  if (masked_.size() <= port) masked_.resize(port + 1, false);
  masked_[port] = masked;
}

bool Hub::port_masked(device::PortIndex port) const noexcept {
  return port < masked_.size() && masked_[port];
}

void Hub::handle_packet(device::PortIndex in_port, net::Packet packet) {
  simulator().schedule_after(delay_, [this, in_port,
                                      p = std::move(packet)]() mutable {
    obs::Tracer& tracer = obs_->tracer;
    if (in_port == 0) {
      split_counter_->inc();
      split_total_->inc();
      // 1-based split sequence straight from the registry counter; every
      // probe_stride_-th split opens the trickle to masked ports.
      const bool probe_round =
          probe_stride_ != 0 && split_counter_->value() % probe_stride_ == 0;
      if (tracer.enabled()) {
        // content_hash() memoizes into the shared payload buffer, so this
        // one computation is the id every downstream copy (replica
        // forwards, compare ingests) reuses for free.
        tracer.emit(simulator().now().ns(), obs::TraceEvent::kHubIngress,
                    p.content_hash(), name(), -1,
                    static_cast<std::uint32_t>(p.size()));
      }
      std::uint64_t copies = 0;
      for (device::PortIndex port = 1; port < port_count(); ++port) {
        if (port_masked(port) && !probe_round) continue;
        send(port, p);  // COW fan-out: each copy is a refcount bump
        ++copies;
      }
      fanout_counter_->inc(copies);
    } else {
      merge_counter_->inc();
      merge_total_->inc();
      if (tracer.enabled()) {
        tracer.emit(simulator().now().ns(), obs::TraceEvent::kHubMerge,
                    p.content_hash(), name(),
                    static_cast<std::int32_t>(in_port) - 1,
                    static_cast<std::uint32_t>(p.size()));
      }
      send(0, std::move(p));
    }
  });
}

void install_hub_rules(openflow::OpenFlowSwitch& sw, device::PortIndex from,
                       const std::vector<device::PortIndex>& to,
                       std::uint16_t priority) {
  openflow::FlowSpec spec;
  spec.match.with_in_port(from);
  for (device::PortIndex port : to) {
    spec.actions.push_back(openflow::OutputAction::to(port));
  }
  spec.priority = priority;
  sw.table().add(std::move(spec), sw.simulator().now());
}

void remove_hub_rules(openflow::OpenFlowSwitch& sw, device::PortIndex from,
                      std::uint16_t priority) {
  openflow::Match match;
  match.with_in_port(from);
  sw.table().remove_strict(match, priority);
}

}  // namespace netco::core
