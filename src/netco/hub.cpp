#include "netco/hub.h"

#include <utility>

namespace netco::core {

void Hub::handle_packet(device::PortIndex in_port, net::Packet packet) {
  simulator().schedule_after(delay_, [this, in_port,
                                      p = std::move(packet)]() mutable {
    if (in_port == 0) {
      ++split_;
      flood(0, p);  // copy to every non-upstream port
    } else {
      ++merged_;
      send(0, std::move(p));
    }
  });
}

void install_hub_rules(openflow::OpenFlowSwitch& sw, device::PortIndex from,
                       const std::vector<device::PortIndex>& to,
                       std::uint16_t priority) {
  openflow::FlowSpec spec;
  spec.match.with_in_port(from);
  for (device::PortIndex port : to) {
    spec.actions.push_back(openflow::OutputAction::to(port));
  }
  spec.priority = priority;
  sw.table().add(std::move(spec), sw.simulator().now());
}

}  // namespace netco::core
