#include "netco/hub.h"

#include <utility>

namespace netco::core {

void Hub::handle_packet(device::PortIndex in_port, net::Packet packet) {
  simulator().schedule_after(delay_, [this, in_port,
                                      p = std::move(packet)]() mutable {
    obs::Tracer& tracer = obs_->tracer;
    if (in_port == 0) {
      ++split_;
      split_counter_->inc();
      const std::size_t copies = port_count() > 0 ? port_count() - 1 : 0;
      fanout_counter_->inc(copies);
      if (tracer.enabled()) {
        // content_hash() memoizes into the shared payload buffer, so this
        // one computation is the id every downstream copy (replica
        // forwards, compare ingests) reuses for free.
        tracer.emit(simulator().now().ns(), obs::TraceEvent::kHubIngress,
                    p.content_hash(), name(), -1,
                    static_cast<std::uint32_t>(p.size()));
      }
      flood(0, p);  // COW fan-out: each copy is a refcount bump
    } else {
      ++merged_;
      merge_counter_->inc();
      if (tracer.enabled()) {
        tracer.emit(simulator().now().ns(), obs::TraceEvent::kHubMerge,
                    p.content_hash(), name(),
                    static_cast<std::int32_t>(in_port) - 1,
                    static_cast<std::uint32_t>(p.size()));
      }
      send(0, std::move(p));
    }
  });
}

void install_hub_rules(openflow::OpenFlowSwitch& sw, device::PortIndex from,
                       const std::vector<device::PortIndex>& to,
                       std::uint16_t priority) {
  openflow::FlowSpec spec;
  spec.match.with_in_port(from);
  for (device::PortIndex port : to) {
    spec.actions.push_back(openflow::OutputAction::to(port));
  }
  spec.priority = priority;
  sw.table().add(std::move(spec), sw.simulator().now());
}

}  // namespace netco::core
