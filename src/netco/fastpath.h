// FastPathTap: the trusted edge's sampled-verification hook (§XII).
//
// Installed as the edge switch's datapath interceptor, it short-circuits
// the compare's packet-in round trip for replica traffic: each copy is
// offered to CompareCore::ingest_sampled(), which either releases it on
// the spot (fast path — the copy that completes a healthy-weighted vote
// goes straight out the edge's own flow table, exactly like a packet-out
// OFPP_TABLE would), swallows it (a vote that did not release, a
// duplicate, a late copy), or *escalates* it — 1-in-N packets elected for
// the full k-way compare take the classic punt to the out-of-band
// compare process, bit-for-bit the pre-§XII path.
//
// The tap preserves the edge's rule semantics: non-replica ports fall
// through untouched, and a replica copy carrying one of this edge's own
// source MACs falls through to the flow table where the priority-25
// anti-spoof screen drops it (the tap must not become a spoof bypass).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "device/datapath.h"
#include "net/address.h"
#include "netco/compare_core.h"
#include "openflow/switch.h"

namespace netco::core {

/// The sampled-verification fast path of one trusted edge.
class FastPathTap : public device::DatapathInterceptor {
 public:
  struct Config {
    /// Edge ingress port → replica index (same map the compare uses).
    std::unordered_map<device::PortIndex, int> replica_ports;
    /// This edge's own-side MACs: replica copies sourcing one of these
    /// are spoofs and must reach the table's priority-25 drop rule.
    std::vector<net::MacAddress> local_macs;
  };

  /// `core` is the edge's compare core (owned by the CompareService that
  /// outlives the switch's interceptor registration); `edge` is the switch
  /// the tap will be installed on — pinned here so the per-copy hot path
  /// never pays a dynamic_cast.
  FastPathTap(Config config, CompareCore* core, openflow::OpenFlowSwitch* edge)
      : config_(std::move(config)), core_(core), edge_(edge) {
    // Flatten the port → replica map into a dense lookup: ports are small
    // dense indices and this runs once per copy of every packet.
    for (const auto& [port, replica] : config_.replica_ports) {
      const auto idx = static_cast<std::size_t>(port);
      if (idx >= port_to_replica_.size()) {
        port_to_replica_.resize(idx + 1, -1);
      }
      port_to_replica_[idx] = replica;
    }
  }

  bool intercept(device::Datapath& datapath, device::PortIndex in_port,
                 net::Packet& packet) override;

  /// Copies released / escalated / swallowed by this tap.
  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }
  [[nodiscard]] std::uint64_t escalated() const noexcept {
    return escalated_;
  }
  [[nodiscard]] std::uint64_t absorbed() const noexcept { return absorbed_; }

 private:
  Config config_;
  CompareCore* core_;
  openflow::OpenFlowSwitch* edge_;
  std::vector<int> port_to_replica_;  ///< dense replica_ports (-1 = none)
  std::uint64_t released_ = 0;
  std::uint64_t escalated_ = 0;
  std::uint64_t absorbed_ = 0;
};

}  // namespace netco::core
