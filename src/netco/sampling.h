// Sampling-based detection (paper §IX): "An efficient alternative could
// be to reduce load on the compare using sampling: a simple logic in the
// data plane forwards a random subset of packets to a more thorough
// out-of-band compare logic."
//
// Deployment: the trusted edge forwards the *primary* replica's output
// downstream immediately (no holding — this is detection, not
// prevention), and for a content-sampled subset of packets it punts every
// replica's copy to the out-of-band compare, which verifies agreement and
// raises mismatch alarms. Sampling is deterministic on packet content so
// the k copies of one packet are always sampled consistently.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "device/datapath.h"
#include "netco/combiner.h"  // PortAttachment
#include "netco/compare_service.h"
#include "openflow/switch.h"

namespace netco::core {

/// The trusted edge's sampling logic, installed as the edge switch's
/// datapath hook (the edge is trusted; its hook is policy, not attack).
class SamplingEdgeLogic : public device::DatapathInterceptor {
 public:
  struct Config {
    /// Edge ingress port → replica index.
    std::unordered_map<device::PortIndex, int> replica_ports;
    /// Whose output is forwarded downstream unverified.
    int primary_replica = 0;
    /// Port toward this edge's neighbor (downstream).
    device::PortIndex neighbor_port = 0;
    /// Fraction of packets escalated to the compare, in [0, 1].
    double sample_rate = 0.05;
  };

  explicit SamplingEdgeLogic(Config config) : config_(std::move(config)) {}

  bool intercept(device::Datapath& datapath, device::PortIndex in_port,
                 net::Packet& packet) override;

  /// Packets forwarded downstream / escalated to the compare.
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t sampled() const noexcept { return sampled_; }

  /// The deterministic content-based sampling decision (exposed for
  /// tests: all copies of one packet share it).
  [[nodiscard]] bool is_sampled(const net::Packet& packet) const noexcept;

 private:
  Config config_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t sampled_ = 0;
};

/// Options for a sampling-detection combiner.
struct SamplingCombinerOptions {
  int k = 3;
  double sample_rate = 0.05;
  int primary_replica = 0;
  CompareConfig compare;  ///< policy is forced to kFirstCopy (detection)
  controller::CostProfile compare_profile =
      controller::CostProfile::c_program();
  link::LinkConfig internal_link;
  sim::Duration edge_delay = sim::Duration::microseconds(5);
  std::vector<openflow::SwitchProfile> replica_profiles;
};

/// Handles to a built sampling combiner.
struct SamplingCombinerInstance {
  std::vector<openflow::OpenFlowSwitch*> edges;
  std::vector<openflow::OpenFlowSwitch*> replicas;
  std::vector<device::PortIndex> edge_neighbor_port;
  std::vector<std::vector<device::PortIndex>> edge_replica_port;
  std::vector<std::vector<device::PortIndex>> replica_edge_port;
  std::vector<std::unique_ptr<SamplingEdgeLogic>> edge_logic;  ///< per edge
  std::unique_ptr<controller::Controller> compare_controller;
  std::unique_ptr<CompareService> compare;

  /// Installs "dl_dst=mac → toward attachment idx" into every replica.
  void install_replica_route(const net::MacAddress& mac, std::size_t idx);
};

/// Builds a sampling-detection combiner (reuses PortAttachment from the
/// prevention combiner).
SamplingCombinerInstance build_sampling_combiner(
    device::Network& network, const SamplingCombinerOptions& options,
    const std::vector<PortAttachment>& attachments,
    const std::string& name_prefix);

}  // namespace netco::core
