// Reputation-weighted vote cache for the compare fast path (§XII).
//
// Replaces strict head-count majority with weighted tallies: each replica
// copy of a packet adds that replica's health weight to the packet's
// tally, and the fast path releases once the tally crosses half the live
// weight (or immediately on a copy from a fully-healthy replica). Entries
// are arena-allocated structure-of-arrays slots — the hash chain walk
// touches only the key column and prefetches the next link — so the
// per-packet cost is O(1) inserts plus an intrusive age list for
// oldest-first sweeps. Capacity eviction approximates keep-the-top-k
// tallies with a bounded scan over the oldest entries (kVictimScanLimit,
// so a full cache stays O(1) per ingest), with two safety preferences
// layered on top: *unreleased* entries go before released ones — a
// just-released slot evicted while sibling copies are still in flight
// would let a recreated entry release the same packet twice — and
// *escalated* routing memos go last of all (only when nothing else is
// left), because losing a memo can split one packet's copies across the
// fast and full paths.
//
// The per-replica singleton quota from CompareCore carries over: an entry
// holds one quota slot of its first replica while it has at most one
// distinct voter and has not released; the slot returns on the second
// distinct vote, on release, or on erase — never leaks (the PR 2 bug
// class), which audit() proves by recount. Escalated memos are exempt:
// they neither charge nor trigger the quota (they are tiny, carry no
// payload, and are bounded by the in-flight sampled packets), so quota
// pressure can never expel a packet's routing decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace netco::core {

/// Why an entry was pushed out of the vote cache.
enum class VoteEvictReason : std::uint8_t {
  kCapacity,  ///< arena full: lowest tally (tie: oldest) evicted
  kQuota,     ///< first replica exceeded its singleton quota
};

/// A slot's state at the moment the cache expelled it, so the caller can
/// emit verdicts/traces for the dead entry.
struct VoteEvicted {
  std::uint64_t key = 0;
  std::uint64_t packet_id = 0;
  std::uint64_t mask = 0;  ///< distinct replicas that voted
  std::uint32_t bytes = 0;
  std::int16_t first_replica = -1;
  bool released = false;
  bool escalated = false;
  std::int64_t first_seen_ns = 0;
  VoteEvictReason reason = VoteEvictReason::kCapacity;
};

/// Recount-style audit snapshot (mirrors core::CompareAudit): counters on
/// the left, ground truth recounted from the arena on the right.
struct VoteCacheAudit {
  std::size_t entries = 0;        ///< size() counter
  std::size_t capacity = 0;       ///< logical capacity
  std::size_t arena = 0;          ///< allocated slots (>= capacity)
  std::size_t free_slots = 0;     ///< freelist length
  std::size_t age_entries = 0;    ///< recount: age-list length
  std::size_t chain_entries = 0;  ///< recount: sum of bucket-chain lengths
  /// entries == age_entries == chain_entries && entries + free == arena.
  bool consistent = true;
  /// Age list is oldest-first by first_seen_ns.
  bool age_ordered = true;
  /// Per-replica singleton-quota counters (left) vs live recount (right).
  std::vector<std::size_t> quota_counts;
  std::vector<std::size_t> live_quota_held;
};

class WeightedVoteCache {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kNil = 0xFFFFFFFFu;
  /// Hard fleet-size ceiling: voter sets are 64-bit replica bitmasks, so
  /// replica ids live in [0, kMaxReplicas). Configuration layers
  /// (CompareConfig, SoakOptions) validate against this at construction —
  /// an oversized fleet must fail loudly up front, not as silent vote
  /// drops deep in the fast path.
  static constexpr int kMaxReplicas = 64;
  /// Capacity eviction scans at most this many of the oldest entries for
  /// the lowest tally — a bounded approximation of global top-k that
  /// keeps a full cache O(1) per ingest (the property test's reference
  /// model replicates the same window).
  static constexpr std::size_t kVictimScanLimit = 16;

  WeightedVoteCache(std::size_t capacity, std::size_t per_replica_quota,
                    int k);

  /// Slot holding `key`, or kNil. O(chain) — chains stay short because the
  /// bucket count is sized to the arena.
  [[nodiscard]] Slot find(std::uint64_t key) const noexcept;

  /// Allocates a slot for `key` (must not already be present). May first
  /// evict — capacity victim or, for non-escalated inserts, the first
  /// replica's oldest singleton — appending each casualty to `evicted`.
  /// Escalated memos take no quota slot. Returns the new slot.
  Slot insert(std::uint64_t key, std::uint64_t packet_id, std::int64_t now_ns,
              std::uint32_t bytes, int first_replica, bool escalated,
              std::vector<VoteEvicted>& evicted);

  /// Adds `weight` from `replica` to the slot's tally. Returns false (and
  /// changes nothing) if that replica already voted — the duplicate-vote
  /// signal — or if `replica` is outside [0, 64), which the bitmask
  /// cannot represent. The second *distinct* voter returns the singleton
  /// quota slot.
  bool add_vote(Slot slot, int replica, double weight) noexcept;

  /// Marks the slot released (returns its quota slot if still held).
  void set_released(Slot slot) noexcept;

  // --- per-slot accessors (slot must be live) -----------------------------
  [[nodiscard]] std::uint64_t key_of(Slot s) const noexcept { return key_[s]; }
  [[nodiscard]] std::uint64_t packet_id(Slot s) const noexcept {
    return packet_id_[s];
  }
  [[nodiscard]] double tally(Slot s) const noexcept { return tally_[s]; }
  [[nodiscard]] std::uint64_t mask(Slot s) const noexcept { return mask_[s]; }
  [[nodiscard]] std::uint32_t bytes(Slot s) const noexcept {
    return bytes_[s];
  }
  [[nodiscard]] int first_replica(Slot s) const noexcept {
    return first_replica_[s];
  }
  [[nodiscard]] std::int64_t first_seen_ns(Slot s) const noexcept {
    return first_seen_ns_[s];
  }
  [[nodiscard]] bool released(Slot s) const noexcept {
    return (flags_[s] & kReleased) != 0;
  }
  [[nodiscard]] bool escalated(Slot s) const noexcept {
    return (flags_[s] & kEscalated) != 0;
  }

  /// Removes the slot (returns its quota slot if still held).
  void erase(Slot slot) noexcept;

  /// Oldest-first sweep: every entry with first_seen_ns < horizon_ns is
  /// handed to `on_dead(slot)` (read its state there) and then erased.
  template <typename OnDead>
  void sweep(std::int64_t horizon_ns, OnDead&& on_dead) {
    while (age_head_ != kNil && first_seen_ns_[age_head_] < horizon_ns) {
      const Slot victim = age_head_;
      on_dead(victim);
      erase(victim);
    }
  }

  /// Shrinks (or grows) the logical capacity, evicting — lowest tally
  /// first — until size() fits. Fault-injected cache squeezes land here.
  void set_capacity(std::size_t capacity, std::vector<VoteEvicted>& evicted);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t evicted_capacity() const noexcept {
    return evicted_capacity_;
  }
  [[nodiscard]] std::uint64_t evicted_quota() const noexcept {
    return evicted_quota_;
  }

  /// Full-recount audit (see VoteCacheAudit).
  [[nodiscard]] VoteCacheAudit audit() const;

  /// Drops every entry (no eviction records; checkpoint-restore path).
  void clear() noexcept;

 private:
  static constexpr std::uint8_t kInUse = 1u << 0;
  static constexpr std::uint8_t kReleased = 1u << 1;
  static constexpr std::uint8_t kEscalated = 1u << 2;
  static constexpr std::uint8_t kQuotaSlot = 1u << 3;

  [[nodiscard]] std::size_t bucket_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(hash_mix(key, kBucketSalt)) & bucket_mask_;
  }

  Slot alloc_slot();
  void unlink_bucket(Slot slot) noexcept;
  void unlink_age(Slot slot) noexcept;
  void release_quota(Slot slot) noexcept;
  [[nodiscard]] Slot capacity_victim() const noexcept;
  [[nodiscard]] Slot quota_victim(int replica) const noexcept;
  [[nodiscard]] VoteEvicted expel(Slot slot, VoteEvictReason reason) noexcept;

  /// Distinct salt from the compare cache's probe salt: the two caches
  /// must not correlate their collision patterns.
  static constexpr std::uint64_t kBucketSalt = 0x7EC0CACE5ULL;

  std::size_t capacity_ = 0;
  std::size_t per_replica_quota_ = 0;
  std::size_t size_ = 0;
  std::uint64_t evicted_capacity_ = 0;
  std::uint64_t evicted_quota_ = 0;

  // SoA arena columns, indexed by Slot.
  std::vector<std::uint64_t> key_;
  std::vector<std::uint64_t> packet_id_;
  std::vector<double> tally_;
  std::vector<std::uint64_t> mask_;
  std::vector<std::int64_t> first_seen_ns_;
  std::vector<std::uint32_t> bytes_;
  std::vector<std::int16_t> first_replica_;
  std::vector<std::uint8_t> flags_;
  std::vector<Slot> next_;      ///< bucket chain
  std::vector<Slot> age_prev_;  ///< intrusive age list (oldest at head)
  std::vector<Slot> age_next_;

  std::vector<Slot> buckets_;
  std::size_t bucket_mask_ = 0;
  std::vector<Slot> freelist_;
  Slot age_head_ = kNil;
  Slot age_tail_ = kNil;
  std::vector<std::size_t> quota_counts_;
};

}  // namespace netco::core
