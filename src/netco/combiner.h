// CombinerBuilder: assembles a robust network combiner (Fig. 2) around a
// router position in an existing Network.
//
// Given the router's n neighbors, the builder creates:
//   * one trusted edge switch per neighbor (hub + compare feeder + MAC
//     forwarding, all expressed as OF 1.0 rules — the paper's s1/s2);
//   * k untrusted replica switches wired in a parallel circuit, each with
//     a port toward every edge;
//   * a compare process attached to all edges as an out-of-band
//     controller (CompareService on a Controller with the chosen cost
//     profile: c_program() for Central*, pox() for POX3);
//   * anti-spoof screening on the replica-facing edge ports ("ensuring
//     its ingress port number matches its MAC source address"): packets
//     from a replica whose source MAC lives on this edge's own side are
//     dropped.
//
// combine=false builds the paper's Dup* reduction: packets are split but
// never combined — duplicates flow straight through to the destination.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "device/network.h"
#include "link/link.h"
#include "netco/compare_core.h"
#include "netco/compare_service.h"
#include "netco/fastpath.h"
#include "openflow/switch.h"

namespace netco::core {

/// One neighbor of the router position being wrapped.
struct PortAttachment {
  device::Node* neighbor = nullptr;       ///< existing node to splice to
  link::LinkConfig link;                   ///< edge ↔ neighbor link
  /// MACs of hosts reachable *via this neighbor* (this edge's own side).
  std::vector<net::MacAddress> local_macs;
};

/// Combiner construction options.
struct CombinerOptions {
  int k = 3;  ///< number of redundant replicas
  /// Compare element configuration (k is overridden with the value above).
  CompareConfig compare;
  /// Compare process personality: c_program() → Central*, pox() → POX*.
  controller::CostProfile compare_profile =
      controller::CostProfile::c_program();
  /// Links between edges and replicas.
  link::LinkConfig internal_link;
  /// false → Dup reduction: split only, no compare, duplicates pass through.
  bool combine = true;
  /// Vendor personalities for the replicas (cycled if fewer than k) —
  /// the diversity assumption made concrete.
  std::vector<openflow::SwitchProfile> replica_profiles;
  /// How long a flood-flagged replica port stays blocked (zero = forever).
  sim::Duration block_duration = sim::Duration::zero();
  /// Pipeline latency of the trusted edge switches (simple hardware).
  sim::Duration edge_delay = sim::Duration::microseconds(5);
};

/// Handles to everything a built combiner consists of.
struct CombinerInstance {
  std::vector<openflow::OpenFlowSwitch*> edges;     ///< one per attachment
  std::vector<openflow::OpenFlowSwitch*> replicas;  ///< k untrusted routers

  /// Port of edges[i] toward its neighbor.
  std::vector<device::PortIndex> edge_neighbor_port;
  /// Port created on attachment i's neighbor, toward edges[i].
  std::vector<device::PortIndex> neighbor_port;
  /// Port of edges[i] toward replicas[j]: edge_replica_port[i][j].
  std::vector<std::vector<device::PortIndex>> edge_replica_port;
  /// Port of replicas[j] toward edges[i]: replica_edge_port[j][i].
  std::vector<std::vector<device::PortIndex>> replica_edge_port;
  /// The edge↔replica links: edge_replica_link[i][j] (failure injection).
  std::vector<std::vector<link::Link*>> edge_replica_link;

  /// The compare process (nullptr when combine == false).
  std::unique_ptr<controller::Controller> compare_controller;
  std::unique_ptr<CompareService> compare;

  /// Sampled-verification fast-path taps, one per edge (empty unless
  /// options.compare.sampling.enabled): replica traffic short-circuits
  /// the packet-in round trip through these (§XII).
  std::vector<std::unique_ptr<FastPathTap>> fastpath_taps;

  /// Shadow compare cores registered by a warm standby (src/resilience,
  /// one per edge; non-owning). The health subsystem mirrors every
  /// set_replica_live transition into these so a promoted standby starts
  /// with the same live set the primary had.
  std::vector<CompareCore*> shadow_cores;

  /// Installs "dl_dst=mac → toward attachment `idx`" into every replica —
  /// the routing the original router would have done.
  void install_replica_route(const net::MacAddress& mac, std::size_t idx);
};

/// Builds a combiner around a router position whose neighbors are
/// `attachments`. `name_prefix` namespaces the created node names
/// ("<prefix>-e0", "<prefix>-r1", ...). Replica routing must be installed
/// afterwards (install_replica_route or custom rules).
CombinerInstance build_combiner(device::Network& network,
                                const CombinerOptions& options,
                                const std::vector<PortAttachment>& attachments,
                                const std::string& name_prefix);

/// Default replica vendor personalities used when options don't override:
/// three distinct "vendors" with slightly different pipeline latencies.
std::vector<openflow::SwitchProfile> default_replica_profiles();

}  // namespace netco::core
