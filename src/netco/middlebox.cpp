#include "netco/middlebox.h"

#include <utility>

#include "common/assert.h"

namespace netco::core {

CompareMiddlebox::CompareMiddlebox(sim::Simulator& simulator, std::string name,
                                   MiddleboxConfig config)
    : Node(simulator, std::move(name)),
      config_(config),
      core_(config.compare) {
  schedule_sweep();
}

void CompareMiddlebox::schedule_sweep() {
  if (sweep_scheduled_) return;
  sweep_scheduled_ = true;
  simulator().schedule_after(config_.compare.hold_timeout / 2, [this] {
    sweep_scheduled_ = false;
    core_.sweep(simulator().now());
    schedule_sweep();
  });
}

void CompareMiddlebox::handle_packet(device::PortIndex in_port,
                                     net::Packet packet) {
  if (in_port >= static_cast<device::PortIndex>(config_.compare.k)) {
    return;  // nothing arrives on the egress side in this direction
  }
  ++stats_.received;
  if (queue_.size() >= config_.queue_limit) {
    ++stats_.dropped_queue;
    return;
  }
  queue_.emplace_back(in_port, std::move(packet));
  if (!busy_) service_next();
}

void CompareMiddlebox::service_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const auto& [port, packet] = queue_.front();
  double cost_ns = static_cast<double>(config_.per_packet.ns()) +
                   config_.per_byte_ns * static_cast<double>(packet.size());
  if (config_.service_jitter > 0.0) {
    cost_ns *= simulator().rng().uniform(1.0 - config_.service_jitter,
                                         1.0 + config_.service_jitter);
  }
  simulator().schedule_after(
      sim::Duration::nanoseconds(static_cast<std::int64_t>(cost_ns)), [this] {
        auto [in_port, p] = std::move(queue_.front());
        queue_.pop_front();
        auto released =
            core_.ingest(static_cast<int>(in_port), std::move(p),
                         simulator().now());
        if (core_.last_cleanup_work() > 0) {
          // Model the cleanup stall by keeping the server busy longer.
          const auto stall =
              config_.cleanup_cost_per_entry *
              static_cast<std::int64_t>(core_.last_cleanup_work());
          simulator().schedule_after(stall, [this] { service_next(); });
          if (released) {
            ++stats_.released;
            send(egress_port(), std::move(*released));
          }
          return;
        }
        if (released) {
          ++stats_.released;
          send(egress_port(), std::move(*released));
        }
        service_next();
      });
}

}  // namespace netco::core
