#include "netco/fastpath.h"

#include <utility>

#include "common/assert.h"
#include "openflow/messages.h"

namespace netco::core {

bool FastPathTap::intercept(device::Datapath& datapath,
                            device::PortIndex in_port, net::Packet& packet) {
  const auto port = static_cast<std::size_t>(in_port);
  const int replica =
      port < port_to_replica_.size() ? port_to_replica_[port] : -1;
  if (replica < 0) {
    return false;  // host-side traffic: hub/broadcast rules apply
  }
  openflow::OpenFlowSwitch* edge = edge_;
  NETCO_ASSERT_MSG(edge == &datapath,
                   "FastPathTap installed on a different datapath than it "
                   "was built for");

  if (packet.size() >= 12) {
    const net::MacAddress src = packet.mac_at(6);
    for (const auto& mac : config_.local_macs) {
      if (src == mac) {
        // Spoofed source: fall through so the table's priority-25
        // anti-spoof rule drops it, exactly as without the tap.
        return false;
      }
    }
  }

  const FastResult result =
      core_->ingest_sampled(replica, packet, edge->simulator().now());
  if (result.escalated) {
    // Elected for the full k-way compare: the classic punt. The compare
    // process ingests it and (maybe) packet-outs the release.
    ++escalated_;
    edge->send_to_controller(in_port, std::move(packet));
    return true;
  }
  if (result.released.has_value()) {
    // Fast-path release: run the released copy through this edge's own
    // flow table with no in_port context — byte-for-byte what a
    // packet-out OFPP_TABLE from the compare process does, minus the
    // control-channel round trip.
    ++released_;
    edge->apply_actions(device::kNoPort,
                        {openflow::OutputAction::table()},
                        std::move(*result.released));
    return true;
  }
  ++absorbed_;  // voted without releasing, or duplicate/late noise
  return true;
}

}  // namespace netco::core
