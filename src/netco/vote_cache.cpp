#include "netco/vote_cache.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/assert.h"

namespace netco::core {

namespace {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

WeightedVoteCache::WeightedVoteCache(std::size_t capacity,
                                     std::size_t per_replica_quota, int k)
    : capacity_(std::max<std::size_t>(1, capacity)),
      per_replica_quota_(per_replica_quota) {
  NETCO_ASSERT_MSG(k >= 1 && k <= kMaxReplicas,
                   "vote cache fleet size must fit the 64-bit replica mask");
  const std::size_t arena = capacity_;
  key_.resize(arena);
  packet_id_.resize(arena);
  tally_.resize(arena);
  mask_.resize(arena);
  first_seen_ns_.resize(arena);
  bytes_.resize(arena);
  first_replica_.resize(arena, -1);
  flags_.resize(arena, 0);
  next_.resize(arena, kNil);
  age_prev_.resize(arena, kNil);
  age_next_.resize(arena, kNil);
  // Two buckets per slot keeps the expected chain length below one.
  buckets_.assign(next_pow2(arena * 2), kNil);
  bucket_mask_ = buckets_.size() - 1;
  freelist_.reserve(arena);
  for (std::size_t i = arena; i-- > 0;) {
    freelist_.push_back(static_cast<Slot>(i));
  }
  quota_counts_.assign(static_cast<std::size_t>(std::max(k, 1)), 0);
}

WeightedVoteCache::Slot WeightedVoteCache::find(
    std::uint64_t key) const noexcept {
  Slot slot = buckets_[bucket_of(key)];
  while (slot != kNil) {
    const Slot ahead = next_[slot];
    if (ahead != kNil) __builtin_prefetch(&key_[ahead]);
    if (key_[slot] == key) return slot;
    slot = ahead;
  }
  return kNil;
}

WeightedVoteCache::Slot WeightedVoteCache::alloc_slot() {
  const Slot slot = freelist_.back();
  freelist_.pop_back();
  return slot;
}

void WeightedVoteCache::unlink_bucket(Slot slot) noexcept {
  const std::size_t bucket = bucket_of(key_[slot]);
  Slot cur = buckets_[bucket];
  if (cur == slot) {
    buckets_[bucket] = next_[slot];
    return;
  }
  while (cur != kNil) {
    if (next_[cur] == slot) {
      next_[cur] = next_[slot];
      return;
    }
    cur = next_[cur];
  }
  assert(false && "slot missing from its bucket chain");
}

void WeightedVoteCache::unlink_age(Slot slot) noexcept {
  const Slot prev = age_prev_[slot];
  const Slot next = age_next_[slot];
  if (prev != kNil) age_next_[prev] = next; else age_head_ = next;
  if (next != kNil) age_prev_[next] = prev; else age_tail_ = prev;
  age_prev_[slot] = kNil;
  age_next_[slot] = kNil;
}

void WeightedVoteCache::release_quota(Slot slot) noexcept {
  if ((flags_[slot] & kQuotaSlot) == 0) return;
  flags_[slot] = static_cast<std::uint8_t>(flags_[slot] & ~kQuotaSlot);
  const int replica = first_replica_[slot];
  if (replica >= 0 &&
      static_cast<std::size_t>(replica) < quota_counts_.size()) {
    assert(quota_counts_[static_cast<std::size_t>(replica)] > 0);
    --quota_counts_[static_cast<std::size_t>(replica)];
  }
}

WeightedVoteCache::Slot WeightedVoteCache::capacity_victim() const noexcept {
  // Bounded oldest-first scan (ties on tally keep the first = oldest
  // candidate), with a two-level preference: an *unreleased* entry always
  // goes before a released one — a just-released slot evicted while its
  // sibling copies are still in flight would let the recreated entry
  // release the same packet twice — and *escalated* routing memos are
  // spared entirely unless the cache holds nothing else (losing a memo
  // can split one packet's copies across the fast and full paths).
  Slot best_open = kNil;      // unreleased, non-escalated
  Slot best_released = kNil;  // released, non-escalated
  double best_open_tally = 0.0;
  double best_released_tally = 0.0;
  Slot s = age_head_;
  for (std::size_t scanned = 0; s != kNil && scanned < kVictimScanLimit;
       s = age_next_[s], ++scanned) {
    if ((flags_[s] & kEscalated) != 0) continue;
    if ((flags_[s] & kReleased) != 0) {
      if (best_released == kNil || tally_[s] < best_released_tally) {
        best_released = s;
        best_released_tally = tally_[s];
      }
    } else if (best_open == kNil || tally_[s] < best_open_tally) {
      best_open = s;
      best_open_tally = tally_[s];
    }
  }
  if (best_open != kNil) return best_open;
  if (best_released != kNil) return best_released;
  // The sampled window was all memos: walk on for the first evictable
  // entry; a cache of nothing but memos surrenders its oldest one.
  for (; s != kNil; s = age_next_[s]) {
    if ((flags_[s] & kEscalated) == 0) return s;
  }
  return age_head_;
}

WeightedVoteCache::Slot WeightedVoteCache::quota_victim(
    int replica) const noexcept {
  for (Slot s = age_head_; s != kNil; s = age_next_[s]) {
    if ((flags_[s] & kQuotaSlot) != 0 && first_replica_[s] == replica) {
      return s;
    }
  }
  return kNil;
}

VoteEvicted WeightedVoteCache::expel(Slot slot,
                                     VoteEvictReason reason) noexcept {
  VoteEvicted out;
  out.key = key_[slot];
  out.packet_id = packet_id_[slot];
  out.mask = mask_[slot];
  out.bytes = bytes_[slot];
  out.first_replica = first_replica_[slot];
  out.released = (flags_[slot] & kReleased) != 0;
  out.escalated = (flags_[slot] & kEscalated) != 0;
  out.first_seen_ns = first_seen_ns_[slot];
  out.reason = reason;
  if (reason == VoteEvictReason::kCapacity) ++evicted_capacity_;
  else ++evicted_quota_;
  erase(slot);
  return out;
}

WeightedVoteCache::Slot WeightedVoteCache::insert(
    std::uint64_t key, std::uint64_t packet_id, std::int64_t now_ns,
    std::uint32_t bytes, int first_replica, bool escalated,
    std::vector<VoteEvicted>& evicted) {
  // Escalated memos neither consume nor trigger the quota: only an insert
  // that is about to take a quota slot may push out its replica's oldest
  // singleton.
  if (!escalated && first_replica >= 0 &&
      static_cast<std::size_t>(first_replica) < quota_counts_.size() &&
      per_replica_quota_ > 0 &&
      quota_counts_[static_cast<std::size_t>(first_replica)] >=
          per_replica_quota_) {
    const Slot victim = quota_victim(first_replica);
    if (victim != kNil) evicted.push_back(expel(victim, VoteEvictReason::kQuota));
  }
  while (size_ >= capacity_) {
    const Slot victim = capacity_victim();
    if (victim == kNil) break;
    evicted.push_back(expel(victim, VoteEvictReason::kCapacity));
  }

  const Slot slot = alloc_slot();
  key_[slot] = key;
  packet_id_[slot] = packet_id;
  tally_[slot] = 0.0;
  mask_[slot] = 0;
  first_seen_ns_[slot] = now_ns;
  bytes_[slot] = bytes;
  first_replica_[slot] = static_cast<std::int16_t>(first_replica);
  flags_[slot] = kInUse;
  if (escalated) flags_[slot] |= kEscalated;
  if (!escalated && first_replica >= 0 &&
      static_cast<std::size_t>(first_replica) < quota_counts_.size()) {
    flags_[slot] |= kQuotaSlot;
    ++quota_counts_[static_cast<std::size_t>(first_replica)];
  }

  const std::size_t bucket = bucket_of(key);
  next_[slot] = buckets_[bucket];
  buckets_[bucket] = slot;

  age_prev_[slot] = age_tail_;
  age_next_[slot] = kNil;
  if (age_tail_ != kNil) age_next_[age_tail_] = slot; else age_head_ = slot;
  age_tail_ = slot;

  ++size_;
  return slot;
}

bool WeightedVoteCache::add_vote(Slot slot, int replica,
                                 double weight) noexcept {
  // Mirror the bounds checks in insert()/release_quota(): a replica the
  // 64-bit mask cannot represent must be rejected, not shifted into UB.
  // (Config layers validate k <= kMaxReplicas up front, so hitting this
  // means a corrupted replica id, not an oversized fleet.)
  if (replica < 0 || replica >= kMaxReplicas) return false;
  const std::uint64_t bit = 1ULL << static_cast<unsigned>(replica);
  if ((mask_[slot] & bit) != 0) return false;
  mask_[slot] |= bit;
  tally_[slot] += weight;
  if (std::popcount(mask_[slot]) == 2) release_quota(slot);
  return true;
}

void WeightedVoteCache::set_released(Slot slot) noexcept {
  flags_[slot] |= kReleased;
  release_quota(slot);
}

void WeightedVoteCache::erase(Slot slot) noexcept {
  release_quota(slot);
  unlink_bucket(slot);
  unlink_age(slot);
  flags_[slot] = 0;
  next_[slot] = kNil;
  freelist_.push_back(slot);
  --size_;
}

void WeightedVoteCache::set_capacity(std::size_t capacity,
                                     std::vector<VoteEvicted>& evicted) {
  // The arena is sized once at construction; the logical capacity moves
  // inside it (squeeze faults shrink, restore grows back).
  capacity_ = std::clamp<std::size_t>(capacity, 1, key_.size());
  while (size_ > capacity_) {
    const Slot victim = capacity_victim();
    if (victim == kNil) break;
    evicted.push_back(expel(victim, VoteEvictReason::kCapacity));
  }
}

VoteCacheAudit WeightedVoteCache::audit() const {
  VoteCacheAudit out;
  out.entries = size_;
  out.capacity = capacity_;
  out.arena = key_.size();
  out.free_slots = freelist_.size();
  out.quota_counts = quota_counts_;
  out.live_quota_held.assign(quota_counts_.size(), 0);

  std::int64_t prev_seen = 0;
  bool first = true;
  for (Slot s = age_head_; s != kNil; s = age_next_[s]) {
    ++out.age_entries;
    if (!first && first_seen_ns_[s] < prev_seen) out.age_ordered = false;
    prev_seen = first_seen_ns_[s];
    first = false;
    if (out.age_entries > out.arena) break;  // cycle guard
  }
  for (const Slot head : buckets_) {
    std::size_t guard = 0;
    for (Slot s = head; s != kNil; s = next_[s]) {
      ++out.chain_entries;
      if ((flags_[s] & kQuotaSlot) != 0 && first_replica_[s] >= 0 &&
          static_cast<std::size_t>(first_replica_[s]) <
              out.live_quota_held.size()) {
        ++out.live_quota_held[static_cast<std::size_t>(first_replica_[s])];
      }
      if (++guard > out.arena) break;  // cycle guard
    }
  }
  out.consistent = out.entries == out.age_entries &&
                   out.entries == out.chain_entries &&
                   out.entries + out.free_slots == out.arena;
  return out;
}

void WeightedVoteCache::clear() noexcept {
  std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
  std::fill(next_.begin(), next_.end(), kNil);
  std::fill(buckets_.begin(), buckets_.end(), kNil);
  std::fill(quota_counts_.begin(), quota_counts_.end(), 0);
  age_head_ = kNil;
  age_tail_ = kNil;
  size_ = 0;
  freelist_.clear();
  for (std::size_t i = key_.size(); i-- > 0;) {
    freelist_.push_back(static_cast<Slot>(i));
  }
}

}  // namespace netco::core
