// CompareService: the compare element deployed as an out-of-band process,
// attached to the trusted edge switches "akin of an OpenFlow controller,
// using packet-in and packet-out messages" (§IV).
//
// The same service class models both the paper's fast compare (a C program
// on a dedicated host, h3 — run it on a Controller with the c_program()
// cost profile) and the slow reference implementation (POX3 — run it with
// the pox() profile). Per edge switch it keeps an isolated CompareCore;
// replica identity is derived from the packet-in ingress port.
//
// Operational behaviours:
//  * released packets return via packet-out with an OFPP_TABLE action, so
//    the trusted edge forwards them "based on the switch's MAC table";
//  * a flood-flagged replica port gets a port-mod block (optionally
//    time-limited), the §IV case-2 advice;
//  * inactivity alarms are recorded for the administrator (case 3);
//  * cache-cleanup work is billed to the controller CPU via charge_extra,
//    which is what makes small-packet floods raise jitter (§V-B).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "controller/controller.h"
#include "netco/compare_core.h"

namespace netco::core {

/// A recorded administrator notification.
struct CompareAlarm {
  enum class Kind : std::uint8_t { kPortBlocked, kReplicaInactive };
  std::string edge;  ///< edge switch name
  int replica = 0;
  Kind kind = Kind::kPortBlocked;
  sim::TimePoint at;
};

/// The out-of-band compare process.
class CompareService : public controller::App {
 public:
  /// Liveness of the compare *process* (one process serves every edge, as
  /// in the paper's single h3 deployment). Crash-recovery (src/resilience)
  /// drives the transitions; the default is kLive.
  ///  * kCrashed — process dead, in-memory state lost. Packet-ins and
  ///    sweeps are dropped until a warm restart restores the cores.
  ///  * kHung — process wedged (heartbeats stop) but memory intact;
  ///    un-hanging resumes exactly where it stopped.
  ///  * kRetired — fenced after a standby promotion: even if the old
  ///    primary comes back it must never release again (split-brain
  ///    would mean duplicate egress).
  enum class ProcessState : std::uint8_t { kLive, kCrashed, kHung, kRetired };

  /// Per-edge-switch deployment configuration.
  struct EdgeConfig {
    /// Edge ingress port → replica index in [0, k).
    std::unordered_map<device::PortIndex, int> replica_ports;
    /// Virtualized NetCo (§VII): when non-empty, the replica identity is
    /// the 802.1Q tunnel tag instead of the ingress port, and the tag is
    /// stripped before comparison (the k tunnel copies differ only in
    /// their tag; the compare must see the original frame).
    std::unordered_map<std::uint16_t, int> replica_vlans;
    /// Compare element parameters for this edge's core.
    CompareConfig compare;
    /// How long a flood-flagged port stays blocked (zero = forever).
    sim::Duration block_duration = sim::Duration::zero();
    /// Detection-only deployments (sampling, §IX): ingest and alarm but
    /// never packet-out a release — the data plane already forwarded.
    bool verify_only = false;
    /// CPU cost billed per entry evicted in a cleanup pass (cold scan +
    /// free in the prototype's C cache).
    sim::Duration cleanup_cost_per_entry = sim::Duration::nanoseconds(800);
  };

  /// Registers the deployment config for a named edge switch. Must happen
  /// before that switch attaches to the controller.
  void configure_edge(const std::string& switch_name, EdgeConfig config);

  // controller::App:
  void on_attached(controller::Controller& controller,
                   openflow::ControlChannel& channel) override;
  void on_packet_in(controller::Controller& controller,
                    openflow::ControlChannel& channel,
                    openflow::PacketIn event) override;

  /// All alarms raised so far (monitoring / tests).
  [[nodiscard]] const std::vector<CompareAlarm>& alarms() const noexcept {
    return alarms_;
  }

  /// Compare statistics for one edge (nullptr if unknown).
  [[nodiscard]] const CompareStats* stats_for(
      const std::string& edge_name) const;

  /// Mutable access to one edge's compare core (nullptr if unknown).
  /// Fault injection uses this to squeeze the cache or audit invariants.
  [[nodiscard]] CompareCore* core_for(const std::string& edge_name);

  /// Drops the control channel for an edge (switch crash / teardown).
  /// Pending timers and sweeps keep running against the core but stop
  /// touching the dead channel; advice stays pending until re-attach.
  void detach_edge(const std::string& edge_name);

  /// Packet-ins that arrived from a port not registered as a replica port.
  [[nodiscard]] std::uint64_t unknown_port_drops() const noexcept {
    return unknown_port_drops_;
  }

  /// Crash-recovery hooks (src/resilience): process liveness.
  void set_process_state(ProcessState state) noexcept { state_ = state; }
  [[nodiscard]] ProcessState process_state() const noexcept { return state_; }

  /// Packet-ins dropped because the process was not kLive.
  [[nodiscard]] std::uint64_t downtime_drops() const noexcept {
    return downtime_drops_;
  }

 private:
  struct EdgeState {
    EdgeConfig config;
    CompareCore core;
    openflow::ControlChannel* channel = nullptr;
    explicit EdgeState(EdgeConfig cfg)
        : config(std::move(cfg)), core(config.compare) {}
  };

  void act_on_advice(controller::Controller& controller, EdgeState& state);
  void schedule_sweep(controller::Controller& controller, EdgeState& state);

  std::unordered_map<std::string, EdgeState> edges_;
  std::vector<CompareAlarm> alarms_;
  std::uint64_t unknown_port_drops_ = 0;
  ProcessState state_ = ProcessState::kLive;
  std::uint64_t downtime_drops_ = 0;
};

}  // namespace netco::core
