// Hub: the trusted splitter element of the robust combiner (§III).
//
// "The implementation of the hubs is simple and can be realized in the
// datapath: the logic boils down to multiplying the packets, in a
// stateless manner." — the paper's argument is that such a component is
// simple enough to fabricate as trusted hardware. The class below is that
// component as a standalone Node; deployments that realize the hub as flow
// rules on a trusted OpenFlow edge switch use install_hub_rules() instead.
//
// The health subsystem adds one piece of (trusted) configuration to the
// otherwise stateless splitter: a dynamic per-port mask. A masked port is
// excluded from the fan-out — quarantining a replica without rewiring —
// except for an optional probe trickle: every `probe_stride`-th upstream
// packet is copied to masked ports too, feeding the probation scoring that
// decides readmission.
#pragma once

#include <cstdint>
#include <vector>

#include "device/node.h"
#include "obs/observability.h"
#include "openflow/switch.h"
#include "sim/time.h"

namespace netco::core {

/// A 1-to-N packet multiplier with a dynamic per-port fan-out mask.
///
/// Port 0 is the upstream side; every packet arriving there is copied to
/// every other unmasked port. Packets arriving on any other port are
/// forwarded to port 0 unchanged (so a Hub pair can also merge in the
/// reverse direction). No per-packet state beyond the split sequence the
/// probe trickle is derived from.
class Hub : public device::Node {
 public:
  Hub(sim::Simulator& simulator, std::string name,
      sim::Duration processing_delay = sim::Duration::nanoseconds(500));

  void handle_packet(device::PortIndex in_port, net::Packet packet) override;

  /// Masks `port` out of (or back into) the upstream fan-out. Masking the
  /// upstream port 0 is meaningless and ignored.
  void set_port_masked(device::PortIndex port, bool masked);

  /// Whether `port` is currently excluded from the fan-out.
  [[nodiscard]] bool port_masked(device::PortIndex port) const noexcept;

  /// Probe trickle: every `stride`-th split also copies to masked ports
  /// (0 disables the trickle — masked ports then receive nothing).
  void set_probe_stride(std::uint64_t stride) noexcept {
    probe_stride_ = stride;
  }

  /// Packets multiplied so far (upstream-direction arrivals). Reads the
  /// per-instance registry counter — the metrics registry is the single
  /// source of truth, there is no shadow count.
  [[nodiscard]] std::uint64_t split_count() const noexcept {
    return split_counter_->value();
  }
  /// Packets merged toward upstream so far.
  [[nodiscard]] std::uint64_t merge_count() const noexcept {
    return merge_counter_->value();
  }

 private:
  sim::Duration delay_;
  std::vector<bool> masked_;        ///< indexed by port, grown on demand
  std::uint64_t probe_stride_ = 0;  ///< 0 = no trickle to masked ports
  obs::Observability* obs_;
  obs::Counter* split_counter_;     ///< per-instance ("hub.<name>.split")
  obs::Counter* merge_counter_;     ///< per-instance ("hub.<name>.merge")
  obs::Counter* split_total_;       ///< fleet-wide aggregate ("hub.split")
  obs::Counter* merge_total_;       ///< fleet-wide aggregate ("hub.merge")
  obs::Counter* fanout_counter_;    ///< copies actually emitted
};

/// Realizes the hub as flow rules on a trusted OpenFlow switch: every
/// packet entering on `from` is output on each port in `to`.
void install_hub_rules(openflow::OpenFlowSwitch& sw, device::PortIndex from,
                       const std::vector<device::PortIndex>& to,
                       std::uint16_t priority = 30);

/// Removes the fan-out rule install_hub_rules() placed for `from` — a hub
/// crash in the rules-on-edge deployment. The hub is stateless, so a
/// restart is exactly install_hub_rules() again: the switch's port and
/// registry counters continue from where they were (counter continuity).
void remove_hub_rules(openflow::OpenFlowSwitch& sw, device::PortIndex from,
                      std::uint16_t priority = 30);

}  // namespace netco::core
