// Hub: the trusted splitter element of the robust combiner (§III).
//
// "The implementation of the hubs is simple and can be realized in the
// datapath: the logic boils down to multiplying the packets, in a
// stateless manner." — the paper's argument is that such a component is
// simple enough to fabricate as trusted hardware. The class below is that
// component as a standalone Node; deployments that realize the hub as flow
// rules on a trusted OpenFlow edge switch use install_hub_rules() instead.
#pragma once

#include <cstdint>

#include "device/node.h"
#include "obs/observability.h"
#include "openflow/switch.h"
#include "sim/time.h"

namespace netco::core {

/// A stateless 1-to-N packet multiplier.
///
/// Port 0 is the upstream side; every packet arriving there is copied to
/// every other port. Packets arriving on any other port are forwarded to
/// port 0 unchanged (so a Hub pair can also merge in the reverse
/// direction). No table, no state — by construction.
class Hub : public device::Node {
 public:
  Hub(sim::Simulator& simulator, std::string name,
      sim::Duration processing_delay = sim::Duration::nanoseconds(500))
      : Node(simulator, std::move(name)),
        delay_(processing_delay),
        obs_(&obs::global()),
        split_counter_(&obs_->metrics.counter("hub.split")),
        merge_counter_(&obs_->metrics.counter("hub.merge")),
        fanout_counter_(&obs_->metrics.counter("hub.copies_out")) {}

  void handle_packet(device::PortIndex in_port, net::Packet packet) override;

  /// Packets multiplied so far (upstream-direction arrivals).
  [[nodiscard]] std::uint64_t split_count() const noexcept { return split_; }
  /// Packets merged toward upstream so far.
  [[nodiscard]] std::uint64_t merge_count() const noexcept { return merged_; }

 private:
  sim::Duration delay_;
  std::uint64_t split_ = 0;
  std::uint64_t merged_ = 0;
  obs::Observability* obs_;
  obs::Counter* split_counter_;
  obs::Counter* merge_counter_;
  obs::Counter* fanout_counter_;
};

/// Realizes the hub as flow rules on a trusted OpenFlow switch: every
/// packet entering on `from` is output on each port in `to`.
void install_hub_rules(openflow::OpenFlowSwitch& sw, device::PortIndex from,
                       const std::vector<device::PortIndex>& to,
                       std::uint16_t priority = 30);

}  // namespace netco::core
