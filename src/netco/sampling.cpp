#include "netco/sampling.h"

#include "common/assert.h"
#include "common/fmt.h"
#include "common/hash.h"

namespace netco::core {

bool SamplingEdgeLogic::is_sampled(const net::Packet& packet) const noexcept {
  if (config_.sample_rate >= 1.0) return true;
  if (config_.sample_rate <= 0.0) return false;
  // Deterministic content hash → uniform [0,1) threshold test. Identical
  // copies sample identically; a *modified* copy may sample differently,
  // which surfaces at the compare as an unconfirmed singleton — still a
  // detection signal. content_hash() is memoized in the shared payload
  // buffer, so across the k copies of a datagram the payload is hashed
  // once, not once per edge decision.
  const std::uint64_t mixed = hash_mix(packet.content_hash(), 0x5A4D);
  const double u =
      static_cast<double>(mixed >> 11) * 0x1.0p-53;  // [0,1)
  return u < config_.sample_rate;
}

bool SamplingEdgeLogic::intercept(device::Datapath& datapath,
                                  device::PortIndex in_port,
                                  net::Packet& packet) {
  const auto it = config_.replica_ports.find(in_port);
  if (it == config_.replica_ports.end()) {
    return false;  // not replica traffic: normal rules apply
  }
  // The sampling logic lives on a trusted OpenFlow edge; escalation uses
  // its packet-in path.
  auto* edge = dynamic_cast<openflow::OpenFlowSwitch*>(&datapath);
  NETCO_ASSERT_MSG(edge != nullptr,
                   "SamplingEdgeLogic requires an OpenFlow edge switch");

  const bool sampled = is_sampled(packet);
  if (it->second == config_.primary_replica) {
    ++forwarded_;
    if (sampled) {
      ++sampled_;
      edge->send_to_controller(in_port, packet);
    }
    edge->raw_output(config_.neighbor_port, std::move(packet));
    return true;
  }
  if (sampled) {
    ++sampled_;
    edge->send_to_controller(in_port, std::move(packet));
  }
  return true;  // secondary copies never continue downstream
}

void SamplingCombinerInstance::install_replica_route(
    const net::MacAddress& mac, std::size_t idx) {
  NETCO_ASSERT(idx < edges.size());
  for (std::size_t j = 0; j < replicas.size(); ++j) {
    openflow::FlowSpec spec;
    spec.match.with_dl_dst(mac);
    spec.actions = {openflow::OutputAction::to(replica_edge_port[j][idx])};
    spec.priority = 10;
    replicas[j]->table().add(std::move(spec),
                             replicas[j]->simulator().now());
  }
}

SamplingCombinerInstance build_sampling_combiner(
    device::Network& network, const SamplingCombinerOptions& options,
    const std::vector<PortAttachment>& attachments,
    const std::string& name_prefix) {
  NETCO_ASSERT(options.k >= 2);
  NETCO_ASSERT(options.primary_replica >= 0 &&
               options.primary_replica < options.k);
  const auto k = static_cast<std::size_t>(options.k);
  const std::size_t n = attachments.size();

  SamplingCombinerInstance inst;
  const auto profiles = options.replica_profiles.empty()
                            ? default_replica_profiles()
                            : options.replica_profiles;

  for (std::size_t j = 0; j < k; ++j) {
    auto& replica = network.add_node<openflow::OpenFlowSwitch>(
        fmt("{}-r{}", name_prefix, j), profiles[j % profiles.size()]);
    inst.replicas.push_back(&replica);
  }

  const openflow::SwitchProfile edge_profile{
      .vendor = "trusted-edge", .processing_delay = options.edge_delay};
  inst.edge_replica_port.resize(n);
  inst.replica_edge_port.resize(k);
  for (std::size_t i = 0; i < n; ++i) {
    auto& edge = network.add_node<openflow::OpenFlowSwitch>(
        fmt("{}-e{}", name_prefix, i), edge_profile);
    inst.edges.push_back(&edge);
    const auto conn =
        network.connect(*attachments[i].neighbor, edge, attachments[i].link);
    inst.edge_neighbor_port.push_back(conn.b_port);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const auto conn = network.connect(*inst.edges[i], *inst.replicas[j],
                                        options.internal_link);
      inst.edge_replica_port[i].push_back(conn.a_port);
      inst.replica_edge_port[j].push_back(conn.b_port);
    }
  }

  inst.compare = std::make_unique<CompareService>();
  inst.compare_controller = std::make_unique<controller::Controller>(
      network.simulator(), fmt("{}-compare", name_prefix), *inst.compare,
      options.compare_profile);

  for (std::size_t i = 0; i < n; ++i) {
    auto& edge = *inst.edges[i];
    const auto now = network.simulator().now();

    // Hub: neighbor traffic is still copied to every replica (sampling
    // reduces compare load, not replica load).
    openflow::FlowSpec hub;
    hub.match.with_in_port(inst.edge_neighbor_port[i]);
    for (std::size_t j = 0; j < k; ++j) {
      hub.actions.push_back(
          openflow::OutputAction::to(inst.edge_replica_port[i][j]));
    }
    hub.priority = 30;
    edge.table().add(std::move(hub), now);

    // The trusted sampling logic replaces the punt rules.
    SamplingEdgeLogic::Config logic_config;
    logic_config.primary_replica = options.primary_replica;
    logic_config.neighbor_port = inst.edge_neighbor_port[i];
    logic_config.sample_rate = options.sample_rate;

    CompareService::EdgeConfig edge_config;
    edge_config.compare = options.compare;
    edge_config.compare.k = options.k;
    edge_config.compare.policy = ReleasePolicy::kFirstCopy;  // detection
    edge_config.verify_only = true;
    for (std::size_t j = 0; j < k; ++j) {
      logic_config.replica_ports[inst.edge_replica_port[i][j]] =
          static_cast<int>(j);
      edge_config.replica_ports[inst.edge_replica_port[i][j]] =
          static_cast<int>(j);
    }
    inst.edge_logic.push_back(
        std::make_unique<SamplingEdgeLogic>(std::move(logic_config)));
    edge.set_interceptor(inst.edge_logic.back().get());

    inst.compare->configure_edge(edge.name(), std::move(edge_config));
    inst.compare_controller->attach(edge);
  }
  return inst;
}

}  // namespace netco::core
