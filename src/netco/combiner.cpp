#include "netco/combiner.h"

#include <utility>

#include "common/assert.h"
#include "common/fmt.h"
#include "controller/static_routing.h"

namespace netco::core {

std::vector<openflow::SwitchProfile> default_replica_profiles() {
  // Three "vendors" (think: different manufacturers/countries) with
  // slightly different ASIC latencies — harmless skew that exercises the
  // compare's reordering tolerance.
  return {
      openflow::SwitchProfile{.vendor = "vendor-a",
                              .processing_delay =
                                  sim::Duration::microseconds(15)},
      openflow::SwitchProfile{.vendor = "vendor-b",
                              .processing_delay =
                                  sim::Duration::nanoseconds(16500)},
      openflow::SwitchProfile{.vendor = "vendor-c",
                              .processing_delay =
                                  sim::Duration::nanoseconds(13800)},
  };
}

void CombinerInstance::install_replica_route(const net::MacAddress& mac,
                                             std::size_t idx) {
  NETCO_ASSERT(idx < edges.size());
  for (std::size_t j = 0; j < replicas.size(); ++j) {
    controller::install_mac_route(*replicas[j], mac, replica_edge_port[j][idx]);
  }
}

namespace {

/// Installs "dl_dst=ff:ff:ff:ff:ff:ff → FLOOD" (ARP and other broadcast
/// traffic crosses the replicas like any switch would forward it).
void install_broadcast_flood(openflow::OpenFlowSwitch& sw) {
  openflow::FlowSpec spec;
  spec.match.with_dl_dst(net::MacAddress::broadcast());
  spec.actions = {openflow::OutputAction::flood()};
  spec.priority = 5;
  sw.table().add(std::move(spec), sw.simulator().now());
}

}  // namespace

CombinerInstance build_combiner(device::Network& network,
                                const CombinerOptions& options,
                                const std::vector<PortAttachment>& attachments,
                                const std::string& name_prefix) {
  NETCO_ASSERT(options.k >= 2);
  NETCO_ASSERT(!attachments.empty());
  const auto k = static_cast<std::size_t>(options.k);
  const std::size_t n = attachments.size();

  CombinerInstance inst;
  const auto profiles = options.replica_profiles.empty()
                            ? default_replica_profiles()
                            : options.replica_profiles;

  // 1. The k untrusted replicas (with standard broadcast flooding).
  for (std::size_t j = 0; j < k; ++j) {
    auto& replica = network.add_node<openflow::OpenFlowSwitch>(
        fmt("{}-r{}", name_prefix, j), profiles[j % profiles.size()]);
    install_broadcast_flood(replica);
    inst.replicas.push_back(&replica);
  }

  // 2. One trusted edge per attachment, spliced to the neighbor.
  const openflow::SwitchProfile edge_profile{
      .vendor = "trusted-edge", .processing_delay = options.edge_delay};
  inst.edge_replica_port.resize(n);
  inst.replica_edge_port.resize(k);
  for (std::size_t i = 0; i < n; ++i) {
    auto& edge = network.add_node<openflow::OpenFlowSwitch>(
        fmt("{}-e{}", name_prefix, i), edge_profile);
    inst.edges.push_back(&edge);

    const auto conn =
        network.connect(*attachments[i].neighbor, edge, attachments[i].link);
    inst.edge_neighbor_port.push_back(conn.b_port);
    inst.neighbor_port.push_back(conn.a_port);
  }

  // 3. Full mesh edge ↔ replica.
  inst.edge_replica_link.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const auto conn = network.connect(*inst.edges[i], *inst.replicas[j],
                                        options.internal_link);
      inst.edge_replica_port[i].push_back(conn.a_port);
      inst.replica_edge_port[j].push_back(conn.b_port);
      inst.edge_replica_link[i].push_back(conn.link);
    }
  }

  // 4. Compare process (unless this is a Dup reduction).
  if (options.combine) {
    inst.compare = std::make_unique<CompareService>();
    inst.compare_controller = std::make_unique<controller::Controller>(
        network.simulator(), fmt("{}-compare", name_prefix), *inst.compare,
        options.compare_profile);
  }

  // 5. Rules on each edge.
  for (std::size_t i = 0; i < n; ++i) {
    auto& edge = *inst.edges[i];
    const auto now = network.simulator().now();

    // Hub: every packet from the neighbor is copied to all k replicas.
    {
      openflow::FlowSpec spec;
      spec.match.with_in_port(inst.edge_neighbor_port[i]);
      for (std::size_t j = 0; j < k; ++j) {
        spec.actions.push_back(
            openflow::OutputAction::to(inst.edge_replica_port[i][j]));
      }
      spec.priority = 30;
      edge.table().add(std::move(spec), now);
    }

    // Broadcast (ARP who-has): released broadcast frames go out to this
    // edge's neighbor like any other frame.
    {
      openflow::FlowSpec bcast;
      bcast.match.with_dl_dst(net::MacAddress::broadcast());
      bcast.actions = {
          openflow::OutputAction::to(inst.edge_neighbor_port[i])};
      bcast.priority = 10;
      edge.table().add(std::move(bcast), now);
    }

    // MAC forwarding toward the neighbor (used by released packets via
    // packet-out OFPP_TABLE, and by the Dup reduction directly).
    for (const auto& mac : attachments[i].local_macs) {
      openflow::FlowSpec spec;
      spec.match.with_dl_dst(mac);
      spec.actions = {
          openflow::OutputAction::to(inst.edge_neighbor_port[i])};
      spec.priority = 10;
      edge.table().add(std::move(spec), now);
    }

    if (!options.combine) continue;  // Dup: replicas' output falls through
                                     // to the dl_dst rules above

    // Compare feeding with anti-spoof screening: a packet arriving from a
    // replica may only carry a source MAC that does NOT live on this
    // edge's own side (it must have entered the combiner elsewhere).
    CompareService::EdgeConfig edge_config;
    edge_config.compare = options.compare;
    edge_config.compare.k = options.k;
    edge_config.block_duration = options.block_duration;

    for (std::size_t j = 0; j < k; ++j) {
      const device::PortIndex rp = inst.edge_replica_port[i][j];
      edge_config.replica_ports[rp] = static_cast<int>(j);

      // Screen: this edge's own MACs coming back from a replica = spoof.
      for (const auto& mac : attachments[i].local_macs) {
        openflow::FlowSpec drop;
        drop.match.with_in_port(rp).with_dl_src(mac);
        drop.actions = {};  // drop
        drop.priority = 25;
        edge.table().add(std::move(drop), now);
      }
      // Everything else from a replica goes to the compare.
      openflow::FlowSpec punt;
      punt.match.with_in_port(rp);
      punt.actions = {openflow::OutputAction::controller()};
      punt.priority = 20;
      edge.table().add(std::move(punt), now);
    }

    // Sampled-verification fast path (§XII): replica copies short-circuit
    // the packet-in round trip via a trusted edge tap; only the 1-in-N
    // elected packets take the classic punt rules installed above.
    FastPathTap::Config tap_config;
    if (options.compare.sampling.enabled) {
      tap_config.replica_ports = edge_config.replica_ports;
      tap_config.local_macs = attachments[i].local_macs;
    }

    inst.compare->configure_edge(edge.name(), std::move(edge_config));
    inst.compare_controller->attach(edge);

    if (options.compare.sampling.enabled) {
      inst.fastpath_taps.push_back(std::make_unique<FastPathTap>(
          std::move(tap_config), inst.compare->core_for(edge.name()), &edge));
      edge.set_interceptor(inst.fastpath_taps.back().get());
    }
  }

  return inst;
}

}  // namespace netco::core
