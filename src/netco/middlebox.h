// CompareMiddlebox: the compare element as an *inband* data-plane
// middlebox / virtualized network function (paper §IV and §IX: "the
// compare could also be implemented inband, e.g., as a middlebox, or in
// the context of Network Function Virtualization").
//
// Unlike the out-of-band CompareService (packet-in/packet-out via a
// controller channel), the middlebox sits directly on the wire: ports
// 0..k-1 receive the replicas' copies, the single egress port k emits the
// released packets. One direction per middlebox; bidirectional topologies
// deploy one per direction (see topo/inband.h). The saving is the
// controller round trip — the ablation bench quantifies it.
#pragma once

#include <cstdint>
#include <deque>

#include "device/node.h"
#include "netco/compare_core.h"

namespace netco::core {

/// Middlebox deployment configuration.
struct MiddleboxConfig {
  CompareConfig compare;
  /// Per-packet processing cost (fixed + per-byte), same personality as
  /// the "C program" compare — it is the same code on the same CPU.
  sim::Duration per_packet = sim::Duration::microseconds(12);
  double per_byte_ns = 3.65;
  /// Relative service-time jitter (see controller::CostProfile).
  double service_jitter = 0.3;
  /// Ingress queue capacity in packets (tail drop).
  std::size_t queue_limit = 384;
  /// CPU cost per entry evicted in a cleanup pass.
  sim::Duration cleanup_cost_per_entry = sim::Duration::nanoseconds(800);
};

/// Middlebox counters (beyond the embedded CompareCore's).
struct MiddleboxStats {
  std::uint64_t received = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t released = 0;
};

/// The inband compare node. Wire ports 0..k-1 to the replica outputs and
/// port k toward the destination side.
class CompareMiddlebox : public device::Node {
 public:
  CompareMiddlebox(sim::Simulator& simulator, std::string name,
                   MiddleboxConfig config);

  void handle_packet(device::PortIndex in_port, net::Packet packet) override;

  /// The embedded compare logic (stats/advice).
  [[nodiscard]] const CompareCore& core() const noexcept { return core_; }

  /// Node-level counters.
  [[nodiscard]] const MiddleboxStats& middlebox_stats() const noexcept {
    return stats_;
  }

 private:
  void service_next();
  void schedule_sweep();
  [[nodiscard]] device::PortIndex egress_port() const noexcept {
    return static_cast<device::PortIndex>(config_.compare.k);
  }

  MiddleboxConfig config_;
  CompareCore core_;
  MiddleboxStats stats_;
  std::deque<std::pair<device::PortIndex, net::Packet>> queue_;
  bool busy_ = false;
  bool sweep_scheduled_ = false;
};

}  // namespace netco::core
