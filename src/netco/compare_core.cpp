#include "netco/compare_core.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "common/assert.h"
#include "common/hash.h"

namespace netco::core {
namespace {
/// Salt for the perturbed-key collision chain (see ingest()).
constexpr std::uint64_t kProbeSalt = 0xC01115104EULL;
/// Salt for the sampled-verification election (see sampled_key()).
/// Distinct from kProbeSalt and the vote cache's bucket salt so the
/// election does not correlate with either collision pattern.
constexpr std::uint64_t kSampleSalt = 0xFA57C0DE5ULL;
}  // namespace

const char* to_string(VerdictKind kind) noexcept {
  switch (kind) {
    case VerdictKind::kMatched: return "matched";
    case VerdictKind::kMissed: return "missed";
    case VerdictKind::kDivergent: return "divergent";
    case VerdictKind::kFloodFlagged: return "flood_flagged";
    case VerdictKind::kInactive: return "inactive";
  }
  return "unknown";
}

CompareCore::CompareCore(CompareConfig config)
    : config_(config),
      obs_(&obs::global()),
      verdict_latency_(&obs_->metrics.histogram("compare.verdict_latency_us")),
      released_counter_(&obs_->metrics.counter("compare.released")),
      ingested_counter_(&obs_->metrics.counter("compare.ingested")) {
  NETCO_ASSERT_MSG(
      config_.k >= 1 && config_.k < WeightedVoteCache::kMaxReplicas,
      "CompareConfig.k out of range: replica ids must fit the 64-bit vote "
      "bitmask (1 <= k < 64) — an oversized fleet would silently drop votes");
  live_mask_ = (1ULL << static_cast<unsigned>(config_.k)) - 1;
  live_count_ = config_.k;
  const auto n = static_cast<std::size_t>(config_.k);
  singleton_count_.assign(n, 0);
  arrival_ns_.assign(n, {});
  garbage_ns_.assign(n, {});
  missed_streak_.assign(n, 0);
  flagged_block_.assign(n, false);
  flagged_inactive_.assign(n, false);
  live_since_.assign(n, sim::TimePoint::origin());
  weights_.assign(n, 1.0);
  if (config_.sampling.enabled) {
    // Clamp the vote store to the full cache's capacity so a fault-plan
    // cache squeeze bounds both stores, and allocate the SoA arena once.
    const std::size_t vote_capacity =
        std::min(config_.sampling.vote_capacity, config_.cache_capacity);
    votes_ = std::make_unique<WeightedVoteCache>(
        vote_capacity, config_.sampling.vote_quota, config_.k);
    // Counters exist only in sampled mode: a full-verify core must leave
    // the global metrics snapshot byte-identical to pre-§XII builds.
    sampled_counter_ = &obs_->metrics.counter("compare.sampled");
    fastpath_counter_ = &obs_->metrics.counter("compare.fastpath");
  }
}

std::uint64_t CompareCore::key_of(const net::Packet& packet) const {
  switch (config_.mode) {
    case CompareMode::kFullPacket:
      return packet.content_hash() & config_.key_mask;
    case CompareMode::kHeaderOnly:
      return packet.prefix_hash(config_.header_prefix) & config_.key_mask;
    case CompareMode::kHashed:
      return packet.content_hash() & config_.key_mask;
  }
  return packet.content_hash() & config_.key_mask;
}

bool CompareCore::same_packet(const net::Packet& a,
                              const net::Packet& b) const {
  switch (config_.mode) {
    case CompareMode::kFullPacket:
      // The paper's memcmp(). In the honest case the k copies still share
      // the hub's payload buffer, so this is a pointer comparison; only a
      // tampered (detached) copy pays for a byte-wise compare.
      return a == b;
    case CompareMode::kHeaderOnly: {
      const std::size_t n = config_.header_prefix;
      const auto pa = a.bytes(), pb = b.bytes();
      const std::size_t la = std::min(n, pa.size());
      const std::size_t lb = std::min(n, pb.size());
      return la == lb && std::equal(pa.begin(), pa.begin() + static_cast<std::ptrdiff_t>(la),
                                    pb.begin());
    }
    case CompareMode::kHashed:
      return true;  // key equality is trusted (cheap but collision-prone)
  }
  return false;
}

void CompareCore::trace(obs::TraceEvent event, const net::Packet& packet,
                        sim::TimePoint now, int replica) {
  obs::Tracer& tracer = obs_->tracer;
  if (!tracer.enabled()) [[likely]] return;
  // content_hash() is memoized in the packet's shared payload buffer:
  // key_of() already computed it on ingest, so every lifecycle record an
  // entry emits afterwards (release, evict, duplicate, expire...) reads
  // the cached value instead of rehashing the payload.
  tracer.emit(now.ns(), event, packet.content_hash(), trace_label_, replica,
              static_cast<std::uint32_t>(packet.size()));
}

void CompareCore::trace_id(obs::TraceEvent event, std::uint64_t packet_id,
                           std::uint32_t bytes, sim::TimePoint now,
                           int replica) {
  obs::Tracer& tracer = obs_->tracer;
  if (!tracer.enabled()) [[likely]] return;
  tracer.emit(now.ns(), event, packet_id, trace_label_, replica, bytes);
}

void CompareCore::flag_block(int replica, sim::TimePoint now) {
  if (flagged_block_[static_cast<std::size_t>(replica)]) return;
  flagged_block_[static_cast<std::size_t>(replica)] = true;
  pending_advice_.block_replicas.push_back(replica);
  verdict(VerdictKind::kFloodFlagged, replica, now);
}

void CompareCore::note_arrival(int replica, sim::TimePoint now) {
  auto& window = arrival_ns_[static_cast<std::size_t>(replica)];
  window.push_back(now.ns());
  const std::int64_t horizon = now.ns() - config_.rate_window.ns();
  while (!window.empty() && window.front() < horizon) window.pop_front();
  if (window.size() > config_.rate_limit_packets) flag_block(replica, now);
}

void CompareCore::note_garbage(int replica, sim::TimePoint now) {
  auto& window = garbage_ns_[static_cast<std::size_t>(replica)];
  window.push_back(now.ns());
  const std::int64_t horizon = now.ns() - config_.rate_window.ns();
  while (!window.empty() && window.front() < horizon) window.pop_front();
  if (window.size() > config_.garbage_limit_packets) flag_block(replica, now);
}

void CompareCore::verdict(VerdictKind kind, int replica, sim::TimePoint now) {
  if (verdict_sink_ == nullptr) [[likely]] return;
  const std::uint64_t bit = 1ULL << static_cast<unsigned>(replica);
  verdict_sink_->on_verdict(ReplicaVerdict{.kind = kind,
                                           .replica = replica,
                                           .live = (live_mask_ & bit) != 0,
                                           .at = now});
}

void CompareCore::divergent_verdict(const Entry& entry, sim::TimePoint now) {
  // Only a dead *singleton* is attributable: exactly one replica sent it
  // and nobody confirmed. Multi-contributor minority entries (loss, churn)
  // are ambiguous and produce no verdict.
  if (entry.released || entry.contributions != 1) return;
  verdict(VerdictKind::kDivergent, entry.first_replica, now);
}

void CompareCore::set_replica_live(int replica, bool live,
                                   sim::TimePoint now) {
  if (replica < 0 || replica >= config_.k) return;
  const std::uint64_t bit = 1ULL << static_cast<unsigned>(replica);
  if (((live_mask_ & bit) != 0) == live) return;
  if (live) {
    live_mask_ |= bit;
    ++live_count_;
    // Entries already in the cache were fanned out while this replica was
    // masked; their deaths must not read as misses (finalize checks this).
    live_since_[static_cast<std::size_t>(replica)] = now;
  } else {
    live_mask_ &= ~bit;
    --live_count_;
  }
  // Fresh slate in both directions: a quarantined replica must not keep a
  // half-built missed streak (or a latched alarm), and a readmitted one
  // starts its case-3 accounting from zero.
  const auto idx = static_cast<std::size_t>(replica);
  missed_streak_[idx] = 0;
  flagged_inactive_[idx] = false;
}

void CompareCore::set_replica_weight(int replica, double weight) noexcept {
  if (replica < 0 || replica >= config_.k) return;
  weights_[static_cast<std::size_t>(replica)] = std::clamp(weight, 0.0, 1.0);
}

double CompareCore::replica_weight(int replica) const noexcept {
  if (replica < 0 || replica >= config_.k) return 0.0;
  return weights_[static_cast<std::size_t>(replica)];
}

double CompareCore::live_weight_total() const noexcept {
  double total = 0.0;
  for (int r = 0; r < config_.k; ++r) {
    if (((live_mask_ >> static_cast<unsigned>(r)) & 1ULL) != 0) {
      total += weights_[static_cast<std::size_t>(r)];
    }
  }
  return total;
}

bool CompareCore::sampled_key(std::uint64_t base,
                              std::uint32_t period) noexcept {
  if (period <= 1) return true;
  return hash_mix(base, kSampleSalt) % period == 0;
}

std::uint32_t CompareCore::effective_period(sim::TimePoint now) const
    noexcept {
  const CompareSampling& s = config_.sampling;
  if (!s.enabled || s.period <= 1) return 1;
  if (now < sampling_resume_at_) return 1;  // post-restore conservatism
  for (int r = 0; r < config_.k; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    // Any flagged replica — or any *live* replica below the healthy bar —
    // collapses the period to 1: full verification until the health loop
    // sorts the suspect out. Quarantined replicas are judged through
    // their probe verdicts and do not hold the period down.
    if (flagged_block_[idx] || flagged_inactive_[idx]) return 1;
    if (((live_mask_ >> static_cast<unsigned>(r)) & 1ULL) != 0 &&
        weights_[idx] < s.healthy_weight) {
      return 1;
    }
  }
  return s.period;
}

bool CompareCore::full_entry_exists(std::uint64_t base,
                                    const net::Packet& packet) const {
  // Read-only replay of ingest()'s probe walk, full depth across holes.
  std::uint32_t chain_limit = 0;
  if (const auto cit = chains_.find(base); cit != chains_.end()) {
    chain_limit = cit->second.max_depth;
  }
  std::uint64_t probe = base;
  for (std::uint32_t d = 0; d <= chain_limit; ++d) {
    const auto hit = cache_.find(probe);
    if (hit != cache_.end() && hit->second.base_key == base &&
        same_packet(hit->second.exemplar, packet)) {
      return true;
    }
    probe = hash_mix(probe, kProbeSalt);
  }
  return false;
}

void CompareCore::tombstone_release(std::uint64_t key, sim::TimePoint now) {
  if (votes_ == nullptr) return;
  tombstones_[key] = now.ns();
  tombstone_fifo_.emplace_back(now.ns(), key);
}

bool CompareCore::recently_released_key(std::uint64_t key,
                                        sim::TimePoint now) {
  const auto it = tombstones_.find(key);
  if (it == tombstones_.end()) return false;
  if (now.ns() - it->second >= config_.hold_timeout.ns()) {
    // Expired: a same-hash packet this far out is a legitimate repeat,
    // exactly as the full cache treats a recreated entry after expiry.
    tombstones_.erase(it);
    return false;
  }
  return true;
}

void CompareCore::finalize_vote_death(std::uint64_t key,
                                      std::uint64_t packet_id,
                                      std::uint64_t mask, std::uint32_t bytes,
                                      int first_replica, bool released,
                                      bool escalated,
                                      sim::TimePoint first_seen,
                                      sim::TimePoint now,
                                      obs::TraceEvent evict_event) {
  if (escalated) return;  // routing memo: the full cache owns this packet
  const int voters = std::popcount(mask);
  if (released) {
    // The slot is gone but the packet went out: sibling copies still in
    // flight must find the tombstone, not a vacant (re-releasable) key.
    tombstone_release(key, now);
    if (std::popcount(mask & live_mask_) >= live_quorum()) {
      // Quorum-vouched after the fact: the usual matched/missed and
      // case-3 inactivity accounting applies. Silent in the trace stream,
      // like the full path's completion retirement — the release record
      // already told the story.
      finalize_masks(mask, first_seen, now);
    } else {
      // Released on healthy-first-copy trust but never confirmed — the
      // fast path's detection signal (kFirstCopy mismatch accounting).
      // Blame-by-absence would be wrong here (a fabricated packet's
      // honest non-confirmers are innocent); only a singleton is
      // attributable, to its sender.
      ++stats_.mismatch_detected;
      if (voters == 1 && first_replica >= 0) {
        note_garbage(first_replica, now);
        verdict(VerdictKind::kDivergent, first_replica, now);
      }
      trace_id(obs::TraceEvent::kCompareExpire, packet_id, bytes, now, -1);
    }
    return;
  }
  switch (evict_event) {
    case obs::TraceEvent::kCompareEvictCapacity:
      ++stats_.evicted_capacity;
      break;
    case obs::TraceEvent::kCompareEvictQuota:
      ++stats_.evicted_quota;
      break;
    default:
      ++stats_.evicted_timeout;  // §IV case 1, fast-path flavour
      break;
  }
  trace_id(evict_event, packet_id, bytes, now,
           voters == 1 ? first_replica : -1);
  if (voters == 1 && first_replica >= 0) {
    note_garbage(first_replica, now);
    verdict(VerdictKind::kDivergent, first_replica, now);
  }
}

void CompareCore::drain_vote_evictions(sim::TimePoint now) {
  for (const VoteEvicted& ev : evicted_scratch_) {
    finalize_vote_death(ev.key, ev.packet_id, ev.mask, ev.bytes,
                        ev.first_replica, ev.released, ev.escalated,
                        sim::TimePoint::from_ns(ev.first_seen_ns), now,
                        ev.reason == VoteEvictReason::kQuota
                            ? obs::TraceEvent::kCompareEvictQuota
                            : obs::TraceEvent::kCompareEvictCapacity);
  }
  evicted_scratch_.clear();
}

FastResult CompareCore::ingest_sampled(int replica, const net::Packet& packet,
                                       sim::TimePoint now) {
  FastResult out;
  if (votes_ == nullptr) {  // sampling disabled: everything escalates
    out.escalated = true;
    return out;
  }
  if (replica < 0 || replica >= config_.k) {
    ++stats_.rejected_replica;
    return out;
  }

  const std::uint64_t base = key_of(packet);
  auto slot = votes_->find(base);
  if (slot == WeightedVoteCache::kNil) {
    // A release tombstone means this packet already went out and its
    // cache state is gone (slot evicted under squeeze pressure, swept, or
    // a released full entry erased). Absorb the straggler as late noise —
    // re-running the election here could open a fresh releasable slot and
    // emit the packet a second time. A live full-cache entry overrides
    // the tombstone (a colliding *different* packet must still feed its
    // own quorum).
    if (recently_released_key(base, now) && !full_entry_exists(base, packet)) {
      ++stats_.ingested;
      ++stats_.fastpath_ingested;
      ingested_counter_->inc();
      note_arrival(replica, now);
      ++stats_.late_after_release;
      return out;
    }
    // The first copy decides the route for every later copy (memoized in
    // the slot): the deterministic election, overridden to "escalate"
    // when the packet already lives in the full cache (restored entries,
    // or copies that pre-date a period change) — splitting one packet's
    // copies across both paths would starve its full-cache quorum.
    const bool escalate = sampled_key(base, effective_period(now)) ||
                          full_entry_exists(base, packet);
    evicted_scratch_.clear();
    slot = votes_->insert(base, packet.content_hash(), now.ns(),
                          static_cast<std::uint32_t>(packet.size()), replica,
                          escalate, evicted_scratch_);
    drain_vote_evictions(now);
    if (escalate) {
      ++stats_.sampled_escalated;
      if (sampled_counter_ != nullptr) sampled_counter_->inc();
      trace(obs::TraceEvent::kCompareSampled, packet, now, replica);
      out.escalated = true;
      return out;
    }
  } else if (votes_->escalated(slot)) {
    out.escalated = true;  // memoized election: this packet is full-path
    return out;
  }

  // Fast-path vote. Metrics accounting matches the full path, but the
  // trace stream is thinned to what the protocol checker needs: the
  // release record itself carries its deciding replica, so in the common
  // case (healthy first copy) one record narrates the whole packet.
  // Pre-release votes that did NOT release are still traced (they justify
  // a later weighted-majority release); post-release copies are counted,
  // rate-monitored, and duplicate-checked — just not narrated one record
  // at a time. This thinning is where the sampled mode's wall-clock win
  // comes from; the 1-in-N elected packets keep the full per-copy story
  // on the punt path.
  const bool was_released = votes_->released(slot);
  ++stats_.ingested;
  ++stats_.fastpath_ingested;
  ingested_counter_->inc();
  note_arrival(replica, now);

  const double weight = replica_live(replica)
                            ? weights_[static_cast<std::size_t>(replica)]
                            : 0.0;  // probation copies never vote
  if (!votes_->add_vote(slot, replica, weight)) {
    ++stats_.duplicates_same_port;  // §IV case 2, fast-path flavour
    note_garbage(replica, now);
    trace(obs::TraceEvent::kCompareDuplicate, packet, now, replica);
    return out;
  }
  if (was_released) {
    ++stats_.late_after_release;
    if (std::popcount(votes_->mask(slot)) == config_.k &&
        !config_.retain_completed) {
      finalize_masks(votes_->mask(slot),
                     sim::TimePoint::from_ns(votes_->first_seen_ns(slot)),
                     now);
      // Eager completion erase: a byzantine re-send of the same packet
      // after this must land on the tombstone, not on a fresh election.
      tombstone_release(base, now);
      votes_->erase(slot);
    }
    return out;
  }

  // Release rule: the first copy from a fully-healthy live replica goes
  // straight through (the common case, and the latency win); otherwise
  // the weighted tally must clear half the live weight — a
  // reputation-scaled majority that hardens as replicas lose standing.
  const bool release_now =
      replica_live(replica) &&
      (weight >= config_.sampling.healthy_weight ||
       votes_->tally(slot) > live_weight_total() / 2.0);
  if (!release_now) {
    trace(obs::TraceEvent::kCompareIngest, packet, now, replica);
    return out;
  }
  votes_->set_released(slot);
  if (shadow_) [[unlikely]] {
    ++stats_.shadow_releases;
    trace(obs::TraceEvent::kCompareSuppressed, packet, now, replica);
    return out;
  }
  ++stats_.released;
  ++stats_.fastpath_released;
  released_counter_->inc();
  if (fastpath_counter_ != nullptr) fastpath_counter_->inc();
  verdict_latency_->observe(
      (now - sim::TimePoint::from_ns(votes_->first_seen_ns(slot))).us());
  trace(obs::TraceEvent::kCompareFastpath, packet, now, replica);
  out.released = packet;
  return out;
}

std::optional<net::Packet> CompareCore::ingest(int replica, net::Packet packet,
                                               sim::TimePoint now) {
  if (replica < 0 || replica >= config_.k) {
    // A packet-in from an unregistered port (or a buggy deployment layer)
    // must not shift 1 << replica past the mask — reject, don't corrupt.
    ++stats_.rejected_replica;
    return std::nullopt;
  }
  ++stats_.ingested;
  ingested_counter_->inc();
  last_cleanup_work_ = 0;
  note_arrival(replica, now);
  trace(obs::TraceEvent::kCompareIngest, packet, now, replica);

  // Find the entry for this packet. Hash collisions between *different*
  // packets are resolved by probing a perturbed key — deterministic, so
  // every copy of the same packet lands in the same slot. The probe must
  // scan the whole occupied depth of the chain, not stop at the first
  // absent key: evictions leave holes, and a copy that stopped short
  // would start a second entry for a packet that already has one deeper
  // in the chain (splitting its contributions and starving its quorum).
  const std::uint64_t base = key_of(packet);
  std::uint32_t chain_limit = 0;
  if (const auto cit = chains_.find(base); cit != chains_.end()) {
    chain_limit = cit->second.max_depth;
  }
  std::uint64_t probe = base;
  std::uint64_t key = 0;
  std::uint32_t depth = 0;
  bool have_slot = false;
  auto it = cache_.end();
  for (std::uint32_t d = 0; d <= chain_limit; ++d) {
    const auto hit = cache_.find(probe);
    if (hit == cache_.end()) {
      if (!have_slot) {  // remember the shallowest hole for reuse
        have_slot = true;
        key = probe;
        depth = d;
      }
    } else if (hit->second.base_key == base &&
               same_packet(hit->second.exemplar, packet)) {
      it = hit;
      key = probe;
      depth = d;
      break;
    }
    probe = hash_mix(probe, kProbeSalt);
  }
  if (it == cache_.end() && !have_slot) {
    // Chain fully occupied by other packets: extend past its tail
    // (skipping any coincidentally occupied foreign keys).
    depth = chain_limit;
    for (;;) {
      ++depth;
      if (cache_.find(probe) == cache_.end()) break;
      probe = hash_mix(probe, kProbeSalt);
    }
    key = probe;
  }

  const std::uint64_t bit = 1ULL << static_cast<unsigned>(replica);

  if (it == cache_.end()) {
    // First copy of a (possibly fabricated) packet. Caching the exemplar
    // is a refcount bump on the shared payload, not a deep copy.
    Entry entry;
    entry.key = key;
    entry.base_key = base;
    entry.probe_depth = depth;
    entry.exemplar = std::move(packet);
    entry.replica_mask = bit;
    entry.contributions = 1;
    entry.first_replica = replica;
    entry.holds_singleton_slot = true;
    entry.first_seen = now;
    age_.push_back(key);
    entry.age_it = std::prev(age_.end());

    // A copy from a non-live (probation) replica never releases anything:
    // it is cached, compared, and judged, but carries no vote. With all k
    // replicas live this reduces to the original policy check.
    const bool release_now =
        replica_live(replica) &&
        (config_.policy == ReleasePolicy::kFirstCopy ||
         degraded_first_copy() || live_quorum() == 1);
    entry.released = release_now;
    std::optional<net::Packet> released;
    if (release_now) {
      if (shadow_) [[unlikely]] {
        // Standby shadow mode: the quorum is tracked (the entry stays
        // marked released so promotion can never re-emit it) but the
        // packet is withheld — the primary owns the egress.
        ++stats_.shadow_releases;
        trace(obs::TraceEvent::kCompareSuppressed, entry.exemplar, now,
              replica);
      } else {
        ++stats_.released;
        released_counter_->inc();
        verdict_latency_->observe(0.0);
        trace(obs::TraceEvent::kCompareRelease, entry.exemplar, now, replica);
        released = entry.exemplar;
      }
    }

    cache_.emplace(key, std::move(entry));
    if (depth > 0) {
      Chain& chain = chains_[base];
      ++chain.live;
      chain.max_depth = std::max(chain.max_depth, depth);
    }
    stats_.cache_entries = cache_.size();
    stats_.max_cache_entries =
        std::max(stats_.max_cache_entries, stats_.cache_entries);

    auto& count = singleton_count_[static_cast<std::size_t>(replica)];
    ++count;
    if (count > config_.per_replica_quota) quota_evict(replica, now);
    if (cache_.size() > config_.cache_capacity) capacity_cleanup(now);
    return released;
  }

  Entry& entry = it->second;
  if (entry.replica_mask & bit) {
    // Same replica, same packet again: §IV case 2 (DoS signature).
    ++stats_.duplicates_same_port;
    note_garbage(replica, now);
    trace(obs::TraceEvent::kCompareDuplicate, entry.exemplar, now, replica);
    return std::nullopt;
  }

  if (entry.holds_singleton_slot) {
    // No longer a singleton: release the isolation-quota slot. This also
    // covers a kFirstCopy entry that was released on arrival — it keeps
    // its slot until the partner confirms (or the entry is erased).
    auto& count = singleton_count_[static_cast<std::size_t>(entry.first_replica)];
    if (count > 0) --count;
    entry.holds_singleton_slot = false;
  }
  entry.replica_mask |= bit;
  ++entry.contributions;

  if (entry.released) {
    ++stats_.late_after_release;
    trace(obs::TraceEvent::kCompareLate, entry.exemplar, now, replica);
    if (entry.contributions == config_.k && !config_.retain_completed) {
      finalize(entry, now);
      erase_entry(key, now);
    }
    return std::nullopt;
  }

  // Release decision over the *live* set: a probation copy never votes,
  // and the quorum is a strict majority of live replicas (first copy once
  // the live set has degraded to detection mode). With all replicas live
  // the live contribution count equals entry.contributions and this is the
  // original majority test, bit for bit.
  const bool first_copy_mode =
      config_.policy == ReleasePolicy::kFirstCopy || degraded_first_copy();
  const int live_contributions =
      std::popcount(entry.replica_mask & live_mask_);
  if (replica_live(replica) &&
      (first_copy_mode ? live_contributions >= 1
                       : live_contributions >= live_quorum())) {
    entry.released = true;
    if (shadow_ || entry.recovered) [[unlikely]] {
      // Withheld release: either this core is a shadow standby (the
      // primary owns the egress), or the entry was restored from a
      // checkpoint and may already have been released before the crash.
      // Marking it released while suppressing the emission converts an
      // unknowable double-release into a bounded, measured gap loss.
      if (shadow_) {
        ++stats_.shadow_releases;
      } else {
        ++stats_.suppressed_recovered;
      }
      trace(obs::TraceEvent::kCompareSuppressed, entry.exemplar, now,
            replica);
      if (entry.contributions == config_.k && !config_.retain_completed) {
        finalize(entry, now);
        erase_entry(key, now);
      }
      return std::nullopt;
    }
    ++stats_.released;
    released_counter_->inc();
    verdict_latency_->observe((now - entry.first_seen).us());
    trace(obs::TraceEvent::kCompareRelease, entry.exemplar, now, replica);
    net::Packet released = entry.exemplar;
    if (entry.contributions == config_.k && !config_.retain_completed) {
      finalize(entry, now);
      erase_entry(key, now);
    }
    return released;
  }
  return std::nullopt;
}

void CompareCore::finalize(Entry& entry, sim::TimePoint now) {
  // Inactivity accounting runs only for packets the quorum vouched for:
  // a replica missing from an agreed packet is suspect; replicas absent
  // from a fabricated minority packet are not.
  if (!entry.released) return;
  finalize_masks(entry.replica_mask, entry.first_seen, now);
}

void CompareCore::finalize_masks(std::uint64_t replica_mask,
                                 sim::TimePoint first_seen,
                                 sim::TimePoint now) {
  for (int r = 0; r < config_.k; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    const std::uint64_t bit = 1ULL << static_cast<unsigned>(r);
    const bool present = (replica_mask & bit) != 0;
    if ((live_mask_ & bit) == 0) {
      // Probation: a probe copy that agreed with the released packet is
      // evidence for readmission; absence proves nothing (the trickle is
      // sampled) and must not feed the case-3 streak.
      if (present) verdict(VerdictKind::kMatched, r, now);
      continue;
    }
    if (present) {
      missed_streak_[idx] = 0;
      // Reappearance clears the case-3 latch: the health loop needs the
      // alarm again if the replica dies again later. Alarm storms stay
      // bounded by the threshold width (one alarm per full dead streak),
      // not by a once-per-run latch.
      flagged_inactive_[idx] = false;
      verdict(VerdictKind::kMatched, r, now);
    } else {
      // No blame for entries older than the replica's (re)admission: the
      // fan-out did not include it when those copies were multiplied.
      if (first_seen < live_since_[idx]) continue;
      verdict(VerdictKind::kMissed, r, now);
      if (++missed_streak_[idx] == config_.inactivity_threshold &&
          !flagged_inactive_[idx]) {
        flagged_inactive_[idx] = true;
        pending_advice_.inactive_replicas.push_back(r);
        verdict(VerdictKind::kInactive, r, now);
      }
    }
  }
}

void CompareCore::erase_entry(std::uint64_t key, sim::TimePoint now) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return;
  Entry& entry = it->second;
  if (entry.released) {
    // Fast-path backstop (no-op while sampling is off): once a released
    // full entry is gone, a straggler copy on the *fast* path must not
    // elect a fresh releasable slot for the same key — the full path's
    // recreate-needs-quorum protection does not exist there. Keyed by the
    // base so it matches the vote cache's keying.
    tombstone_release(entry.base_key, now);
  }
  if (entry.holds_singleton_slot) {
    // Any eviction path returns the quota slot — including a released
    // kFirstCopy singleton whose partner never confirmed. The old check
    // (contributions == 1 && !released) skipped that case, so every such
    // packet leaked a slot and the quota drifted until honest traffic
    // was being evicted as "flood".
    auto& count = singleton_count_[static_cast<std::size_t>(entry.first_replica)];
    if (count > 0) --count;
  }
  if (entry.probe_depth > 0) {
    const auto cit = chains_.find(entry.base_key);
    if (cit != chains_.end() && --cit->second.live == 0) chains_.erase(cit);
  }
  age_.erase(entry.age_it);
  cache_.erase(it);
  stats_.cache_entries = cache_.size();
}

std::size_t CompareCore::sweep(sim::TimePoint now) {
  std::size_t evicted = 0;
  while (!age_.empty()) {
    const std::uint64_t key = age_.front();
    const auto it = cache_.find(key);
    NETCO_ASSERT(it != cache_.end());
    Entry& entry = it->second;
    if (now - entry.first_seen < config_.hold_timeout) break;  // age order
    if (entry.released) {
      // Normal death of an agreed packet whose stragglers never came.
      finalize(entry, now);
      if ((config_.policy == ReleasePolicy::kFirstCopy ||
           degraded_first_copy()) &&
          std::popcount(entry.replica_mask & live_mask_) < live_count_) {
        ++stats_.mismatch_detected;  // detection mode: partner disagreed
        // Attribute the disagreement: every live replica that failed to
        // confirm the released packet is a suspect (§IV detection).
        // Probation replicas are judged through their verdicts instead.
        for (int r = 0; r < config_.k; ++r) {
          const std::uint64_t bit = 1ULL << static_cast<unsigned>(r);
          if ((live_mask_ & bit) != 0 && (entry.replica_mask & bit) == 0) {
            trace(obs::TraceEvent::kCompareMismatch, entry.exemplar, now, r);
          }
        }
      }
      trace(obs::TraceEvent::kCompareExpire, entry.exemplar, now, -1);
    } else {
      ++stats_.evicted_timeout;  // §IV case 1: minority packet, never sent
      trace(obs::TraceEvent::kCompareEvictTimeout, entry.exemplar, now,
            entry.contributions == 1 ? entry.first_replica : -1);
      if (entry.contributions == 1) {
        // A singleton that nobody confirmed is attributable garbage.
        note_garbage(entry.first_replica, now);
        divergent_verdict(entry, now);
      }
    }
    erase_entry(key, now);
    ++evicted;
  }
  if (votes_ != nullptr) {
    // Same horizon as the full cache: first_seen <= now - hold_timeout
    // dies (the vote sweep's strict `<` plus the +1 matches the full
    // path's `now - first_seen >= hold_timeout` exactly).
    const std::int64_t horizon = now.ns() - config_.hold_timeout.ns() + 1;
    votes_->sweep(horizon, [&](WeightedVoteCache::Slot s) {
      finalize_vote_death(votes_->key_of(s), votes_->packet_id(s),
                          votes_->mask(s), votes_->bytes(s),
                          votes_->first_replica(s), votes_->released(s),
                          votes_->escalated(s),
                          sim::TimePoint::from_ns(votes_->first_seen_ns(s)),
                          now, obs::TraceEvent::kCompareEvictTimeout);
      ++evicted;
    });
    // Expired tombstones go with the same horizon; the map entry is only
    // forgotten if no fresher tombstone for the key overwrote it.
    const std::int64_t dead_ns = now.ns() - config_.hold_timeout.ns();
    while (!tombstone_fifo_.empty() && tombstone_fifo_.front().first <= dead_ns) {
      const auto [ns, key] = tombstone_fifo_.front();
      const auto it = tombstones_.find(key);
      if (it != tombstones_.end() && it->second == ns) tombstones_.erase(it);
      tombstone_fifo_.pop_front();
    }
  }
  return evicted;
}

void CompareCore::capacity_cleanup(sim::TimePoint now) {
  ++stats_.cleanup_passes;
  const auto target = static_cast<std::size_t>(
      static_cast<double>(config_.cache_capacity) * config_.cleanup_low_water);
  std::size_t work = 0;
  while (cache_.size() > target && !age_.empty()) {
    const std::uint64_t key = age_.front();
    auto& entry = cache_.at(key);
    if (entry.released) {
      finalize(entry, now);
      trace(obs::TraceEvent::kCompareExpire, entry.exemplar, now, -1);
    } else {
      ++stats_.evicted_capacity;
      trace(obs::TraceEvent::kCompareEvictCapacity, entry.exemplar, now,
            entry.contributions == 1 ? entry.first_replica : -1);
      if (entry.contributions == 1) {
        // A singleton squeezed out under memory pressure is just as
        // attributable as one that timed out — the garbage monitor must
        // see flood traffic regardless of which eviction path fires.
        note_garbage(entry.first_replica, now);
        divergent_verdict(entry, now);
      }
    }
    erase_entry(key, now);
    ++work;
  }
  last_cleanup_work_ = work;
}

void CompareCore::quota_evict(int replica, sim::TimePoint now) {
  // The paper's logically-isolated buffers: a replica flooding unique
  // packets can only consume its own quota. Evict its oldest singleton.
  for (auto age_it = age_.begin(); age_it != age_.end(); ++age_it) {
    const auto it = cache_.find(*age_it);
    NETCO_ASSERT(it != cache_.end());
    const Entry& entry = it->second;
    if (!entry.released && entry.contributions == 1 &&
        entry.first_replica == replica) {
      ++stats_.evicted_quota;
      trace(obs::TraceEvent::kCompareEvictQuota, entry.exemplar, now, replica);
      note_garbage(replica, now);
      divergent_verdict(entry, now);
      erase_entry(*age_it, now);
      return;
    }
  }
}

CompareAdvice CompareCore::take_advice() {
  CompareAdvice out = std::move(pending_advice_);
  pending_advice_ = CompareAdvice{};
  return out;
}

CompareAudit CompareCore::audit() const {
  CompareAudit out;
  out.cache_entries = cache_.size();
  out.age_entries = age_.size();
  out.cache_capacity = config_.cache_capacity;
  out.quota_counts = singleton_count_;
  out.live_singletons.assign(singleton_count_.size(), 0);
  for (const auto& [key, entry] : cache_) {
    // Ground truth, independent of the incremental flag: an entry holds a
    // quota slot exactly while it has a single contribution.
    if (entry.contributions == 1) {
      ++out.live_singletons[static_cast<std::size_t>(entry.first_replica)];
    }
  }
  std::int64_t prev_ns = std::numeric_limits<std::int64_t>::min();
  for (auto it = age_.begin(); it != age_.end(); ++it) {
    const auto cit = cache_.find(*it);
    if (cit == cache_.end() || cit->second.age_it != it) {
      out.age_cache_consistent = false;
      continue;
    }
    if (cit->second.first_seen.ns() < prev_ns) out.age_ordered = false;
    prev_ns = cit->second.first_seen.ns();
  }
  if (out.cache_entries != out.age_entries) out.age_cache_consistent = false;
  if (votes_ != nullptr) {
    out.vote_active = true;
    out.vote = votes_->audit();
  }
  return out;
}

void CompareCore::set_cache_capacity(std::size_t capacity, sim::TimePoint now) {
  config_.cache_capacity = capacity;
  if (cache_.size() > config_.cache_capacity) capacity_cleanup(now);
  if (votes_ != nullptr) {
    // The squeeze binds both stores: the vote cache shrinks to the lesser
    // of its own configured bound and the new full-cache capacity, and
    // every expelled slot is accounted for (no stranded entries).
    evicted_scratch_.clear();
    votes_->set_capacity(std::min(config_.sampling.vote_capacity, capacity),
                         evicted_scratch_);
    drain_vote_evictions(now);
  }
}

CompareSnapshot CompareCore::snapshot(sim::TimePoint now) const {
  CompareSnapshot snap;
  snap.at_ns = now.ns();
  snap.stats = stats_;
  snap.live_mask = live_mask_;
  snap.live_count = live_count_;
  snap.live_since_ns.reserve(live_since_.size());
  for (const sim::TimePoint& t : live_since_) {
    snap.live_since_ns.push_back(t.ns());
  }
  snap.missed_streak = missed_streak_;
  snap.flagged_block.assign(flagged_block_.begin(), flagged_block_.end());
  snap.flagged_inactive.assign(flagged_inactive_.begin(),
                               flagged_inactive_.end());
  snap.entries.reserve(cache_.size());
  // Age order, oldest first: restore() re-inserts in this order, so the
  // rebuilt age list is byte-for-byte the original eviction order.
  for (const std::uint64_t key : age_) {
    const Entry& e = cache_.at(key);
    SnapshotEntry se;
    se.key = e.key;
    se.base_key = e.base_key;
    se.probe_depth = e.probe_depth;
    const auto bytes = e.exemplar.bytes();
    se.payload.assign(bytes.begin(), bytes.end());
    se.replica_mask = e.replica_mask;
    se.contributions = e.contributions;
    se.first_replica = e.first_replica;
    se.holds_singleton_slot = e.holds_singleton_slot;
    se.released = e.released;
    se.recovered = e.recovered;
    se.first_seen_ns = e.first_seen.ns();
    snap.entries.push_back(std::move(se));
  }
  return snap;
}

void CompareCore::restore(const CompareSnapshot& snap, sim::TimePoint now) {
  cache_.clear();
  chains_.clear();
  age_.clear();
  const auto n = static_cast<std::size_t>(config_.k);
  singleton_count_.assign(n, 0);
  // Rate/garbage windows intentionally restart empty: replaying pre-crash
  // arrivals would re-accuse replicas for traffic already judged.
  arrival_ns_.assign(n, {});
  garbage_ns_.assign(n, {});
  missed_streak_.assign(n, 0);
  flagged_block_.assign(n, false);
  flagged_inactive_.assign(n, false);
  live_since_.assign(n, sim::TimePoint::origin());
  pending_advice_ = CompareAdvice{};
  last_cleanup_work_ = 0;

  stats_ = snap.stats;
  live_mask_ = snap.live_mask;
  live_count_ = snap.live_count;
  for (std::size_t i = 0; i < n && i < snap.live_since_ns.size(); ++i) {
    live_since_[i] = sim::TimePoint::from_ns(snap.live_since_ns[i]);
  }
  for (std::size_t i = 0; i < n && i < snap.missed_streak.size(); ++i) {
    missed_streak_[i] = snap.missed_streak[i];
  }
  for (std::size_t i = 0; i < n && i < snap.flagged_block.size(); ++i) {
    flagged_block_[i] = snap.flagged_block[i];
  }
  for (std::size_t i = 0; i < n && i < snap.flagged_inactive.size(); ++i) {
    flagged_inactive_[i] = snap.flagged_inactive[i];
  }

  for (const SnapshotEntry& se : snap.entries) {
    Entry e;
    e.key = se.key;
    e.base_key = se.base_key;
    e.probe_depth = se.probe_depth;
    e.exemplar = net::Packet(std::vector<std::byte>(se.payload));
    e.replica_mask = se.replica_mask;
    e.contributions = se.contributions;
    e.first_replica = se.first_replica;
    e.holds_singleton_slot = se.holds_singleton_slot;
    e.released = se.released;
    // The conservative-replay taint: an unreleased checkpoint entry may
    // have been released between the checkpoint and the crash, so its
    // post-restart quorum must never release again.
    e.recovered = se.recovered || !se.released;
    e.first_seen = sim::TimePoint::from_ns(se.first_seen_ns);
    age_.push_back(se.key);
    e.age_it = std::prev(age_.end());
    if (e.holds_singleton_slot &&
        e.first_replica >= 0 && static_cast<std::size_t>(e.first_replica) < n) {
      ++singleton_count_[static_cast<std::size_t>(e.first_replica)];
    }
    if (e.probe_depth > 0) {
      Chain& chain = chains_[e.base_key];
      ++chain.live;
      chain.max_depth = std::max(chain.max_depth, e.probe_depth);
    }
    cache_.emplace(se.key, std::move(e));
  }
  stats_.cache_entries = cache_.size();
  stats_.max_cache_entries =
      std::max(stats_.max_cache_entries, stats_.cache_entries);

  if (votes_ != nullptr) {
    // Fast-path state is NOT checkpointed (it is a routing memo plus
    // unconfirmed tallies — conservatively droppable). After a restore
    // the core fully verifies for one hold window: restored entries force
    // their copies to escalate anyway (full_entry_exists), and pinning
    // the period keeps fresh pre-crash in-flight copies off a vote cache
    // that no longer remembers their releases. Tombstones go with it:
    // during the pin every packet escalates, and the full path's
    // recovered-entry taint owns the at-most-once guarantee.
    votes_->clear();
    tombstones_.clear();
    tombstone_fifo_.clear();
    sampling_resume_at_ = now + config_.hold_timeout;
  }
}

}  // namespace netco::core
