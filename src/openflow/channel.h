// The switch ↔ controller control channel.
//
// Models the out-of-band TCP connection of a real deployment as a fixed
// one-way latency in each direction. Controller CPU costs are modelled by
// the controller framework (see controller/controller.h), not here.
#pragma once

#include <cstdint>

#include <functional>
#include <vector>

#include "openflow/messages.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace netco::openflow {

class OpenFlowSwitch;
class ControlChannel;

/// Receives switch events; implemented by the controller framework.
class ControllerEndpoint {
 public:
  virtual ~ControllerEndpoint() = default;

  /// A packet-in arrived from `channel`'s switch.
  virtual void on_packet_in(ControlChannel& channel, PacketIn event) = 0;
};

/// One switch's control connection.
class ControlChannel {
 public:
  /// Wires `sw` to `endpoint` with the given one-way latency and registers
  /// itself on the switch. `latency_jitter` adds U(0, jitter) per message
  /// — kernel/NIC scheduling noise that de-bunches the k near-simultaneous
  /// copies of each packet (a real wire never delivers them lockstep).
  ControlChannel(sim::Simulator& simulator, OpenFlowSwitch& sw,
                 ControllerEndpoint& endpoint, sim::Duration one_way_latency,
                 sim::Duration latency_jitter = sim::Duration::zero());

  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  // --- switch → controller ----------------------------------------------
  /// Ships a packet-in; the endpoint sees it after the channel latency.
  void packet_in(PacketIn event);

  // --- controller → switch ----------------------------------------------
  /// Ships a flow-mod; the switch applies it after the channel latency.
  void flow_mod(FlowMod mod);
  /// Ships a packet-out.
  void packet_out(PacketOut out);
  /// Ships a port-mod.
  void port_mod(PortMod mod);

  /// OFPST_FLOW: requests counter snapshots of every entry covered by
  /// `pattern`; `done` runs controller-side after a full round trip. The
  /// §VI case study's second screening method (flow-counter monitoring)
  /// uses this.
  using FlowStatsCallback =
      std::function<void(std::vector<FlowStatsEntry>)>;
  void request_flow_stats(const Match& pattern, FlowStatsCallback done);

  /// The switch this channel controls.
  [[nodiscard]] OpenFlowSwitch& attached_switch() noexcept { return switch_; }

  /// One-way latency of this channel.
  [[nodiscard]] sim::Duration latency() const noexcept { return latency_; }

  /// Counters (messages shipped each way).
  [[nodiscard]] std::uint64_t packet_ins() const noexcept { return packet_ins_; }
  [[nodiscard]] std::uint64_t messages_to_switch() const noexcept {
    return to_switch_;
  }

 private:
  [[nodiscard]] sim::Duration jittered_latency() noexcept;

  sim::Simulator& simulator_;
  OpenFlowSwitch& switch_;
  ControllerEndpoint& endpoint_;
  sim::Duration latency_;
  sim::Duration latency_jitter_;
  std::uint64_t packet_ins_ = 0;
  std::uint64_t to_switch_ = 0;
};

}  // namespace netco::openflow
