// OpenFlowSwitch: the untrusted commodity router of the paper.
//
// Implements the OF 1.0 datapath: per-packet pipeline latency, flow-table
// lookup, action application, table-miss punting to the controller. The
// switch also exposes two hooks the rest of the system builds on:
//
//  * `DatapathInterceptor` — the adversary's entry point. The threat model
//    (§II) places no restriction on what a malicious datapath does, so the
//    interceptor runs *before* the flow table and may rewrite, redirect,
//    duplicate, drop, or fabricate packets at will.
//  * an ingress tap — the monitoring used in the §VI case study (the
//    tcpdump-on-every-interface screen).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "device/datapath.h"
#include "device/node.h"
#include "obs/observability.h"
#include "openflow/flow_table.h"
#include "openflow/messages.h"
#include "sim/time.h"

namespace netco::openflow {

class ControlChannel;
class OpenFlowSwitch;

/// The interceptor contract is shared with every untrusted datapath kind
/// (see device/datapath.h); this alias keeps the OpenFlow-centric name.
using DatapathInterceptor = device::DatapathInterceptor;

/// Vendor personality of a switch — the heterogeneity NetCo leverages.
struct SwitchProfile {
  std::string vendor = "generic";
  /// Ingress-to-egress pipeline latency applied to every packet
  /// (kernel-softswitch magnitude, matching the Mininet testbed).
  sim::Duration processing_delay = sim::Duration::microseconds(15);
};

/// Datapath counters.
struct SwitchStats {
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t table_misses = 0;
  std::uint64_t packet_ins_sent = 0;
  std::uint64_t dropped_blocked_port = 0;
  std::uint64_t dropped_no_rule = 0;  ///< miss with no controller attached
  /// Lookups that skipped at least one dead-port-guarded entry before
  /// hitting — packets actively detoured by the static failover layer.
  std::uint64_t failover_reroutes = 0;
  /// Hits on rules stamped with kFailoverCookie (total packets carried
  /// by compiler-installed backup rules, rerouted or not).
  std::uint64_t static_backup_hits = 0;
};

/// An OpenFlow 1.0 switch.
class OpenFlowSwitch : public device::Node, public device::Datapath {
 public:
  OpenFlowSwitch(sim::Simulator& simulator, std::string name,
                 SwitchProfile profile = {});

  // --- datapath --------------------------------------------------------
  void handle_packet(device::PortIndex in_port, net::Packet packet) override;

  /// Applies an OF action list with `in_port` context (shared by the
  /// table path, packet-out handling and interceptors).
  void apply_actions(device::PortIndex in_port, const ActionList& actions,
                     net::Packet packet);

  /// Emits `packet` directly on `port`, bypassing the flow table but
  /// respecting port blocks. For interceptors and trusted components.
  void raw_output(device::PortIndex port, net::Packet packet) override;

  /// Datapath: the event loop.
  sim::Simulator& datapath_simulator() override { return simulator(); }

  /// Punts `packet` to the controller as a packet-in (trusted edge logic
  /// such as the sampling compare uses this; drops if no controller).
  void send_to_controller(device::PortIndex in_port, net::Packet packet) {
    punt_to_controller(in_port, std::move(packet));
  }

  // --- control plane ---------------------------------------------------
  /// Binds the control channel (called by ControlChannel's constructor).
  void bind_control(ControlChannel* channel) { control_ = channel; }

  /// Handlers invoked by the control channel after its latency.
  void receive_flow_mod(const FlowMod& mod);
  void receive_packet_out(PacketOut out);
  void receive_port_mod(const PortMod& mod);

  // --- hooks & introspection -------------------------------------------
  /// Installs the adversarial hook (nullptr to clear).
  void set_interceptor(DatapathInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// Monitoring tap fired for every ingress packet (before any processing).
  using IngressTap = std::function<void(device::PortIndex, const net::Packet&)>;
  void set_ingress_tap(IngressTap tap) { tap_ = std::move(tap); }

  /// The flow table (single table 0, as in OF 1.0 / the prototype).
  [[nodiscard]] FlowTable& table() noexcept { return table_; }
  [[nodiscard]] const FlowTable& table() const noexcept { return table_; }

  /// Datapath counters.
  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }

  /// Per-port rx/tx packet counters (index = port).
  [[nodiscard]] const std::vector<std::uint64_t>& port_rx() const noexcept {
    return port_rx_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& port_tx() const noexcept {
    return port_tx_;
  }

  /// Whether `port` is administratively blocked.
  [[nodiscard]] bool port_blocked(device::PortIndex port) const noexcept;

  /// Per-port liveness as seen by the local keepalive: a dead port
  /// disables every flow entry guarded on it (fast-failover semantics).
  /// Unlike a port block this is a *matching* condition, not an egress
  /// filter — lower-priority backup rules take over at the lookup.
  void set_port_live(device::PortIndex port, bool live);
  [[nodiscard]] bool port_live(device::PortIndex port) const noexcept;

  /// The vendor personality.
  [[nodiscard]] const SwitchProfile& profile() const noexcept {
    return profile_;
  }

 private:
  void pipeline(device::PortIndex in_port, net::Packet packet);
  /// Table lookup under the liveness-guard vector, with failover
  /// counter/trace accounting (shared by the pipeline and OFPP_TABLE).
  FlowEntry* guarded_lookup(const Match& key, const net::Packet& packet);
  void punt_to_controller(device::PortIndex in_port, net::Packet packet);
  void count_tx(const net::Packet& packet, device::PortIndex port);

  SwitchProfile profile_;
  FlowTable table_;
  obs::Observability* obs_;
  obs::Counter* table_hit_counter_;   ///< "switch.table_hits"
  obs::Counter* table_miss_counter_;  ///< "switch.table_misses"
  obs::Counter* reroute_counter_;     ///< "failover.reroute"
  obs::Counter* static_hit_counter_;  ///< "resilience.static_hit"
  ControlChannel* control_ = nullptr;
  DatapathInterceptor* interceptor_ = nullptr;
  IngressTap tap_;
  SwitchStats stats_;
  std::vector<bool> blocked_;
  std::vector<bool> port_dead_;  ///< liveness-guard state (true = dead)
  std::vector<std::uint64_t> port_rx_;
  std::vector<std::uint64_t> port_tx_;
};

}  // namespace netco::openflow
