#include "openflow/match.h"

#include <cstdio>

#include "common/fmt.h"

namespace netco::openflow {

Match Match::exact_from(const net::ParsedPacket& parsed,
                        device::PortIndex in_port) {
  Match m;
  m.with_in_port(in_port);
  m.with_dl_src(parsed.eth.src);
  m.with_dl_dst(parsed.eth.dst);
  m.with_dl_type(static_cast<net::EtherType>(parsed.eth.ethertype));
  if (parsed.vlan) {
    m.with_dl_vlan(parsed.vlan->vid);
    m.with_dl_vlan_pcp(parsed.vlan->pcp);
  } else {
    m.with_dl_vlan(kVlanNone);
  }
  if (parsed.ipv4) {
    m.with_nw_src(parsed.ipv4->src);
    m.with_nw_dst(parsed.ipv4->dst);
    m.with_nw_proto(parsed.ipv4->proto);
    m.with_nw_tos(parsed.ipv4->tos);
    if (parsed.udp) {
      m.with_tp_src(parsed.udp->src_port);
      m.with_tp_dst(parsed.udp->dst_port);
    } else if (parsed.tcp) {
      m.with_tp_src(parsed.tcp->src_port);
      m.with_tp_dst(parsed.tcp->dst_port);
    }
  }
  return m;
}

Match& Match::with_in_port(device::PortIndex port) {
  present_ |= kInPort;
  in_port_ = port;
  return *this;
}
Match& Match::with_dl_src(const net::MacAddress& mac) {
  present_ |= kDlSrc;
  dl_src_ = mac;
  return *this;
}
Match& Match::with_dl_dst(const net::MacAddress& mac) {
  present_ |= kDlDst;
  dl_dst_ = mac;
  return *this;
}
Match& Match::with_dl_vlan(std::uint16_t vid) {
  present_ |= kDlVlan;
  dl_vlan_ = vid;
  return *this;
}
Match& Match::with_dl_vlan_pcp(std::uint8_t pcp) {
  present_ |= kDlVlanPcp;
  dl_vlan_pcp_ = pcp;
  return *this;
}
Match& Match::with_dl_type(net::EtherType type) {
  present_ |= kDlType;
  dl_type_ = static_cast<std::uint16_t>(type);
  return *this;
}
Match& Match::with_nw_src(net::Ipv4Address ip) {
  present_ |= kNwSrc;
  nw_src_ = ip;
  return *this;
}
Match& Match::with_nw_dst(net::Ipv4Address ip) {
  present_ |= kNwDst;
  nw_dst_ = ip;
  return *this;
}
Match& Match::with_nw_proto(net::IpProto proto) {
  present_ |= kNwProto;
  nw_proto_ = static_cast<std::uint8_t>(proto);
  return *this;
}
Match& Match::with_nw_tos(std::uint8_t tos) {
  present_ |= kNwTos;
  nw_tos_ = tos;
  return *this;
}
Match& Match::with_tp_src(std::uint16_t port) {
  present_ |= kTpSrc;
  tp_src_ = port;
  return *this;
}
Match& Match::with_tp_dst(std::uint16_t port) {
  present_ |= kTpDst;
  tp_dst_ = port;
  return *this;
}

bool Match::covers(const Match& key) const noexcept {
  // Every field this pattern names must be present in the key with the
  // same value.
  if ((present_ & key.present_) != present_) return false;
  if ((present_ & kInPort) && in_port_ != key.in_port_) return false;
  if ((present_ & kDlSrc) && dl_src_ != key.dl_src_) return false;
  if ((present_ & kDlDst) && dl_dst_ != key.dl_dst_) return false;
  if ((present_ & kDlVlan) && dl_vlan_ != key.dl_vlan_) return false;
  if ((present_ & kDlVlanPcp) && dl_vlan_pcp_ != key.dl_vlan_pcp_) return false;
  if ((present_ & kDlType) && dl_type_ != key.dl_type_) return false;
  if ((present_ & kNwSrc) && nw_src_ != key.nw_src_) return false;
  if ((present_ & kNwDst) && nw_dst_ != key.nw_dst_) return false;
  if ((present_ & kNwProto) && nw_proto_ != key.nw_proto_) return false;
  if ((present_ & kNwTos) && nw_tos_ != key.nw_tos_) return false;
  if ((present_ & kTpSrc) && tp_src_ != key.tp_src_) return false;
  if ((present_ & kTpDst) && tp_dst_ != key.tp_dst_) return false;
  return true;
}

bool Match::strictly_equals(const Match& other) const noexcept {
  return present_ == other.present_ && covers(other);
}

std::string Match::to_string() const {
  std::string out;
  auto add = [&out](std::string piece) {
    if (!out.empty()) out += ' ';
    out += std::move(piece);
  };
  char buf[48];
  if (present_ & kInPort) add(fmt("in_port={}", in_port_));
  if (present_ & kDlSrc) add("dl_src=" + dl_src_.to_string());
  if (present_ & kDlDst) add("dl_dst=" + dl_dst_.to_string());
  if (present_ & kDlVlan) {
    std::snprintf(buf, sizeof buf, "dl_vlan=0x%x", dl_vlan_);
    add(buf);
  }
  if (present_ & kDlType) {
    std::snprintf(buf, sizeof buf, "dl_type=0x%04x", dl_type_);
    add(buf);
  }
  if (present_ & kNwSrc) add("nw_src=" + nw_src_.to_string());
  if (present_ & kNwDst) add("nw_dst=" + nw_dst_.to_string());
  if (present_ & kNwProto) add(fmt("nw_proto={}", unsigned{nw_proto_}));
  if (present_ & kTpSrc) add(fmt("tp_src={}", tp_src_));
  if (present_ & kTpDst) add(fmt("tp_dst={}", tp_dst_));
  if (out.empty()) out = "(any)";
  return out;
}

}  // namespace netco::openflow
