// OpenFlow 1.0 actions.
//
// An action list is applied in order; header-modify actions mutate the
// in-flight packet, and each Output action emits a copy of the packet in
// its *current* (possibly rewritten) state — faithful OF 1.0 semantics.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "device/node.h"
#include "net/address.h"
#include "net/packet.h"

namespace netco::openflow {

/// Virtual output ports (OF 1.0 "pseudo ports").
enum class VirtualPort : std::uint32_t {
  kFlood = 0xFFFFFFFB,       ///< all ports except ingress
  kController = 0xFFFFFFFD,  ///< punt to the controller (packet-in)
  kInPort = 0xFFFFFFF8,      ///< send back out of the ingress port
  kTable = 0xFFFFFFF9,       ///< re-inject into the flow table (packet-out)
};

/// Emit the packet on a physical or virtual port.
struct OutputAction {
  std::uint32_t port = 0;  ///< PortIndex or a VirtualPort value

  static OutputAction to(device::PortIndex port) { return {port}; }
  static OutputAction flood() {
    return {static_cast<std::uint32_t>(VirtualPort::kFlood)};
  }
  static OutputAction controller() {
    return {static_cast<std::uint32_t>(VirtualPort::kController)};
  }
  static OutputAction in_port() {
    return {static_cast<std::uint32_t>(VirtualPort::kInPort)};
  }
  static OutputAction table() {
    return {static_cast<std::uint32_t>(VirtualPort::kTable)};
  }
};

/// OFPAT_SET_DL_SRC.
struct SetDlSrcAction {
  net::MacAddress mac;
};
/// OFPAT_SET_DL_DST.
struct SetDlDstAction {
  net::MacAddress mac;
};
/// OFPAT_SET_VLAN_VID (inserts a tag when the frame is untagged).
struct SetVlanVidAction {
  std::uint16_t vid = 0;
};
/// OFPAT_STRIP_VLAN.
struct StripVlanAction {};
/// OFPAT_SET_NW_DST (fixes checksums, as hardware would).
struct SetNwDstAction {
  net::Ipv4Address ip;
};

/// One OpenFlow action.
using Action = std::variant<OutputAction, SetDlSrcAction, SetDlDstAction,
                            SetVlanVidAction, StripVlanAction, SetNwDstAction>;

/// An ordered action list. Empty list == drop (OF 1.0 semantics).
using ActionList = std::vector<Action>;

/// Applies a non-output action to `packet`; Output actions are handled by
/// the datapath (they need port context) and must not be passed here.
void apply_header_action(const Action& action, net::Packet& packet);

/// True if `action` is an OutputAction.
[[nodiscard]] bool is_output(const Action& action) noexcept;

/// Debug rendering of an action list, e.g. "[set_vlan(7), output(2)]".
[[nodiscard]] std::string to_string(const ActionList& actions);

}  // namespace netco::openflow
