// OpenFlow 1.0 twelve-tuple match with per-field wildcards.
//
// A Match doubles as (a) the exact key extracted from a packet and (b) a
// rule pattern where absent fields are wildcarded. `covers()` implements
// rule-against-key matching. Port numbering is 0-based (the simulator's
// convention) rather than OpenFlow's 1-based numbering.
#pragma once

#include <cstdint>
#include <string>

#include "device/node.h"
#include "net/address.h"
#include "net/headers.h"

namespace netco::openflow {

/// OF 1.0 convention: dl_vlan value meaning "untagged".
inline constexpr std::uint16_t kVlanNone = 0xFFFF;

/// The OpenFlow 1.0 match structure.
class Match {
 public:
  /// Bit per field; a set bit means the field participates in matching.
  enum Field : std::uint32_t {
    kInPort = 1u << 0,
    kDlSrc = 1u << 1,
    kDlDst = 1u << 2,
    kDlVlan = 1u << 3,
    kDlVlanPcp = 1u << 4,
    kDlType = 1u << 5,
    kNwSrc = 1u << 6,
    kNwDst = 1u << 7,
    kNwProto = 1u << 8,
    kNwTos = 1u << 9,
    kTpSrc = 1u << 10,
    kTpDst = 1u << 11,
  };
  static constexpr std::uint32_t kAllFields = (1u << 12) - 1;

  /// Fully wildcarded match (matches everything).
  Match() = default;

  /// Exact match key for a parsed packet arriving on `in_port`.
  /// Missing layers leave their fields wildcarded, per OF 1.0 semantics.
  static Match exact_from(const net::ParsedPacket& parsed,
                          device::PortIndex in_port);

  // --- builder-style setters (chainable) --------------------------------
  Match& with_in_port(device::PortIndex port);
  Match& with_dl_src(const net::MacAddress& mac);
  Match& with_dl_dst(const net::MacAddress& mac);
  Match& with_dl_vlan(std::uint16_t vid);  ///< kVlanNone for "untagged"
  Match& with_dl_vlan_pcp(std::uint8_t pcp);
  Match& with_dl_type(net::EtherType type);
  Match& with_nw_src(net::Ipv4Address ip);
  Match& with_nw_dst(net::Ipv4Address ip);
  Match& with_nw_proto(net::IpProto proto);
  Match& with_nw_tos(std::uint8_t tos);
  Match& with_tp_src(std::uint16_t port);
  Match& with_tp_dst(std::uint16_t port);

  /// True if this pattern (with wildcards) matches the exact `key`.
  [[nodiscard]] bool covers(const Match& key) const noexcept;

  /// True if both patterns name the same fields with the same values
  /// (used for strict flow-mod delete/modify).
  [[nodiscard]] bool strictly_equals(const Match& other) const noexcept;

  /// Bitmask of participating fields.
  [[nodiscard]] std::uint32_t present() const noexcept { return present_; }

  // --- field accessors (meaningful only if the bit is present) ----------
  [[nodiscard]] device::PortIndex in_port() const noexcept { return in_port_; }
  [[nodiscard]] const net::MacAddress& dl_src() const noexcept { return dl_src_; }
  [[nodiscard]] const net::MacAddress& dl_dst() const noexcept { return dl_dst_; }
  [[nodiscard]] std::uint16_t dl_vlan() const noexcept { return dl_vlan_; }
  [[nodiscard]] std::uint8_t dl_vlan_pcp() const noexcept { return dl_vlan_pcp_; }
  [[nodiscard]] std::uint16_t dl_type() const noexcept { return dl_type_; }
  [[nodiscard]] net::Ipv4Address nw_src() const noexcept { return nw_src_; }
  [[nodiscard]] net::Ipv4Address nw_dst() const noexcept { return nw_dst_; }
  [[nodiscard]] std::uint8_t nw_proto() const noexcept { return nw_proto_; }
  [[nodiscard]] std::uint8_t nw_tos() const noexcept { return nw_tos_; }
  [[nodiscard]] std::uint16_t tp_src() const noexcept { return tp_src_; }
  [[nodiscard]] std::uint16_t tp_dst() const noexcept { return tp_dst_; }

  /// Debug rendering, e.g. "in_port=2 dl_dst=02:..:05".
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint32_t present_ = 0;
  device::PortIndex in_port_ = 0;
  net::MacAddress dl_src_;
  net::MacAddress dl_dst_;
  std::uint16_t dl_vlan_ = kVlanNone;
  std::uint8_t dl_vlan_pcp_ = 0;
  std::uint16_t dl_type_ = 0;
  net::Ipv4Address nw_src_;
  net::Ipv4Address nw_dst_;
  std::uint8_t nw_proto_ = 0;
  std::uint8_t nw_tos_ = 0;
  std::uint16_t tp_src_ = 0;
  std::uint16_t tp_dst_ = 0;
};

}  // namespace netco::openflow
