#include "openflow/action.h"

#include "common/assert.h"
#include "common/fmt.h"
#include "net/headers.h"

namespace netco::openflow {

void apply_header_action(const Action& action, net::Packet& packet) {
  std::visit(
      [&packet](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, OutputAction>) {
          NETCO_ASSERT_MSG(false, "Output is not a header action");
        } else if constexpr (std::is_same_v<T, SetDlSrcAction>) {
          net::set_dl_src(packet, a.mac);
        } else if constexpr (std::is_same_v<T, SetDlDstAction>) {
          net::set_dl_dst(packet, a.mac);
        } else if constexpr (std::is_same_v<T, SetVlanVidAction>) {
          net::set_vlan(packet, a.vid);
        } else if constexpr (std::is_same_v<T, StripVlanAction>) {
          net::strip_vlan(packet);
        } else if constexpr (std::is_same_v<T, SetNwDstAction>) {
          net::set_nw_dst(packet, a.ip);
        }
      },
      action);
}

bool is_output(const Action& action) noexcept {
  return std::holds_alternative<OutputAction>(action);
}

std::string to_string(const ActionList& actions) {
  std::string out = "[";
  bool first = true;
  for (const auto& action : actions) {
    if (!first) out += ", ";
    first = false;
    out += std::visit(
        [](const auto& a) -> std::string {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, OutputAction>) {
            switch (static_cast<VirtualPort>(a.port)) {
              case VirtualPort::kFlood: return "output(FLOOD)";
              case VirtualPort::kController: return "output(CONTROLLER)";
              case VirtualPort::kInPort: return "output(IN_PORT)";
              case VirtualPort::kTable: return "output(TABLE)";
            }
            return netco::fmt("output({})", a.port);
          } else if constexpr (std::is_same_v<T, SetDlSrcAction>) {
            return "set_dl_src(" + a.mac.to_string() + ")";
          } else if constexpr (std::is_same_v<T, SetDlDstAction>) {
            return "set_dl_dst(" + a.mac.to_string() + ")";
          } else if constexpr (std::is_same_v<T, SetVlanVidAction>) {
            return netco::fmt("set_vlan({})", a.vid);
          } else if constexpr (std::is_same_v<T, StripVlanAction>) {
            return "strip_vlan";
          } else if constexpr (std::is_same_v<T, SetNwDstAction>) {
            return "set_nw_dst(" + a.ip.to_string() + ")";
          }
        },
        action);
  }
  out += "]";
  return out;
}

}  // namespace netco::openflow
