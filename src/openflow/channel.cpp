#include "openflow/channel.h"

#include <utility>

#include "openflow/switch.h"

namespace netco::openflow {

ControlChannel::ControlChannel(sim::Simulator& simulator, OpenFlowSwitch& sw,
                               ControllerEndpoint& endpoint,
                               sim::Duration one_way_latency,
                               sim::Duration latency_jitter)
    : simulator_(simulator),
      switch_(sw),
      endpoint_(endpoint),
      latency_(one_way_latency),
      latency_jitter_(latency_jitter) {
  switch_.bind_control(this);
}

sim::Duration ControlChannel::jittered_latency() noexcept {
  if (latency_jitter_ <= sim::Duration::zero()) return latency_;
  return latency_ + sim::Duration::nanoseconds(static_cast<std::int64_t>(
                        simulator_.rng().uniform(
                            0.0, static_cast<double>(latency_jitter_.ns()))));
}

void ControlChannel::packet_in(PacketIn event) {
  ++packet_ins_;
  simulator_.schedule_after(jittered_latency(),
                            [this, e = std::move(event)]() mutable {
                              endpoint_.on_packet_in(*this, std::move(e));
                            });
}

void ControlChannel::flow_mod(FlowMod mod) {
  ++to_switch_;
  simulator_.schedule_after(jittered_latency(), [this, m = std::move(mod)] {
    switch_.receive_flow_mod(m);
  });
}

void ControlChannel::packet_out(PacketOut out) {
  ++to_switch_;
  simulator_.schedule_after(jittered_latency(),
                            [this, o = std::move(out)]() mutable {
                              switch_.receive_packet_out(std::move(o));
                            });
}

void ControlChannel::request_flow_stats(const Match& pattern,
                                        FlowStatsCallback done) {
  ++to_switch_;
  simulator_.schedule_after(
      jittered_latency(), [this, pattern, done = std::move(done)] {
        // Snapshot on the switch, then the reply travels back.
        std::vector<FlowStatsEntry> rows;
        for (const auto& entry : switch_.table().entries()) {
          if (!pattern.covers(entry.spec.match) &&
              !pattern.strictly_equals(entry.spec.match) &&
              pattern.present() != 0)
            continue;
          rows.push_back(FlowStatsEntry{.match = entry.spec.match,
                                        .priority = entry.spec.priority,
                                        .packet_count = entry.packet_count,
                                        .byte_count = entry.byte_count});
        }
        simulator_.schedule_after(jittered_latency(),
                                  [rows = std::move(rows),
                                   done = std::move(done)]() mutable {
                                    done(std::move(rows));
                                  });
      });
}

void ControlChannel::port_mod(PortMod mod) {
  ++to_switch_;
  simulator_.schedule_after(jittered_latency(),
                            [this, mod] { switch_.receive_port_mod(mod); });
}

}  // namespace netco::openflow
