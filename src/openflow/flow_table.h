// OpenFlow 1.0 flow table: prioritized match-action rules with counters
// and idle/hard timeouts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "device/node.h"
#include "openflow/action.h"
#include "openflow/match.h"
#include "sim/time.h"

namespace netco::openflow {

/// Cookie stamped on rules installed by the static failover compiler
/// (src/failover): the datapath counts hits on these as
/// "resilience.static_hit" — traffic carried by the pre-installed backup
/// layer rather than the primary routing.
inline constexpr std::uint64_t kFailoverCookie = 0xFA11'0FEE;

/// The caller-provided part of a flow entry (what a flow-mod carries).
struct FlowSpec {
  Match match;                ///< pattern (wildcards allowed)
  ActionList actions;         ///< empty == drop
  std::uint16_t priority = 0; ///< higher wins
  sim::Duration idle_timeout = sim::Duration::zero();  ///< zero == none
  sim::Duration hard_timeout = sim::Duration::zero();  ///< zero == none
  std::uint64_t cookie = 0;   ///< opaque controller tag
  /// Per-port liveness guard (OF fast-failover semantics): when set, the
  /// entry only matches while this port is live per the liveness vector
  /// the datapath hands to lookup(). kNoPort = unconditional. This is how
  /// the failover compiler chains primary → backup rules without any
  /// controller round-trip: the guard flips with the keepalive state and
  /// the next lower-priority rule takes over instantly.
  device::PortIndex guard_port = device::kNoPort;
};

/// An installed entry: spec + counters + timestamps.
struct FlowEntry {
  FlowSpec spec;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  sim::TimePoint installed_at;
  sim::TimePoint last_used;  ///< for idle timeout

  /// True once either timeout has elapsed at `now`.
  [[nodiscard]] bool expired(sim::TimePoint now) const noexcept {
    const auto& s = spec;
    if (s.hard_timeout > sim::Duration::zero() &&
        now - installed_at >= s.hard_timeout)
      return true;
    if (s.idle_timeout > sim::Duration::zero() &&
        now - last_used >= s.idle_timeout)
      return true;
    return false;
  }
};

/// Table-level counters.
struct TableStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t entries_expired = 0;
};

/// A single OF 1.0 flow table (the prototype uses table 0 only).
class FlowTable {
 public:
  /// Installs `spec`; replaces an entry whose match strictly equals it at
  /// the same priority (OFPFC_ADD overlap behaviour), otherwise appends.
  void add(FlowSpec spec, sim::TimePoint now);

  /// OFPFC_MODIFY: rewrites the actions of all entries covered by `match`
  /// (non-strict). Returns the number of entries touched.
  std::size_t modify_actions(const Match& match, const ActionList& actions);

  /// OFPFC_DELETE (non-strict): removes all entries whose match is covered
  /// by `pattern`. Returns the number removed.
  std::size_t remove(const Match& pattern);

  /// OFPFC_DELETE_STRICT: removes the entry with exactly this match and
  /// priority, if present.
  std::size_t remove_strict(const Match& match, std::uint16_t priority);

  /// Highest-priority entry covering the exact key, updating counters and
  /// the idle timestamp. Expired entries are evicted on the way.
  /// Returns nullptr on table miss.
  ///
  /// When `dead_ports` is given, entries whose guard_port indexes a true
  /// slot are skipped (fast-failover group semantics). `guard_skipped`,
  /// when non-null, is set to whether at least one covering entry was
  /// skipped this way before the returned hit — i.e. the packet was
  /// actively rerouted around a dead port, not just carried by a backup
  /// rule it would have matched anyway.
  FlowEntry* lookup(const Match& key, std::size_t packet_bytes,
                    sim::TimePoint now,
                    const std::vector<bool>* dead_ports = nullptr,
                    bool* guard_skipped = nullptr);

  /// Read-only lookup without counter updates (monitoring/tests).
  [[nodiscard]] const FlowEntry* peek(
      const Match& key, sim::TimePoint now,
      const std::vector<bool>* dead_ports = nullptr) const;

  /// Evicts every entry expired at `now`. Returns the number evicted.
  std::size_t expire(sim::TimePoint now);

  /// All live entries (monitoring; order is priority-descending).
  [[nodiscard]] const std::vector<FlowEntry>& entries() const noexcept {
    return entries_;
  }

  /// Number of installed entries.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Lookup/hit/expiry counters.
  [[nodiscard]] const TableStats& stats() const noexcept { return stats_; }

 private:
  // Sorted by priority descending; stable order within equal priorities
  // (first-installed wins, which is deterministic and matches common
  // switch behaviour for overlapping rules).
  std::vector<FlowEntry> entries_;
  TableStats stats_;
};

}  // namespace netco::openflow
