#include "openflow/switch.h"

#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "net/headers.h"
#include "openflow/channel.h"

namespace netco::openflow {

OpenFlowSwitch::OpenFlowSwitch(sim::Simulator& simulator, std::string name,
                               SwitchProfile profile)
    : Node(simulator, std::move(name)),
      profile_(std::move(profile)),
      obs_(&obs::global()),
      table_hit_counter_(&obs_->metrics.counter("switch.table_hits")),
      table_miss_counter_(&obs_->metrics.counter("switch.table_misses")),
      reroute_counter_(&obs_->metrics.counter("failover.reroute")),
      static_hit_counter_(&obs_->metrics.counter("resilience.static_hit")) {}

bool OpenFlowSwitch::port_blocked(device::PortIndex port) const noexcept {
  return port < blocked_.size() && blocked_[port];
}

void OpenFlowSwitch::set_port_live(device::PortIndex port, bool live) {
  if (port == device::kNoPort) return;
  if (port_dead_.size() <= port) port_dead_.resize(port + 1, false);
  port_dead_[port] = !live;
  obs::Tracer& tracer = obs_->tracer;
  if (tracer.enabled()) {
    tracer.emit(simulator().now().ns(),
                live ? obs::TraceEvent::kFailoverPortLive
                     : obs::TraceEvent::kFailoverPortDead,
                0, name(), static_cast<std::int32_t>(port), 0);
  }
}

bool OpenFlowSwitch::port_live(device::PortIndex port) const noexcept {
  return !(port < port_dead_.size() && port_dead_[port]);
}

void OpenFlowSwitch::handle_packet(device::PortIndex in_port,
                                   net::Packet packet) {
  if (tap_) tap_(in_port, packet);
  if (port_blocked(in_port)) {
    ++stats_.dropped_blocked_port;
    return;
  }
  ++stats_.rx_packets;
  stats_.rx_bytes += packet.size();
  if (port_rx_.size() <= in_port) port_rx_.resize(in_port + 1, 0);
  ++port_rx_[in_port];

  // The pipeline latency models the ASIC/softswitch ingress-to-egress
  // delay; lookups themselves are "free" afterwards.
  simulator().schedule_after(
      profile_.processing_delay,
      [this, in_port, p = std::move(packet)]() mutable {
        pipeline(in_port, std::move(p));
      });
}

void OpenFlowSwitch::pipeline(device::PortIndex in_port, net::Packet packet) {
  if (interceptor_ != nullptr &&
      interceptor_->intercept(*this, in_port, packet)) {
    return;  // adversary swallowed the packet
  }
  const auto parsed = net::parse_packet(packet);
  if (!parsed) return;  // unparseable runt: drop silently
  const Match key = Match::exact_from(*parsed, in_port);
  FlowEntry* entry = guarded_lookup(key, packet);
  if (entry == nullptr) {
    ++stats_.table_misses;
    table_miss_counter_->inc();
    punt_to_controller(in_port, std::move(packet));
    return;
  }
  table_hit_counter_->inc();
  apply_actions(in_port, entry->spec.actions, std::move(packet));
}

FlowEntry* OpenFlowSwitch::guarded_lookup(const Match& key,
                                          const net::Packet& packet) {
  bool rerouted = false;
  FlowEntry* entry = table_.lookup(key, packet.size(), simulator().now(),
                                   port_dead_.empty() ? nullptr : &port_dead_,
                                   &rerouted);
  if (entry != nullptr && rerouted) {
    ++stats_.failover_reroutes;
    reroute_counter_->inc();
    obs::Tracer& tracer = obs_->tracer;
    if (tracer.enabled()) {
      tracer.emit(simulator().now().ns(), obs::TraceEvent::kFailoverReroute,
                  packet.content_hash(), name(),
                  static_cast<std::int32_t>(entry->spec.priority),
                  static_cast<std::uint32_t>(packet.size()));
    }
  }
  if (entry != nullptr && entry->spec.cookie == kFailoverCookie) {
    ++stats_.static_backup_hits;
    static_hit_counter_->inc();
  }
  return entry;
}

void OpenFlowSwitch::apply_actions(device::PortIndex in_port,
                                   const ActionList& actions,
                                   net::Packet packet) {
  // OF 1.0: actions run in order; each Output emits the packet in its
  // current (possibly rewritten) state. An empty list drops.
  for (const auto& action : actions) {
    if (const auto* out = std::get_if<OutputAction>(&action)) {
      switch (static_cast<VirtualPort>(out->port)) {
        case VirtualPort::kFlood: {
          for (device::PortIndex p = 0;
               p < static_cast<device::PortIndex>(port_count()); ++p) {
            if (p == in_port || port_blocked(p)) continue;
            count_tx(packet, p);
            send(p, packet);
          }
          break;
        }
        case VirtualPort::kController:
          punt_to_controller(in_port, packet);
          break;
        case VirtualPort::kInPort:
          raw_output(in_port, packet);
          break;
        case VirtualPort::kTable:
          // Packet-out OFPP_TABLE: run the packet through the flow table.
          // The interceptor is NOT re-run (it models the physical ingress
          // path); trusted components rely on this for released packets.
          {
            const auto parsed = net::parse_packet(packet);
            if (parsed) {
              const Match key = Match::exact_from(*parsed, in_port);
              FlowEntry* entry = guarded_lookup(key, packet);
              if (entry != nullptr) {
                apply_actions(in_port, entry->spec.actions, packet);
              } else {
                ++stats_.dropped_no_rule;
              }
            }
          }
          break;
        default:
          raw_output(static_cast<device::PortIndex>(out->port), packet);
          break;
      }
    } else {
      apply_header_action(action, packet);
    }
  }
}

void OpenFlowSwitch::raw_output(device::PortIndex port, net::Packet packet) {
  if (port >= port_count()) {
    NETCO_LOG_WARN(name(), "output to nonexistent port {}", port);
    return;
  }
  if (port_blocked(port)) {
    ++stats_.dropped_blocked_port;
    return;
  }
  count_tx(packet, port);
  send(port, std::move(packet));
}

void OpenFlowSwitch::count_tx(const net::Packet& packet,
                              device::PortIndex port) {
  ++stats_.tx_packets;
  stats_.tx_bytes += packet.size();
  if (port_tx_.size() <= port) port_tx_.resize(port + 1, 0);
  ++port_tx_[port];
  obs::Tracer& tracer = obs_->tracer;
  if (tracer.enabled()) {
    // Every egress of an (untrusted) switch is a lifecycle hop: the record
    // places the packet id at this switch at this instant, which is what
    // makes compare verdicts attributable to a concrete forwarding path.
    // The id is the memoized content hash — computed at the hub ingress
    // (or the first hop that asked) and shared by every COW copy, so a
    // packet crossing h switches is hashed once, not h times.
    tracer.emit(simulator().now().ns(), obs::TraceEvent::kReplicaForward,
                packet.content_hash(), name(),
                static_cast<std::int32_t>(port),
                static_cast<std::uint32_t>(packet.size()));
  }
}

void OpenFlowSwitch::punt_to_controller(device::PortIndex in_port,
                                        net::Packet packet) {
  if (control_ == nullptr) {
    ++stats_.dropped_no_rule;
    return;
  }
  ++stats_.packet_ins_sent;
  control_->packet_in(PacketIn{.in_port = in_port, .packet = std::move(packet)});
}

void OpenFlowSwitch::receive_flow_mod(const FlowMod& mod) {
  switch (mod.command) {
    case FlowModCommand::kAdd:
      table_.add(mod.spec, simulator().now());
      break;
    case FlowModCommand::kModify:
      table_.modify_actions(mod.spec.match, mod.spec.actions);
      break;
    case FlowModCommand::kDelete:
      table_.remove(mod.spec.match);
      break;
    case FlowModCommand::kDeleteStrict:
      table_.remove_strict(mod.spec.match, mod.spec.priority);
      break;
  }
}

void OpenFlowSwitch::receive_packet_out(PacketOut out) {
  apply_actions(out.in_port, out.actions, std::move(out.packet));
}

void OpenFlowSwitch::receive_port_mod(const PortMod& mod) {
  if (mod.port == device::kNoPort) return;
  if (blocked_.size() <= mod.port) blocked_.resize(mod.port + 1, false);
  blocked_[mod.port] = mod.blocked;
  NETCO_LOG_INFO(name(), "port {} {}", mod.port,
                 mod.blocked ? "blocked" : "unblocked");
}

}  // namespace netco::openflow
