#include "openflow/flow_table.h"

#include <algorithm>

namespace netco::openflow {

void FlowTable::add(FlowSpec spec, sim::TimePoint now) {
  // Replace a strictly identical entry at the same priority.
  for (auto& entry : entries_) {
    if (entry.spec.priority == spec.priority &&
        entry.spec.match.strictly_equals(spec.match)) {
      entry.spec = std::move(spec);
      entry.installed_at = now;
      entry.last_used = now;
      entry.packet_count = 0;
      entry.byte_count = 0;
      return;
    }
  }
  FlowEntry entry;
  entry.spec = std::move(spec);
  entry.installed_at = now;
  entry.last_used = now;
  // Insert keeping priority-descending, stable within equal priority.
  const auto pos = std::find_if(
      entries_.begin(), entries_.end(), [&entry](const FlowEntry& e) {
        return e.spec.priority < entry.spec.priority;
      });
  entries_.insert(pos, std::move(entry));
}

std::size_t FlowTable::modify_actions(const Match& match,
                                      const ActionList& actions) {
  std::size_t touched = 0;
  for (auto& entry : entries_) {
    if (match.covers(entry.spec.match)) {
      entry.spec.actions = actions;
      ++touched;
    }
  }
  return touched;
}

std::size_t FlowTable::remove(const Match& pattern) {
  const auto before = entries_.size();
  std::erase_if(entries_, [&pattern](const FlowEntry& entry) {
    return pattern.covers(entry.spec.match);
  });
  return before - entries_.size();
}

std::size_t FlowTable::remove_strict(const Match& match,
                                     std::uint16_t priority) {
  const auto before = entries_.size();
  std::erase_if(entries_, [&](const FlowEntry& entry) {
    return entry.spec.priority == priority &&
           entry.spec.match.strictly_equals(match);
  });
  return before - entries_.size();
}

namespace {

// True when the entry's liveness guard refers to a port marked dead.
bool guard_dead(const FlowSpec& spec, const std::vector<bool>* dead_ports) {
  return dead_ports != nullptr && spec.guard_port != device::kNoPort &&
         spec.guard_port < dead_ports->size() && (*dead_ports)[spec.guard_port];
}

}  // namespace

FlowEntry* FlowTable::lookup(const Match& key, std::size_t packet_bytes,
                             sim::TimePoint now,
                             const std::vector<bool>* dead_ports,
                             bool* guard_skipped) {
  ++stats_.lookups;
  expire(now);
  bool skipped = false;
  for (auto& entry : entries_) {
    if (!entry.spec.match.covers(key)) continue;
    if (guard_dead(entry.spec, dead_ports)) {
      skipped = true;
      continue;
    }
    ++stats_.hits;
    ++entry.packet_count;
    entry.byte_count += packet_bytes;
    entry.last_used = now;
    if (guard_skipped != nullptr) *guard_skipped = skipped;
    return &entry;
  }
  if (guard_skipped != nullptr) *guard_skipped = skipped;
  return nullptr;
}

const FlowEntry* FlowTable::peek(const Match& key, sim::TimePoint now,
                                 const std::vector<bool>* dead_ports) const {
  for (const auto& entry : entries_) {
    if (entry.expired(now) || !entry.spec.match.covers(key)) continue;
    if (guard_dead(entry.spec, dead_ports)) continue;
    return &entry;
  }
  return nullptr;
}

std::size_t FlowTable::expire(sim::TimePoint now) {
  const auto before = entries_.size();
  std::erase_if(entries_,
                [now](const FlowEntry& entry) { return entry.expired(now); });
  const std::size_t evicted = before - entries_.size();
  stats_.entries_expired += evicted;
  return evicted;
}

}  // namespace netco::openflow
