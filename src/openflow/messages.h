// OpenFlow 1.0 control messages (the subset the paper's prototype uses:
// packet-in, packet-out, flow-mod, plus a port-mod used for the compare's
// DoS block advice).
#pragma once

#include <cstdint>

#include "device/node.h"
#include "net/packet.h"
#include "openflow/flow_table.h"

namespace netco::openflow {

/// Switch → controller: a packet that missed the flow table (or was
/// explicitly punted via output(CONTROLLER)). Carries the full frame;
/// buffer ids are not modelled.
struct PacketIn {
  device::PortIndex in_port = device::kNoPort;
  net::Packet packet;
};

/// Controller → switch: emit `packet` through `actions`.
/// `in_port` provides the ingress context for FLOOD/IN_PORT resolution.
struct PacketOut {
  ActionList actions;
  net::Packet packet;
  device::PortIndex in_port = device::kNoPort;
};

/// Flow-mod commands (OFPFC_*).
enum class FlowModCommand : std::uint8_t {
  kAdd,
  kModify,        ///< rewrite actions of all covered entries
  kDelete,        ///< non-strict delete
  kDeleteStrict,  ///< exact match + priority
};

/// Controller → switch: mutate the flow table.
struct FlowMod {
  FlowModCommand command = FlowModCommand::kAdd;
  FlowSpec spec;
};

/// Switch → controller: one flow entry's counters (OFPST_FLOW reply row).
struct FlowStatsEntry {
  Match match;
  std::uint16_t priority = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

/// Controller → switch: administratively block/unblock a port
/// (OFPPC_PORT_DOWN in spirit). Blocked ports neither receive nor transmit.
struct PortMod {
  device::PortIndex port = device::kNoPort;
  bool blocked = false;
};

}  // namespace netco::openflow
