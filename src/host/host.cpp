#include "host/host.h"

#include <utility>

#include "common/assert.h"
#include "common/log.h"

namespace netco::host {

Host::Host(sim::Simulator& simulator, std::string name, net::MacAddress mac,
           net::Ipv4Address ip, HostProfile profile)
    : Node(simulator, std::move(name)), mac_(mac), ip_(ip), profile_(profile) {}

void Host::transmit(net::Packet packet) {
  NETCO_ASSERT_MSG(port_count() >= 1, "host transmit before wiring");
  ++stats_.tx_packets;
  send(0, std::move(packet));
}

void Host::cpu_submit(sim::Duration cost, std::function<void()> done) {
  cpu_queue_.push_back(CpuJob{cost, std::move(done)});
  if (!cpu_busy_) cpu_run_next();
}

void Host::cpu_run_next() {
  if (cpu_queue_.empty()) {
    cpu_busy_ = false;
    return;
  }
  cpu_busy_ = true;
  sim::Duration cost = cpu_queue_.front().cost;
  if (profile_.service_jitter > 0.0) {
    const double factor = simulator().rng().uniform(
        1.0 - profile_.service_jitter, 1.0 + profile_.service_jitter);
    cost = sim::Duration::nanoseconds(
        static_cast<std::int64_t>(static_cast<double>(cost.ns()) * factor));
  }
  simulator().schedule_after(cost, [this] {
    CpuJob job = std::move(cpu_queue_.front());
    cpu_queue_.pop_front();
    job.done();
    cpu_run_next();
  });
}

void Host::handle_packet(device::PortIndex /*in_port*/, net::Packet packet) {
  if (rx_tap_) rx_tap_(packet);

  // NIC-level MAC filter: frames not for us are counted and dropped (the
  // case-study screens rely on this count to detect stray packets).
  const net::MacAddress dst = packet.size() >= 6
                                  ? packet.mac_at(0)
                                  : net::MacAddress{};
  if (packet.size() < 14 || (dst != mac_ && !dst.is_broadcast())) {
    ++stats_.rx_stray;
    return;
  }

  // Classify before charging CPU: pure TCP ACKs bypass the cost model.
  const auto parsed = net::parse_packet(packet);
  const bool pure_ack = parsed && parsed->tcp &&
                        parsed->payload_offset >= packet.size();
  if (pure_ack) {
    ++stats_.rx_packets;
    rx_deliver(std::move(packet));
    return;
  }

  if (rx_dropping_) {
    if (rx_in_cpu_ > profile_.rx_backlog / 2) {
      ++stats_.rx_backlog_drops;
      return;
    }
    rx_dropping_ = false;  // drained to the low-water mark
  } else if (rx_in_cpu_ >= profile_.rx_backlog) {
    rx_dropping_ = true;
    ++stats_.rx_backlog_drops;
    return;
  }
  ++rx_in_cpu_;
  const auto rx_cost =
      profile_.rx_cost +
      sim::Duration::nanoseconds(static_cast<std::int64_t>(
          profile_.rx_ns_per_byte * static_cast<double>(packet.size())));
  cpu_submit(rx_cost, [this, p = std::move(packet)]() mutable {
    --rx_in_cpu_;
    ++stats_.rx_packets;
    rx_deliver(std::move(p));
  });
}

void Host::rx_deliver(net::Packet packet) {
  const auto parsed = net::parse_packet(packet);
  if (!parsed) return;
  if (parsed->ipv4 && !net::checksums_valid(packet)) {
    ++stats_.rx_bad_checksum;
    return;
  }

  if (parsed->arp) {
    handle_arp(*parsed);
    return;
  }
  if (parsed->icmp) {
    if (parsed->icmp->type == net::kIcmpEchoRequest) {
      answer_echo(*parsed, packet);
    } else if (parsed->icmp->type == net::kIcmpEchoReply) {
      ++stats_.icmp_echo_replies;
      if (icmp_reply_handler_) icmp_reply_handler_(*parsed, packet);
    }
    return;
  }
  if (parsed->udp) {
    const auto it = udp_handlers_.find(parsed->udp->dst_port);
    if (it != udp_handlers_.end()) it->second(*parsed, packet);
    return;
  }
  if (parsed->tcp) {
    const auto it = tcp_handlers_.find(parsed->tcp->dst_port);
    if (it != tcp_handlers_.end()) it->second(*parsed, packet);
    return;
  }
}

void Host::answer_echo(const net::ParsedPacket& parsed,
                       const net::Packet& packet) {
  ++stats_.icmp_echo_requests;
  // Rebuild the echo as a reply, swapping L2/L3 addresses (kernel path).
  const std::size_t payload_len = packet.size() - parsed.payload_offset;
  net::Packet reply = net::build_icmp_echo(
      net::EthernetHeader{.dst = parsed.eth.src, .src = mac_},
      parsed.vlan,
      net::Ipv4Header{.src = ip_,
                      .dst = parsed.ipv4->src,
                      .identification = next_ip_id()},
      net::IcmpEchoHeader{.type = net::kIcmpEchoReply,
                          .id = parsed.icmp->id,
                          .seq = parsed.icmp->seq},
      packet.slice(parsed.payload_offset, payload_len));
  cpu_submit(profile_.icmp_cost,
             [this, r = std::move(reply)]() mutable { transmit(std::move(r)); });
}

void Host::handle_arp(const net::ParsedPacket& parsed) {
  const auto& arp = *parsed.arp;
  if (arp.oper == net::kArpRequest && arp.target_ip == ip_) {
    // Who-has us: unicast a reply (and learn the asker, as kernels do).
    arp_cache_[arp.sender_ip] = arp.sender_mac;
    transmit(net::build_arp(net::ArpHeader{.oper = net::kArpReply,
                                           .sender_mac = mac_,
                                           .sender_ip = ip_,
                                           .target_mac = arp.sender_mac,
                                           .target_ip = arp.sender_ip}));
    return;
  }
  if (arp.oper == net::kArpReply) {
    arp_cache_[arp.sender_ip] = arp.sender_mac;
    const auto it = arp_pending_.find(arp.sender_ip);
    if (it == arp_pending_.end()) return;
    auto waiters = std::move(it->second.waiters);
    arp_pending_.erase(it);
    for (auto& waiter : waiters) waiter(arp.sender_mac);
  }
}

void Host::arp_resolve(net::Ipv4Address target, ArpCallback done) {
  const auto cached = arp_cache_.find(target);
  if (cached != arp_cache_.end()) {
    done(cached->second);
    return;
  }
  auto& pending = arp_pending_[target];
  pending.waiters.push_back(std::move(done));
  if (pending.waiters.size() > 1) return;  // a probe is already out
  pending.tries = 0;
  arp_retry(target);
}

void Host::arp_retry(net::Ipv4Address target) {
  const auto it = arp_pending_.find(target);
  if (it == arp_pending_.end()) return;  // answered meanwhile
  if (it->second.tries >= 3) {
    auto waiters = std::move(it->second.waiters);
    arp_pending_.erase(it);
    for (auto& waiter : waiters) waiter(std::nullopt);
    return;
  }
  ++it->second.tries;
  transmit(net::build_arp(net::ArpHeader{.oper = net::kArpRequest,
                                         .sender_mac = mac_,
                                         .sender_ip = ip_,
                                         .target_mac = net::MacAddress{},
                                         .target_ip = target}));
  simulator().schedule_after(sim::Duration::milliseconds(200),
                             [this, target] { arp_retry(target); });
}

void Host::bind_udp(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::unbind_udp(std::uint16_t port) { udp_handlers_.erase(port); }

void Host::bind_tcp(std::uint16_t port, TcpHandler handler) {
  tcp_handlers_[port] = std::move(handler);
}

void Host::unbind_tcp(std::uint16_t port) { tcp_handlers_.erase(port); }

void Host::set_icmp_reply_handler(IcmpReplyHandler handler) {
  icmp_reply_handler_ = std::move(handler);
}

}  // namespace netco::host
