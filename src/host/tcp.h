// Simplified TCP (Reno with NewReno partial-ACK recovery) for iperf-style
// bulk transfer.
//
// Scope: unidirectional data with cumulative ACKs, slow start, congestion
// avoidance, fast retransmit/recovery, RTO with Karn's rule and exponential
// backoff, delayed ACKs, and an out-of-order reassembly buffer on the
// receiver. A single-block SACK option provides the hole evidence dup-ACK
// accounting needs (and DSACK semantics for duplicated copies). No
// handshake/teardown (a measurement flow starts established, like iperf
// after connect()) and no window scaling (the receive window is a config
// constant shared by both ends). These simplifications
// do not affect what the paper measures: steady-state congestion behaviour
// through the combiner, including the response to duplicated and dropped
// segments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "host/host.h"
#include "sim/simulator.h"

namespace netco::host {

/// Shared flow parameters.
struct TcpConfig {
  net::MacAddress peer_mac;
  net::Ipv4Address peer_ip;
  std::uint16_t local_port = 5001;
  std::uint16_t peer_port = 5001;
  std::size_t mss = 1460;
  std::size_t rwnd = 262144;  ///< receive window honoured by the sender
  std::size_t init_cwnd_segments = 10;  ///< RFC 6928 initial window
};

/// Sender-side counters.
struct TcpSenderStats {
  std::uint64_t bytes_acked = 0;     ///< goodput numerator
  std::uint64_t segments_sent = 0;   ///< includes retransmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t rto_fires = 0;
  double srtt_ms = 0.0;  ///< smoothed RTT at last sample
};

/// Bulk-data TCP sender (iperf client). Data is an infinite zero stream.
class TcpSender {
 public:
  TcpSender(Host& host, TcpConfig config);

  /// Cancels the RTO timer and unbinds the port; pending CPU jobs no-op.
  ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Starts transmitting until stop().
  void start();

  /// Freezes the sender (timers cancelled, no further transmissions).
  void stop();

  /// Counters.
  [[nodiscard]] const TcpSenderStats& stats() const noexcept { return stats_; }

  /// Current congestion window in bytes (tests/telemetry).
  [[nodiscard]] double cwnd() const noexcept { return cwnd_; }

 private:
  void on_ack(const net::ParsedPacket& parsed);
  void try_send();
  void emit_segment(std::uint64_t seq, bool is_retransmission);
  void arm_rto();
  void on_rto();
  void enter_fast_retransmit();
  [[nodiscard]] std::uint64_t flight_size() const noexcept {
    return snd_nxt_ - snd_una_;
  }
  [[nodiscard]] sim::Duration rto() const noexcept;

  Host& host_;
  TcpConfig config_;
  TcpSenderStats stats_;
  bool running_ = false;
  bool tx_pending_ = false;  ///< a segment is in the CPU queue

  // Sequence state (byte offsets; all segments are MSS-sized).
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t snd_max_ = 0;  ///< highest byte ever transmitted

  // Congestion state.
  double cwnd_ = 0.0;
  double ssthresh_ = 0.0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;

  // RTT estimation (RFC 6298).
  bool have_rtt_ = false;
  double srtt_ns_ = 0.0;
  double rttvar_ns_ = 0.0;
  int rto_backoff_ = 0;
  std::optional<std::pair<std::uint64_t, sim::TimePoint>> rtt_sample_;
  sim::EventHandle rto_handle_;
  /// Liveness token for CPU jobs in flight at destruction time.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Receiver-side counters.
struct TcpReceiverStats {
  std::uint64_t bytes_delivered = 0;  ///< in-order bytes handed to the app
  std::uint64_t segments_received = 0;
  std::uint64_t duplicate_segments = 0;
  std::uint64_t out_of_order_segments = 0;
  std::uint64_t acks_sent = 0;
};

/// Bulk-data TCP receiver (iperf server).
class TcpReceiver {
 public:
  TcpReceiver(Host& host, TcpConfig config);

  /// Cancels the delayed-ACK timer and unbinds the port.
  ~TcpReceiver();

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  /// Counters.
  [[nodiscard]] const TcpReceiverStats& stats() const noexcept {
    return stats_;
  }

  /// Clears the delivered-byte counter (per-run measurement reset).
  void reset_delivered() { stats_.bytes_delivered = 0; }

 private:
  void on_segment(const net::ParsedPacket& parsed, const net::Packet& packet);
  void send_ack();
  void schedule_delayed_ack();

  Host& host_;
  TcpConfig config_;
  TcpReceiverStats stats_;
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::size_t> ooo_;  ///< seq → len
  int unacked_in_order_ = 0;
  sim::EventHandle delack_handle_;
};

}  // namespace netco::host
