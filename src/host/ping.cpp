#include "host/ping.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"

namespace netco::host {

IcmpPinger::IcmpPinger(Host& host, PingConfig config)
    : host_(host), config_(config) {
  host_.set_icmp_reply_handler(
      [this](const net::ParsedPacket& parsed, const net::Packet&) {
        on_reply(parsed);
      });
}

IcmpPinger::~IcmpPinger() {
  for (auto& timer : timers_) timer.cancel();
  host_.set_icmp_reply_handler(nullptr);
}

void IcmpPinger::start(std::function<void()> on_done) {
  on_done_ = std::move(on_done);
  send_next();
}

void IcmpPinger::send_next() {
  if (sent_ >= config_.count) {
    all_sent_ = true;
    finish_if_done();
    return;
  }
  const auto seq = static_cast<std::uint16_t>(sent_++);
  std::vector<std::byte> payload(config_.payload_bytes, std::byte{0xA5});
  net::Packet request = net::build_icmp_echo(
      net::EthernetHeader{.dst = config_.dst_mac, .src = host_.mac()},
      std::nullopt,
      net::Ipv4Header{.src = host_.ip(),
                      .dst = config_.dst_ip,
                      .identification = host_.next_ip_id()},
      net::IcmpEchoHeader{.type = net::kIcmpEchoRequest,
                          .id = config_.icmp_id,
                          .seq = seq},
      payload);
  pending_[seq] = host_.simulator().now();
  ++outstanding_;
  host_.cpu_submit(host_.profile().icmp_cost,
                   [&host = host_, r = std::move(request)]() mutable {
                     host.transmit(std::move(r));
                   });

  // Per-sequence timeout: an unanswered request stops blocking completion.
  timers_.push_back(
      host_.simulator().schedule_after(config_.timeout, [this, seq] {
        const auto it = pending_.find(seq);
        if (it != pending_.end()) {
          pending_.erase(it);
          --outstanding_;
          finish_if_done();
        }
      }));
  timers_.push_back(host_.simulator().schedule_after(
      config_.interval, [this] { send_next(); }));
}

void IcmpPinger::on_reply(const net::ParsedPacket& parsed) {
  if (!parsed.icmp || parsed.icmp->id != config_.icmp_id) return;
  const std::uint16_t seq = parsed.icmp->seq;
  const auto it = pending_.find(seq);
  if (it == pending_.end()) {
    if (rtt_by_seq_.contains(seq)) ++duplicates_;
    return;
  }
  const double rtt_ms = (host_.simulator().now() - it->second).ms();
  rtt_by_seq_[seq] = rtt_ms;
  pending_.erase(it);
  --outstanding_;
  finish_if_done();
}

void IcmpPinger::finish_if_done() {
  if (finished_ || !all_sent_ || outstanding_ > 0) return;
  finished_ = true;
  if (on_done_) on_done_();
}

PingReport IcmpPinger::report() const {
  PingReport out;
  out.transmitted = sent_;
  out.received = static_cast<int>(rtt_by_seq_.size());
  out.duplicates = duplicates_;
  if (rtt_by_seq_.empty()) return out;

  out.rtts_ms.reserve(rtt_by_seq_.size());
  for (const auto& [seq, rtt] : rtt_by_seq_) out.rtts_ms.push_back(rtt);
  std::sort(out.rtts_ms.begin(), out.rtts_ms.end());

  out.min_ms = out.rtts_ms.front();
  out.max_ms = out.rtts_ms.back();
  double sum = 0.0;
  for (double r : out.rtts_ms) sum += r;
  out.avg_ms = sum / static_cast<double>(out.rtts_ms.size());
  double var = 0.0;
  for (double r : out.rtts_ms) var += (r - out.avg_ms) * (r - out.avg_ms);
  out.mdev_ms = std::sqrt(var / static_cast<double>(out.rtts_ms.size()));
  return out;
}

}  // namespace netco::host
