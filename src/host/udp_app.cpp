#include "host/udp_app.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"

namespace netco::host {
namespace {

/// Tx jobs allowed in the CPU queue before the pacer starts skipping; keeps
/// an overdriven sender from building an unbounded backlog (a real iperf
/// client simply falls behind its -b target).
constexpr std::size_t kTxBacklogLimit = 32;

}  // namespace

UdpSender::UdpSender(Host& host, UdpSenderConfig config)
    : host_(host), config_(config) {
  NETCO_ASSERT(config_.payload_bytes >= kMinPayload);
  NETCO_ASSERT(config_.rate.positive());
}

sim::Duration UdpSender::interval() const noexcept {
  const auto bits = static_cast<std::uint64_t>(config_.payload_bytes) * 8;
  return sim::Duration::nanoseconds(static_cast<std::int64_t>(
      bits * 1'000'000'000ULL / config_.rate.bps()));
}

UdpSender::~UdpSender() {
  stop();
  *alive_ = false;
}

void UdpSender::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void UdpSender::stop() {
  running_ = false;
  tick_handle_.cancel();
}

void UdpSender::tick() {
  if (!running_) return;
  tick_handle_ = host_.simulator().schedule_after(interval(), [this] { tick(); });

  // Pacing tick: hand one datagram to the CPU unless it is already swamped.
  if (pending_ >= kTxBacklogLimit) {
    ++stats_.pacing_skips;
    return;
  }

  std::vector<std::byte> payload(config_.payload_bytes, std::byte{0});
  const std::uint32_t seq = next_seq_++;
  const auto now_ns =
      static_cast<std::uint64_t>(host_.simulator().now().ns());
  for (int i = 0; i < 4; ++i)
    payload[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((seq >> (24 - 8 * i)) & 0xFF);
  for (int i = 0; i < 8; ++i)
    payload[static_cast<std::size_t>(4 + i)] =
        static_cast<std::byte>((now_ns >> (56 - 8 * i)) & 0xFF);

  net::Packet datagram = net::build_udp(
      net::EthernetHeader{.dst = config_.dst_mac, .src = host_.mac()},
      std::nullopt,
      net::Ipv4Header{.src = host_.ip(),
                      .dst = config_.dst_ip,
                      .identification = host_.next_ip_id()},
      net::UdpHeader{.src_port = config_.src_port, .dst_port = config_.dst_port},
      payload);

  ++pending_;
  const auto tx_cost =
      host_.profile().udp_tx_cost +
      sim::Duration::nanoseconds(static_cast<std::int64_t>(
          host_.profile().udp_tx_ns_per_byte *
          static_cast<double>(config_.payload_bytes)));
  host_.cpu_submit(tx_cost,
                   [this, alive = std::weak_ptr<bool>(alive_),
                    p = std::move(datagram)]() mutable {
                     const auto guard = alive.lock();
                     if (!guard || !*guard) return;  // sender died
                     --pending_;
                     ++stats_.datagrams_sent;
                     stats_.payload_bytes_sent += config_.payload_bytes;
                     host_.transmit(std::move(p));
                   });
}

UdpSink::UdpSink(Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  window_start_ = host_.simulator().now();
  host_.bind_udp(port, [this](const net::ParsedPacket& parsed,
                              const net::Packet& packet) {
    on_datagram(parsed, packet);
  });
}

UdpSink::~UdpSink() { host_.unbind_udp(port_); }

void UdpSink::reset() {
  live_ = UdpSinkReport{};
  seen_.clear();
  max_seq_ = 0;
  min_seq_ = 0;
  any_ = false;
  jitter_ns_ = 0.0;
  have_prev_transit_ = false;
  prev_transit_ns_ = 0;
  payload_bytes_ = 0;
  window_start_ = host_.simulator().now();
}

void UdpSink::on_datagram(const net::ParsedPacket& parsed,
                          const net::Packet& packet) {
  const std::size_t payload_off = parsed.payload_offset;
  if (packet.size() < payload_off + UdpSender::kMinPayload) return;
  ++live_.datagrams_received;

  std::uint32_t seq = 0;
  for (std::size_t i = 0; i < 4; ++i)
    seq = (seq << 8) | packet.u8(payload_off + i);
  std::uint64_t sent_ns = 0;
  for (std::size_t i = 0; i < 8; ++i)
    sent_ns = (sent_ns << 8) | packet.u8(payload_off + 4 + i);

  if (!seen_.insert(seq).second) {
    ++live_.duplicates;
    return;  // duplicates contribute nothing further (combiner semantics)
  }
  ++live_.unique_received;
  payload_bytes_ += packet.size() - payload_off;
  max_seq_ = any_ ? std::max(max_seq_, seq) : seq;
  min_seq_ = any_ ? std::min(min_seq_, seq) : seq;
  any_ = true;

  // RFC 3550 jitter over first-copy arrivals.
  const std::int64_t transit =
      host_.simulator().now().ns() - static_cast<std::int64_t>(sent_ns);
  if (have_prev_transit_) {
    const double d = std::abs(static_cast<double>(transit - prev_transit_ns_));
    jitter_ns_ += (d - jitter_ns_) / 16.0;
  }
  prev_transit_ns_ = transit;
  have_prev_transit_ = true;
}

UdpSinkReport UdpSink::report() const {
  UdpSinkReport out = live_;
  // Expected counts from the first sequence observed in this measurement
  // window (senders keep numbering across a mid-run reset()).
  out.expected =
      any_ ? static_cast<std::uint64_t>(max_seq_) - min_seq_ + 1 : 0;
  out.lost = out.expected > out.unique_received
                 ? out.expected - out.unique_received
                 : 0;
  out.loss_rate = out.expected > 0
                      ? static_cast<double>(out.lost) /
                            static_cast<double>(out.expected)
                      : 0.0;
  out.jitter_ms = jitter_ns_ / 1e6;
  out.payload_bytes_unique = payload_bytes_;
  const double elapsed =
      (host_.simulator().now() - window_start_).sec();
  out.goodput_mbps =
      elapsed > 0.0
          ? static_cast<double>(payload_bytes_) * 8.0 / elapsed / 1e6
          : 0.0;
  return out;
}

}  // namespace netco::host
