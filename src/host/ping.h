// ICMP echo measurement tool (the paper's `ping` runs, Fig. 7).
//
// Sends echo requests at a fixed interval, records the RTT of the *first*
// reply per sequence number (duplicate replies — e.g. from a Dup scenario —
// are counted but ignored), and reports min/avg/max/mdev like ping does.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "host/host.h"
#include "sim/simulator.h"

namespace netco::host {

/// Pinger configuration.
struct PingConfig {
  net::MacAddress dst_mac;
  net::Ipv4Address dst_ip;
  std::uint16_t icmp_id = 1;
  std::size_t payload_bytes = 56;  ///< ping default
  sim::Duration interval = sim::Duration::milliseconds(10);
  sim::Duration timeout = sim::Duration::seconds(1);
  int count = 50;  ///< echo cycles per sequence (paper: 50)
};

/// Final ping statistics.
struct PingReport {
  int transmitted = 0;
  int received = 0;          ///< sequences with at least one reply
  int duplicates = 0;        ///< extra replies beyond the first
  double min_ms = 0.0;
  double avg_ms = 0.0;
  double max_ms = 0.0;
  double mdev_ms = 0.0;
  std::vector<double> rtts_ms;  ///< per-sequence RTT samples
};

/// One ping run. Construct, start(), run the simulator, then report().
class IcmpPinger {
 public:
  IcmpPinger(Host& host, PingConfig config);

  /// Cancels every outstanding timer and unbinds the reply handler: a
  /// pinger may safely die while the simulation keeps running.
  ~IcmpPinger();

  IcmpPinger(const IcmpPinger&) = delete;
  IcmpPinger& operator=(const IcmpPinger&) = delete;

  /// Begins the run; `on_done` (optional) fires after the last timeout.
  void start(std::function<void()> on_done = nullptr);

  /// True once every request has been answered or timed out.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Statistics (valid any time; final once finished()).
  [[nodiscard]] PingReport report() const;

 private:
  void send_next();
  void on_reply(const net::ParsedPacket& parsed);
  void finish_if_done();

  Host& host_;
  PingConfig config_;
  int sent_ = 0;
  int outstanding_ = 0;
  bool all_sent_ = false;
  bool finished_ = false;
  std::function<void()> on_done_;
  std::unordered_map<std::uint16_t, sim::TimePoint> pending_;  ///< seq → sent at
  std::unordered_map<std::uint16_t, double> rtt_by_seq_;
  int duplicates_ = 0;
  std::vector<sim::EventHandle> timers_;  ///< cancelled on destruction
};

}  // namespace netco::host
