// iperf-style UDP traffic generator and sink.
//
// The sender paces fixed-size datagrams at a target payload rate (iperf -u
// -b); each datagram carries a sequence number and a send timestamp. The
// sink reproduces iperf's server-side report: goodput, loss rate against
// the expected sequence space, duplicate count, and RFC 3550 interarrival
// jitter.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "common/units.h"
#include "host/host.h"
#include "sim/simulator.h"

namespace netco::host {

/// Sender configuration.
struct UdpSenderConfig {
  net::MacAddress dst_mac;
  net::Ipv4Address dst_ip;
  std::uint16_t dst_port = 5001;  ///< iperf default
  std::uint16_t src_port = 40000;
  /// UDP payload bytes per datagram (iperf -l; default 1470).
  std::size_t payload_bytes = 1470;
  /// Target *payload* bit rate (iperf -b semantics).
  DataRate rate = DataRate::megabits_per_sec(100);
};

/// Sender counters.
struct UdpSenderStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t pacing_skips = 0;  ///< ticks skipped because CPU fell behind
};

/// Paced UDP source (iperf -u client).
class UdpSender {
 public:
  /// Minimum payload able to carry seq + timestamp.
  static constexpr std::size_t kMinPayload = 12;

  UdpSender(Host& host, UdpSenderConfig config);

  /// Stops pacing; queued CPU jobs detect the death and no-op.
  ~UdpSender();

  UdpSender(const UdpSender&) = delete;
  UdpSender& operator=(const UdpSender&) = delete;

  /// Starts pacing at the configured rate until stop() (or forever).
  void start();

  /// Stops generating new datagrams.
  void stop();

  /// Counters.
  [[nodiscard]] const UdpSenderStats& stats() const noexcept { return stats_; }

  /// The active configuration.
  [[nodiscard]] const UdpSenderConfig& config() const noexcept {
    return config_;
  }

 private:
  void tick();
  [[nodiscard]] sim::Duration interval() const noexcept;

  Host& host_;
  UdpSenderConfig config_;
  UdpSenderStats stats_;
  std::uint32_t next_seq_ = 0;
  std::size_t pending_ = 0;  ///< datagrams waiting in the CPU queue
  bool running_ = false;
  sim::EventHandle tick_handle_;
  /// Liveness token: CPU jobs hold a weak reference and no-op after death.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Sink report (iperf server-side summary).
struct UdpSinkReport {
  std::uint64_t datagrams_received = 0;  ///< all arrivals, incl. duplicates
  std::uint64_t unique_received = 0;     ///< distinct sequence numbers
  std::uint64_t duplicates = 0;
  std::uint64_t expected = 0;  ///< max_seq + 1 (0 if nothing arrived)
  std::uint64_t lost = 0;      ///< expected - unique_received
  double loss_rate = 0.0;      ///< lost / expected
  double jitter_ms = 0.0;      ///< RFC 3550 smoothed interarrival jitter
  std::uint64_t payload_bytes_unique = 0;
  double goodput_mbps = 0.0;  ///< unique payload bits / measurement time
};

/// UDP sink (iperf -u server).
class UdpSink {
 public:
  /// Binds `port` on `host` and starts counting immediately.
  UdpSink(Host& host, std::uint16_t port);

  /// Unbinds the port.
  ~UdpSink();

  UdpSink(const UdpSink&) = delete;
  UdpSink& operator=(const UdpSink&) = delete;

  /// Clears all counters and restarts the measurement clock (per-run reset).
  void reset();

  /// Snapshot of the report as of now.
  [[nodiscard]] UdpSinkReport report() const;

 private:
  void on_datagram(const net::ParsedPacket& parsed, const net::Packet& packet);

  Host& host_;
  std::uint16_t port_;
  sim::TimePoint window_start_;
  UdpSinkReport live_;
  std::unordered_set<std::uint32_t> seen_;
  std::uint32_t max_seq_ = 0;
  std::uint32_t min_seq_ = 0;  ///< first sequence seen in this window
  bool any_ = false;
  double jitter_ns_ = 0.0;
  std::int64_t prev_transit_ns_ = 0;
  bool have_prev_transit_ = false;
  std::size_t payload_bytes_ = 0;
};

}  // namespace netco::host
