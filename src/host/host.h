// Host: an end system with a single NIC, a CPU service model and a tiny
// protocol demultiplexer.
//
// The paper's measurements (iperf in Mininet) were limited by host/softswitch
// CPU far more than by link capacity, so the host models a single-core CPU
// as a FIFO service queue: application sends and packet receives each cost
// CPU time, and the receive path has a bounded backlog (NIC ring) whose
// overflow is exactly the UDP loss iperf observes when the offered rate
// exceeds what the receiver can process. Pure TCP ACKs are processed for
// free (documented simplification: their per-packet cost is folded into the
// data-segment costs).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "device/node.h"
#include "net/address.h"
#include "net/headers.h"
#include "net/packet.h"
#include "sim/time.h"

namespace netco::host {

/// CPU/NIC cost personality of a host.
struct HostProfile {
  /// CPU time to generate + send one UDP datagram (sendto path): a fixed
  /// syscall cost plus a per-byte copy cost. At iperf's default 1470-byte
  /// payload this totals ~42 µs — the Table-I calibration point.
  sim::Duration udp_tx_cost = sim::Duration::microseconds(30);
  double udp_tx_ns_per_byte = 8.0;
  /// CPU time to send one TCP data segment (TSO-style batching: cheaper).
  sim::Duration tcp_tx_cost = sim::Duration::microseconds(25);
  /// CPU time to receive one data packet (softirq + socket delivery):
  /// fixed + per-byte; ~15 µs at a full-size frame.
  sim::Duration rx_cost = sim::Duration::microseconds(10);
  double rx_ns_per_byte = 3.4;
  /// CPU time to generate one TCP ACK. Duplicated segments each trigger an
  /// immediate ACK (RFC 793/2018), so a Dup-scenario receiver pays this k
  /// times per segment — a TCP-only cost that UDP never sees, and part of
  /// why the paper's Dup TCP numbers trail the Central ones.
  sim::Duration ack_tx_cost = sim::Duration::microseconds(14);
  /// CPU time to turn an ICMP echo request into a reply.
  sim::Duration icmp_cost = sim::Duration::microseconds(5);
  /// Relative jitter on every CPU job: cost × U(1-jitter, 1+jitter).
  /// Real per-packet costs vary (caches, interrupts); without this the
  /// deterministic event loop locks TCP into knife-edge limit cycles.
  double service_jitter = 0.25;
  /// Receive backlog capacity in packets. Overflow drops with hysteresis:
  /// once the ring fills, everything is dropped until it drains to half —
  /// the bursty loss pattern of a timeslice-scheduled softswitch/host,
  /// which is what the paper's testbed produced. (Interleaved single-slot
  /// drops would let k-duplicated traffic through loss-free, acting as
  /// accidental FEC — not what real kernels do under overload.)
  std::size_t rx_backlog = 64;
};

/// Host counters.
struct HostStats {
  std::uint64_t rx_packets = 0;        ///< frames addressed to us, accepted
  std::uint64_t rx_stray = 0;          ///< frames NOT addressed to us
  std::uint64_t rx_backlog_drops = 0;  ///< NIC ring overflow
  std::uint64_t rx_bad_checksum = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t icmp_echo_requests = 0;  ///< requests answered
  std::uint64_t icmp_echo_replies = 0;   ///< replies delivered to a pinger
};

/// An end host with one NIC (port 0).
class Host : public device::Node {
 public:
  Host(sim::Simulator& simulator, std::string name, net::MacAddress mac,
       net::Ipv4Address ip, HostProfile profile = {});

  // --- identity ----------------------------------------------------------
  [[nodiscard]] const net::MacAddress& mac() const noexcept { return mac_; }
  [[nodiscard]] net::Ipv4Address ip() const noexcept { return ip_; }
  [[nodiscard]] const HostProfile& profile() const noexcept { return profile_; }

  /// Next IPv4 identification value. Every packet a real stack emits is
  /// distinguishable on the wire (IP ID / TCP timestamps); NetCo's
  /// bit-by-bit compare depends on this — a retransmission must not look
  /// identical to the original, or the compare would treat it as a stale
  /// copy of an already-released packet.
  [[nodiscard]] std::uint16_t next_ip_id() noexcept { return ip_id_++; }

  // --- datapath ----------------------------------------------------------
  void handle_packet(device::PortIndex in_port, net::Packet packet) override;

  /// Transmits a fully built frame on the NIC (no CPU charge; callers go
  /// through cpu_submit for paths that should cost CPU).
  void transmit(net::Packet packet);

  /// Enqueues work on the host CPU: after `cost` of CPU time (plus queueing
  /// behind earlier work), `done` runs. The CPU is a single FIFO server.
  void cpu_submit(sim::Duration cost, std::function<void()> done);

  // --- demux registration --------------------------------------------------
  /// Delivered after CPU receive processing; parse is pre-computed.
  using UdpHandler =
      std::function<void(const net::ParsedPacket&, const net::Packet&)>;
  using TcpHandler =
      std::function<void(const net::ParsedPacket&, const net::Packet&)>;
  using IcmpReplyHandler =
      std::function<void(const net::ParsedPacket&, const net::Packet&)>;

  /// Binds a UDP destination port.
  void bind_udp(std::uint16_t port, UdpHandler handler);
  /// Removes a UDP binding (app destructors call this; a handler must
  /// never outlive its app).
  void unbind_udp(std::uint16_t port);
  /// Binds a TCP destination port (both segments and ACKs are delivered).
  void bind_tcp(std::uint16_t port, TcpHandler handler);
  /// Removes a TCP binding.
  void unbind_tcp(std::uint16_t port);
  /// Receives ICMP echo *replies* (a pinger); requests are auto-answered.
  /// Pass nullptr to clear.
  void set_icmp_reply_handler(IcmpReplyHandler handler);

  /// Resolves `target` to a MAC via ARP (RFC 826): answers from the cache
  /// immediately, otherwise broadcasts who-has requests (3 tries, 200 ms
  /// apart) and calls `done` with the answer — or nullopt on timeout.
  /// Requests for this host's own IP are answered automatically.
  using ArpCallback = std::function<void(std::optional<net::MacAddress>)>;
  void arp_resolve(net::Ipv4Address target, ArpCallback done);

  /// The current ARP cache (tests/monitoring).
  [[nodiscard]] const std::unordered_map<net::Ipv4Address, net::MacAddress>&
  arp_cache() const noexcept {
    return arp_cache_;
  }

  /// Diagnostic tap invoked for every arriving frame, including stray ones,
  /// before any filtering (the case study's tcpdump screen).
  using RxTap = std::function<void(const net::Packet&)>;
  void set_rx_tap(RxTap tap) { rx_tap_ = std::move(tap); }

  /// Counters.
  [[nodiscard]] const HostStats& stats() const noexcept { return stats_; }

 private:
  void rx_deliver(net::Packet packet);
  void answer_echo(const net::ParsedPacket& parsed, const net::Packet& packet);
  void handle_arp(const net::ParsedPacket& parsed);
  void arp_retry(net::Ipv4Address target);
  void cpu_run_next();

  net::MacAddress mac_;
  net::Ipv4Address ip_;
  HostProfile profile_;
  HostStats stats_;

  struct CpuJob {
    sim::Duration cost;
    std::function<void()> done;
  };
  std::deque<CpuJob> cpu_queue_;
  bool cpu_busy_ = false;
  std::size_t rx_in_cpu_ = 0;   ///< rx jobs in the CPU queue (backlog bound)
  bool rx_dropping_ = false;    ///< hysteresis overflow state
  std::uint16_t ip_id_ = 1;     ///< rolling IPv4 identification

  std::unordered_map<std::uint16_t, UdpHandler> udp_handlers_;
  std::unordered_map<std::uint16_t, TcpHandler> tcp_handlers_;
  IcmpReplyHandler icmp_reply_handler_;
  RxTap rx_tap_;

  // ARP state.
  struct ArpPending {
    std::vector<ArpCallback> waiters;
    int tries = 0;
  };
  std::unordered_map<net::Ipv4Address, net::MacAddress> arp_cache_;
  std::unordered_map<net::Ipv4Address, ArpPending> arp_pending_;
};

}  // namespace netco::host
