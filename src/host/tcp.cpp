#include "host/tcp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"

namespace netco::host {
namespace {

constexpr sim::Duration kMinRto = sim::Duration::milliseconds(200);
constexpr sim::Duration kMaxRto = sim::Duration::seconds(60);
constexpr sim::Duration kDelAckTimeout = sim::Duration::milliseconds(40);

/// Reconstructs a 64-bit sequence number from its 32-bit wire form, picking
/// the value closest to `reference` (standard serial-number unwrap).
std::uint64_t unwrap_seq(std::uint64_t reference, std::uint32_t wire) noexcept {
  const std::uint64_t base = reference & ~0xFFFFFFFFULL;
  std::uint64_t candidate = base | wire;
  if (candidate + 0x80000000ULL < reference) candidate += 0x100000000ULL;
  else if (candidate > reference + 0x80000000ULL && candidate >= 0x100000000ULL)
    candidate -= 0x100000000ULL;
  return candidate;
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpSender
// ---------------------------------------------------------------------------

TcpSender::TcpSender(Host& host, TcpConfig config)
    : host_(host), config_(config) {
  NETCO_ASSERT(config_.mss > 0);
  cwnd_ = static_cast<double>(config_.init_cwnd_segments * config_.mss);
  ssthresh_ = static_cast<double>(config_.rwnd);
  host_.bind_tcp(config_.local_port,
                 [this](const net::ParsedPacket& parsed, const net::Packet&) {
                   if (running_) on_ack(parsed);
                 });
}

TcpSender::~TcpSender() {
  stop();
  *alive_ = false;
  host_.unbind_tcp(config_.local_port);
}

void TcpSender::start() {
  if (running_) return;
  running_ = true;
  try_send();
}

void TcpSender::stop() {
  running_ = false;
  rto_handle_.cancel();
}

sim::Duration TcpSender::rto() const noexcept {
  double rto_ns = have_rtt_ ? srtt_ns_ + 4.0 * rttvar_ns_
                            : static_cast<double>(kMinRto.ns()) * 5.0;
  rto_ns *= std::pow(2.0, rto_backoff_);
  const auto clamped = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(rto_ns), kMinRto.ns(), kMaxRto.ns());
  return sim::Duration::nanoseconds(clamped);
}

void TcpSender::arm_rto() {
  rto_handle_.cancel();
  if (flight_size() == 0) return;
  rto_handle_ = host_.simulator().schedule_after(rto(), [this] { on_rto(); });
}

void TcpSender::try_send() {
  if (!running_ || tx_pending_ || in_recovery_) return;
  const auto window = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(cwnd_), config_.rwnd);
  if (flight_size() + config_.mss > window) return;

  tx_pending_ = true;
  const std::uint64_t seq = snd_nxt_;
  host_.cpu_submit(host_.profile().tcp_tx_cost,
                   [this, seq, alive = std::weak_ptr<bool>(alive_)] {
    const auto guard = alive.lock();
    if (!guard || !*guard) return;  // sender died with the job queued
    tx_pending_ = false;
    if (!running_) return;
    emit_segment(seq, /*is_retransmission=*/false);
    snd_nxt_ = seq + config_.mss;
    if (flight_size() == config_.mss) arm_rto();  // first unacked data
    try_send();
  });
}

void TcpSender::emit_segment(std::uint64_t seq, bool is_retransmission) {
  ++stats_.segments_sent;
  if (is_retransmission) ++stats_.retransmissions;
  snd_max_ = std::max(snd_max_, seq + config_.mss);

  // RTT sampling: one outstanding sample; never time a retransmission.
  if (!is_retransmission && !rtt_sample_) {
    rtt_sample_ = {seq + config_.mss, host_.simulator().now()};
  } else if (is_retransmission && rtt_sample_ &&
             seq < rtt_sample_->first) {
    rtt_sample_.reset();  // Karn's rule
  }

  std::vector<std::byte> payload(config_.mss, std::byte{0});
  net::TcpHeader hdr;
  hdr.src_port = config_.local_port;
  hdr.dst_port = config_.peer_port;
  hdr.seq = static_cast<std::uint32_t>(seq & 0xFFFFFFFF);
  hdr.ack = 0;
  hdr.flags = net::kTcpAck | net::kTcpPsh;
  hdr.window = 0xFFFF;
  net::Packet segment = net::build_tcp(
      net::EthernetHeader{.dst = config_.peer_mac, .src = host_.mac()},
      std::nullopt,
      net::Ipv4Header{.src = host_.ip(),
                      .dst = config_.peer_ip,
                      .identification = host_.next_ip_id()},
      hdr, payload);
  host_.transmit(std::move(segment));
}

void TcpSender::on_ack(const net::ParsedPacket& parsed) {
  if (!parsed.tcp || !(parsed.tcp->flags & net::kTcpAck)) return;
  const std::uint64_t ack = unwrap_seq(snd_una_, parsed.tcp->ack);

  if (ack > snd_una_ && ack <= snd_max_) {
    const std::uint64_t acked = ack - snd_una_;
    snd_una_ = ack;
    // After an RTO resets snd_nxt (go-back-N), an ACK can cover data that
    // was in flight before the reset; never re-send acknowledged bytes.
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    stats_.bytes_acked += acked;
    rto_backoff_ = 0;

    // RTT sample completion.
    if (rtt_sample_ && ack >= rtt_sample_->first) {
      const double sample =
          static_cast<double>((host_.simulator().now() - rtt_sample_->second).ns());
      if (!have_rtt_) {
        srtt_ns_ = sample;
        rttvar_ns_ = sample / 2.0;
        have_rtt_ = true;
      } else {
        rttvar_ns_ += (std::abs(srtt_ns_ - sample) - rttvar_ns_) / 4.0;
        srtt_ns_ += (sample - srtt_ns_) / 8.0;
      }
      stats_.srtt_ms = srtt_ns_ / 1e6;
      rtt_sample_.reset();
    }

    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;   // full recovery (NewReno exit)
        cwnd_ = ssthresh_;
        dup_acks_ = 0;
      } else {
        // Partial ACK: retransmit the next hole, deflate the window.
        emit_segment(snd_una_, /*is_retransmission=*/true);
        cwnd_ = std::max(cwnd_ - static_cast<double>(acked) +
                             static_cast<double>(config_.mss),
                         static_cast<double>(config_.mss));
      }
    } else {
      dup_acks_ = 0;
      const auto mss = static_cast<double>(config_.mss);
      if (cwnd_ < ssthresh_) {
        cwnd_ += std::min(static_cast<double>(acked), mss);  // slow start
      } else {
        cwnd_ += mss * mss / cwnd_;  // congestion avoidance
      }
      // Growing past the receive window is pointless and skews the
      // next ssthresh computation.
      cwnd_ = std::min(cwnd_, static_cast<double>(config_.rwnd));
    }
    arm_rto();
    try_send();
    return;
  }

  if (ack == snd_una_ && flight_size() > 0) {
    // Only dup ACKs carrying SACK hole evidence count toward fast
    // retransmit; SACK-less dup ACKs are DSACK-style duplicate reports
    // (e.g. from a Dup-scenario copy) and indicate no loss.
    if (!parsed.tcp->sack) return;
    // During recovery we stay conservative (RFC 6675 spirit): no window
    // inflation, no new data — with k duplicated copies each producing a
    // SACK'd dup ACK, Reno-style inflation triples the send rate exactly
    // when the path is losing packets, which starves the retransmissions
    // themselves and spirals into RTO.
    if (in_recovery_) return;
    ++dup_acks_;
    if (dup_acks_ == 3) enter_fast_retransmit();
  }
}

void TcpSender::enter_fast_retransmit() {
  ++stats_.fast_retransmits;
  in_recovery_ = true;
  recover_ = snd_nxt_;
  const auto mss = static_cast<double>(config_.mss);
  ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0 * mss);
  cwnd_ = ssthresh_ + 3.0 * mss;
  emit_segment(snd_una_, /*is_retransmission=*/true);
  arm_rto();
}

void TcpSender::on_rto() {
  if (!running_ || flight_size() == 0) return;
  ++stats_.rto_fires;
  const auto mss = static_cast<double>(config_.mss);
  ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0 * mss);
  cwnd_ = mss;
  dup_acks_ = 0;
  in_recovery_ = false;
  snd_nxt_ = snd_una_ + config_.mss;  // go-back-N restart from the hole
  ++rto_backoff_;
  emit_segment(snd_una_, /*is_retransmission=*/true);
  arm_rto();
}

// ---------------------------------------------------------------------------
// TcpReceiver
// ---------------------------------------------------------------------------

TcpReceiver::TcpReceiver(Host& host, TcpConfig config)
    : host_(host), config_(config) {
  host_.bind_tcp(config_.local_port,
                 [this](const net::ParsedPacket& parsed,
                        const net::Packet& packet) { on_segment(parsed, packet); });
}

TcpReceiver::~TcpReceiver() {
  delack_handle_.cancel();
  host_.unbind_tcp(config_.local_port);
}

void TcpReceiver::on_segment(const net::ParsedPacket& parsed,
                             const net::Packet& packet) {
  if (!parsed.tcp) return;
  const std::size_t len = packet.size() - parsed.payload_offset;
  if (len == 0) return;  // pure ACK in the reverse direction: ignore
  ++stats_.segments_received;

  const std::uint64_t seq = unwrap_seq(rcv_nxt_, parsed.tcp->seq);

  if (seq + len <= rcv_nxt_) {
    // Entirely old data: a duplicate (e.g. a combiner-less Dup scenario
    // copy, or a spurious retransmission). RFC 793 requires an ACK (it is
    // how a lost ACK gets repaired); with SACK the sender can tell this
    // dup ACK reports a duplicate rather than a hole, so duplication alone
    // never triggers fast retransmit (the DSACK effect).
    ++stats_.duplicate_segments;
    send_ack();
    return;
  }

  if (seq > rcv_nxt_) {
    // Out of order: buffer and send an immediate duplicate ACK.
    ++stats_.out_of_order_segments;
    ooo_.emplace(seq, len);
    send_ack();
    return;
  }

  // In-order (or partially overlapping) data: advance and drain the buffer.
  rcv_nxt_ = seq + len;
  stats_.bytes_delivered += len;
  for (auto it = ooo_.begin(); it != ooo_.end();) {
    if (it->first > rcv_nxt_) break;
    const std::uint64_t end = it->first + it->second;
    if (end > rcv_nxt_) {
      stats_.bytes_delivered += end - rcv_nxt_;
      rcv_nxt_ = end;
    }
    it = ooo_.erase(it);
  }

  if (!ooo_.empty()) {
    send_ack();  // still a hole: keep the dup-ACK clock running
    return;
  }
  if (++unacked_in_order_ >= 2) {
    send_ack();
  } else {
    schedule_delayed_ack();
  }
}

void TcpReceiver::schedule_delayed_ack() {
  if (delack_handle_.pending()) return;
  delack_handle_ = host_.simulator().schedule_after(kDelAckTimeout, [this] {
    if (unacked_in_order_ > 0) send_ack();
  });
}

void TcpReceiver::send_ack() {
  unacked_in_order_ = 0;
  delack_handle_.cancel();
  ++stats_.acks_sent;
  net::TcpHeader hdr;
  hdr.src_port = config_.local_port;
  hdr.dst_port = config_.peer_port;
  hdr.seq = 0;
  hdr.ack = static_cast<std::uint32_t>(rcv_nxt_ & 0xFFFFFFFF);
  hdr.flags = net::kTcpAck;
  hdr.window = 0xFFFF;
  if (!ooo_.empty()) {
    // First SACK block: the earliest out-of-order run. This is the hole
    // evidence the sender's dupack counter keys on.
    const auto first = ooo_.begin();
    std::uint64_t run_end = first->first + first->second;
    for (auto it = std::next(first); it != ooo_.end(); ++it) {
      if (it->first > run_end) break;
      run_end = std::max(run_end, it->first + it->second);
    }
    hdr.sack = {{static_cast<std::uint32_t>(first->first & 0xFFFFFFFF),
                 static_cast<std::uint32_t>(run_end & 0xFFFFFFFF)}};
  }
  net::Packet ack = net::build_tcp(
      net::EthernetHeader{.dst = config_.peer_mac, .src = host_.mac()},
      std::nullopt,
      net::Ipv4Header{.src = host_.ip(),
                      .dst = config_.peer_ip,
                      .identification = host_.next_ip_id()},
      hdr, {});
  // ACK generation costs receiver CPU (it shares the core with segment
  // processing); transmission is then immediate.
  host_.cpu_submit(host_.profile().ack_tx_cost,
                   [&host = host_, a = std::move(ack)]() mutable {
                     host.transmit(std::move(a));
                   });
}

}  // namespace netco::host
