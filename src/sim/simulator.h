// Deterministic discrete-event simulator.
//
// Single-threaded, ns-resolution event loop. Events scheduled at the same
// instant fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which makes every run bit-reproducible for a given
// seed and event program.
//
// Hot-path design: scheduling an event performs zero heap allocations in
// the common case. The callback lives inline in the event record (see
// sim/callback.h), and cancellation is a generation counter in a slab the
// simulator owns — an EventHandle is (slab, slot, generation), and a
// cancelled or fired event simply stops matching its slot's generation.
// Cancelled events stay in the heap as tombstones until they reach the
// top, where they are purged without executing — unless the tombstone
// debt outgrows the live population, in which case a compaction pass
// rebuilds the heap without them (cancel-heavy workloads like health
// probe churn would otherwise grow the raw heap without bound).
//
// Threading: a Simulator is single-threaded. When it runs as a shard of a
// ShardedSimulator (sim/shard.h) it is *owned* by one worker thread;
// bind_owner_thread() records that owner and EventHandle operations then
// assert (debug builds) that they run on it — an EventHandle must never
// cross a shard boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sim/callback.h"
#include "sim/time.h"

namespace netco::sim {

namespace detail {

/// Cancellation slab: one generation counter per event slot. A scheduled
/// event and its handles agree on (slot, generation); bumping the counter
/// invalidates both. Slots are recycled through a free list, so a
/// simulator's steady state performs no allocation per event.
struct CancelSlab {
  std::vector<std::uint64_t> generation;
  std::vector<std::uint32_t> free_slots;
  std::size_t live = 0;  ///< scheduled, not yet cancelled or fired
  /// Owning thread when the simulator runs as a shard (sim/shard.h);
  /// default-constructed id = unbound (single-threaded use). Atomic only
  /// so the debug assertion itself is race-free; the slab is otherwise
  /// strictly single-threaded.
  std::atomic<std::thread::id> owner{std::thread::id{}};

  /// Debug check: the calling thread may touch this slab.
  [[nodiscard]] bool owned_by_caller() const noexcept {
    const std::thread::id id = owner.load(std::memory_order_relaxed);
    return id == std::thread::id{} || id == std::this_thread::get_id();
  }

  /// Reserves a slot; its current generation labels the new event.
  std::uint32_t acquire() {
    if (!free_slots.empty()) {
      const std::uint32_t slot = free_slots.back();
      free_slots.pop_back();
      return slot;
    }
    generation.push_back(0);
    return static_cast<std::uint32_t>(generation.size() - 1);
  }

  /// True while (slot, gen) names a scheduled, uncancelled event.
  [[nodiscard]] bool matches(std::uint32_t slot,
                             std::uint64_t gen) const noexcept {
    return generation[slot] == gen;
  }

  /// Invalidates (slot, gen); returns false if it already was.
  bool invalidate(std::uint32_t slot, std::uint64_t gen) noexcept {
    if (!matches(slot, gen)) return false;
    ++generation[slot];
    return true;
  }

  /// Returns a slot to the free list once its event left the queue.
  void release(std::uint32_t slot) { free_slots.push_back(slot); }
};

}  // namespace detail

/// Cancellation handle for a scheduled event.
///
/// Holds a weak reference to the simulator's cancellation slab; cancelling
/// after the event fired (or after the simulator died) is a harmless
/// no-op. Copyable, and copying never allocates.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  /// Prevents the event callback from running. Idempotent.
  void cancel() noexcept;

  /// True if the event is still scheduled and not cancelled.
  [[nodiscard]] bool pending() const noexcept;

 private:
  friend class Simulator;
  EventHandle(std::weak_ptr<detail::CancelSlab> slab, std::uint32_t slot,
              std::uint64_t generation) noexcept
      : slab_(std::move(slab)), slot_(slot), generation_(generation) {}

  std::weak_ptr<detail::CancelSlab> slab_;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

/// The event loop. One instance per simulated network.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Root RNG; components should carve off independent streams via split().
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  EventHandle schedule_at(TimePoint at, Callback fn);

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Runs events until the queue drains or `stop()` is called.
  void run();

  /// Runs events with timestamp <= `deadline`; afterwards now() == deadline
  /// (unless stopped earlier).
  void run_until(TimePoint deadline);

  /// Runs events for `span` of simulated time from the current instant.
  void run_for(Duration span) { run_until(now_ + span); }

  /// Requests the current run()/run_until() call to return after the
  /// in-flight event completes.
  void stop() noexcept { stopped_ = true; }

  /// Number of events executed since construction (for tests/telemetry).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of *live* events scheduled and not yet cancelled or fired.
  /// Cancelled tombstones are excluded (they still sit in the queue until
  /// lazily purged, see queue_size()).
  [[nodiscard]] std::size_t events_pending() const noexcept {
    return slab_->live;
  }

  /// Raw heap occupancy, including cancelled tombstones that have not
  /// bubbled up to the top (or been compacted away) yet.
  /// queue_size() - events_pending() is the current tombstone debt.
  [[nodiscard]] std::size_t queue_size() const noexcept {
    return queue_.size();
  }

  /// Tombstone compactions performed so far (telemetry/tests). A
  /// compaction runs when a schedule finds the tombstone debt larger than
  /// the live population (ratio > 1/2 of the raw heap), so cancel-heavy
  /// workloads keep queue_size() within a constant factor of
  /// events_pending() instead of growing without bound.
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

  /// Declares the calling thread the owner of this simulator (shard
  /// pinning, see sim/shard.h). EventHandle::cancel()/pending() and run()
  /// assert (debug builds) they execute on the owner once bound.
  void bind_owner_thread() noexcept {
    slab_->owner.store(std::this_thread::get_id(),
                       std::memory_order_relaxed);
  }
  /// Removes the owner binding (the simulator is single-threaded again).
  void unbind_owner_thread() noexcept {
    slab_->owner.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::uint64_t generation;
    std::uint32_t slot;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs a single event; returns false if no runnable event
  /// remains at or before `deadline`. Purges tombstone runs encountered at
  /// the top of the queue (even past the deadline — they will never run).
  bool step(TimePoint deadline);

  /// Rebuilds the heap without tombstones, returning their slots to the
  /// free list. Triggered from schedule_at; deterministic (depends only on
  /// the event program, never on wall time or thread scheduling).
  void compact();

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
  bool stopped_ = false;
  /// Binary heap ordered by Later (std::push_heap/pop_heap). A raw vector
  /// rather than std::priority_queue so compact() can rebuild it in place.
  std::vector<Event> queue_;
  std::shared_ptr<detail::CancelSlab> slab_;
  Rng rng_;
};

}  // namespace netco::sim
