// Deterministic discrete-event simulator.
//
// Single-threaded, ns-resolution event loop. Events scheduled at the same
// instant fire in scheduling order (a monotonically increasing sequence
// number breaks ties), which makes every run bit-reproducible for a given
// seed and event program.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "sim/time.h"

namespace netco::sim {

/// Cancellation handle for a scheduled event.
///
/// Holds a weak reference; cancelling after the event fired (or after the
/// simulator died) is a harmless no-op. Copyable.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  /// Prevents the event callback from running. Idempotent.
  void cancel() noexcept;

  /// True if the event is still scheduled and not cancelled.
  [[nodiscard]] bool pending() const noexcept;

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> cancelled) noexcept
      : cancelled_(std::move(cancelled)) {}
  std::weak_ptr<bool> cancelled_;
};

/// The event loop. One instance per simulated network.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Root RNG; components should carve off independent streams via split().
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Runs events until the queue drains or `stop()` is called.
  void run();

  /// Runs events with timestamp <= `deadline`; afterwards now() == deadline
  /// (unless stopped earlier).
  void run_until(TimePoint deadline);

  /// Runs events for `span` of simulated time from the current instant.
  void run_for(Duration span) { run_until(now_ + span); }

  /// Requests the current run()/run_until() call to return after the
  /// in-flight event completes.
  void stop() noexcept { stopped_ = true; }

  /// Number of events executed since construction (for tests/telemetry).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Number of events currently queued (including cancelled tombstones).
  [[nodiscard]] std::size_t events_pending() const noexcept {
    return queue_.size();
  }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs a single event; returns false if the queue is empty.
  bool step(TimePoint deadline);

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

}  // namespace netco::sim
