#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace netco::sim {

namespace {

/// Compaction engages only past this raw heap size: small queues purge
/// their tombstones lazily at pop for free, and a fixed floor keeps the
/// amortized analysis trivial (a compaction of n entries is paid for by
/// the >= n/2 cancellations that triggered it).
constexpr std::size_t kCompactionFloor = 64;

}  // namespace

void EventHandle::cancel() noexcept {
  if (auto slab = slab_.lock()) {
    NETCO_DASSERT(slab->owned_by_caller());
    // The slot itself stays reserved until the tombstone pops; only the
    // liveness accounting changes here.
    if (slab->invalidate(slot_, generation_)) --slab->live;
  }
}

bool EventHandle::pending() const noexcept {
  const auto slab = slab_.lock();
  if (slab == nullptr) return false;
  NETCO_DASSERT(slab->owned_by_caller());
  return slab->matches(slot_, generation_);
}

Simulator::Simulator(std::uint64_t seed)
    : slab_(std::make_shared<detail::CancelSlab>()), rng_(seed) {}

EventHandle Simulator::schedule_at(TimePoint at, Callback fn) {
  NETCO_ASSERT_MSG(at >= now_, "cannot schedule events in the past");
  NETCO_ASSERT(static_cast<bool>(fn));
  // Cancel-heavy workloads (probe churn, failover rewires) retire events
  // faster than they pop: purge the debt once tombstones outnumber live
  // events, so the raw heap stays within 2x the live population (plus the
  // floor) no matter how hot the cancellation path runs.
  if (queue_.size() >= kCompactionFloor &&
      queue_.size() - slab_->live > slab_->live) {
    compact();
  }
  const std::uint32_t slot = slab_->acquire();
  const std::uint64_t generation = slab_->generation[slot];
  ++slab_->live;
  queue_.push_back(Event{at, next_seq_++, generation, slot, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  return EventHandle{slab_, slot, generation};
}

EventHandle Simulator::schedule_after(Duration delay, Callback fn) {
  NETCO_ASSERT_MSG(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::compact() {
  const auto keep_end = std::remove_if(
      queue_.begin(), queue_.end(), [this](const Event& event) {
        if (slab_->matches(event.slot, event.generation)) return false;
        slab_->release(event.slot);
        return true;
      });
  queue_.erase(keep_end, queue_.end());
  // (at, seq) is a total order, so the heap rebuild cannot perturb pop
  // order: runs stay bit-identical to the lazy-purge-only build.
  std::make_heap(queue_.begin(), queue_.end(), Later{});
  ++compactions_;
}

bool Simulator::step(TimePoint deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.front();
    if (!slab_->matches(top.slot, top.generation)) {
      // Tombstone: cancelled while queued. Purge regardless of deadline —
      // it will never run, and draining the run now keeps the queue lean.
      const std::uint32_t slot = top.slot;
      std::pop_heap(queue_.begin(), queue_.end(), Later{});
      queue_.pop_back();
      slab_->release(slot);
      continue;
    }
    if (top.at > deadline) return false;
    // Move the event out before running: the callback may schedule more
    // events and reallocate the underlying heap.
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event event = std::move(queue_.back());
    queue_.pop_back();
    // Fired: handles must stop reporting pending, and the slot recycles.
    ++slab_->generation[event.slot];
    slab_->release(event.slot);
    --slab_->live;
    now_ = event.at;
    ++executed_;
    event.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  NETCO_DASSERT(slab_->owned_by_caller());
  stopped_ = false;
  while (!stopped_ && step(TimePoint::from_ns(INT64_MAX))) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  NETCO_ASSERT(deadline >= now_);
  NETCO_DASSERT(slab_->owned_by_caller());
  stopped_ = false;
  while (!stopped_ && step(deadline)) {
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace netco::sim
