#include "sim/simulator.h"

#include <utility>

#include "common/assert.h"

namespace netco::sim {

void EventHandle::cancel() noexcept {
  if (auto flag = cancelled_.lock()) *flag = true;
}

bool EventHandle::pending() const noexcept {
  auto flag = cancelled_.lock();
  return flag != nullptr && !*flag;
}

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventHandle Simulator::schedule_at(TimePoint at, std::function<void()> fn) {
  NETCO_ASSERT_MSG(at >= now_, "cannot schedule events in the past");
  NETCO_ASSERT(fn != nullptr);
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{cancelled};
  queue_.push(Event{at, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

EventHandle Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  NETCO_ASSERT_MSG(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step(TimePoint deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > deadline) return false;
    // Move the event out before running: the callback may schedule more
    // events and reallocate the underlying heap.
    Event event = std::move(const_cast<Event&>(top));
    queue_.pop();
    if (*event.cancelled) continue;  // tombstone
    now_ = event.at;
    ++executed_;
    event.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step(TimePoint::from_ns(INT64_MAX))) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  NETCO_ASSERT(deadline >= now_);
  stopped_ = false;
  while (!stopped_ && step(deadline)) {
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace netco::sim
