#include "sim/simulator.h"

#include <utility>

#include "common/assert.h"

namespace netco::sim {

void EventHandle::cancel() noexcept {
  if (auto slab = slab_.lock()) {
    // The slot itself stays reserved until the tombstone pops; only the
    // liveness accounting changes here.
    if (slab->invalidate(slot_, generation_)) --slab->live;
  }
}

bool EventHandle::pending() const noexcept {
  const auto slab = slab_.lock();
  return slab != nullptr && slab->matches(slot_, generation_);
}

Simulator::Simulator(std::uint64_t seed)
    : slab_(std::make_shared<detail::CancelSlab>()), rng_(seed) {}

EventHandle Simulator::schedule_at(TimePoint at, Callback fn) {
  NETCO_ASSERT_MSG(at >= now_, "cannot schedule events in the past");
  NETCO_ASSERT(static_cast<bool>(fn));
  const std::uint32_t slot = slab_->acquire();
  const std::uint64_t generation = slab_->generation[slot];
  ++slab_->live;
  queue_.push(Event{at, next_seq_++, generation, slot, std::move(fn)});
  return EventHandle{slab_, slot, generation};
}

EventHandle Simulator::schedule_after(Duration delay, Callback fn) {
  NETCO_ASSERT_MSG(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step(TimePoint deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (!slab_->matches(top.slot, top.generation)) {
      // Tombstone: cancelled while queued. Purge regardless of deadline —
      // it will never run, and draining the run now keeps the queue lean.
      const std::uint32_t slot = top.slot;
      queue_.pop();
      slab_->release(slot);
      continue;
    }
    if (top.at > deadline) return false;
    // Move the event out before running: the callback may schedule more
    // events and reallocate the underlying heap.
    Event event = std::move(const_cast<Event&>(top));
    queue_.pop();
    // Fired: handles must stop reporting pending, and the slot recycles.
    ++slab_->generation[event.slot];
    slab_->release(event.slot);
    --slab_->live;
    now_ = event.at;
    ++executed_;
    event.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step(TimePoint::from_ns(INT64_MAX))) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  NETCO_ASSERT(deadline >= now_);
  stopped_ = false;
  while (!stopped_ && step(deadline)) {
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace netco::sim
