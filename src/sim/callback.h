// Small-buffer-optimized move-only callable for the event loop.
//
// The simulator schedules millions of closures whose captures are a
// handful of words (`this`, a port index, a COW Packet handle — see
// src/net/packet.h). `std::function` heap-allocates most of those and
// requires copyability; Callback stores any nothrow-movable callable up
// to kInlineBytes directly inside the event record and falls back to one
// heap allocation only for oversized captures. Together with the
// generation-slab cancellation scheme in simulator.h this makes
// scheduling an event allocation-free in the common case.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace netco::sim {

/// Move-only `void()` callable with inline storage for small captures.
class Callback {
 public:
  /// Inline capture budget. Sized for the hot closures (device pointer +
  /// port index + packet handle ≈ 24 B) with headroom for a few extra
  /// captured words; a `std::function` also still fits inline.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  Callback(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                      // the std::function parameters it replaces
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = heap_ops<Fn>();
    }
  }

  Callback(Callback&& other) noexcept { move_from(std::move(other)); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  /// False for a default-constructed or moved-from callback.
  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const Ops* inline_ops() noexcept {
    static constexpr Ops ops = {
        [](void* s) { (*static_cast<Fn*>(s))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* s) { static_cast<Fn*>(s)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() noexcept {
    static constexpr Ops ops = {
        [](void* s) { (**static_cast<Fn**>(s))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn*(*static_cast<Fn**>(src));  // steal the pointer
        },
        [](void* s) { delete *static_cast<Fn**>(s); },
    };
    return &ops;
  }

  void move_from(Callback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace netco::sim
