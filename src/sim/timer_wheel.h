// Hierarchical timer wheel for the dominant short-horizon timer class.
//
// The workload engine schedules and cancels millions of per-flow timers
// (pacing ticks, retransmit timeouts, session think times). On the binary
// heap every one of those is an O(log n) push plus a tombstone that has to
// bubble to the top or be compacted away; on the wheel both schedule and
// cancel are O(1) pointer splices into a slot of a 4-level × 256-slot
// wheel (Varghese & Lauck), with per-level occupancy bitmaps so finding
// the next due tick is a handful of bit scans.
//
// Layering and determinism contract:
//  * The wheel does NOT replace the simulator — it rides on it. A single
//    "anchor" event is kept scheduled at the next interesting tick (next
//    due level-0 slot, next cascade boundary with a non-empty slot, or
//    the next overflow rescan boundary); firing it advances the wheel,
//    cascades boundary slots down, and runs the due timers. Between
//    anchors the wheel costs the simulator nothing, no matter how many
//    timers it holds.
//  * Deadlines are quantized to the tick: a timer never fires early and
//    fires at most one tick late (the deadline is rounded *up* to the
//    next tick boundary; a due-now deadline rounds to the next tick).
//  * Fire order is heap-equivalent: timers due in the same tick run
//    sorted by (raw deadline ns, schedule sequence), which is exactly the
//    simulator's (time, seq) order. With tick = 1 ns the wheel is
//    observationally identical to Simulator::schedule_at — the
//    differential test in tests/timer_wheel_test.cpp locks this in.
//  * All state transitions happen inside simulator events, so a wheel
//    driven by a deterministic event program is itself deterministic.
//
// Zero per-timer allocation: records live in a flat slab recycled through
// a free list; cancellation is a generation check (same scheme as the
// simulator's CancelSlab and the compare's WeightedVoteCache). The
// callback is a plain function pointer + context pointer + 64-bit
// argument — no std::function, nothing to destroy.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace netco::sim {

/// Wheel construction parameters.
struct TimerWheelConfig {
  /// Tick quantum. Level 0 spans 256 ticks; the whole wheel spans 2^32
  /// ticks, beyond which timers sit in the overflow bucket until a rescan
  /// boundary pulls them in. 100 µs serves millisecond-scale flow timers
  /// with ≤ 0.1 ms lateness; tests use 1 ns for exact heap equivalence.
  Duration tick = Duration::microseconds(100);
};

/// O(1)-schedule/cancel timer facility layered on a Simulator.
class TimerWheel {
 public:
  /// Timer callback: a POD triple so a timer record never owns state.
  using TimerFn = void (*)(void* ctx, std::uint64_t arg);

  /// Opaque handle: (generation << 32) | slab index. Stale handles (fired
  /// or cancelled timers, recycled slots) never match a live timer.
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimerId = 0;

  TimerWheel(Simulator& simulator, TimerWheelConfig config = {});
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Schedules `fn(ctx, arg)` at absolute time `at` (>= now), quantized up
  /// to the next tick boundary. O(1).
  TimerId schedule_at(TimePoint at, TimerFn fn, void* ctx, std::uint64_t arg);

  /// Schedules `fn(ctx, arg)` after `delay` (>= 0) from now. O(1).
  TimerId schedule_after(Duration delay, TimerFn fn, void* ctx,
                         std::uint64_t arg);

  /// Cancels a pending timer. O(1); returns false if `id` is stale (the
  /// timer already fired, was cancelled, or the slot was recycled).
  bool cancel(TimerId id) noexcept;

  /// True while `id` names a scheduled, uncancelled timer.
  [[nodiscard]] bool pending(TimerId id) const noexcept;

  /// The configured tick quantum.
  [[nodiscard]] Duration tick() const noexcept {
    return Duration::nanoseconds(static_cast<std::int64_t>(tick_ns_));
  }

  // --- telemetry ---------------------------------------------------------
  [[nodiscard]] std::size_t active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t scheduled() const noexcept { return scheduled_; }
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }
  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }
  /// Boundary cascades performed (higher-level slots redistributed).
  [[nodiscard]] std::uint64_t cascades() const noexcept { return cascades_; }
  /// Timers currently parked beyond the 2^32-tick horizon.
  [[nodiscard]] std::size_t overflow_size() const noexcept {
    return overflow_count_;
  }
  /// Capacity of the record slab (high-water mark of concurrent timers).
  [[nodiscard]] std::size_t slab_capacity() const noexcept {
    return records_.size();
  }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::uint64_t kSlots = 256;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  /// Bucket ids: level * 256 + slot, then one overflow bucket.
  static constexpr std::uint16_t kOverflowBucket =
      static_cast<std::uint16_t>(kLevels * kSlots);
  static constexpr std::uint16_t kNoBucket = 0xFFFF;
  static constexpr std::uint64_t kNoTick = UINT64_MAX;

  struct Record {
    std::int64_t deadline_ns = 0;  ///< raw (unquantized) deadline
    std::uint64_t seq = 0;         ///< schedule order, breaks ties
    TimerFn fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
    std::uint32_t gen = 1;   ///< bumped on fire/cancel; 0 never used
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint16_t bucket = kNoBucket;  ///< kNoBucket = free / not queued
  };

  /// A due timer copied out of its record before release, so callbacks may
  /// freely schedule into (and recycle) the slab.
  struct Due {
    std::int64_t deadline_ns;
    std::uint64_t seq;
    TimerFn fn;
    void* ctx;
    std::uint64_t arg;
  };

  TimerId do_schedule(std::int64_t deadline_ns, TimerFn fn, void* ctx,
                      std::uint64_t arg);
  void place(std::uint32_t index, std::uint64_t due_tick);
  void unlink(std::uint32_t index) noexcept;
  void release(std::uint32_t index) noexcept;
  /// Detaches and returns the head of a bucket's list (clears its bitmap).
  std::uint32_t detach_bucket(std::uint16_t bucket) noexcept;
  void on_anchor();
  void fire_due(std::uint64_t t);
  void cascade_at(std::uint64_t t);
  void update_anchor();
  void arm_anchor(std::uint64_t t);
  [[nodiscard]] std::uint64_t next_interesting_tick() const noexcept;
  /// First set slot of `level` strictly after position `from` in circular
  /// order, as a distance in [1, 256]; 0 when the level is empty.
  [[nodiscard]] std::uint64_t next_slot_distance(
      int level, std::uint64_t from) const noexcept;
  [[nodiscard]] std::uint64_t due_tick_of(std::int64_t deadline_ns)
      const noexcept;

  Simulator& sim_;
  std::uint64_t tick_ns_;
  std::uint64_t now_tick_ = 0;   ///< wheel position (lags sim time between anchors)
  std::uint64_t next_seq_ = 0;

  std::vector<Record> records_;
  std::vector<std::uint32_t> free_;
  std::array<std::uint32_t, kLevels * kSlots + 1> head_;
  /// Occupancy bitmaps: bits_[level][slot / 64] bit (slot % 64).
  std::array<std::array<std::uint64_t, 4>, kLevels> bits_{};
  std::vector<Due> scratch_;

  EventHandle anchor_;
  std::uint64_t anchor_tick_ = 0;
  bool anchor_armed_ = false;

  std::size_t active_ = 0;
  std::size_t overflow_count_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t cascades_ = 0;
};

}  // namespace netco::sim
