#include "sim/shard.h"

#include <algorithm>
#include <condition_variable>
#include <thread>
#include <tuple>
#include <utility>

#include "common/assert.h"

namespace netco::sim {

// ---------------------------------------------------------------------------
// ShardChannel

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardChannel::ShardChannel(std::size_t from, std::size_t to,
                           Duration lookahead, std::size_t capacity)
    : from_(from),
      to_(to),
      lookahead_(lookahead),
      ring_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(ring_.size() - 1) {
  NETCO_ASSERT_MSG(lookahead > Duration::zero(),
                   "cross-shard lookahead must be positive (a zero-latency "
                   "cycle deadlocks conservative synchronization)");
}

void ShardChannel::post(TimePoint send_time, TimePoint deliver_at,
                        Callback fn) {
  NETCO_ASSERT_MSG(
      deliver_at >= send_time + lookahead_,
      "cross-shard delivery undercuts the channel's declared lookahead");
  Message msg{deliver_at.ns(), next_seq_++, std::move(fn)};
  ++posted_;
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t head = head_.load(std::memory_order_acquire);
  if (tail - head < ring_.size()) {
    ring_[tail & mask_] = std::move(msg);
    tail_.store(tail + 1, std::memory_order_release);
    return;
  }
  // Ring full mid-round: overflow. The consumer only drains at the
  // barrier, so every overflow seq exceeds every ring seq — pop() keeps
  // per-channel order by draining the ring first.
  ++overflow_posts_;
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  overflow_.push_back(std::move(msg));
}

bool ShardChannel::pop(Message& out) {
  const std::size_t head = head_.load(std::memory_order_relaxed);
  const std::size_t tail = tail_.load(std::memory_order_acquire);
  if (head != tail) {
    out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  if (overflow_.empty()) return false;
  out = std::move(overflow_.front());
  overflow_.pop_front();
  return true;
}

// ---------------------------------------------------------------------------
// ShardedSimulator

struct ShardedSimulator::CellState {
  CellFactory factory;
  std::unique_ptr<ShardCell> cell;
  TimePoint committed;        ///< time the cell has fully executed to
  TimePoint cap;              ///< cell's own next-window cap (from on_window)
  TimePoint horizon;          ///< this round's conservative bound
  bool runnable = false;      ///< advances this round
  bool finished = false;      ///< cap reached done_marker()
  int worker = 0;             ///< pinned worker index
  std::vector<const ShardChannel*> in;  ///< channels delivering into this cell
};

/// Barrier state shared between the coordinator and the workers. A plain
/// generation-counter design: the coordinator bumps `round` to release
/// the workers, each worker bumps `arrived` when its cells are done, and
/// the mutex hands the memory written on one side to the other.
struct ShardedSimulator::WorkerSync {
  std::mutex mutex;
  std::condition_variable worker_cv;
  std::condition_variable coordinator_cv;
  std::uint64_t round = 0;    ///< current release generation
  int arrived = 0;            ///< workers finished with the current phase
  bool stop = false;          ///< no more rounds: finalize and exit
  int workers = 0;
};

ShardedSimulator::ShardedSimulator(Options options)
    : options_(options), sync_(std::make_unique<WorkerSync>()) {
  NETCO_ASSERT(options_.workers >= 1);
}

ShardedSimulator::~ShardedSimulator() = default;

std::size_t ShardedSimulator::add_cell(CellFactory factory) {
  NETCO_ASSERT_MSG(!ran_, "add_cell after run()");
  NETCO_ASSERT(static_cast<bool>(factory));
  auto state = std::make_unique<CellState>();
  state->factory = std::move(factory);
  cells_.push_back(std::move(state));
  return cells_.size() - 1;
}

ShardChannel& ShardedSimulator::connect(std::size_t from, std::size_t to,
                                        Duration lookahead) {
  NETCO_ASSERT_MSG(!ran_, "connect after run()");
  NETCO_ASSERT(from < cells_.size() && to < cells_.size() && from != to);
  channels_.push_back(std::make_unique<ShardChannel>(
      from, to, lookahead, options_.channel_capacity));
  ShardChannel& channel = *channels_.back();
  cells_[to]->in.push_back(&channel);
  return channel;
}

TimePoint ShardedSimulator::committed(std::size_t cell) const {
  NETCO_ASSERT(cell < cells_.size());
  return cells_[cell]->committed;
}

void ShardedSimulator::worker_main(int worker) {
  if (worker_prologue_) worker_prologue_(worker);

  // Construct and start this worker's cells, in ascending cell order so
  // any shared thread-local state (metric registrations) is built in a
  // deterministic order for a given pinning.
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellState& state = *cells_[i];
    if (state.worker != worker) continue;
    state.cell = state.factory();
    state.cell->simulator().bind_owner_thread();
    state.cap = state.cell->start();
    state.committed = state.cell->simulator().now();
  }

  std::uint64_t seen_round = 0;
  {
    std::unique_lock<std::mutex> lock(sync_->mutex);
    ++sync_->arrived;
    sync_->coordinator_cv.notify_one();
  }

  while (true) {
    {
      std::unique_lock<std::mutex> lock(sync_->mutex);
      sync_->worker_cv.wait(lock, [&] {
        return sync_->stop || sync_->round > seen_round;
      });
      if (sync_->stop) break;
      seen_round = sync_->round;
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      CellState& state = *cells_[i];
      if (state.worker != worker || !state.runnable) continue;
      state.cell->before_window();
      state.cell->simulator().run_until(state.horizon);
      state.cap = state.cell->on_window(state.horizon);
    }
    {
      std::unique_lock<std::mutex> lock(sync_->mutex);
      ++sync_->arrived;
      sync_->coordinator_cv.notify_one();
    }
  }

  // Shutdown: harvest results, tear the cells down on their own thread
  // (destructors cancel events — EventHandle asserts the owner), then let
  // the harness collect this worker's thread-local state.
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellState& state = *cells_[i];
    if (state.worker != worker || state.cell == nullptr) continue;
    state.cell->finalize();
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellState& state = *cells_[i];
    if (state.worker == worker) state.cell.reset();
  }
  if (worker_epilogue_) worker_epilogue_(worker);
}

bool ShardedSimulator::plan_round() {
  bool any_alive = false;
  bool any_runnable = false;
  for (auto& state_ptr : cells_) {
    CellState& state = *state_ptr;
    state.runnable = false;
    if (state.finished) continue;
    if (state.cap == ShardCell::done_marker()) {
      state.finished = true;
      continue;
    }
    any_alive = true;
    TimePoint horizon = state.cap;
    for (const ShardChannel* channel : state.in) {
      const CellState& src = *cells_[channel->from()];
      if (src.finished) continue;  // a finished cell sends nothing more
      horizon = std::min(horizon, src.committed + channel->lookahead());
    }
    state.horizon = horizon;
    state.runnable = horizon > state.committed;
    any_runnable = any_runnable || state.runnable;
  }
  if (!any_alive) return false;
  // Progress guarantee: the globally least-committed alive cell always
  // clears its neighbor bounds (every lookahead is positive), so a stuck
  // round means a cap <= committed bug in a cell, not a protocol state.
  NETCO_ASSERT_MSG(any_runnable,
                   "conservative synchronization cannot advance any shard");
  return true;
}

void ShardedSimulator::drain_channels() {
  // (deliver time, channel id, per-channel seq) is a total order over all
  // in-flight messages, so scheduling in that order assigns receiver-side
  // tie-break sequence numbers identically for every worker count.
  struct Arrival {
    std::int64_t deliver_ns;
    std::size_t channel_id;
    std::uint64_t seq;
    Callback fn;
  };
  std::vector<std::vector<Arrival>> arrivals(cells_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    ShardChannel& channel = *channels_[c];
    ShardChannel::Message msg;
    while (channel.pop(msg)) {
      arrivals[channel.to()].push_back(
          Arrival{msg.deliver_ns, c, msg.seq, std::move(msg.fn)});
    }
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (arrivals[i].empty()) continue;
    CellState& state = *cells_[i];
    if (state.finished) {
      // A finished cell's clock is frozen; a straggler message (a sender
      // still draining) could land in its past. Finished-ness is part of
      // the worker-count-invariant round schedule, so the drop set is
      // deterministic too.
      dropped_ += arrivals[i].size();
      continue;
    }
    std::sort(arrivals[i].begin(), arrivals[i].end(),
              [](const Arrival& a, const Arrival& b) {
                return std::tie(a.deliver_ns, a.channel_id, a.seq) <
                       std::tie(b.deliver_ns, b.channel_id, b.seq);
              });
    Simulator& sim = state.cell->simulator();
    for (Arrival& arrival : arrivals[i]) {
      // The lookahead argument: deliver >= sender committed + lookahead
      // >= this cell's horizon — never in its past.
      NETCO_ASSERT(arrival.deliver_ns >= sim.now().ns());
      sim.schedule_at(TimePoint::from_ns(arrival.deliver_ns),
                      std::move(arrival.fn));
      ++delivered_;
    }
  }
}

void ShardedSimulator::run() {
  NETCO_ASSERT_MSG(!ran_, "ShardedSimulator::run() is one-shot");
  ran_ = true;
  if (cells_.empty()) return;

  const int workers =
      std::min<int>(options_.workers, static_cast<int>(cells_.size()));
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i]->worker = static_cast<int>(i % static_cast<std::size_t>(workers));
  }
  sync_->workers = workers;

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([this, w] { worker_main(w); });
  }

  // Wait for construction + start() on every worker.
  {
    std::unique_lock<std::mutex> lock(sync_->mutex);
    sync_->coordinator_cv.wait(lock,
                               [&] { return sync_->arrived == workers; });
    sync_->arrived = 0;
  }

  while (plan_round()) {
    {
      std::unique_lock<std::mutex> lock(sync_->mutex);
      ++sync_->round;
      sync_->worker_cv.notify_all();
      sync_->coordinator_cv.wait(lock,
                                 [&] { return sync_->arrived == workers; });
      sync_->arrived = 0;
    }
    drain_channels();
    for (auto& state_ptr : cells_) {
      CellState& state = *state_ptr;
      if (state.runnable) state.committed = state.horizon;
    }
    ++rounds_;
  }

  {
    std::unique_lock<std::mutex> lock(sync_->mutex);
    sync_->stop = true;
    sync_->worker_cv.notify_all();
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace netco::sim
