// Sharded parallel simulation: many sim::Simulator shards, worker
// threads, conservative lookahead synchronization at link boundaries.
//
// The single-threaded Simulator caps a datacenter-scale soak at one event
// loop's throughput. ShardedSimulator runs N *cells* — independent
// combiner circuits or fat-tree pods, each owning its own Simulator —
// pinned round-robin onto worker threads, and advances them in rounds of
// a conservative (Chandy–Misra–Bryant-style) protocol:
//
//   horizon(cell) = min( cell's own window cap,
//                        min over in-channels (committed(src) + lookahead) )
//
// where a channel's lookahead is the propagation delay of the link that
// crosses the shard boundary (src/link: Channel::bind_remote). Every
// round, each cell runs its event loop up to its horizon in parallel;
// a barrier follows; cross-shard packets posted during the round are
// drained from SPSC queues and scheduled into their receiver cells; then
// committed times advance and the next round's horizons are computed.
// Because lookahead is a *lower bound* on any posted message's flight
// time, a message can never be scheduled into a cell's past — the classic
// conservative-DES safety argument, with link propagation delay as the
// natural lookahead floor.
//
// Determinism is load-bearing (golden-trace tests hash whole runs):
//  * The round/horizon schedule is computed from committed times and the
//    channel graph only — never from thread timing — so it is identical
//    for every worker count.
//  * Channel messages carry (deliver time, channel id, per-channel seq)
//    and are drained at the barrier in that canonical order, so the
//    receiving simulator assigns them the same tie-break sequence numbers
//    regardless of which thread produced them, or when.
//  * Cells never share a Simulator, an RNG stream, or (thread-local, see
//    src/obs) an observability context with a cell on another worker.
//  Hence: same seed + same cell set ⇒ bit-identical per-cell event
//  streams for ANY worker count — shards=1 reproduces the single-threaded
//  run exactly, and per-cell stream hashes merge canonically.
//
// Threading contract: a cell's Simulator, its EventHandles, and all its
// components belong to the worker the cell is pinned to (the worker calls
// bind_owner_thread(); debug builds assert). The only cross-thread
// traffic is ShardChannel::post (producer: sending cell's worker, during
// its window) and the coordinator's barrier-time drain, when all workers
// are parked.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/callback.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace netco::sim {

/// One cell of a sharded simulation: a Simulator plus the harness logic
/// that drives it window by window. All virtuals run on the owning worker
/// thread.
class ShardCell {
 public:
  virtual ~ShardCell() = default;

  /// The cell's event loop.
  [[nodiscard]] virtual Simulator& simulator() noexcept = 0;

  /// Called once before the first round; returns the first window cap
  /// (an absolute time the cell does not want to run past, e.g.
  /// committed + audit period), or done_marker() for an inert cell.
  virtual TimePoint start() = 0;

  /// Called immediately before the cell's events run in a window — the
  /// hook cells use to aim the worker's thread-local trace sink at their
  /// own stream (see scenario/sharded_soak.cpp).
  virtual void before_window() {}

  /// Called after the cell advanced to `committed` (its horizon for the
  /// round). When neighbors constrained the horizon, `committed` can be
  /// *below* the cap the cell asked for — return the same cap to simply
  /// continue toward it (window bookkeeping then still happens exactly on
  /// the cell's own cap boundaries, no matter how the conservative
  /// protocol slices the windows). Once committed reaches the cap, run
  /// between-window bookkeeping (audits, sender stop checks) and return
  /// the next cap; done_marker() finishes the cell.
  virtual TimePoint on_window(TimePoint committed) = 0;

  /// Called once on the owning worker after every cell finished, before
  /// destruction (also on the owning worker): collect results here.
  virtual void finalize() {}

  /// Cap sentinel: the cell has no further work.
  [[nodiscard]] static constexpr TimePoint done_marker() noexcept {
    return TimePoint::from_ns(INT64_MAX);
  }
};

/// Single-producer/single-consumer queue carrying cross-shard deliveries.
///
/// The producer is the sending cell's worker thread (during its window);
/// the consumer is the coordinator at the barrier, when the producer is
/// parked. The fixed-capacity lock-free ring covers the steady state; a
/// mutex-guarded overflow list absorbs bursts beyond it (rare — sized by
/// per-round traffic, not total traffic). Messages are tagged with a
/// per-channel sequence number so the coordinator can drain arrivals in
/// the canonical (deliver time, channel, seq) order.
class ShardChannel {
 public:
  struct Message {
    std::int64_t deliver_ns = 0;
    std::uint64_t seq = 0;
    Callback fn;
  };

  ShardChannel(std::size_t from, std::size_t to, Duration lookahead,
               std::size_t capacity);

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  /// Producer side: delivers `fn` on the receiving cell at `deliver_at`.
  /// `send_time` is the sender's current time; the conservative protocol
  /// requires deliver_at >= send_time + lookahead() (asserted — a link
  /// whose latency can undercut the declared lookahead would corrupt the
  /// synchronization, not just this message).
  void post(TimePoint send_time, TimePoint deliver_at, Callback fn);

  /// Consumer side (coordinator, barrier only): pops the oldest message.
  bool pop(Message& out);

  [[nodiscard]] std::size_t from() const noexcept { return from_; }
  [[nodiscard]] std::size_t to() const noexcept { return to_; }
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }
  /// Messages posted over the channel's lifetime (producer-side counter;
  /// read it only while the producer is parked).
  [[nodiscard]] std::uint64_t posted() const noexcept { return posted_; }
  /// Messages that missed the ring and took the overflow path.
  [[nodiscard]] std::uint64_t overflowed() const noexcept {
    return overflow_posts_;
  }

 private:
  std::size_t from_;
  std::size_t to_;
  Duration lookahead_;

  // Ring storage: power-of-two capacity, head_ owned by the consumer,
  // tail_ by the producer (classic SPSC).
  std::vector<Message> ring_;
  std::size_t mask_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};

  // Producer-side bookkeeping (single thread, no synchronization needed).
  std::uint64_t next_seq_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t overflow_posts_ = 0;

  // Overflow path: engaged only when the ring fills mid-round. All
  // overflow seqs are larger than any ring seq at drain time (the ring
  // only empties at the barrier), so pop() drains ring-then-overflow in
  // order.
  std::mutex overflow_mutex_;
  std::deque<Message> overflow_;
};

/// The coordinator: owns the cells, the channels, and the worker pool.
///
/// Usage:
///   ShardedSimulator sharded({.workers = 4});
///   auto a = sharded.add_cell([&] { return make_pod(0); });
///   auto b = sharded.add_cell([&] { return make_pod(1); });
///   ShardChannel& ab = sharded.connect(a, b, link_propagation);
///   sharded.run();   // blocks until every cell reports done
///
/// Factories, start(), before_window(), on_window(), finalize() and cell
/// destruction all execute on the cell's pinned worker thread, so
/// thread-local state (the obs context) binds to the right thread.
/// run() is one-shot.
class ShardedSimulator {
 public:
  struct Options {
    /// Worker threads. Cells are pinned round-robin (cell i → worker
    /// i % workers); clamped to the cell count. Determinism does not
    /// depend on this value.
    int workers = 1;
    /// Per-channel SPSC ring capacity (messages per round, not total).
    std::size_t channel_capacity = 4096;
  };

  using CellFactory = std::function<std::unique_ptr<ShardCell>()>;

  explicit ShardedSimulator(Options options);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Registers a cell; the factory runs on its pinned worker at run().
  std::size_t add_cell(CellFactory factory);

  /// Declares a cross-shard edge with conservative lookahead (the
  /// crossing link's propagation delay). lookahead must be positive —
  /// a zero-lookahead cycle would deadlock the conservative protocol.
  ShardChannel& connect(std::size_t from, std::size_t to,
                        Duration lookahead);

  /// Per-worker hooks, run on the worker thread before its first factory
  /// (prologue — reset thread-local metrics) and after its last cell is
  /// destroyed (epilogue — harvest thread-local metrics).
  void set_worker_prologue(std::function<void(int)> fn) {
    worker_prologue_ = std::move(fn);
  }
  void set_worker_epilogue(std::function<void(int)> fn) {
    worker_epilogue_ = std::move(fn);
  }

  /// Runs the conservative protocol until every cell reports done.
  /// One-shot; blocks the calling thread (which acts as coordinator).
  void run();

  /// Synchronization rounds executed (telemetry; worker-count invariant).
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  /// A cell's final committed time (valid after run()).
  [[nodiscard]] TimePoint committed(std::size_t cell) const;
  /// Messages delivered across all channels (valid after run()).
  [[nodiscard]] std::uint64_t cross_shard_messages() const noexcept {
    return delivered_;
  }
  /// Messages dropped because their receiver had already finished (a
  /// finished cell's clock no longer advances, so a late message could
  /// land in its past; senders still winding down simply lose them).
  [[nodiscard]] std::uint64_t dropped_to_finished() const noexcept {
    return dropped_;
  }

 private:
  struct CellState;
  struct WorkerSync;

  void worker_main(int worker);
  /// Computes horizons/runnability for the next round; returns false when
  /// every cell has finished.
  bool plan_round();
  /// Drains every channel, scheduling arrivals in canonical order.
  void drain_channels();

  Options options_;
  std::vector<std::unique_ptr<CellState>> cells_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  std::function<void(int)> worker_prologue_;
  std::function<void(int)> worker_epilogue_;
  std::unique_ptr<WorkerSync> sync_;
  std::uint64_t rounds_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  bool ran_ = false;
};

}  // namespace netco::sim
