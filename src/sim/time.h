// Simulation time.
//
// Simulated time is a signed 64-bit count of nanoseconds since the start of
// the run. `Duration` and `TimePoint` are distinct strong types so that
// "time + time" (meaningless) does not compile while "time + duration" does.
// 2^63 ns is ~292 years, far beyond any run we perform.
#pragma once

#include <compare>
#include <cstdint>

#include "common/assert.h"
#include "common/units.h"

namespace netco::sim {

/// A signed span of simulated time, in nanoseconds.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  static constexpr Duration nanoseconds(std::int64_t ns) noexcept {
    return Duration(ns);
  }
  static constexpr Duration microseconds(std::int64_t us) noexcept {
    return Duration(us * 1000);
  }
  static constexpr Duration milliseconds(std::int64_t ms) noexcept {
    return Duration(ms * 1'000'000);
  }
  static constexpr Duration seconds(std::int64_t s) noexcept {
    return Duration(s * 1'000'000'000);
  }
  /// Fractional seconds, rounded to the nearest nanosecond.
  static constexpr Duration seconds_f(double s) noexcept {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration zero() noexcept { return Duration(0); }
  /// A duration larger than any realistic simulation horizon.
  static constexpr Duration infinite() noexcept {
    return Duration(INT64_MAX / 4);
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double us() const noexcept {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double ms() const noexcept {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double sec() const noexcept {
    return static_cast<double>(ns_) / 1e9;
  }

  friend constexpr auto operator<=>(Duration, Duration) noexcept = default;

  constexpr Duration operator+(Duration other) const noexcept {
    return Duration(ns_ + other.ns_);
  }
  constexpr Duration operator-(Duration other) const noexcept {
    return Duration(ns_ - other.ns_);
  }
  constexpr Duration operator*(std::int64_t k) const noexcept {
    return Duration(ns_ * k);
  }
  constexpr Duration operator/(std::int64_t k) const noexcept {
    return Duration(ns_ / k);
  }
  constexpr Duration& operator+=(Duration other) noexcept {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) noexcept {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr Duration operator-() const noexcept { return Duration(-ns_); }

 private:
  constexpr explicit Duration(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant of simulated time (nanoseconds since run start).
class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;

  static constexpr TimePoint origin() noexcept { return TimePoint(); }
  static constexpr TimePoint from_ns(std::int64_t ns) noexcept {
    TimePoint t;
    t.ns_ = ns;
    return t;
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double sec() const noexcept {
    return static_cast<double>(ns_) / 1e9;
  }
  /// Duration since the run started.
  [[nodiscard]] constexpr Duration since_origin() const noexcept {
    return Duration::nanoseconds(ns_);
  }

  friend constexpr auto operator<=>(TimePoint, TimePoint) noexcept = default;

  constexpr TimePoint operator+(Duration d) const noexcept {
    return from_ns(ns_ + d.ns());
  }
  constexpr TimePoint operator-(Duration d) const noexcept {
    return from_ns(ns_ - d.ns());
  }
  constexpr Duration operator-(TimePoint other) const noexcept {
    return Duration::nanoseconds(ns_ - other.ns_);
  }

 private:
  std::int64_t ns_ = 0;
};

/// Time needed to serialize `bytes` onto a link of rate `rate`.
/// Rounds up so a positive payload never serializes in zero time.
constexpr Duration transmission_time(DataRate rate, std::size_t bytes) noexcept {
  NETCO_DASSERT(rate.positive());
  const auto bits = static_cast<std::uint64_t>(bytes) * 8ULL;
  const std::uint64_t ns =
      (bits * 1'000'000'000ULL + rate.bps() - 1) / rate.bps();
  return Duration::nanoseconds(static_cast<std::int64_t>(ns));
}

}  // namespace netco::sim
