#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>

#include "common/assert.h"

namespace netco::sim {

TimerWheel::TimerWheel(Simulator& simulator, TimerWheelConfig config)
    : sim_(simulator),
      tick_ns_(static_cast<std::uint64_t>(config.tick.ns())) {
  NETCO_ASSERT_MSG(config.tick.ns() >= 1, "TimerWheel tick must be >= 1 ns");
  head_.fill(kNil);
  now_tick_ = static_cast<std::uint64_t>(sim_.now().ns()) / tick_ns_;
}

TimerWheel::~TimerWheel() { anchor_.cancel(); }

std::uint64_t TimerWheel::due_tick_of(std::int64_t deadline_ns) const noexcept {
  // Round up: a timer never fires before its raw deadline.
  const auto ns = static_cast<std::uint64_t>(deadline_ns);
  return (ns + tick_ns_ - 1) / tick_ns_;
}

TimerWheel::TimerId TimerWheel::schedule_at(TimePoint at, TimerFn fn,
                                            void* ctx, std::uint64_t arg) {
  NETCO_ASSERT(at >= sim_.now());
  return do_schedule(at.ns(), fn, ctx, arg);
}

TimerWheel::TimerId TimerWheel::schedule_after(Duration delay, TimerFn fn,
                                               void* ctx, std::uint64_t arg) {
  NETCO_ASSERT(delay.ns() >= 0);
  return do_schedule(sim_.now().ns() + delay.ns(), fn, ctx, arg);
}

TimerWheel::TimerId TimerWheel::do_schedule(std::int64_t deadline_ns,
                                            TimerFn fn, void* ctx,
                                            std::uint64_t arg) {
  NETCO_ASSERT(fn != nullptr);
  NETCO_DASSERT(deadline_ns >= 0);
  // Between anchors the wheel position lags simulated time; while the
  // wheel is empty that lag is unobservable, so resync to the present —
  // otherwise delta magnitudes (and thus level choice) would degrade for
  // a wheel idle for a long stretch.
  if (active_ == 0) {
    now_tick_ = static_cast<std::uint64_t>(sim_.now().ns()) / tick_ns_;
  }
  std::uint64_t due = due_tick_of(deadline_ns);
  // A due-now (or intra-tick) deadline rounds to the next tick boundary:
  // never early, at most one tick late.
  if (due <= now_tick_) due = now_tick_ + 1;

  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    NETCO_ASSERT_MSG(records_.size() < kNil, "timer slab exhausted");
    index = static_cast<std::uint32_t>(records_.size());
    records_.emplace_back();
  }
  Record& record = records_[index];
  record.deadline_ns = deadline_ns;
  record.seq = next_seq_++;
  record.fn = fn;
  record.ctx = ctx;
  record.arg = arg;
  place(index, due);
  ++active_;
  ++scheduled_;

  if (!anchor_armed_ || due < anchor_tick_) arm_anchor(due);
  return (static_cast<std::uint64_t>(record.gen) << 32) | index;
}

void TimerWheel::place(std::uint32_t index, std::uint64_t due_tick) {
  Record& record = records_[index];
  const std::uint64_t delta = due_tick - now_tick_;
  std::uint16_t bucket;
  if (delta < kSlots) {
    bucket = static_cast<std::uint16_t>(due_tick & kSlotMask);
  } else if (delta < (1ULL << 16)) {
    bucket = static_cast<std::uint16_t>(kSlots + ((due_tick >> 8) & kSlotMask));
  } else if (delta < (1ULL << 24)) {
    bucket =
        static_cast<std::uint16_t>(2 * kSlots + ((due_tick >> 16) & kSlotMask));
  } else if (delta < (1ULL << 32)) {
    bucket =
        static_cast<std::uint16_t>(3 * kSlots + ((due_tick >> 24) & kSlotMask));
  } else {
    bucket = kOverflowBucket;
    ++overflow_count_;
  }
  record.bucket = bucket;
  record.prev = kNil;
  record.next = head_[bucket];
  if (head_[bucket] != kNil) records_[head_[bucket]].prev = index;
  head_[bucket] = index;
  if (bucket != kOverflowBucket) {
    const std::uint64_t slot = bucket & kSlotMask;
    bits_[bucket >> kSlotBits][slot >> 6] |= 1ULL << (slot & 63);
  }
}

void TimerWheel::unlink(std::uint32_t index) noexcept {
  Record& record = records_[index];
  const std::uint16_t bucket = record.bucket;
  if (record.prev != kNil) {
    records_[record.prev].next = record.next;
  } else {
    head_[bucket] = record.next;
  }
  if (record.next != kNil) records_[record.next].prev = record.prev;
  if (bucket == kOverflowBucket) {
    --overflow_count_;
  } else if (head_[bucket] == kNil) {
    const std::uint64_t slot = bucket & kSlotMask;
    bits_[bucket >> kSlotBits][slot >> 6] &= ~(1ULL << (slot & 63));
  }
}

void TimerWheel::release(std::uint32_t index) noexcept {
  Record& record = records_[index];
  record.bucket = kNoBucket;
  ++record.gen;  // stale TimerIds stop matching
  free_.push_back(index);
  --active_;
}

std::uint32_t TimerWheel::detach_bucket(std::uint16_t bucket) noexcept {
  const std::uint32_t node = head_[bucket];
  head_[bucket] = kNil;
  if (bucket != kOverflowBucket) {
    const std::uint64_t slot = bucket & kSlotMask;
    bits_[bucket >> kSlotBits][slot >> 6] &= ~(1ULL << (slot & 63));
  }
  return node;
}

bool TimerWheel::cancel(TimerId id) noexcept {
  const auto index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (index >= records_.size()) return false;
  Record& record = records_[index];
  if (record.gen != gen || record.bucket == kNoBucket) return false;
  unlink(index);
  release(index);
  ++cancelled_;
  // The anchor is left alone: if its tick is no longer interesting it
  // fires as a no-op and re-arms — O(1) cancel beats eager rescans.
  return true;
}

bool TimerWheel::pending(TimerId id) const noexcept {
  const auto index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (index >= records_.size()) return false;
  const Record& record = records_[index];
  return record.gen == gen && record.bucket != kNoBucket;
}

std::uint64_t TimerWheel::next_slot_distance(int level,
                                             std::uint64_t from)
    const noexcept {
  const auto& words = bits_[static_cast<std::size_t>(level)];
  if ((words[0] | words[1] | words[2] | words[3]) == 0) return 0;
  // Scan the circular positions from+1 .. from+256 word by word; the
  // lowest set bit of the first non-empty (masked) word is the nearest
  // slot. Distance 256 (the `from` slot itself) is a valid answer for
  // levels >= 1: a full revolution away.
  const std::uint64_t start = (from + 1) & kSlotMask;
  const std::uint64_t start_bit = start & 63;
  for (int step = 0; step <= 4; ++step) {
    const std::uint64_t wi =
        ((start >> 6) + static_cast<std::uint64_t>(step)) & 3;
    std::uint64_t w = words[wi];
    if (step == 0 && start_bit != 0) w &= ~0ULL << start_bit;
    if (step == 4) {
      if (start_bit == 0) break;
      w &= (1ULL << start_bit) - 1;
    }
    if (w != 0) {
      const std::uint64_t slot =
          (wi << 6) + static_cast<std::uint64_t>(std::countr_zero(w));
      return ((slot - from - 1) & kSlotMask) + 1;
    }
  }
  return 0;
}

std::uint64_t TimerWheel::next_interesting_tick() const noexcept {
  std::uint64_t best = kNoTick;
  const std::uint64_t d0 = next_slot_distance(0, now_tick_ & kSlotMask);
  if (d0 != 0) best = now_tick_ + d0;
  for (int level = 1; level < kLevels; ++level) {
    const auto shift = static_cast<std::uint64_t>(kSlotBits * level);
    const std::uint64_t cur = (now_tick_ >> shift) & kSlotMask;
    const std::uint64_t d = next_slot_distance(level, cur);
    if (d != 0) {
      // The earliest timer in that slot sits at or after the slot's
      // window start, which is exactly this cascade boundary.
      const std::uint64_t boundary = ((now_tick_ >> shift) + d) << shift;
      best = std::min(best, boundary);
    }
  }
  if (overflow_count_ > 0) {
    best = std::min(best, ((now_tick_ >> 32) + 1) << 32);
  }
  return best;
}

void TimerWheel::cascade_at(std::uint64_t t) {
  // Outermost first: the overflow rescan may feed level 3, level 3 may
  // feed level 2, and so on — by the time fire_due(t) runs, every timer
  // due this tick sits in its level-0 slot.
  if ((t & 0xFFFFFFFFULL) == 0 && overflow_count_ > 0) {
    std::uint32_t node = detach_bucket(kOverflowBucket);
    overflow_count_ = 0;
    ++cascades_;
    while (node != kNil) {
      const std::uint32_t next = records_[node].next;
      place(node, due_tick_of(records_[node].deadline_ns));
      node = next;
    }
  }
  for (int level = kLevels - 1; level >= 1; --level) {
    const auto shift = static_cast<std::uint64_t>(kSlotBits * level);
    if ((t & ((1ULL << shift) - 1)) != 0) continue;
    const auto slot = static_cast<std::uint16_t>((t >> shift) & kSlotMask);
    const auto bucket =
        static_cast<std::uint16_t>(static_cast<std::uint64_t>(level) * kSlots +
                                   slot);
    std::uint32_t node = detach_bucket(bucket);
    if (node == kNil) continue;
    ++cascades_;
    while (node != kNil) {
      const std::uint32_t next = records_[node].next;
      place(node, due_tick_of(records_[node].deadline_ns));
      node = next;
    }
  }
}

void TimerWheel::fire_due(std::uint64_t t) {
  const auto bucket = static_cast<std::uint16_t>(t & kSlotMask);
  std::uint32_t node = detach_bucket(bucket);
  if (node == kNil) return;
  // Copy the due timers out and release their records *before* invoking
  // anything: callbacks may schedule new timers (recycling these very
  // slots) without invalidating the iteration, and a stale TimerId can
  // never cancel a successor thanks to the generation bump.
  scratch_.clear();
  while (node != kNil) {
    Record& record = records_[node];
    const std::uint32_t next = record.next;
    scratch_.push_back(
        {record.deadline_ns, record.seq, record.fn, record.ctx, record.arg});
    record.bucket = kNoBucket;
    ++record.gen;
    free_.push_back(node);
    --active_;
    node = next;
  }
  // Heap-equivalent order: (raw deadline, schedule sequence) — exactly the
  // simulator's (time, seq) tie-break, independent of list splice order.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Due& a, const Due& b) noexcept {
              if (a.deadline_ns != b.deadline_ns)
                return a.deadline_ns < b.deadline_ns;
              return a.seq < b.seq;
            });
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    ++fired_;
    scratch_[i].fn(scratch_[i].ctx, scratch_[i].arg);
  }
}

void TimerWheel::on_anchor() {
  anchor_armed_ = false;
  const std::uint64_t target =
      static_cast<std::uint64_t>(sim_.now().ns()) / tick_ns_;
  while (now_tick_ < target) {
    const std::uint64_t next = next_interesting_tick();
    if (next > target) {
      // The tick this anchor was armed for went quiet (cancellations);
      // just advance the wheel position.
      now_tick_ = target;
      break;
    }
    now_tick_ = next;
    cascade_at(now_tick_);
    fire_due(now_tick_);
  }
  update_anchor();
}

void TimerWheel::update_anchor() {
  const std::uint64_t next = next_interesting_tick();
  if (next == kNoTick) {
    if (anchor_armed_) {
      anchor_.cancel();
      anchor_armed_ = false;
    }
    return;
  }
  // An anchor already armed at or before the next interesting tick will
  // get there first (an early one fires as a no-op and re-arms).
  if (anchor_armed_ && anchor_tick_ <= next) return;
  arm_anchor(next);
}

void TimerWheel::arm_anchor(std::uint64_t t) {
  anchor_.cancel();
  anchor_tick_ = t;
  anchor_armed_ = true;
  anchor_ = sim_.schedule_at(
      TimePoint::from_ns(static_cast<std::int64_t>(t * tick_ns_)),
      [this] { on_anchor(); });
}

}  // namespace netco::sim
