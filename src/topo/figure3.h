// The paper's reference testing topology (Fig. 3):
//
//   h1 —— s1 ——[ r1 … rk ]—— s2 —— h2        (+ h3, the compare process)
//
// In the combiner variants, s1/s2 are the trusted edges built by
// CombinerBuilder and h3 is the CompareService controller. The Linespeed
// reduction replaces the parallel circuit with a single router r3:
//
//   h1 —— s1 —— r3 —— s2 —— h2
#pragma once

#include <memory>

#include "device/network.h"
#include "health/service.h"
#include "host/host.h"
#include "link/link.h"
#include "netco/combiner.h"
#include "obs/sim_sampler.h"
#include "sim/simulator.h"

namespace netco::topo {

/// Construction options for the Fig. 3 topology.
struct Figure3Options {
  /// false → the Linespeed reduction (single router, no combiner).
  bool use_combiner = true;
  /// Combiner parameters (k, compare config, profiles, combine on/off).
  core::CombinerOptions combiner;
  /// Host access links and (for Linespeed) inter-switch links.
  link::LinkConfig access_link;
  /// Host CPU personality.
  host::HostProfile host_profile;
  /// Simulation seed.
  std::uint64_t seed = 1;
  /// Replica-health loop (src/health). Disabled by default; enabling it
  /// requires use_combiner with combine=true (it needs the compare).
  health::HealthConfig health;
};

/// An instantiated Fig. 3 network: owns the simulator, the network, and the
/// combiner bookkeeping.
class Figure3Topology {
 public:
  explicit Figure3Topology(Figure3Options options);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] device::Network& network() noexcept { return network_; }
  [[nodiscard]] host::Host& h1() noexcept { return *h1_; }
  [[nodiscard]] host::Host& h2() noexcept { return *h2_; }

  /// The combiner (valid when use_combiner; edges are s1=edges[0] toward
  /// h1 and s2=edges[1] toward h2).
  [[nodiscard]] core::CombinerInstance& combiner() noexcept {
    return combiner_;
  }
  [[nodiscard]] const Figure3Options& options() const noexcept {
    return options_;
  }

  /// The health loop (nullptr unless options.health.enabled and the
  /// combiner has a compare).
  [[nodiscard]] health::HealthService* health() noexcept {
    return health_.get();
  }

 private:
  Figure3Options options_;
  sim::Simulator simulator_;
  /// Event-loop occupancy sampling ("sim.events_pending" /
  /// "sim.events_executed" in the global metrics registry).
  obs::SimulatorSampler sampler_;
  device::Network network_;
  host::Host* h1_ = nullptr;
  host::Host* h2_ = nullptr;
  core::CombinerInstance combiner_;
  /// Declared after combiner_ so it is destroyed first (it un-installs
  /// its verdict sinks from the combiner's compare cores).
  std::unique_ptr<health::HealthService> health_;
};

}  // namespace netco::topo
