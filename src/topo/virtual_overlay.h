// The virtualized NetCo of §VII (Fig. 9): instead of physically replicating
// routers, a flow is split at the trusted ingress into k copies carried
// over k vendor-disjoint *paths* (802.1Q tunnel per path) and recombined
// at the trusted egress by the same compare logic, with the tunnel tag
// playing the role of the replica identity.
//
//          ┌─ path 0 (vendor a) ─┐
//   hA ── sA ─ path 1 (vendor b) ─ sB ── hB
//          └─ path 2 (vendor c) ─┘
//
// sA and sB are trusted edge switches; each splits outbound flows onto the
// tunnels and feeds inbound tunnel copies to the shared compare process.
// The hardware saving vs. the physical combiner: zero additional routers —
// the k paths already exist in any redundantly provisioned network.
#pragma once

#include <memory>
#include <vector>

#include "controller/controller.h"
#include "device/network.h"
#include "host/host.h"
#include "netco/compare_service.h"
#include "openflow/switch.h"
#include "sim/simulator.h"

namespace netco::topo {

/// Virtualized-NetCo topology options.
struct VirtualOverlayOptions {
  int paths = 3;           ///< k tunnels
  int hops_per_path = 1;   ///< untrusted switches on each path
  std::uint16_t base_vlan = 100;
  core::CompareConfig compare;
  controller::CostProfile compare_profile =
      controller::CostProfile::c_program();
  link::LinkConfig link;
  host::HostProfile host_profile;
  std::uint64_t seed = 1;
};

/// The instantiated overlay.
class VirtualOverlayTopology {
 public:
  explicit VirtualOverlayTopology(VirtualOverlayOptions options);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] device::Network& network() noexcept { return network_; }
  [[nodiscard]] host::Host& host_a() noexcept { return *host_a_; }
  [[nodiscard]] host::Host& host_b() noexcept { return *host_b_; }
  [[nodiscard]] openflow::OpenFlowSwitch& ingress() noexcept { return *sa_; }
  [[nodiscard]] openflow::OpenFlowSwitch& egress() noexcept { return *sb_; }

  /// Untrusted switch `hop` on `path`.
  [[nodiscard]] openflow::OpenFlowSwitch& path_switch(int path, int hop);

  /// The shared compare process.
  [[nodiscard]] core::CompareService& compare() noexcept { return *compare_; }
  [[nodiscard]] controller::Controller& compare_controller() noexcept {
    return *controller_;
  }

  [[nodiscard]] const VirtualOverlayOptions& options() const noexcept {
    return options_;
  }

 private:
  void build();

  VirtualOverlayOptions options_;
  sim::Simulator simulator_;
  device::Network network_;
  host::Host* host_a_ = nullptr;
  host::Host* host_b_ = nullptr;
  openflow::OpenFlowSwitch* sa_ = nullptr;
  openflow::OpenFlowSwitch* sb_ = nullptr;
  std::vector<std::vector<openflow::OpenFlowSwitch*>> path_switches_;
  std::unique_ptr<core::CompareService> compare_;
  std::unique_ptr<controller::Controller> controller_;
};

}  // namespace netco::topo
