#include "topo/inband.h"

#include "common/assert.h"
#include "common/fmt.h"
#include "controller/static_routing.h"

namespace netco::topo {

InbandCombinerTopology::InbandCombinerTopology(InbandOptions options)
    : options_(std::move(options)),
      simulator_(options_.seed),
      network_(simulator_) {
  NETCO_ASSERT(options_.k >= 2);
  build();
}

void InbandCombinerTopology::build() {
  const int k = options_.k;
  const auto now = simulator_.now();
  const auto h1_mac = net::MacAddress::from_id(1);
  const auto h2_mac = net::MacAddress::from_id(2);

  h1_ = &network_.add_node<host::Host>("h1", h1_mac,
                                       net::Ipv4Address::from_id(1),
                                       options_.host_profile);
  h2_ = &network_.add_node<host::Host>("h2", h2_mac,
                                       net::Ipv4Address::from_id(2),
                                       options_.host_profile);

  const openflow::SwitchProfile edge_profile{
      .vendor = "trusted-edge", .processing_delay = options_.edge_delay};
  ea_ = &network_.add_node<openflow::OpenFlowSwitch>("eA", edge_profile);
  eb_ = &network_.add_node<openflow::OpenFlowSwitch>("eB", edge_profile);

  core::MiddleboxConfig mb_config = options_.middlebox;
  mb_config.compare.k = k;
  mb_ab_ = &network_.add_node<core::CompareMiddlebox>("mbAB", mb_config);
  mb_ba_ = &network_.add_node<core::CompareMiddlebox>("mbBA", mb_config);

  const auto vendors = core::default_replica_profiles();
  for (int j = 0; j < k; ++j) {
    replicas_.push_back(&network_.add_node<openflow::OpenFlowSwitch>(
        fmt("r{}", j), vendors[static_cast<std::size_t>(j) % vendors.size()]));
  }

  // Wiring. Edge ports: 0 = host, 1..k = replicas, k+1 = from middlebox.
  // Replica ports: 0 = eA, 1 = mbAB, 2 = eB, 3 = mbBA.
  network_.connect(*ea_, *h1_, options_.link);
  network_.connect(*eb_, *h2_, options_.link);
  for (int j = 0; j < k; ++j) {
    network_.connect(*ea_, *replicas_[static_cast<std::size_t>(j)],
                     options_.link);  // r port 0
  }
  for (int j = 0; j < k; ++j) {
    network_.connect(*replicas_[static_cast<std::size_t>(j)], *mb_ab_,
                     options_.link);  // r port 1, mbAB port j
  }
  for (int j = 0; j < k; ++j) {
    network_.connect(*eb_, *replicas_[static_cast<std::size_t>(j)],
                     options_.link);  // r port 2; eB port 1+j
  }
  for (int j = 0; j < k; ++j) {
    network_.connect(*replicas_[static_cast<std::size_t>(j)], *mb_ba_,
                     options_.link);  // r port 3, mbBA port j
  }
  network_.connect(*mb_ab_, *eb_, options_.link);  // mbAB port k; eB port k+1
  network_.connect(*mb_ba_, *ea_, options_.link);  // mbBA port k; eA port k+1

  // Edge rules.
  const auto program_edge = [&](openflow::OpenFlowSwitch& edge,
                                const net::MacAddress& local_mac) {
    // Hub: host traffic to all replicas.
    openflow::FlowSpec hub;
    hub.match.with_in_port(0);
    for (int j = 0; j < k; ++j) {
      hub.actions.push_back(
          openflow::OutputAction::to(static_cast<device::PortIndex>(1 + j)));
    }
    hub.priority = 30;
    edge.table().add(std::move(hub), now);

    // Direct replica → edge traffic is never legitimate here: drop.
    for (int j = 0; j < k; ++j) {
      openflow::FlowSpec drop;
      drop.match.with_in_port(static_cast<device::PortIndex>(1 + j));
      drop.priority = 20;
      edge.table().add(std::move(drop), now);
    }

    // Released packets from the middlebox go to the host.
    controller::install_mac_route(edge, local_mac, 0);
  };
  program_edge(*ea_, h1_mac);
  program_edge(*eb_, h2_mac);

  // Replica routing: h2-bound → mbAB (port 1); h1-bound → mbBA (port 3).
  for (auto* replica : replicas_) {
    controller::install_mac_route(*replica, h2_mac, 1);
    controller::install_mac_route(*replica, h1_mac, 3);
  }
}

}  // namespace netco::topo
