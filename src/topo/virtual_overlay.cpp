#include "topo/virtual_overlay.h"

#include "common/assert.h"
#include "common/fmt.h"
#include "controller/static_routing.h"
#include "netco/combiner.h"

namespace netco::topo {

VirtualOverlayTopology::VirtualOverlayTopology(VirtualOverlayOptions options)
    : options_(std::move(options)),
      simulator_(options_.seed),
      network_(simulator_) {
  NETCO_ASSERT(options_.paths >= 2);
  NETCO_ASSERT(options_.hops_per_path >= 1);
  build();
}

openflow::OpenFlowSwitch& VirtualOverlayTopology::path_switch(int path,
                                                              int hop) {
  return *path_switches_.at(static_cast<std::size_t>(path))
              .at(static_cast<std::size_t>(hop));
}

void VirtualOverlayTopology::build() {
  const int k = options_.paths;
  const auto now = simulator_.now();
  const auto vendors = core::default_replica_profiles();

  host_a_ = &network_.add_node<host::Host>("hA", net::MacAddress::from_id(1),
                                           net::Ipv4Address::from_id(1),
                                           options_.host_profile);
  host_b_ = &network_.add_node<host::Host>("hB", net::MacAddress::from_id(2),
                                           net::Ipv4Address::from_id(2),
                                           options_.host_profile);
  const openflow::SwitchProfile edge_profile{
      .vendor = "trusted-edge", .processing_delay = sim::Duration::microseconds(5)};
  sa_ = &network_.add_node<openflow::OpenFlowSwitch>("sA", edge_profile);
  sb_ = &network_.add_node<openflow::OpenFlowSwitch>("sB", edge_profile);

  // Port 0 of each edge: the host.
  network_.connect(*sa_, *host_a_, options_.link);
  network_.connect(*sb_, *host_b_, options_.link);

  // Paths: port 1+i on each edge; path switches use port 0 toward sA-side,
  // port 1 toward sB-side.
  path_switches_.assign(static_cast<std::size_t>(k), {});
  for (int i = 0; i < k; ++i) {
    openflow::OpenFlowSwitch* prev = sa_;
    for (int hop = 0; hop < options_.hops_per_path; ++hop) {
      auto& sw = network_.add_node<openflow::OpenFlowSwitch>(
          fmt("p{}-{}", i, hop),
          vendors[static_cast<std::size_t>(i) % vendors.size()]);
      path_switches_[static_cast<std::size_t>(i)].push_back(&sw);
      network_.connect(*prev, sw, options_.link);
      prev = &sw;
    }
    network_.connect(*prev, *sb_, options_.link);

    // Cross-connect rules inside the path (pure transit).
    for (auto* sw : path_switches_[static_cast<std::size_t>(i)]) {
      openflow::FlowSpec fwd;
      fwd.match.with_in_port(0);
      fwd.actions = {openflow::OutputAction::to(1)};
      fwd.priority = 10;
      sw->table().add(std::move(fwd), now);
      openflow::FlowSpec rev;
      rev.match.with_in_port(1);
      rev.actions = {openflow::OutputAction::to(0)};
      rev.priority = 10;
      sw->table().add(std::move(rev), now);
    }
  }

  // The shared compare process, tunnel-tag keyed.
  compare_ = std::make_unique<core::CompareService>();
  controller_ = std::make_unique<controller::Controller>(
      simulator_, "virtual-compare", *compare_, options_.compare_profile);

  const auto setup_edge = [&](openflow::OpenFlowSwitch& edge,
                              const net::MacAddress& local_mac,
                              const net::MacAddress& remote_mac) {
    // Split: every packet from the host fans out on all tunnels, each copy
    // tagged with its path's VLAN (sequential OF 1.0 action semantics).
    openflow::FlowSpec split;
    split.match.with_in_port(0);
    for (int i = 0; i < k; ++i) {
      split.actions.push_back(openflow::SetVlanVidAction{
          static_cast<std::uint16_t>(options_.base_vlan + i)});
      split.actions.push_back(
          openflow::OutputAction::to(static_cast<device::PortIndex>(1 + i)));
    }
    split.priority = 30;
    edge.table().add(std::move(split), now);

    core::CompareService::EdgeConfig config;
    config.compare = options_.compare;
    config.compare.k = k;
    for (int i = 0; i < k; ++i) {
      const auto port = static_cast<device::PortIndex>(1 + i);
      // Anti-spoof screen: a tunnel must never deliver a packet claiming
      // to originate from this edge's own host.
      openflow::FlowSpec screen;
      screen.match.with_in_port(port).with_dl_src(local_mac);
      screen.actions = {};
      screen.priority = 25;
      edge.table().add(std::move(screen), now);

      openflow::FlowSpec punt;
      punt.match.with_in_port(port);
      punt.actions = {openflow::OutputAction::controller()};
      punt.priority = 20;
      edge.table().add(std::move(punt), now);

      config.replica_vlans[static_cast<std::uint16_t>(options_.base_vlan + i)] =
          i;
    }
    // Released (untagged) packets go to the host by MAC.
    controller::install_mac_route(edge, local_mac, 0);
    (void)remote_mac;

    compare_->configure_edge(edge.name(), std::move(config));
    controller_->attach(edge);
  };

  setup_edge(*sa_, host_a_->mac(), host_b_->mac());
  setup_edge(*sb_, host_b_->mac(), host_a_->mac());
}

}  // namespace netco::topo
