#include "topo/figure3.h"

#include "controller/static_routing.h"

namespace netco::topo {

Figure3Topology::Figure3Topology(Figure3Options options)
    : options_(std::move(options)),
      simulator_(options_.seed),
      sampler_(simulator_),
      network_(simulator_) {
  sampler_.start();
  const auto h1_mac = net::MacAddress::from_id(1);
  const auto h2_mac = net::MacAddress::from_id(2);
  h1_ = &network_.add_node<host::Host>("h1", h1_mac,
                                       net::Ipv4Address::from_id(1),
                                       options_.host_profile);
  h2_ = &network_.add_node<host::Host>("h2", h2_mac,
                                       net::Ipv4Address::from_id(2),
                                       options_.host_profile);

  if (options_.use_combiner) {
    combiner_ = core::build_combiner(
        network_, options_.combiner,
        {core::PortAttachment{.neighbor = h1_,
                              .link = options_.access_link,
                              .local_macs = {h1_mac}},
         core::PortAttachment{.neighbor = h2_,
                              .link = options_.access_link,
                              .local_macs = {h2_mac}}},
        "netco");
    combiner_.install_replica_route(h1_mac, 0);
    combiner_.install_replica_route(h2_mac, 1);
    if (options_.health.enabled && combiner_.compare != nullptr) {
      health_ = std::make_unique<health::HealthService>(simulator_, combiner_,
                                                        options_.health);
    }
    return;
  }

  // Linespeed reduction: h1 - s1 - r3 - s2 - h2.
  const openflow::SwitchProfile edge_profile{
      .vendor = "trusted-edge",
      .processing_delay = options_.combiner.edge_delay};
  auto& s1 = network_.add_node<openflow::OpenFlowSwitch>("s1", edge_profile);
  auto& s2 = network_.add_node<openflow::OpenFlowSwitch>("s2", edge_profile);
  auto& r3 = network_.add_node<openflow::OpenFlowSwitch>(
      "r3", core::default_replica_profiles()[0]);

  const auto h1_s1 = network_.connect(*h1_, s1, options_.access_link);
  const auto s1_r3 = network_.connect(s1, r3, options_.access_link);
  const auto r3_s2 = network_.connect(r3, s2, options_.access_link);
  const auto s2_h2 = network_.connect(s2, *h2_, options_.access_link);

  // Broadcast (ARP) floods along the chain.
  for (auto* sw : {&s1, &r3, &s2}) {
    openflow::FlowSpec bcast;
    bcast.match.with_dl_dst(net::MacAddress::broadcast());
    bcast.actions = {openflow::OutputAction::flood()};
    bcast.priority = 5;
    sw->table().add(std::move(bcast), simulator_.now());
  }

  controller::install_mac_route(s1, h2_mac, s1_r3.a_port);
  controller::install_mac_route(s1, h1_mac, h1_s1.b_port);
  controller::install_mac_route(r3, h2_mac, r3_s2.a_port);
  controller::install_mac_route(r3, h1_mac, s1_r3.b_port);
  controller::install_mac_route(s2, h2_mac, s2_h2.a_port);
  controller::install_mac_route(s2, h1_mac, r3_s2.b_port);
}

}  // namespace netco::topo
