// Parametric k-ary fat-tree (Clos) datacenter topology — the environment
// of the paper's Fig. 1 and the §VI case study.
//
// Standard k-ary fat-tree: k pods; each pod has k/2 edge and k/2
// aggregation switches; (k/2)² core switches; each edge switch hosts k/2
// hosts. Routing is static and destination-MAC based ("we set up the
// Mininet network with routing based on MAC destination addresses", §VI),
// deterministic: up-paths always use aggregation/core index 0 — no ECMP,
// so the §VI attack position (pod 0, aggregation 0) is always on-path.
//
// Optionally one aggregation switch position is replaced by a NetCo
// robust combiner (the §VI third scenario).
#pragma once

#include <optional>
#include <vector>

#include "device/network.h"
#include "host/host.h"
#include "netco/combiner.h"
#include "openflow/switch.h"
#include "sim/simulator.h"

namespace netco::topo {

/// Identifies an aggregation switch position.
struct AggPosition {
  int pod = 0;
  int index = 0;
};

/// Fat-tree construction options.
struct FatTreeOptions {
  int k = 4;  ///< pods (even, >= 2); also the switch radix
  link::LinkConfig link;
  host::HostProfile host_profile;
  std::uint64_t seed = 1;
  /// If set, this aggregation position is built as a NetCo combiner
  /// instead of a single untrusted switch.
  std::optional<AggPosition> combine_agg;
  /// Combiner parameters used when combine_agg is set.
  core::CombinerOptions combiner;
};

/// One recorded switch↔switch (or switch↔host) wire of the fabric,
/// addressable by stable switch ids — what fault plans cut and the
/// failover compiler reasons about.
struct FabricLink {
  int a_sid = -1;                 ///< switch id of endpoint a
  device::PortIndex a_port = device::kNoPort;
  int b_sid = -1;                 ///< switch id of endpoint b; -1 = a host
  device::PortIndex b_port = device::kNoPort;
  link::Link* link = nullptr;
};

/// An instantiated fat-tree.
class FatTreeTopology {
 public:
  explicit FatTreeTopology(FatTreeOptions options);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] device::Network& network() noexcept { return network_; }

  /// Host at (pod, edge switch, host index), each in [0, k/2) except pod
  /// in [0, k).
  [[nodiscard]] host::Host& host(int pod, int edge, int index);

  /// Edge switch `index` of `pod`.
  [[nodiscard]] openflow::OpenFlowSwitch& edge(int pod, int index);

  /// Aggregation switch at the position, or nullptr if it is the
  /// combiner-wrapped one.
  [[nodiscard]] openflow::OpenFlowSwitch* agg(int pod, int index);

  /// Core switch `index` in [0, (k/2)²).
  [[nodiscard]] openflow::OpenFlowSwitch& core(int index);

  /// The combiner instance (valid when combine_agg was set).
  [[nodiscard]] core::CombinerInstance& combiner() noexcept {
    return combiner_;
  }

  /// Port of agg(pod,index) (or of each combiner replica) that leads to
  /// `edge_index` / to core attachment `core_slot` (slot in [0, k/2)).
  /// Valid for the wrapped position too (ports are identical on every
  /// replica by construction).
  [[nodiscard]] device::PortIndex agg_port_to_edge(int edge_index) const;
  [[nodiscard]] device::PortIndex agg_port_to_core(int core_slot) const;

  [[nodiscard]] const FatTreeOptions& options() const noexcept {
    return options_;
  }

  // --- stable switch ids (fault plans, failover compiler) ---------------
  // Edges: [0, k·h) pod-major (sid = pod·h + index); aggregations:
  // [k·h, 2k·h) (sid = k·h + pod·h + index); cores: [2k·h, 2k·h + h²).
  // The wrapped aggregation position keeps its sid but resolves to
  // nullptr (it is k replicas behind trusted edges, not one switch).
  [[nodiscard]] int edge_sid(int pod, int index) const noexcept;
  [[nodiscard]] int agg_sid(int pod, int index) const noexcept;
  [[nodiscard]] int core_sid(int index) const noexcept;
  [[nodiscard]] int switch_count() const noexcept;
  [[nodiscard]] openflow::OpenFlowSwitch* switch_by_sid(int sid);

  /// Down-port of core `c` toward pod `p` (resolves the wrapped pod's
  /// shifted numbering via the combiner's recorded neighbor ports).
  [[nodiscard]] device::PortIndex core_port_to_pod(int c, int p) const;

  /// Every wire of the fabric in construction order (host wires carry
  /// b_sid = -1).
  [[nodiscard]] const std::vector<FabricLink>& fabric_links() const noexcept {
    return fabric_links_;
  }

  /// The recorded wire between two switch sids, either orientation;
  /// nullptr when the pair is not adjacent (or involves the wrapped
  /// position, whose wires belong to the combiner).
  [[nodiscard]] const FabricLink* find_fabric_link(int sid_a, int sid_b) const;

 private:
  void build();
  void install_routes();

  FatTreeOptions options_;
  sim::Simulator simulator_;
  device::Network network_;

  // Indexed [pod][i] / [pod][edge][h].
  std::vector<std::vector<openflow::OpenFlowSwitch*>> edges_;
  std::vector<std::vector<openflow::OpenFlowSwitch*>> aggs_;  // null if wrapped
  std::vector<openflow::OpenFlowSwitch*> cores_;
  std::vector<std::vector<std::vector<host::Host*>>> hosts_;
  core::CombinerInstance combiner_;
  std::vector<FabricLink> fabric_links_;

  // Port bookkeeping (uniform by construction order):
  // hosts occupy edge ports [0, k/2), aggs occupy edge ports [k/2, k).
  // On an agg: edges occupy ports [0, k/2), cores [k/2, k).
  // On a core: pod p's agg occupies port p.
};

}  // namespace netco::topo
