// Parametric k-ary fat-tree (Clos) datacenter topology — the environment
// of the paper's Fig. 1 and the §VI case study.
//
// Standard k-ary fat-tree: k pods; each pod has k/2 edge and k/2
// aggregation switches; (k/2)² core switches; each edge switch hosts k/2
// hosts. Routing is static and destination-MAC based ("we set up the
// Mininet network with routing based on MAC destination addresses", §VI),
// deterministic: up-paths always use aggregation/core index 0 — no ECMP,
// so the §VI attack position (pod 0, aggregation 0) is always on-path.
//
// Optionally one aggregation switch position is replaced by a NetCo
// robust combiner (the §VI third scenario).
#pragma once

#include <optional>
#include <vector>

#include "device/network.h"
#include "host/host.h"
#include "netco/combiner.h"
#include "openflow/switch.h"
#include "sim/simulator.h"

namespace netco::topo {

/// Identifies an aggregation switch position.
struct AggPosition {
  int pod = 0;
  int index = 0;
};

/// Fat-tree construction options.
struct FatTreeOptions {
  int k = 4;  ///< pods (even, >= 2); also the switch radix
  link::LinkConfig link;
  host::HostProfile host_profile;
  std::uint64_t seed = 1;
  /// If set, this aggregation position is built as a NetCo combiner
  /// instead of a single untrusted switch.
  std::optional<AggPosition> combine_agg;
  /// Combiner parameters used when combine_agg is set.
  core::CombinerOptions combiner;
};

/// An instantiated fat-tree.
class FatTreeTopology {
 public:
  explicit FatTreeTopology(FatTreeOptions options);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] device::Network& network() noexcept { return network_; }

  /// Host at (pod, edge switch, host index), each in [0, k/2) except pod
  /// in [0, k).
  [[nodiscard]] host::Host& host(int pod, int edge, int index);

  /// Edge switch `index` of `pod`.
  [[nodiscard]] openflow::OpenFlowSwitch& edge(int pod, int index);

  /// Aggregation switch at the position, or nullptr if it is the
  /// combiner-wrapped one.
  [[nodiscard]] openflow::OpenFlowSwitch* agg(int pod, int index);

  /// Core switch `index` in [0, (k/2)²).
  [[nodiscard]] openflow::OpenFlowSwitch& core(int index);

  /// The combiner instance (valid when combine_agg was set).
  [[nodiscard]] core::CombinerInstance& combiner() noexcept {
    return combiner_;
  }

  /// Port of agg(pod,index) (or of each combiner replica) that leads to
  /// `edge_index` / to core attachment `core_slot` (slot in [0, k/2)).
  /// Valid for the wrapped position too (ports are identical on every
  /// replica by construction).
  [[nodiscard]] device::PortIndex agg_port_to_edge(int edge_index) const;
  [[nodiscard]] device::PortIndex agg_port_to_core(int core_slot) const;

  [[nodiscard]] const FatTreeOptions& options() const noexcept {
    return options_;
  }

 private:
  void build();
  void install_routes();

  FatTreeOptions options_;
  sim::Simulator simulator_;
  device::Network network_;

  // Indexed [pod][i] / [pod][edge][h].
  std::vector<std::vector<openflow::OpenFlowSwitch*>> edges_;
  std::vector<std::vector<openflow::OpenFlowSwitch*>> aggs_;  // null if wrapped
  std::vector<openflow::OpenFlowSwitch*> cores_;
  std::vector<std::vector<std::vector<host::Host*>>> hosts_;
  core::CombinerInstance combiner_;

  // Port bookkeeping (uniform by construction order):
  // hosts occupy edge ports [0, k/2), aggs occupy edge ports [k/2, k).
  // On an agg: edges occupy ports [0, k/2), cores [k/2, k).
  // On a core: pod p's agg occupies port p.
};

}  // namespace netco::topo
