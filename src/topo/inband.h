// Inband-combiner topology: the Fig. 3 reference network with the compare
// realized as data-plane middleboxes (one per direction) instead of an
// out-of-band controller process — the alternative architecture of §IX.
//
//                 ┌── r0 ──┐
//   h1 ── eA ── ··· rj ··· ──▶ mbAB ──▶ eB ── h2      (direction h1→h2)
//                 └── rk ──┘
//   (and symmetrically eB → replicas → mbBA → eA for h2→h1)
//
// The replicas are the same untrusted switches as in the Central
// scenarios; eA/eB are trusted hubs + MAC forwarders; the middleboxes are
// trusted compare elements on the wire. Malicious replica traffic aimed
// directly at a trusted edge is dropped there (the edges accept data only
// from their host and their middlebox).
#pragma once

#include <vector>

#include "device/network.h"
#include "host/host.h"
#include "netco/combiner.h"
#include "netco/middlebox.h"

namespace netco::topo {

/// Construction options.
struct InbandOptions {
  int k = 3;
  core::MiddleboxConfig middlebox;
  link::LinkConfig link;
  host::HostProfile host_profile;
  sim::Duration edge_delay = sim::Duration::microseconds(5);
  std::uint64_t seed = 1;
};

/// The instantiated inband-combiner network.
class InbandCombinerTopology {
 public:
  explicit InbandCombinerTopology(InbandOptions options);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] device::Network& network() noexcept { return network_; }
  [[nodiscard]] host::Host& h1() noexcept { return *h1_; }
  [[nodiscard]] host::Host& h2() noexcept { return *h2_; }
  [[nodiscard]] openflow::OpenFlowSwitch& replica(int j) {
    return *replicas_.at(static_cast<std::size_t>(j));
  }
  /// Middlebox for the h1→h2 direction.
  [[nodiscard]] core::CompareMiddlebox& mb_forward() noexcept { return *mb_ab_; }
  /// Middlebox for the h2→h1 direction.
  [[nodiscard]] core::CompareMiddlebox& mb_reverse() noexcept { return *mb_ba_; }

 private:
  void build();

  InbandOptions options_;
  sim::Simulator simulator_;
  device::Network network_;
  host::Host* h1_ = nullptr;
  host::Host* h2_ = nullptr;
  openflow::OpenFlowSwitch* ea_ = nullptr;
  openflow::OpenFlowSwitch* eb_ = nullptr;
  std::vector<openflow::OpenFlowSwitch*> replicas_;
  core::CompareMiddlebox* mb_ab_ = nullptr;
  core::CompareMiddlebox* mb_ba_ = nullptr;
};

}  // namespace netco::topo
