#include "topo/fattree.h"

#include <unordered_map>

#include "common/assert.h"
#include "common/fmt.h"
#include "controller/static_routing.h"

namespace netco::topo {
namespace {

/// Deterministic host MAC/IP id for (pod, edge, index).
std::uint32_t host_id(int k, int pod, int edge, int index) {
  const int h = k / 2;
  return static_cast<std::uint32_t>(pod * h * h + edge * h + index + 1);
}

}  // namespace

FatTreeTopology::FatTreeTopology(FatTreeOptions options)
    : options_(std::move(options)),
      simulator_(options_.seed),
      network_(simulator_) {
  NETCO_ASSERT_MSG(options_.k >= 2 && options_.k % 2 == 0,
                   "fat-tree arity must be even");
  if (options_.combine_agg) {
    // A combiner position outside the pod/index grid would silently build
    // a combiner-free tree (the wrapped-slot test never fires) while the
    // caller believes the protected position exists — fail loudly instead.
    NETCO_ASSERT_MSG(
        options_.combine_agg->pod >= 0 && options_.combine_agg->pod < options_.k,
        "combiner pod out of range");
    NETCO_ASSERT_MSG(options_.combine_agg->index >= 0 &&
                         options_.combine_agg->index < options_.k / 2,
                     "combiner aggregation index out of range");
    NETCO_ASSERT_MSG(options_.combiner.k >= 1,
                     "combiner needs at least one replica");
  }
  build();
  install_routes();
}

device::PortIndex FatTreeTopology::agg_port_to_edge(int edge_index) const {
  return static_cast<device::PortIndex>(edge_index);
}

device::PortIndex FatTreeTopology::agg_port_to_core(int core_slot) const {
  return static_cast<device::PortIndex>(options_.k / 2 + core_slot);
}

void FatTreeTopology::build() {
  const int k = options_.k;
  const int h = k / 2;

  // --- nodes --------------------------------------------------------------
  edges_.assign(static_cast<std::size_t>(k), {});
  aggs_.assign(static_cast<std::size_t>(k), {});
  hosts_.assign(static_cast<std::size_t>(k), {});
  for (int p = 0; p < k; ++p) {
    hosts_[static_cast<std::size_t>(p)].assign(static_cast<std::size_t>(h), {});
    for (int e = 0; e < h; ++e) {
      edges_[static_cast<std::size_t>(p)].push_back(
          &network_.add_node<openflow::OpenFlowSwitch>(fmt("e{}-{}", p, e)));
      for (int i = 0; i < h; ++i) {
        const auto id = host_id(k, p, e, i);
        hosts_[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)]
            .push_back(&network_.add_node<host::Host>(
                fmt("h{}-{}-{}", p, e, i), net::MacAddress::from_id(id),
                net::Ipv4Address::from_id(id), options_.host_profile));
      }
    }
    for (int a = 0; a < h; ++a) {
      const bool wrapped = options_.combine_agg &&
                           options_.combine_agg->pod == p &&
                           options_.combine_agg->index == a;
      aggs_[static_cast<std::size_t>(p)].push_back(
          wrapped ? nullptr
                  : &network_.add_node<openflow::OpenFlowSwitch>(
                        fmt("a{}-{}", p, a)));
    }
  }
  for (int c = 0; c < h * h; ++c) {
    cores_.push_back(
        &network_.add_node<openflow::OpenFlowSwitch>(fmt("c{}", c)));
  }

  // --- wiring ---------------------------------------------------------------
  // Edge ports: hosts at [0, h), aggs at [h, k) in agg-index order.
  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < h; ++e) {
      for (int i = 0; i < h; ++i) {
        const auto conn =
            network_.connect(*edges_[static_cast<std::size_t>(p)]
                                  [static_cast<std::size_t>(e)],
                             *hosts_[static_cast<std::size_t>(p)]
                                    [static_cast<std::size_t>(e)]
                                    [static_cast<std::size_t>(i)],
                             options_.link);
        fabric_links_.push_back(
            {edge_sid(p, e), conn.a_port, -1, conn.b_port, conn.link});
      }
    }
  }
  // Agg wiring: agg a gets edge ports [0, h) then core ports [h, k).
  // Core c gets one port per pod, in pod order (port index == pod).
  for (int p = 0; p < k; ++p) {
    for (int a = 0; a < h; ++a) {
      openflow::OpenFlowSwitch* agg = aggs_[static_cast<std::size_t>(p)]
                                           [static_cast<std::size_t>(a)];
      if (agg != nullptr) {
        for (int e = 0; e < h; ++e) {
          const auto conn =
              network_.connect(*agg, *edges_[static_cast<std::size_t>(p)]
                                            [static_cast<std::size_t>(e)],
                               options_.link);
          fabric_links_.push_back({agg_sid(p, a), conn.a_port, edge_sid(p, e),
                                   conn.b_port, conn.link});
        }
        for (int s = 0; s < h; ++s) {
          const auto conn = network_.connect(
              *agg, *cores_[static_cast<std::size_t>(a * h + s)],
              options_.link);
          fabric_links_.push_back({agg_sid(p, a), conn.a_port,
                                   core_sid(a * h + s), conn.b_port,
                                   conn.link});
        }
        continue;
      }
      // This is the wrapped position: attachments in the same order as a
      // plain agg's ports (edges first, then cores), so replica port
      // layout matches the original router exactly.
      std::vector<core::PortAttachment> attachments;
      for (int e = 0; e < h; ++e) {
        core::PortAttachment at;
        at.neighbor = edges_[static_cast<std::size_t>(p)]
                            [static_cast<std::size_t>(e)];
        at.link = options_.link;
        for (int i = 0; i < h; ++i) {
          at.local_macs.push_back(
              net::MacAddress::from_id(host_id(k, p, e, i)));
        }
        attachments.push_back(std::move(at));
      }
      for (int s = 0; s < h; ++s) {
        core::PortAttachment at;
        at.neighbor = cores_[static_cast<std::size_t>(a * h + s)];
        at.link = options_.link;
        // The "local side" of a core attachment is every host outside
        // this pod (they are reached through the core fabric).
        for (int q = 0; q < k; ++q) {
          if (q == p) continue;
          for (int e = 0; e < h; ++e) {
            for (int i = 0; i < h; ++i) {
              at.local_macs.push_back(
                  net::MacAddress::from_id(host_id(k, q, e, i)));
            }
          }
        }
        attachments.push_back(std::move(at));
      }
      combiner_ = core::build_combiner(network_, options_.combiner,
                                       attachments, fmt("netco-a{}-{}", p, a));
    }
  }
}

void FatTreeTopology::install_routes() {
  const int k = options_.k;
  const int h = k / 2;

  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < h; ++e) {
      for (int i = 0; i < h; ++i) {
        const auto mac = net::MacAddress::from_id(host_id(k, p, e, i));

        // Edge switches.
        for (int q = 0; q < k; ++q) {
          for (int e2 = 0; e2 < h; ++e2) {
            auto& edge_sw = *edges_[static_cast<std::size_t>(q)]
                                   [static_cast<std::size_t>(e2)];
            if (q == p && e2 == e) {
              controller::install_mac_route(
                  edge_sw, mac, static_cast<device::PortIndex>(i));
            } else {
              // Up-path via aggregation 0 (deterministic; no ECMP).
              controller::install_mac_route(
                  edge_sw, mac, static_cast<device::PortIndex>(h + 0));
            }
          }
        }

        // Aggregation switches (and combiner replicas at the wrapped slot).
        for (int q = 0; q < k; ++q) {
          for (int a = 0; a < h; ++a) {
            openflow::OpenFlowSwitch* agg = aggs_[static_cast<std::size_t>(q)]
                                                 [static_cast<std::size_t>(a)];
            const bool toward_edge = (q == p);
            const device::PortIndex out =
                toward_edge ? agg_port_to_edge(e) : agg_port_to_core(0);
            if (agg != nullptr) {
              controller::install_mac_route(*agg, mac, out);
            } else {
              const std::size_t attachment =
                  toward_edge ? static_cast<std::size_t>(e)
                              : static_cast<std::size_t>(h + 0);
              combiner_.install_replica_route(mac, attachment);
            }
          }
        }

        // Core switches: down toward pod p (core_port_to_pod resolves the
        // wrapped pod's shifted numbering via the combiner's records).
        for (int c = 0; c < h * h; ++c) {
          controller::install_mac_route(*cores_[static_cast<std::size_t>(c)],
                                        mac, core_port_to_pod(c, p));
        }
      }
    }
  }
}

host::Host& FatTreeTopology::host(int pod, int edge, int index) {
  return *hosts_.at(static_cast<std::size_t>(pod))
              .at(static_cast<std::size_t>(edge))
              .at(static_cast<std::size_t>(index));
}

openflow::OpenFlowSwitch& FatTreeTopology::edge(int pod, int index) {
  return *edges_.at(static_cast<std::size_t>(pod))
              .at(static_cast<std::size_t>(index));
}

openflow::OpenFlowSwitch* FatTreeTopology::agg(int pod, int index) {
  return aggs_.at(static_cast<std::size_t>(pod))
      .at(static_cast<std::size_t>(index));
}

openflow::OpenFlowSwitch& FatTreeTopology::core(int index) {
  return *cores_.at(static_cast<std::size_t>(index));
}

int FatTreeTopology::edge_sid(int pod, int index) const noexcept {
  const int h = options_.k / 2;
  return pod * h + index;
}

int FatTreeTopology::agg_sid(int pod, int index) const noexcept {
  const int h = options_.k / 2;
  return options_.k * h + pod * h + index;
}

int FatTreeTopology::core_sid(int index) const noexcept {
  const int h = options_.k / 2;
  return 2 * options_.k * h + index;
}

int FatTreeTopology::switch_count() const noexcept {
  const int h = options_.k / 2;
  return 2 * options_.k * h + h * h;
}

openflow::OpenFlowSwitch* FatTreeTopology::switch_by_sid(int sid) {
  const int k = options_.k;
  const int h = k / 2;
  if (sid < 0 || sid >= switch_count()) return nullptr;
  if (sid < k * h) {
    return edges_[static_cast<std::size_t>(sid / h)]
                 [static_cast<std::size_t>(sid % h)];
  }
  if (sid < 2 * k * h) {
    const int rel = sid - k * h;
    return aggs_[static_cast<std::size_t>(rel / h)]
                [static_cast<std::size_t>(rel % h)];  // null if wrapped
  }
  return cores_[static_cast<std::size_t>(sid - 2 * k * h)];
}

device::PortIndex FatTreeTopology::core_port_to_pod(int c, int p) const {
  const int h = options_.k / 2;
  // Ports were created pod-by-pod, so port index == pod — except on cores
  // attached to the wrapped position, whose port toward the wrapped pod
  // came from the combiner build (recorded). Pods before and after the
  // wrapped one keep their index because the combiner build happens at
  // exactly the wrapped pod's turn in the wiring sequence.
  if (options_.combine_agg && c / h == options_.combine_agg->index &&
      p == options_.combine_agg->pod) {
    return combiner_.neighbor_port[static_cast<std::size_t>(h + c % h)];
  }
  return static_cast<device::PortIndex>(p);
}

const FabricLink* FatTreeTopology::find_fabric_link(int sid_a,
                                                    int sid_b) const {
  for (const FabricLink& fl : fabric_links_) {
    if ((fl.a_sid == sid_a && fl.b_sid == sid_b) ||
        (fl.a_sid == sid_b && fl.b_sid == sid_a)) {
      return &fl;
    }
  }
  return nullptr;
}

}  // namespace topo
