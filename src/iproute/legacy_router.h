// LegacyRouter: a classic (non-OpenFlow) IPv4 router.
//
// The paper's conclusion: "while we have so far focused on building a
// secure router out of insecure OpenFlow switches, we believe that our
// approach can easily be extended to legacy routers." This node is that
// extension target: per-interface IP/MAC, longest-prefix-match forwarding,
// TTL decrement with incremental checksum fix, ICMP time-exceeded and
// echo handling on its own addresses — and the same DatapathInterceptor
// hook, because a legacy router is just as untrusted as an OF switch.
//
// One subtlety the paper glosses over: a router rewrites the Ethernet
// source to its own interface MAC, so k *distinct* replicas would produce
// bit-different copies and the memcmp compare would never match. The
// combiner therefore deploys replicas as exact configuration clones (same
// interface MACs/IPs) — which is natural: all k replicas emulate the same
// logical router.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "device/datapath.h"
#include "device/node.h"
#include "iproute/lpm.h"
#include "net/headers.h"
#include "sim/time.h"

namespace netco::iproute {

/// A next hop: leave through `port`, address the frame to `next_mac`.
struct NextHop {
  device::PortIndex port = 0;
  net::MacAddress next_mac;
};

/// Per-interface configuration.
struct Interface {
  net::MacAddress mac;
  net::Ipv4Address ip;
};

/// Router counters.
struct RouterStats {
  std::uint64_t forwarded = 0;
  std::uint64_t no_route = 0;
  std::uint64_t ttl_expired = 0;
  std::uint64_t for_self = 0;        ///< packets addressed to an interface
  std::uint64_t non_ip_dropped = 0;  ///< legacy router routes IPv4 only
};

/// A classic IPv4 router node.
class LegacyRouter : public device::Node, public device::Datapath {
 public:
  LegacyRouter(sim::Simulator& simulator, std::string name,
               sim::Duration processing_delay = sim::Duration::microseconds(15))
      : Node(simulator, std::move(name)), delay_(processing_delay) {}

  /// Declares the interface behind port index == interfaces().size().
  /// Call once per port, in wiring order.
  void add_interface(Interface interface) {
    interfaces_.push_back(interface);
  }

  /// Adds prefix/len → next hop to the FIB (replaces an existing entry).
  void add_route(net::Ipv4Address prefix, int len, NextHop hop) {
    fib_.insert(prefix, len, hop);
  }

  /// Withdraws a FIB entry (routing protocols retract what they installed).
  /// False when no such entry existed.
  bool remove_route(net::Ipv4Address prefix, int len) {
    return fib_.remove(prefix, len);
  }

  void handle_packet(device::PortIndex in_port, net::Packet packet) override;

  /// The untrusted-datapath hook (same contract as OpenFlowSwitch).
  void set_interceptor(device::DatapathInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// Local protocol delivery: UDP datagrams addressed to one of this
  /// router's interface IPs are handed here (after the for-self check)
  /// instead of being silently absorbed — the hook a control-plane
  /// process (routing::RipSpeaker) registers to receive announcements.
  /// nullptr clears.
  using LocalDelivery = std::function<void(
      device::PortIndex, const net::ParsedPacket&, const net::Packet&)>;
  void set_local_delivery(LocalDelivery delivery) {
    local_delivery_ = std::move(delivery);
  }

  /// Emits `packet` directly on `port` (interceptors use this).
  void raw_output(device::PortIndex port, net::Packet packet) override;

  /// Datapath: the event loop.
  sim::Simulator& datapath_simulator() override { return simulator(); }

  [[nodiscard]] const RouterStats& router_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::vector<Interface>& interfaces() const noexcept {
    return interfaces_;
  }
  [[nodiscard]] const LpmTable<NextHop>& fib() const noexcept { return fib_; }

 private:
  void route(device::PortIndex in_port, net::Packet packet);
  void send_time_exceeded(device::PortIndex in_port,
                          const net::ParsedPacket& parsed);
  void answer_echo(device::PortIndex in_port, const net::ParsedPacket& parsed,
                   const net::Packet& packet);

  sim::Duration delay_;
  std::vector<Interface> interfaces_;
  LpmTable<NextHop> fib_;
  device::DatapathInterceptor* interceptor_ = nullptr;
  LocalDelivery local_delivery_;
  RouterStats stats_;
};

}  // namespace netco::iproute
