// Longest-prefix-match IPv4 routing table.
//
// Classic sorted-prefix implementation: exact enough for simulated FIBs of
// tens to thousands of routes (lookups scan prefix lengths from /32 down,
// one hash probe per populated length).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/address.h"

namespace netco::iproute {

/// A prefix route: value attached to ip/len.
template <typename Value>
class LpmTable {
 public:
  /// Inserts (or replaces) a route for prefix/len. len in [0, 32].
  void insert(net::Ipv4Address prefix, int len, Value value) {
    const std::uint32_t key = prefix.value() & mask_of(len);
    tables_[static_cast<std::size_t>(len)][key] = std::move(value);
    populated_ |= (1ULL << static_cast<unsigned>(len));
  }

  /// Removes a route; returns true if one existed.
  bool remove(net::Ipv4Address prefix, int len) {
    auto& table = tables_[static_cast<std::size_t>(len)];
    const bool erased = table.erase(prefix.value() & mask_of(len)) > 0;
    if (table.empty())
      populated_ &= ~(1ULL << static_cast<unsigned>(len));
    return erased;
  }

  /// Longest-prefix lookup. nullopt if no route covers `ip`.
  [[nodiscard]] std::optional<Value> lookup(net::Ipv4Address ip) const {
    for (int len = 32; len >= 0; --len) {
      if ((populated_ & (1ULL << static_cast<unsigned>(len))) == 0) continue;
      const auto& table = tables_[static_cast<std::size_t>(len)];
      const auto it = table.find(ip.value() & mask_of(len));
      if (it != table.end()) return it->second;
    }
    return std::nullopt;
  }

  /// Total number of routes.
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const auto& table : tables_) n += table.size();
    return n;
  }

  /// Netmask for a prefix length.
  static constexpr std::uint32_t mask_of(int len) noexcept {
    return len == 0 ? 0u : ~0u << (32 - len);
  }

 private:
  std::unordered_map<std::uint32_t, Value> tables_[33];
  std::uint64_t populated_ = 0;  ///< bit per populated prefix length
};

}  // namespace netco::iproute
