#include "iproute/legacy_router.h"

#include <utility>
#include <vector>

#include "common/assert.h"
#include "net/checksum.h"

namespace netco::iproute {

void LegacyRouter::raw_output(device::PortIndex port, net::Packet packet) {
  if (port >= port_count()) return;
  send(port, std::move(packet));
}

void LegacyRouter::handle_packet(device::PortIndex in_port,
                                 net::Packet packet) {
  simulator().schedule_after(delay_, [this, in_port,
                                      p = std::move(packet)]() mutable {
    route(in_port, std::move(p));
  });
}

void LegacyRouter::route(device::PortIndex in_port, net::Packet packet) {
  if (interceptor_ != nullptr &&
      interceptor_->intercept(*this, in_port, packet)) {
    return;
  }
  const auto parsed = net::parse_packet(packet);
  if (!parsed || !parsed->ipv4) {
    ++stats_.non_ip_dropped;  // a legacy router routes IPv4 only
    return;
  }

  // Addressed to one of our interfaces?
  for (const auto& interface : interfaces_) {
    if (parsed->ipv4->dst == interface.ip) {
      ++stats_.for_self;
      if (parsed->icmp && parsed->icmp->type == net::kIcmpEchoRequest) {
        answer_echo(in_port, *parsed, packet);
      } else if (parsed->udp && local_delivery_) {
        local_delivery_(in_port, *parsed, packet);
      }
      return;
    }
  }

  // TTL check (RFC 1812: decrement on forwarding; expire at <= 1).
  if (parsed->ipv4->ttl <= 1) {
    ++stats_.ttl_expired;
    send_time_exceeded(in_port, *parsed);
    return;
  }

  const auto hop = fib_.lookup(parsed->ipv4->dst);
  if (!hop) {
    ++stats_.no_route;
    return;  // destination unreachable (ICMP type 3 not modelled)
  }
  NETCO_ASSERT(hop->port < interfaces_.size());

  // Rewrite L2, decrement TTL, fix the header checksum.
  net::set_dl_src(packet, interfaces_[hop->port].mac);
  net::set_dl_dst(packet, hop->next_mac);
  packet.set_u8(parsed->l3_offset + 8,
                static_cast<std::uint8_t>(parsed->ipv4->ttl - 1));
  net::fix_checksums(packet);

  ++stats_.forwarded;
  send(hop->port, std::move(packet));
}

void LegacyRouter::send_time_exceeded(device::PortIndex in_port,
                                      const net::ParsedPacket& parsed) {
  if (in_port >= interfaces_.size()) return;
  const auto& interface = interfaces_[in_port];
  // ICMP time exceeded (type 11) back toward the sender. We reuse the echo
  // wire layout (type/code/checksum/4 unused bytes) with an empty payload;
  // the original-datagram quote is not modelled.
  std::vector<std::byte> payload;
  net::Packet msg = net::build_icmp_echo(
      net::EthernetHeader{.dst = parsed.eth.src, .src = interface.mac},
      std::nullopt,
      net::Ipv4Header{.src = interface.ip, .dst = parsed.ipv4->src},
      net::IcmpEchoHeader{.type = 11, .id = 0, .seq = 0}, payload);
  send(in_port, std::move(msg));
}

void LegacyRouter::answer_echo(device::PortIndex in_port,
                               const net::ParsedPacket& parsed,
                               const net::Packet& packet) {
  const auto& interface = interfaces_[in_port];
  const std::size_t payload_len = packet.size() - parsed.payload_offset;
  net::Packet reply = net::build_icmp_echo(
      net::EthernetHeader{.dst = parsed.eth.src, .src = interface.mac},
      std::nullopt,
      net::Ipv4Header{.src = interface.ip, .dst = parsed.ipv4->src},
      net::IcmpEchoHeader{.type = net::kIcmpEchoReply,
                          .id = parsed.icmp->id,
                          .seq = parsed.icmp->seq},
      packet.slice(parsed.payload_offset, payload_len));
  send(in_port, std::move(reply));
}

}  // namespace netco::iproute
