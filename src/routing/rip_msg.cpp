#include "routing/rip_msg.h"

namespace netco::routing {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xFF));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xFFFF));
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

}  // namespace

std::vector<std::byte> serialize(const RipMessage& message) {
  std::vector<std::byte> out;
  out.reserve(kRipHeaderBytes + message.entries.size() * kRipEntryBytes);
  out.push_back(static_cast<std::byte>(message.command));
  out.push_back(static_cast<std::byte>(message.version));
  put_u16(out, static_cast<std::uint16_t>(message.entries.size()));
  put_u32(out, message.seq);
  for (const RipEntry& entry : message.entries) {
    put_u32(out, entry.prefix.value());
    out.push_back(static_cast<std::byte>(entry.len));
    out.push_back(static_cast<std::byte>(entry.metric));
    put_u16(out, 0);  // reserved
  }
  return out;
}

std::optional<RipMessage> parse(std::span<const std::byte> payload) {
  if (payload.size() < kRipHeaderBytes) return std::nullopt;
  RipMessage message;
  message.command = static_cast<std::uint8_t>(payload[0]);
  message.version = static_cast<std::uint8_t>(payload[1]);
  if (message.command != kRipCommandResponse ||
      message.version != kRipVersion) {
    return std::nullopt;
  }
  const std::size_t count = (static_cast<std::size_t>(payload[2]) << 8) |
                            static_cast<std::size_t>(payload[3]);
  message.seq = get_u32(payload, 4);
  if (payload.size() < kRipHeaderBytes + count * kRipEntryBytes) {
    return std::nullopt;
  }
  message.entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t base = kRipHeaderBytes + i * kRipEntryBytes;
    RipEntry entry;
    entry.prefix = net::Ipv4Address(get_u32(payload, base));
    entry.len = static_cast<std::uint8_t>(payload[base + 4]);
    entry.metric = static_cast<std::uint8_t>(payload[base + 5]);
    message.entries.push_back(entry);
  }
  return message;
}

bool is_rip_datagram(const net::ParsedPacket& parsed) {
  return parsed.ipv4 && parsed.udp && parsed.udp->dst_port == kRipPort;
}

bool rewrite_metrics(net::Packet& packet, const net::ParsedPacket& parsed,
                     std::uint8_t (*fn)(std::uint8_t)) {
  if (!is_rip_datagram(parsed)) return false;
  const auto message = parse(packet.slice(
      parsed.payload_offset, packet.size() - parsed.payload_offset));
  if (!message) return false;
  for (std::size_t i = 0; i < message->entries.size(); ++i) {
    const std::size_t at = parsed.payload_offset + kRipHeaderBytes +
                           i * kRipEntryBytes + kRipEntryMetricOffset;
    packet.set_u8(at, fn(message->entries[i].metric));
  }
  net::fix_checksums(packet);
  return true;
}

}  // namespace netco::routing
